//! Che's approximation (Che et al., 2002), the analytical hit-ratio model
//! the paper cites (§2.2) for LRU-like caches.
//!
//! For independent (Poisson) accesses, an LRU cache of capacity `C`
//! behaves like a TTL cache with a single *characteristic time* `T`
//! satisfying
//!
//! ```text
//! Σᵢ sᵢ · (1 − e^(−λᵢ T)) = C
//! ```
//!
//! (size-weighted for non-unit objects). Object `i`'s hit probability is
//! then `1 − e^(−λᵢ T)`, and the overall (request-weighted) hit ratio is
//! `Σ λᵢ (1 − e^(−λᵢ T)) / Σ λᵢ`.

use faascache_trace::record::Trace;
use faascache_util::MemMb;
use serde::{Deserialize, Serialize};

/// A workload summarized as per-function Poisson rates and sizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheModel {
    /// Per-function (rate per second, size in MB).
    functions: Vec<(f64, f64)>,
}

impl CheModel {
    /// Builds a model from explicit `(rate_per_sec, size_mb)` pairs.
    ///
    /// Functions with non-positive rate or size are ignored.
    pub fn new(functions: impl IntoIterator<Item = (f64, f64)>) -> Self {
        CheModel {
            functions: functions
                .into_iter()
                .filter(|&(l, s)| l > 0.0 && s > 0.0)
                .collect(),
        }
    }

    /// Summarizes a trace: each function's empirical rate over the trace
    /// span and its memory size.
    pub fn from_trace(trace: &Trace) -> Self {
        let span = trace.duration().as_secs_f64().max(1e-9);
        let counts = trace.invocation_counts();
        Self::new(trace.registry().iter().map(|spec| {
            (
                counts[spec.id().index()] as f64 / span,
                spec.mem().as_mb() as f64,
            )
        }))
    }

    /// Number of modeled functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Whether the model is empty.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// Total expected warm memory at characteristic time `t` seconds.
    fn expected_occupancy(&self, t: f64) -> f64 {
        self.functions
            .iter()
            .map(|&(l, s)| s * (1.0 - (-l * t).exp()))
            .sum()
    }

    /// Solves for the characteristic time at cache size `cache`, by
    /// bisection. Returns `None` if the cache fits every function (the
    /// characteristic time is unbounded).
    pub fn characteristic_time(&self, cache: MemMb) -> Option<f64> {
        let c = cache.as_mb() as f64;
        let total_size: f64 = self.functions.iter().map(|&(_, s)| s).sum();
        if self.is_empty() || c >= total_size {
            return None;
        }
        let mut lo = 0.0f64;
        let mut hi = 1.0f64;
        while self.expected_occupancy(hi) < c {
            hi *= 2.0;
            if hi > 1e12 {
                return None;
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.expected_occupancy(mid) < c {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(0.5 * (lo + hi))
    }

    /// The approximate request-weighted hit ratio at cache size `cache`.
    pub fn hit_ratio(&self, cache: MemMb) -> f64 {
        let total_rate: f64 = self.functions.iter().map(|&(l, _)| l).sum();
        if total_rate <= 0.0 {
            return 0.0;
        }
        match self.characteristic_time(cache) {
            None => {
                if self.is_empty() {
                    0.0
                } else {
                    1.0 // cache holds everything
                }
            }
            Some(t) => {
                self.functions
                    .iter()
                    .map(|&(l, _)| l * (1.0 - (-l * t).exp()))
                    .sum::<f64>()
                    / total_rate
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_constraint_satisfied() {
        let model = CheModel::new((0..50).map(|i| (0.1 + i as f64 * 0.05, 100.0)));
        let cache = MemMb::new(2000);
        let t = model.characteristic_time(cache).unwrap();
        let occ = model.expected_occupancy(t);
        assert!((occ - 2000.0).abs() < 1.0, "occupancy {occ}");
    }

    #[test]
    fn hit_ratio_monotone_in_cache() {
        let model = CheModel::new((1..=100).map(|i| (1.0 / i as f64, 50.0 + i as f64)));
        let mut prev = -1.0;
        for gb in 0..10 {
            let h = model.hit_ratio(MemMb::from_gb(gb));
            assert!(h >= prev - 1e-9, "decreased at {gb}GB");
            assert!((0.0..=1.0).contains(&h));
            prev = h;
        }
    }

    #[test]
    fn big_cache_hits_everything() {
        let model = CheModel::new(vec![(1.0, 100.0), (0.5, 200.0)]);
        assert_eq!(model.hit_ratio(MemMb::new(300)), 1.0);
        assert_eq!(model.characteristic_time(MemMb::new(300)), None);
    }

    #[test]
    fn hot_objects_hit_more() {
        let model = CheModel::new(vec![(10.0, 100.0), (0.01, 100.0)]);
        let t = model.characteristic_time(MemMb::new(100)).unwrap();
        let hot = 1.0 - (-10.0 * t).exp();
        let cold = 1.0 - (-0.01 * t).exp();
        assert!(hot > cold);
    }

    #[test]
    fn degenerate_models() {
        let empty = CheModel::new(vec![]);
        assert!(empty.is_empty());
        assert_eq!(empty.hit_ratio(MemMb::new(100)), 0.0);
        // Invalid entries are filtered.
        let filtered = CheModel::new(vec![(0.0, 100.0), (-1.0, 50.0), (1.0, 0.0)]);
        assert!(filtered.is_empty());
    }

    #[test]
    fn from_trace_rates() {
        use faascache_core::function::FunctionRegistry;
        use faascache_trace::record::{Invocation, Trace};
        use faascache_util::{SimDuration, SimTime};
        let mut reg = FunctionRegistry::new();
        let f = reg
            .register("f", MemMb::new(100), SimDuration::ZERO, SimDuration::ZERO)
            .unwrap();
        // 11 invocations over 10 seconds → 1.1/s.
        let t = Trace::new(
            reg,
            (0..11)
                .map(|i| Invocation {
                    time: SimTime::from_secs(i),
                    function: f,
                })
                .collect(),
        );
        let model = CheModel::from_trace(&t);
        assert_eq!(model.len(), 1);
        assert!((model.functions[0].0 - 1.1).abs() < 1e-9);
    }
}
