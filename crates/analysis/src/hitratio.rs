//! Hit-ratio curves (paper §5.1, Figure 3).
//!
//! "Conveniently, the hit-ratio is the CDF of the reuse distances." The
//! curve supports the three operations provisioning needs:
//!
//! - **query** — the expected warm-start ratio at a given cache size,
//! - **inversion** — the smallest cache size achieving a target hit ratio
//!   (used by the elastic controller to turn a target miss speed back into
//!   a cache size, Eq. 3),
//! - **inflection detection** — the knee of the curve, for static
//!   provisioning by marginal utility.

use crate::reuse::ReuseDistances;
use faascache_util::MemMb;
use serde::{Deserialize, Serialize};

/// An empirical hit-ratio curve: the CDF of size-weighted reuse distances.
///
/// Compulsory (first-access) misses are counted in the denominator, so the
/// curve saturates below 1.0 for traces with many one-off functions —
/// matching what a real keep-alive cache can achieve.
///
/// # Examples
///
/// ```
/// use faascache_analysis::hitratio::HitRatioCurve;
/// let curve = HitRatioCurve::from_distances(&[0, 100, 100, 300], 0);
/// assert_eq!(curve.hit_ratio(faascache_util::MemMb::new(100)), 0.75);
/// assert_eq!(curve.hit_ratio(faascache_util::MemMb::new(299)), 0.75);
/// assert_eq!(curve.hit_ratio(faascache_util::MemMb::new(300)), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HitRatioCurve {
    /// Sorted distinct reuse distances (MB) with cumulative hit counts.
    points: Vec<(u64, u64)>,
    /// Total accesses (finite + compulsory).
    total: u64,
}

impl HitRatioCurve {
    /// Builds a curve from finite reuse distances (MB) plus a count of
    /// compulsory misses.
    pub fn from_distances(finite_mb: &[u64], compulsory: u64) -> Self {
        let mut sorted = finite_mb.to_vec();
        sorted.sort_unstable();
        let mut points: Vec<(u64, u64)> = Vec::new();
        let mut cum = 0u64;
        for d in sorted {
            cum += 1;
            match points.last_mut() {
                Some(last) if last.0 == d => last.1 = cum,
                _ => points.push((d, cum)),
            }
        }
        HitRatioCurve {
            points,
            total: finite_mb.len() as u64 + compulsory,
        }
    }

    /// Builds a curve from a trace's [`ReuseDistances`].
    pub fn from_reuse(distances: &ReuseDistances) -> Self {
        Self::from_distances(&distances.finite(), distances.compulsory_misses() as u64)
    }

    /// Total accesses backing the curve.
    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    /// Expected hit (warm-start) ratio at cache size `cache`: the fraction
    /// of accesses whose reuse distance is at most the cache size.
    pub fn hit_ratio(&self, cache: MemMb) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let c = cache.as_mb();
        // Last point with distance <= c.
        let idx = self.points.partition_point(|&(d, _)| d <= c);
        if idx == 0 {
            0.0
        } else {
            self.points[idx - 1].1 as f64 / self.total as f64
        }
    }

    /// Expected miss ratio at cache size `cache`.
    pub fn miss_ratio(&self, cache: MemMb) -> f64 {
        1.0 - self.hit_ratio(cache)
    }

    /// The maximum achievable hit ratio (cache of unbounded size);
    /// bounded away from 1.0 by compulsory misses.
    pub fn max_hit_ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.points.last().map_or(0, |&(_, c)| c) as f64 / self.total as f64
        }
    }

    /// Smallest cache size achieving at least `target` hit ratio, or
    /// `None` if the target exceeds [`Self::max_hit_ratio`].
    pub fn size_for_hit_ratio(&self, target: f64) -> Option<MemMb> {
        if self.total == 0 {
            return None;
        }
        let needed = (target.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        if needed == 0 {
            return Some(MemMb::ZERO);
        }
        let idx = self.points.partition_point(|&(_, cum)| cum < needed);
        self.points.get(idx).map(|&(d, _)| MemMb::new(d))
    }

    /// The curve's knee: the sampled size maximizing distance from the
    /// chord between the curve's endpoints (the Kneedle construction).
    /// Static provisioning picks this size as the marginal-utility
    /// sweet spot. Returns `None` for degenerate (≤1-point) curves.
    pub fn inflection(&self) -> Option<MemMb> {
        if self.points.len() < 2 {
            return self.points.first().map(|&(d, _)| MemMb::new(d));
        }
        let (x0, y0) = {
            let p = self.points[0];
            (p.0 as f64, p.1 as f64 / self.total as f64)
        };
        let (x1, y1) = {
            let p = *self.points.last().expect("non-empty");
            (p.0 as f64, p.1 as f64 / self.total as f64)
        };
        let dx = x1 - x0;
        let dy = y1 - y0;
        if dx <= 0.0 {
            return Some(MemMb::new(self.points[0].0));
        }
        let mut best = (f64::MIN, self.points[0].0);
        for &(d, cum) in &self.points {
            let x = d as f64;
            let y = cum as f64 / self.total as f64;
            // Signed distance from the chord (scaled); larger = more "knee".
            let dist = dy * (x - x0) - dx * (y - y0);
            let dist = -dist; // curve above chord ⇒ negative cross product
            if dist > best.0 {
                best = (dist, d);
            }
        }
        Some(MemMb::new(best.1))
    }

    /// Samples the curve at the given cache sizes, returning
    /// `(size, hit_ratio)` pairs — convenient for plotting Figure 3.
    pub fn sample_at(&self, sizes: impl IntoIterator<Item = MemMb>) -> Vec<(MemMb, f64)> {
        sizes.into_iter().map(|s| (s, self.hit_ratio(s))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_semantics() {
        let c = HitRatioCurve::from_distances(&[0, 100, 100, 300], 0);
        assert_eq!(c.hit_ratio(MemMb::ZERO), 0.25);
        assert_eq!(c.hit_ratio(MemMb::new(99)), 0.25);
        assert_eq!(c.hit_ratio(MemMb::new(100)), 0.75);
        assert_eq!(c.hit_ratio(MemMb::new(1_000_000)), 1.0);
        assert_eq!(c.miss_ratio(MemMb::new(100)), 0.25);
    }

    #[test]
    fn compulsory_misses_cap_the_curve() {
        let c = HitRatioCurve::from_distances(&[10, 20], 2);
        assert_eq!(c.total_accesses(), 4);
        assert_eq!(c.max_hit_ratio(), 0.5);
        assert_eq!(c.hit_ratio(MemMb::new(20)), 0.5);
    }

    #[test]
    fn monotone_nondecreasing() {
        let dists: Vec<u64> = (0..100).map(|i| (i * 37) % 1024).collect();
        let c = HitRatioCurve::from_distances(&dists, 5);
        let mut prev = -1.0;
        for mb in (0..1200).step_by(10) {
            let h = c.hit_ratio(MemMb::new(mb));
            assert!(h >= prev, "curve decreased at {mb}");
            assert!((0.0..=1.0).contains(&h));
            prev = h;
        }
    }

    #[test]
    fn inversion_finds_smallest_size() {
        let c = HitRatioCurve::from_distances(&[0, 100, 100, 300], 0);
        assert_eq!(c.size_for_hit_ratio(0.25), Some(MemMb::ZERO));
        assert_eq!(c.size_for_hit_ratio(0.5), Some(MemMb::new(100)));
        assert_eq!(c.size_for_hit_ratio(0.75), Some(MemMb::new(100)));
        assert_eq!(c.size_for_hit_ratio(0.76), Some(MemMb::new(300)));
        assert_eq!(c.size_for_hit_ratio(1.0), Some(MemMb::new(300)));
    }

    #[test]
    fn inversion_unreachable_target() {
        let c = HitRatioCurve::from_distances(&[10], 9);
        assert_eq!(c.max_hit_ratio(), 0.1);
        assert_eq!(c.size_for_hit_ratio(0.5), None);
    }

    #[test]
    fn inversion_round_trips_with_query() {
        let dists: Vec<u64> = (1..=50).map(|i| i * 20).collect();
        let c = HitRatioCurve::from_distances(&dists, 0);
        for target in [0.1, 0.3, 0.62, 0.9] {
            let size = c.size_for_hit_ratio(target).unwrap();
            assert!(c.hit_ratio(size) >= target);
            if size.as_mb() > 0 {
                assert!(c.hit_ratio(MemMb::new(size.as_mb() - 1)) < target);
            }
        }
    }

    #[test]
    fn inflection_finds_the_knee() {
        // Steep rise to 0.9 by 100MB, then a long flat tail to 10GB.
        let mut dists = Vec::new();
        for i in 0..90 {
            dists.push(i); // 90 accesses under 100MB
        }
        for i in 0..10 {
            dists.push(1000 + i * 1000); // slow tail
        }
        let c = HitRatioCurve::from_distances(&dists, 0);
        let knee = c.inflection().unwrap();
        assert!(
            knee.as_mb() < 200,
            "knee at {knee} should be in the steep region"
        );
    }

    #[test]
    fn degenerate_curves() {
        let empty = HitRatioCurve::from_distances(&[], 0);
        assert_eq!(empty.hit_ratio(MemMb::new(100)), 0.0);
        assert_eq!(empty.size_for_hit_ratio(0.5), None);
        assert_eq!(empty.inflection(), None);

        let single = HitRatioCurve::from_distances(&[42], 0);
        assert_eq!(single.inflection(), Some(MemMb::new(42)));
    }

    #[test]
    fn sampling_for_plots() {
        let c = HitRatioCurve::from_distances(&[100, 200, 300], 1);
        let pts = c.sample_at((0..=3).map(|g| MemMb::new(g * 100)));
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0].1, 0.0);
        assert_eq!(pts[3].1, 0.75);
    }
}
