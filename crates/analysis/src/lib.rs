//! Caching analytics for FaaS keep-alive provisioning (paper §5).
//!
//! The provisioning half of FaasCache treats the keep-alive pool as a
//! cache and sizes it with classic cache-modeling machinery:
//!
//! - [`reuse`] computes **size-weighted reuse distances**: the total memory
//!   of the unique functions invoked between successive invocations of the
//!   same function (for the request sequence `A B C B C A`, the reuse
//!   distance of `A` is `size(B) + size(C)`).
//! - [`hitratio`] turns the reuse-distance distribution into a **hit-ratio
//!   curve** — the CDF of reuse distances — with queries, inversion (for
//!   the elastic controller), and inflection-point detection (for static
//!   provisioning).
//! - [`shards`] implements **SHARDS**-style spatially hashed sampling so
//!   the curve can be estimated from a fraction of the trace (the paper
//!   cites SHARDS as the practical way to avoid the `O(N·M)` full scan).
//! - [`che`] implements **Che's approximation**, an analytical hit-ratio
//!   model the paper cites for TTL-style caches.
//! - [`online`] implements epoch-based **online curve estimation** with a
//!   drift signal — the "online adjustments" the paper leaves as future
//!   work (§5.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod che;
pub mod hitratio;
pub mod online;
pub mod reuse;
pub mod shards;

pub use hitratio::HitRatioCurve;
pub use reuse::{reuse_distances, reuse_distances_naive, ReuseDistances};
