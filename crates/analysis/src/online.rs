//! Online (epoch-based) hit-ratio curve estimation.
//!
//! The paper's provisioning is "not completely online, since [it has] a
//! preparation phase for constructing the hit-rate curves. A 'drift' in
//! function characteristics is fixed by periodically updating the
//! hit-ratio curve" (§5.2) — weekly in their deployment — and adapting
//! online techniques (OSCA, ATC '20) is named as future work. This module
//! implements that future work in its simplest robust form: a streaming
//! estimator that buffers the most recent *epoch* of accesses, rebuilds
//! the curve from its size-weighted reuse distances when the epoch
//! closes, and quantifies drift between consecutive epochs so callers
//! know when to re-provision.

use crate::hitratio::HitRatioCurve;
use crate::reuse::reuse_distances_of_sequence;
use faascache_core::function::FunctionId;
use faascache_util::MemMb;

/// Streaming hit-ratio curve estimator.
///
/// Feed every invocation with [`OnlineCurveEstimator::observe`]; a fresh
/// curve materializes every `epoch_len` observations.
///
/// # Examples
///
/// ```
/// use faascache_analysis::online::OnlineCurveEstimator;
/// use faascache_core::function::FunctionId;
/// use faascache_util::MemMb;
///
/// let mut est = OnlineCurveEstimator::new(4);
/// let f = FunctionId::from_index(0);
/// for _ in 0..4 {
///     est.observe(f, MemMb::new(100));
/// }
/// // One epoch closed: the curve exists and shows perfect reuse.
/// assert!(est.curve().unwrap().hit_ratio(MemMb::new(0)) > 0.7);
/// ```
#[derive(Debug, Clone)]
pub struct OnlineCurveEstimator {
    epoch_len: usize,
    buffer: Vec<(u32, u64)>,
    current: Option<HitRatioCurve>,
    previous: Option<HitRatioCurve>,
    epochs_completed: u64,
}

impl OnlineCurveEstimator {
    /// Creates an estimator that closes an epoch every `epoch_len`
    /// observations.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_len == 0`.
    pub fn new(epoch_len: usize) -> Self {
        assert!(epoch_len > 0, "epoch length must be positive");
        OnlineCurveEstimator {
            epoch_len,
            buffer: Vec::with_capacity(epoch_len),
            current: None,
            previous: None,
            epochs_completed: 0,
        }
    }

    /// Records one invocation. Returns `true` when this observation
    /// closed an epoch (i.e. [`Self::curve`] was just refreshed).
    pub fn observe(&mut self, function: FunctionId, mem: MemMb) -> bool {
        self.buffer.push((function.index() as u32, mem.as_mb()));
        if self.buffer.len() >= self.epoch_len {
            let rd = reuse_distances_of_sequence(self.buffer.drain(..));
            let curve = HitRatioCurve::from_reuse(&rd);
            self.previous = self.current.take();
            self.current = Some(curve);
            self.epochs_completed += 1;
            true
        } else {
            false
        }
    }

    /// The most recently completed epoch's curve.
    pub fn curve(&self) -> Option<&HitRatioCurve> {
        self.current.as_ref()
    }

    /// Number of completed epochs.
    pub fn epochs_completed(&self) -> u64 {
        self.epochs_completed
    }

    /// Observations buffered toward the next epoch.
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }

    /// Mean absolute hit-ratio difference between the two most recent
    /// epochs over the probed sizes — the §5.2 "drift" signal. `None`
    /// until two epochs have completed.
    pub fn drift(&self, probe_sizes: impl IntoIterator<Item = MemMb>) -> Option<f64> {
        let (cur, prev) = (self.current.as_ref()?, self.previous.as_ref()?);
        let mut n = 0u32;
        let mut total = 0.0;
        for size in probe_sizes {
            total += (cur.hit_ratio(size) - prev.hit_ratio(size)).abs();
            n += 1;
        }
        if n == 0 {
            None
        } else {
            Some(total / n as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FunctionId {
        FunctionId::from_index(i)
    }

    #[test]
    fn epoch_boundaries() {
        let mut est = OnlineCurveEstimator::new(3);
        assert!(est.curve().is_none());
        assert!(!est.observe(f(0), MemMb::new(10)));
        assert!(!est.observe(f(0), MemMb::new(10)));
        assert_eq!(est.pending(), 2);
        assert!(est.observe(f(0), MemMb::new(10)));
        assert_eq!(est.epochs_completed(), 1);
        assert_eq!(est.pending(), 0);
        assert!(est.curve().is_some());
    }

    #[test]
    fn stable_workload_has_low_drift() {
        let mut est = OnlineCurveEstimator::new(100);
        // Two identical epochs: cycle over 10 functions.
        for _ in 0..200 {
            for i in 0..10u32 {
                est.observe(f(i), MemMb::new(50 + i as u64 * 10));
            }
        }
        let drift = est
            .drift((0..20).map(|g| MemMb::new(g * 100)))
            .expect("two epochs done");
        assert!(drift < 0.05, "stable workload drifted {drift:.3}");
    }

    #[test]
    fn shifted_workload_has_high_drift() {
        let mut est = OnlineCurveEstimator::new(120);
        // Epoch 1: tight cycle over 3 small functions → tiny distances.
        for _ in 0..40 {
            for i in 0..3u32 {
                est.observe(f(i), MemMb::new(10));
            }
        }
        assert_eq!(est.epochs_completed(), 1);
        // Epoch 2: wide cycle over 30 big functions → huge distances.
        for _ in 0..4 {
            for i in 0..30u32 {
                est.observe(f(100 + i), MemMb::new(1000));
            }
        }
        assert_eq!(est.epochs_completed(), 2);
        let drift = est
            .drift((0..40).map(|g| MemMb::new(g * 500)))
            .expect("two epochs done");
        assert!(drift > 0.2, "shifted workload drift only {drift:.3}");
    }

    #[test]
    fn curve_matches_batch_computation() {
        use crate::reuse::reuse_distances_of_sequence;
        let accesses: Vec<(u32, u64)> = (0u32..50)
            .map(|i| (i % 7, 64 + (i as u64 % 3) * 100))
            .collect();
        let mut est = OnlineCurveEstimator::new(accesses.len());
        for &(fid, mb) in &accesses {
            est.observe(f(fid), MemMb::new(mb));
        }
        let batch = HitRatioCurve::from_reuse(&reuse_distances_of_sequence(accesses));
        assert_eq!(est.curve().unwrap(), &batch);
    }

    #[test]
    #[should_panic(expected = "epoch length")]
    fn zero_epoch_rejected() {
        let _ = OnlineCurveEstimator::new(0);
    }
}
