//! Size-weighted reuse distances (paper §5.1).
//!
//! A function's reuse distance is "the total (memory) size of the unique
//! functions invoked between successive invocations of the same function."
//! A keep-alive cache larger than an invocation's reuse distance serves it
//! warm, so the CDF of reuse distances is the (idealized) hit-ratio curve.
//!
//! Two implementations are provided:
//!
//! - [`reuse_distances_naive`] — the paper's direct `O(N·M)` scan, kept as
//!   the oracle for tests,
//! - [`reuse_distances`] — a Fenwick-tree algorithm (`O(N log M)`),
//!   the practical choice for million-invocation traces.

use faascache_trace::record::Trace;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Reuse distances of a trace, one entry per invocation in trace order.
///
/// `None` marks a compulsory (first-ever) access with no prior invocation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReuseDistances {
    distances: Vec<Option<u64>>,
}

impl ReuseDistances {
    /// Per-invocation distances in MB (`None` = compulsory miss).
    pub fn per_invocation(&self) -> &[Option<u64>] {
        &self.distances
    }

    /// Number of invocations covered.
    pub fn len(&self) -> usize {
        self.distances.len()
    }

    /// Whether there are no invocations.
    pub fn is_empty(&self) -> bool {
        self.distances.is_empty()
    }

    /// Finite distances only, in MB.
    pub fn finite(&self) -> Vec<u64> {
        self.distances.iter().filter_map(|d| *d).collect()
    }

    /// Number of compulsory (first-access) misses.
    pub fn compulsory_misses(&self) -> usize {
        self.distances.iter().filter(|d| d.is_none()).count()
    }
}

/// Fenwick tree over invocation positions; each function contributes its
/// size at its most recent position.
#[derive(Debug)]
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    /// Adds `delta` at 1-based position `i` (signed via wrapping u64 math
    /// avoided: use explicit add/sub entry points).
    fn add(&mut self, mut i: usize, delta: u64) {
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    fn sub(&mut self, mut i: usize, delta: u64) {
        while i < self.tree.len() {
            self.tree[i] -= delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Prefix sum over `1..=i`.
    fn prefix(&self, mut i: usize) -> u64 {
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Range sum over `lo..=hi` (1-based, inclusive).
    fn range(&self, lo: usize, hi: usize) -> u64 {
        if lo > hi {
            0
        } else {
            self.prefix(hi) - self.prefix(lo - 1)
        }
    }
}

/// Computes size-weighted reuse distances in `O(N log M)` with a Fenwick
/// tree.
///
/// # Examples
///
/// ```
/// use faascache_analysis::reuse::reuse_distances;
/// use faascache_core::function::FunctionRegistry;
/// use faascache_trace::record::{Invocation, Trace};
/// use faascache_util::{MemMb, SimDuration, SimTime};
///
/// // The paper's example: A B C B C A ⇒ rd(A) = size(B) + size(C).
/// let mut reg = FunctionRegistry::new();
/// let a = reg.register("A", MemMb::new(10), SimDuration::ZERO, SimDuration::ZERO)?;
/// let b = reg.register("B", MemMb::new(20), SimDuration::ZERO, SimDuration::ZERO)?;
/// let c = reg.register("C", MemMb::new(30), SimDuration::ZERO, SimDuration::ZERO)?;
/// let seq = [a, b, c, b, c, a];
/// let trace = Trace::new(reg, seq.iter().enumerate().map(|(i, &f)| Invocation {
///     time: SimTime::from_secs(i as u64), function: f,
/// }).collect());
/// let rd = reuse_distances(&trace);
/// assert_eq!(rd.per_invocation()[5], Some(50)); // the second A
/// # Ok::<(), faascache_core::CoreError>(())
/// ```
pub fn reuse_distances(trace: &Trace) -> ReuseDistances {
    reuse_distances_of_sequence(trace.invocations().iter().map(|inv| {
        (
            inv.function.index() as u32,
            trace.registry().spec(inv.function).mem().as_mb(),
        )
    }))
}

/// Computes size-weighted reuse distances over a raw access sequence of
/// `(function index, size in MB)` pairs — the core of
/// [`reuse_distances`], exposed for streaming/online estimators that do
/// not hold a full [`Trace`].
pub fn reuse_distances_of_sequence(
    accesses: impl IntoIterator<Item = (u32, u64)>,
) -> ReuseDistances {
    let seq: Vec<(u32, u64)> = accesses.into_iter().collect();
    let n = seq.len();
    let mut fenwick = Fenwick::new(n);
    // Function index → (last 1-based position, size contributed there).
    // The size is remembered per occurrence: a raw sequence may report a
    // function with different sizes over time (e.g. resized apps).
    let mut last: HashMap<u32, (usize, u64)> = HashMap::new();
    let mut distances = Vec::with_capacity(n);

    for (i0, &(fid, size)) in seq.iter().enumerate() {
        let pos = i0 + 1; // 1-based
        match last.get(&fid) {
            None => distances.push(None),
            Some(&(prev, _)) => {
                // Unique functions accessed strictly between prev and pos:
                // each contributes at its latest position in (prev, pos).
                // Exclude the function itself (its latest position is prev).
                let d = fenwick.range(prev + 1, pos - 1);
                distances.push(Some(d));
            }
        }
        if let Some(&(prev, prev_size)) = last.get(&fid) {
            fenwick.sub(prev, prev_size);
        }
        fenwick.add(pos, size);
        last.insert(fid, (pos, size));
    }

    ReuseDistances { distances }
}

/// The paper's direct `O(N·M)` reuse-distance computation, kept as a
/// reference oracle.
pub fn reuse_distances_naive(trace: &Trace) -> ReuseDistances {
    let invs = trace.invocations();
    let mut last: HashMap<u32, usize> = HashMap::new();
    let mut distances = Vec::with_capacity(invs.len());

    for (i, inv) in invs.iter().enumerate() {
        let fid = inv.function.index() as u32;
        match last.get(&fid) {
            None => distances.push(None),
            Some(&prev) => {
                let mut seen: HashMap<u32, ()> = HashMap::new();
                let mut total = 0u64;
                for between in &invs[prev + 1..i] {
                    let g = between.function.index() as u32;
                    if g != fid && seen.insert(g, ()).is_none() {
                        total += trace.registry().spec(between.function).mem().as_mb();
                    }
                }
                distances.push(Some(total));
            }
        }
        last.insert(fid, i);
    }

    ReuseDistances { distances }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faascache_core::function::{FunctionId, FunctionRegistry};
    use faascache_trace::record::Invocation;
    use faascache_util::{MemMb, SimDuration, SimTime};

    fn trace_of(sizes: &[u64], seq: &[usize]) -> Trace {
        let mut reg = FunctionRegistry::new();
        let ids: Vec<FunctionId> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                reg.register(
                    format!("f{i}"),
                    MemMb::new(s),
                    SimDuration::ZERO,
                    SimDuration::ZERO,
                )
                .unwrap()
            })
            .collect();
        Trace::new(
            reg,
            seq.iter()
                .enumerate()
                .map(|(i, &f)| Invocation {
                    time: SimTime::from_secs(i as u64),
                    function: ids[f],
                })
                .collect(),
        )
    }

    #[test]
    fn paper_example_abcbca() {
        // A=0 (10MB), B=1 (20MB), C=2 (30MB); sequence ABCBCA.
        let t = trace_of(&[10, 20, 30], &[0, 1, 2, 1, 2, 0]);
        let rd = reuse_distances(&t);
        assert_eq!(
            rd.per_invocation(),
            &[
                None,     // A first
                None,     // B first
                None,     // C first
                Some(30), // B: C in between
                Some(20), // C: B in between
                Some(50), // A: B + C (unique) in between
            ]
        );
        assert_eq!(rd.compulsory_misses(), 3);
        assert_eq!(rd.finite(), vec![30, 20, 50]);
    }

    #[test]
    fn immediate_reuse_is_zero_distance() {
        let t = trace_of(&[10], &[0, 0, 0]);
        let rd = reuse_distances(&t);
        assert_eq!(rd.per_invocation(), &[None, Some(0), Some(0)]);
    }

    #[test]
    fn repeated_interleaver_counted_once() {
        // A B B B A: B appears three times between the As but counts once.
        let t = trace_of(&[10, 20], &[0, 1, 1, 1, 0]);
        let rd = reuse_distances(&t);
        assert_eq!(rd.per_invocation()[4], Some(20));
    }

    #[test]
    fn naive_matches_fenwick_on_structured_sequences() {
        let cases: Vec<(Vec<u64>, Vec<usize>)> = vec![
            (vec![1, 2, 4, 8], vec![0, 1, 2, 3, 0, 1, 2, 3]),
            (vec![5, 5, 5], vec![0, 1, 0, 2, 1, 0, 2, 2, 1]),
            (vec![100], vec![0; 10]),
            (vec![7, 3], vec![0, 1, 1, 0, 0, 1]),
        ];
        for (sizes, seq) in cases {
            let t = trace_of(&sizes, &seq);
            assert_eq!(
                reuse_distances(&t),
                reuse_distances_naive(&t),
                "mismatch for {seq:?}"
            );
        }
    }

    #[test]
    fn naive_matches_fenwick_on_pseudorandom_sequence() {
        use faascache_util::rng::Pcg64;
        let mut rng = Pcg64::seed_from_u64(99);
        let sizes: Vec<u64> = (0..20).map(|_| rng.range_inclusive(1, 512)).collect();
        let seq: Vec<usize> = (0..500).map(|_| rng.next_below(20) as usize).collect();
        let t = trace_of(&sizes, &seq);
        assert_eq!(reuse_distances(&t), reuse_distances_naive(&t));
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new(FunctionRegistry::new(), vec![]);
        let rd = reuse_distances(&t);
        assert!(rd.is_empty());
        assert_eq!(rd.len(), 0);
        assert_eq!(rd.compulsory_misses(), 0);
    }
}
