//! SHARDS-style sampled reuse-distance estimation (Waldspurger et al.,
//! FAST '15), cited by the paper as the practical way to build hit-ratio
//! curves without the expensive full `O(N·M)` scan.
//!
//! SHARDS applies *spatially hashed sampling*: a function is in the sample
//! iff `hash(f) mod P < R·P` for sampling rate `R`. Because the filter is
//! per-function (not per-access), every access of a sampled function is
//! kept, preserving its reuse behavior. Each measured (size-weighted)
//! reuse distance is then scaled by `1/R`, and each sampled access stands
//! for `1/R` accesses in the full trace.

use crate::hitratio::HitRatioCurve;
use crate::reuse::reuse_distances;
use faascache_core::function::FunctionId;
use faascache_trace::record::{Invocation, Trace};
use faascache_util::MemMb;

const HASH_SPACE: u64 = 1 << 24;

/// Stable per-function hash (SplitMix finalizer over the function index).
fn function_hash(f: FunctionId) -> u64 {
    let mut z = f.index() as u64;
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) % HASH_SPACE
}

/// Whether a function falls into the SHARDS sample at rate `rate`.
pub fn in_sample(f: FunctionId, rate: f64) -> bool {
    let threshold = (rate.clamp(0.0, 1.0) * HASH_SPACE as f64) as u64;
    function_hash(f) < threshold
}

/// Estimates the hit-ratio curve from a hashed sample of the trace.
///
/// With `rate = 1.0` this is exactly [`HitRatioCurve::from_reuse`] on the
/// full trace.
///
/// # Panics
///
/// Panics if `rate` is not in `(0, 1]`.
///
/// # Examples
///
/// ```
/// use faascache_analysis::shards::estimate_curve;
/// use faascache_trace::{adapt, synth};
///
/// let d = synth::generate(&synth::SynthConfig {
///     num_functions: 50, num_apps: 10, ..Default::default()
/// });
/// let trace = adapt::adapt(&d, &adapt::AdaptOptions::default());
/// let estimated = estimate_curve(&trace, 0.5);
/// assert!(estimated.total_accesses() > 0);
/// ```
pub fn estimate_curve(trace: &Trace, rate: f64) -> HitRatioCurve {
    assert!(
        rate > 0.0 && rate <= 1.0,
        "sampling rate must be in (0, 1], got {rate}"
    );
    // Filter accesses to sampled functions.
    let sampled: Vec<Invocation> = trace
        .invocations()
        .iter()
        .copied()
        .filter(|inv| in_sample(inv.function, rate))
        .collect();
    let sub = Trace::new(trace.registry().clone(), sampled);
    let rd = reuse_distances(&sub);
    // Scale distances by 1/R: a sampled distance d estimates d/R in the
    // full trace (only ~R of the intervening unique mass was observed).
    let scale = 1.0 / rate;
    let finite: Vec<u64> = rd
        .finite()
        .into_iter()
        .map(|d| (d as f64 * scale).round() as u64)
        .collect();
    HitRatioCurve::from_distances(&finite, rd.compulsory_misses() as u64)
}

/// Mean absolute error between two curves over the given sizes — used to
/// validate the estimator and by the accuracy benches.
pub fn curve_error(
    a: &HitRatioCurve,
    b: &HitRatioCurve,
    sizes: impl IntoIterator<Item = MemMb>,
) -> f64 {
    let mut n = 0u32;
    let mut total = 0.0;
    for s in sizes {
        total += (a.hit_ratio(s) - b.hit_ratio(s)).abs();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faascache_trace::adapt::{adapt, AdaptOptions};
    use faascache_trace::synth::{generate, SynthConfig};

    fn trace() -> Trace {
        let d = generate(&SynthConfig {
            num_functions: 300,
            num_apps: 80,
            max_rate_per_min: 40.0,
            ..SynthConfig::default()
        });
        adapt(&d, &AdaptOptions::default())
    }

    #[test]
    fn full_rate_matches_exact() {
        let t = trace();
        let exact = HitRatioCurve::from_reuse(&reuse_distances(&t));
        let sampled = estimate_curve(&t, 1.0);
        assert_eq!(exact, sampled);
    }

    #[test]
    fn sampling_is_per_function() {
        // Either all or none of a function's accesses are sampled.
        let f = FunctionId::from_index(7);
        assert!(in_sample(f, 1.0));
        assert!(!in_sample(f, 0.0));
        // Monotone in the rate.
        let mut prev = false;
        for r in [0.01, 0.1, 0.3, 0.7, 1.0] {
            let s = in_sample(f, r);
            assert!(!prev || s, "sample membership must be monotone in rate");
            prev = s;
        }
    }

    #[test]
    fn estimate_close_to_exact_at_half_rate() {
        let t = trace();
        let exact = HitRatioCurve::from_reuse(&reuse_distances(&t));
        let est = estimate_curve(&t, 0.5);
        let sizes = (1..=40).map(MemMb::from_gb);
        let err = curve_error(&exact, &est, sizes);
        assert!(err < 0.12, "mean absolute error {err:.3} too high");
    }

    #[test]
    fn lower_rates_keep_fewer_functions() {
        let t = trace();
        let count = |rate: f64| {
            t.registry()
                .iter()
                .filter(|s| in_sample(s.id(), rate))
                .count()
        };
        let half = count(0.5);
        let tenth = count(0.1);
        assert!(tenth < half);
        assert!(half < t.num_functions());
        // Roughly proportional.
        let frac = half as f64 / t.num_functions() as f64;
        assert!((frac - 0.5).abs() < 0.15, "half-rate kept {frac:.2}");
    }

    #[test]
    #[should_panic(expected = "sampling rate")]
    fn zero_rate_panics() {
        let t = trace();
        let _ = estimate_curve(&t, 0.0);
    }

    #[test]
    fn curve_error_zero_for_identical() {
        let c = HitRatioCurve::from_distances(&[1, 2, 3], 0);
        assert_eq!(curve_error(&c, &c, (0..5).map(MemMb::new)), 0.0);
    }
}
