//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! - **size representation** (§4.1): memory-only vs vector magnitude vs
//!   normalized sum vs cosine similarity, measured by warm-start ratio on
//!   the same workload;
//! - **eviction batching** (§6): the paper batches evictions to a 1000 MB
//!   free threshold; this sweeps the batch size and reports simulation
//!   time and hit ratio.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faascache::core::policy::{GreedyDual, PolicyKind};
use faascache::core::size::{ResourceVector, SizeMode};
use faascache::prelude::*;
use faascache::trace::{adapt, sample, synth};
use std::hint::black_box;

fn bench_trace() -> Trace {
    let dataset = synth::generate(&synth::SynthConfig {
        num_functions: 150,
        num_apps: 50,
        max_rate_per_min: 40.0,
        seed: 0xAB1A,
        ..synth::SynthConfig::default()
    });
    let mut rng = Pcg64::seed_from_u64(0xAB1A);
    let sampled = sample::representative(&dataset, 60, &mut rng);
    let trace =
        adapt::adapt(&sampled, &adapt::AdaptOptions::default()).truncated(SimTime::from_mins(90));
    // Attach resource vectors so the multi-dimensional modes differ from
    // memory-only: CPU share grows with warm time, I/O with memory.
    let mut registry = trace.registry().clone();
    let ids: Vec<FunctionId> = registry.iter().map(|s| s.id()).collect();
    for id in ids {
        let (cpu, mem, io) = {
            let spec = registry.spec(id);
            (
                (spec.warm_time().as_secs_f64() * 2.0).clamp(0.1, 8.0),
                spec.mem().as_mb() as f64,
                (spec.mem().as_mb() as f64 / 512.0).clamp(0.05, 4.0),
            )
        };
        registry.set_resources(id, ResourceVector::new(cpu, mem, io));
    }
    Trace::new(registry, trace.invocations().to_vec())
}

fn size_modes() -> Vec<(&'static str, SizeMode)> {
    let capacity = ResourceVector::new(48.0, 16.0 * 1024.0, 48.0);
    vec![
        ("memory_only", SizeMode::MemoryOnly),
        ("magnitude", SizeMode::Magnitude),
        ("normalized_sum", SizeMode::NormalizedSum { capacity }),
        ("cosine", SizeMode::CosineSimilarity { capacity }),
    ]
}

fn bench_size_representation(c: &mut Criterion) {
    let trace = bench_trace();
    let mut group = c.benchmark_group("ablation_size_repr");
    group.sample_size(10);
    for (name, mode) in size_modes() {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let config = SimConfig::new(MemMb::from_gb(6), PolicyKind::GreedyDual);
            b.iter(|| {
                Simulation::run_with_policy(
                    black_box(&trace),
                    &config,
                    Box::new(GreedyDual::with_size_mode(mode)),
                )
            });
        });
    }
    group.finish();
}

fn bench_eviction_batching(c: &mut Criterion) {
    let trace = bench_trace();
    let mut group = c.benchmark_group("ablation_eviction_batch");
    group.sample_size(10);
    for batch_mb in [0u64, 250, 1000, 4000] {
        group.bench_function(BenchmarkId::from_parameter(format!("{batch_mb}MB")), |b| {
            let mut config = SimConfig::new(MemMb::from_gb(4), PolicyKind::GreedyDual);
            config.eviction_batch = MemMb::new(batch_mb);
            b.iter(|| Simulation::run(black_box(&trace), &config));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_size_representation, bench_eviction_batching);
criterion_main!(benches);
