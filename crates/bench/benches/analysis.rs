//! Benchmarks of the provisioning analytics: exact vs naive reuse
//! distances (the paper's O(N·M) scan vs our Fenwick O(N log M)) and the
//! SHARDS sampling estimator at several rates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use faascache::analysis::hitratio::HitRatioCurve;
use faascache::analysis::reuse::{reuse_distances, reuse_distances_naive};
use faascache::analysis::shards;
use faascache::prelude::*;
use faascache::trace::{adapt, sample, synth};
use std::hint::black_box;

fn bench_trace(num_functions: usize) -> Trace {
    let dataset = synth::generate(&synth::SynthConfig {
        num_functions,
        num_apps: (num_functions / 3).max(1),
        max_rate_per_min: 30.0,
        seed: 0xACE,
        ..synth::SynthConfig::default()
    });
    let mut rng = Pcg64::seed_from_u64(0xACE);
    let sampled = sample::representative(&dataset, num_functions / 2, &mut rng);
    adapt::adapt(&sampled, &adapt::AdaptOptions::default()).truncated(SimTime::from_mins(240))
}

fn bench_reuse_distances(c: &mut Criterion) {
    let trace = bench_trace(120);
    let mut group = c.benchmark_group("reuse_distances");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("fenwick", |b| {
        b.iter(|| reuse_distances(black_box(&trace)));
    });
    group.bench_function("naive_paper", |b| {
        b.iter(|| reuse_distances_naive(black_box(&trace)));
    });
    group.finish();
}

fn bench_shards(c: &mut Criterion) {
    let trace = bench_trace(160);
    let mut group = c.benchmark_group("shards_estimate");
    group.sample_size(10);
    for rate in [1.0f64, 0.5, 0.25, 0.1] {
        group.bench_function(BenchmarkId::from_parameter(format!("rate_{rate}")), |b| {
            b.iter(|| shards::estimate_curve(black_box(&trace), rate));
        });
    }
    group.finish();
}

fn bench_curve_queries(c: &mut Criterion) {
    let trace = bench_trace(120);
    let curve = HitRatioCurve::from_reuse(&reuse_distances(&trace));
    let mut group = c.benchmark_group("hit_ratio_curve");
    group.bench_function("query", |b| {
        let mut mb = 0u64;
        b.iter(|| {
            mb = (mb + 937) % 100_000;
            black_box(curve.hit_ratio(MemMb::new(mb)))
        });
    });
    group.bench_function("invert", |b| {
        let mut q = 0.0f64;
        b.iter(|| {
            q = (q + 0.013) % 1.0;
            black_box(curve.size_for_hit_ratio(q))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_reuse_distances,
    bench_shards,
    bench_curve_queries
);
criterion_main!(benches);
