//! Microbenchmarks of the keep-alive fast path (pool acquire/release) and
//! slow path (eviction) for every policy.
//!
//! The paper's §6 design keeps the ContainerPool unsorted and ranks it
//! only during evictions; these benches quantify both sides of that
//! trade.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faascache::core::policy::PolicyKind;
use faascache::prelude::*;
use std::hint::black_box;

fn registry(n: usize) -> FunctionRegistry {
    let mut reg = FunctionRegistry::new();
    for i in 0..n {
        reg.register(
            format!("f{i}"),
            MemMb::new(64 + (i as u64 % 16) * 32),
            SimDuration::from_millis(20),
            SimDuration::from_millis(500 + (i as u64 % 10) * 100),
        )
        .expect("unique names");
    }
    reg
}

/// Warm-path throughput: acquire+release on an always-hitting pool.
fn bench_warm_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("warm_path");
    let reg = registry(64);
    for kind in PolicyKind::ALL {
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            let mut pool = ContainerPool::new(MemMb::from_gb(64), kind.build());
            // Warm every function once.
            let mut t = SimTime::ZERO;
            for spec in reg.iter() {
                if let Acquire::Cold { container, .. } = pool.acquire(spec, t) {
                    t += spec.cold_time();
                    pool.release(container, t);
                }
            }
            let mut i = 0usize;
            b.iter(|| {
                let spec = reg.spec(FunctionId::from_index((i % 64) as u32));
                t += SimDuration::from_millis(1);
                match pool.acquire(black_box(spec), t) {
                    Acquire::Warm { container } | Acquire::Cold { container, .. } => {
                        pool.release(container, t + spec.warm_time());
                    }
                    Acquire::NoCapacity => unreachable!("pool is large enough"),
                }
                i += 1;
            });
        });
    }
    group.finish();
}

/// Eviction (miss) path: every acquire must evict to make room.
fn bench_eviction_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("eviction_path");
    let reg = registry(256);
    for kind in [
        PolicyKind::GreedyDual,
        PolicyKind::Lru,
        PolicyKind::Landlord,
        PolicyKind::Ttl,
    ] {
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            // Pool that fits ~half the functions: constant eviction churn.
            let mut pool = ContainerPool::new(MemMb::from_gb(16), kind.build());
            let mut t = SimTime::ZERO;
            let mut i = 0usize;
            b.iter(|| {
                let spec = reg.spec(FunctionId::from_index((i % 256) as u32));
                t += SimDuration::from_millis(1);
                match pool.acquire(black_box(spec), t) {
                    Acquire::Warm { container } | Acquire::Cold { container, .. } => {
                        pool.release(container, t);
                    }
                    Acquire::NoCapacity => {}
                }
                i += 1;
            });
        });
    }
    group.finish();
}

/// Eviction at scale: 10k idle containers, naive scan-and-sort vs the
/// incremental index. Each iteration is one miss that evicts to make
/// room, so per-iteration time ~= per-eviction time. The naive mode
/// re-sorts the whole idle set per round (O(n log n)); the indexed mode
/// pops from a persistent queue (O(log n)).
fn bench_bulk_eviction(c: &mut Criterion) {
    const IDLE: usize = 10_000;
    let mut group = c.benchmark_group("bulk_eviction_10k");
    let reg = registry(IDLE + 2_000);
    let capacity: MemMb = reg.iter().take(IDLE).map(|spec| spec.mem()).sum();
    for kind in [PolicyKind::GreedyDual, PolicyKind::Lru] {
        for (mode, naive) in [("indexed", false), ("naive", true)] {
            let id = BenchmarkId::new(kind.label(), mode);
            group.bench_function(id, |b| {
                let policy = if naive {
                    kind.build_naive()
                } else {
                    kind.build()
                };
                let mut pool = ContainerPool::new(capacity, policy);
                let mut t = SimTime::ZERO;
                for spec in reg.iter().take(IDLE) {
                    t += SimDuration::from_millis(1);
                    match pool.acquire(spec, t) {
                        Acquire::Cold { container, .. } => pool.release(container, t),
                        other => panic!("fill should cold-start, got {other:?}"),
                    }
                }
                let mut i = 0usize;
                b.iter(|| {
                    let spec =
                        reg.spec(FunctionId::from_index(((IDLE + i) % (IDLE + 2_000)) as u32));
                    t += SimDuration::from_millis(1);
                    match pool.acquire(black_box(spec), t) {
                        Acquire::Warm { container } | Acquire::Cold { container, .. } => {
                            pool.release(container, t);
                        }
                        Acquire::NoCapacity => {}
                    }
                    i += 1;
                });
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_warm_path,
    bench_eviction_path,
    bench_bulk_eviction
);
criterion_main!(benches);
