//! Microbenchmarks of the sharded invoker: single-thread overhead of the
//! sharding layer vs the bare pool, and multi-thread invoke throughput at
//! increasing shard counts (the serial section `faascached` splits).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faascache::platform::sharded::{ShardedConfig, ShardedInvoker};
use faascache::prelude::*;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

const FUNCTIONS: u32 = 64;

fn registry() -> FunctionRegistry {
    let mut reg = FunctionRegistry::new();
    for i in 0..FUNCTIONS {
        reg.register(
            format!("f{i}"),
            MemMb::new(64 + (i as u64 % 16) * 32),
            SimDuration::from_millis(20),
            SimDuration::from_millis(500),
        )
        .expect("unique names");
    }
    reg
}

/// Single-thread invoke cost: routing + admission + lock + pool on one
/// shard, against many shards (the routing layer itself is the delta).
fn bench_invoke_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_invoke_1thread");
    let reg = registry();
    for shards in [1usize, 4, 16] {
        group.bench_function(BenchmarkId::from_parameter(shards), |b| {
            let inv = ShardedInvoker::with_kind(
                ShardedConfig::split(MemMb::from_gb(64), shards),
                PolicyKind::GreedyDual,
            );
            let mut i = 0u64;
            b.iter(|| {
                let spec = reg.spec(FunctionId::from_index((i % FUNCTIONS as u64) as u32));
                let out = inv.invoke(black_box(spec), SimTime::from_millis(i));
                i += 1;
                out
            });
        });
    }
    group.finish();
}

/// Contended throughput: 8 threads hammering 1 vs 8 shards. Tight memory
/// keeps eviction work inside the shard lock — the regime where the
/// split pays.
fn bench_contended_invoke(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_invoke_8threads");
    group.sample_size(10);
    let reg = registry();
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 20_000;
    for shards in [1usize, 8] {
        group.bench_function(BenchmarkId::from_parameter(shards), |b| {
            b.iter(|| {
                let inv = ShardedInvoker::with_kind(
                    ShardedConfig::split(MemMb::new(2048), shards),
                    PolicyKind::GreedyDual,
                );
                let served = AtomicU64::new(0);
                std::thread::scope(|scope| {
                    for t in 0..THREADS {
                        let inv = &inv;
                        let reg = &reg;
                        let served = &served;
                        scope.spawn(move || {
                            for i in 0..PER_THREAD {
                                let f = ((t * 31 + i) % FUNCTIONS as u64) as u32;
                                let spec = reg.spec(FunctionId::from_index(f));
                                let out = inv.invoke(spec, SimTime::from_millis(i));
                                if out.is_served() {
                                    served.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        });
                    }
                });
                black_box(served.into_inner())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_invoke_overhead, bench_contended_invoke);
criterion_main!(benches);
