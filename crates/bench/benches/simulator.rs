//! End-to-end simulator throughput: invocations replayed per second for
//! each keep-alive policy (the artifact notes the Python simulator was
//! "compute-intensive, i.e. slow"; this quantifies the Rust rewrite).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use faascache::core::policy::PolicyKind;
use faascache::prelude::*;
use faascache::trace::{adapt, sample, synth};
use std::hint::black_box;

fn bench_trace() -> Trace {
    let dataset = synth::generate(&synth::SynthConfig {
        num_functions: 200,
        num_apps: 60,
        max_rate_per_min: 60.0,
        seed: 0xBEEF,
        ..synth::SynthConfig::default()
    });
    let mut rng = Pcg64::seed_from_u64(0xBEEF);
    let sampled = sample::representative(&dataset, 80, &mut rng);
    adapt::adapt(&sampled, &adapt::AdaptOptions::default()).truncated(SimTime::from_mins(120))
}

fn bench_simulation(c: &mut Criterion) {
    let trace = bench_trace();
    let mut group = c.benchmark_group("simulate_2h_trace");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.len() as u64));
    for kind in PolicyKind::ALL {
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            let config = SimConfig::new(MemMb::from_gb(8), kind);
            b.iter(|| Simulation::run(black_box(&trace), &config));
        });
    }
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_pipeline");
    group.sample_size(10);
    group.bench_function("synth_200_functions", |b| {
        b.iter(|| {
            synth::generate(&synth::SynthConfig {
                num_functions: 200,
                num_apps: 60,
                seed: 0xFEED,
                ..synth::SynthConfig::default()
            })
        });
    });
    let dataset = synth::generate(&synth::SynthConfig {
        num_functions: 200,
        num_apps: 60,
        seed: 0xFEED,
        ..synth::SynthConfig::default()
    });
    group.bench_function("adapt_to_trace", |b| {
        b.iter(|| adapt::adapt(black_box(&dataset), &adapt::AdaptOptions::default()));
    });
    let trace = adapt::adapt(&dataset, &adapt::AdaptOptions::default());
    group.bench_function("codec_round_trip", |b| {
        b.iter(|| {
            let blob = faascache::trace::codec::encode(black_box(&trace));
            faascache::trace::codec::decode(blob).expect("valid blob")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_simulation, bench_trace_generation);
criterion_main!(benches);
