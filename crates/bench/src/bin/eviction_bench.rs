//! Eviction hot-path benchmark: naive scan-and-sort vs incremental index.
//!
//! Fills a pool with 10,000 idle containers, then drives steady-state
//! eviction churn (every acquire misses and must evict to make room) and
//! reports nanoseconds per eviction for both policy modes. Results are
//! written to `BENCH_1.json` (override the path with the first CLI
//! argument).
//!
//! The naive path re-materializes and sorts the whole idle set per
//! eviction round — O(n log n) each — while the incremental path pops
//! victims from a persistent index at O(log n) each, so the gap widens
//! with the idle-set size.

use faascache::core::policy::PolicyKind;
use faascache::prelude::*;
use faascache_bench::export::{eviction_bench_to_json, EvictionBenchRow};
use std::time::Instant;

/// Idle containers resident during the measured churn.
const IDLE_CONTAINERS: usize = 10_000;
/// Extra functions beyond the resident set, so every acquire misses.
const EXTRA_FUNCTIONS: usize = 2_000;

fn registry(n: usize) -> FunctionRegistry {
    let mut reg = FunctionRegistry::new();
    for i in 0..n {
        reg.register(
            format!("f{i}"),
            MemMb::new(64 + (i as u64 % 16) * 32),
            SimDuration::from_millis(20),
            SimDuration::from_millis(500 + (i as u64 % 10) * 100),
        )
        .expect("unique names");
    }
    reg
}

/// Builds a pool whose capacity exactly fits the first `IDLE_CONTAINERS`
/// functions, fills it with one idle container each, and returns it with
/// the fill-time cursor.
fn filled_pool(
    reg: &FunctionRegistry,
    policy: Box<dyn KeepAlivePolicy>,
) -> (ContainerPool, SimTime) {
    let capacity: MemMb = reg
        .iter()
        .take(IDLE_CONTAINERS)
        .map(|spec| spec.mem())
        .sum();
    let mut pool = ContainerPool::new(capacity, policy);
    let mut t = SimTime::ZERO;
    for spec in reg.iter().take(IDLE_CONTAINERS) {
        t += SimDuration::from_millis(1);
        match pool.acquire(spec, t) {
            Acquire::Cold { container, .. } => pool.release(container, t),
            other => panic!("fill should cold-start, got {other:?}"),
        }
    }
    assert_eq!(pool.warm_count(), IDLE_CONTAINERS);
    (pool, t)
}

/// Runs `steps` eviction-churn acquires and returns ns per eviction.
fn measure(reg: &FunctionRegistry, policy: Box<dyn KeepAlivePolicy>, steps: usize) -> f64 {
    let (mut pool, mut t) = filled_pool(reg, policy);
    let n_funcs = IDLE_CONTAINERS + EXTRA_FUNCTIONS;
    let evictions_before = pool.counters().evictions;
    let start = Instant::now();
    for i in 0..steps {
        let spec = reg.spec(FunctionId::from_index(
            ((IDLE_CONTAINERS + i) % n_funcs) as u32,
        ));
        t += SimDuration::from_millis(1);
        match pool.acquire(spec, t) {
            Acquire::Warm { container } | Acquire::Cold { container, .. } => {
                pool.release(container, t);
            }
            Acquire::NoCapacity => {}
        }
    }
    let elapsed = start.elapsed();
    let evictions = pool.counters().evictions - evictions_before;
    assert!(evictions > 0, "churn produced no evictions");
    elapsed.as_nanos() as f64 / evictions as f64
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_1.json".to_string());
    let reg = registry(IDLE_CONTAINERS + EXTRA_FUNCTIONS);
    let mut rows = Vec::new();
    for kind in PolicyKind::ALL {
        // The naive path is ~two orders of magnitude slower per eviction;
        // fewer steps keep its wall-clock comparable.
        let naive = measure(&reg, kind.build_naive(), 300);
        let indexed = measure(&reg, kind.build(), 10_000);
        let row = EvictionBenchRow {
            policy: kind.label().to_string(),
            idle_containers: IDLE_CONTAINERS,
            naive_ns_per_eviction: naive,
            indexed_ns_per_eviction: indexed,
        };
        println!(
            "{:>5}: naive {:>12.0} ns/evict   indexed {:>9.0} ns/evict   speedup {:>7.1}x",
            row.policy,
            row.naive_ns_per_eviction,
            row.indexed_ns_per_eviction,
            row.speedup()
        );
        rows.push(row);
    }
    let json = eviction_bench_to_json(&rows);
    std::fs::write(&out_path, json).expect("write benchmark results");
    println!("wrote {out_path}");
    let min = rows
        .iter()
        .map(EvictionBenchRow::speedup)
        .fold(f64::INFINITY, f64::min);
    println!("minimum speedup across policies: {min:.1}x");
}
