//! Extension experiment (paper §9, "Cluster-level analysis"): how request
//! routing affects keep-alive effectiveness across a fleet of servers.
//!
//! The paper predicts that stateful, locality-preserving load balancing
//! improves keep-alive hit ratios while randomized routing hurts them.
//! This harness measures all four balancers against the
//! one-big-server baseline on the representative trace.
//!
//! Run with: `cargo run --release -p faascache-bench --bin ext_cluster`

use faascache::core::policy::PolicyKind;
use faascache::prelude::*;
use faascache::sim::cluster::compare_balancers;

fn main() {
    let trace = faascache_bench::representative_trace();
    let servers = 4;
    let per_server = SimConfig::new(MemMb::from_gb(10), PolicyKind::GreedyDual);
    println!(
        "Cluster extension: {} servers x {} each, GD keep-alive, representative trace\n",
        servers, per_server.memory
    );

    let (results, single) = compare_balancers(&trace, servers, per_server, 42);
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>9} {:>11}",
        "routing", "warm", "cold", "dropped", "hit%", "imbalance"
    );
    for r in &results {
        println!(
            "{:<22} {:>9} {:>9} {:>9} {:>8.1}% {:>11.3}",
            r.balancer,
            r.warm,
            r.cold,
            r.dropped,
            100.0 * r.hit_ratio(),
            r.load_imbalance()
        );
    }
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>8.1}% {:>11}",
        format!("1 server x {}", per_server.memory.mul_f64(servers as f64)),
        single.warm,
        single.cold,
        single.dropped,
        100.0 * single.hit_ratio(),
        "-"
    );
    println!(
        "\n(§9: stateful/affinity routing preserves temporal locality and should\n\
         approach the single-server hit ratio; random routing fragments it)"
    );
}
