//! Figure 1: the cold-start timeline of an ML-inference invocation.
//!
//! Run with: `cargo run --release -p faascache-bench --bin fig1_timeline`

use faascache::platform::lifecycle::PhaseModel;
use faascache::prelude::*;
use faascache::trace::apps;

fn main() {
    println!("Figure 1: sources of cold-start delay (ML inference)\n");
    let mut reg = FunctionRegistry::new();
    let model = PhaseModel::default();
    for profile in apps::table1_apps() {
        let id = profile.register(&mut reg).expect("unique names");
        let tl = model.timeline(reg.spec(id));
        println!("{}:", profile.name);
        let total = tl.total().as_secs_f64();
        for (phase, dur) in tl.phases() {
            let bar = "#".repeat(((dur.as_secs_f64() / total) * 50.0).round() as usize);
            println!("  {:<22} {:>9}  {bar}", phase.to_string(), dur.to_string());
        }
        println!(
            "  total {:>7.2}s (cold-start overhead {:.2}s, {:.0}% of total)\n",
            total,
            tl.overhead().as_secs_f64(),
            100.0 * tl.overhead().as_secs_f64() / total
        );
    }
}
