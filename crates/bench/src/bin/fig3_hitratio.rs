//! Figure 3: the reuse-distance hit-ratio curve against the hit ratio a
//! Greedy-Dual keep-alive cache actually observes, showing the deviations
//! the paper discusses (dropped requests at small sizes, concurrent
//! executions at large sizes).
//!
//! Run with: `cargo run --release -p faascache-bench --bin fig3_hitratio`

use faascache::analysis::hitratio::HitRatioCurve;
use faascache::analysis::reuse::reuse_distances;
use faascache::core::policy::PolicyKind;
use faascache::prelude::*;
use faascache_bench::representative_trace;

fn main() {
    let trace = representative_trace();
    println!(
        "Figure 3: hit-ratio curve, representative sample ({} invocations)\n",
        trace.len()
    );

    // Ideal curve from reuse distances.
    let rd = reuse_distances(&trace);
    let curve = HitRatioCurve::from_reuse(&rd);

    // Observed hit ratios from full Greedy-Dual simulations.
    let sizes: Vec<MemMb> = (1..=12).map(|i| MemMb::new(i * 1536)).collect();
    println!(
        "{:>9} {:>14} {:>14} {:>10}",
        "cache", "reuse-dist HR", "GreedyDual HR", "dropped%"
    );
    for &size in &sizes {
        let config = SimConfig::new(size, PolicyKind::GreedyDual);
        let result = Simulation::run(&trace, &config);
        println!(
            "{:>7.1}GB {:>14.3} {:>14.3} {:>10.2}",
            size.as_gb_f64(),
            curve.hit_ratio(size),
            result.hit_ratio(),
            result.pct_dropped()
        );
    }

    println!(
        "\nmax achievable hit ratio (compulsory misses): {:.3}",
        curve.max_hit_ratio()
    );
    if let Some(knee) = curve.inflection() {
        println!("curve inflection (static provisioning point): {knee}");
    }
}
