//! Figure 5: % increase in execution time due to cold starts, for all
//! seven keep-alive policies across cache sizes, on the three trace
//! samples (a: representative, b: rare, c: random).
//!
//! Run with: `cargo run --release -p faascache-bench --bin fig5_exec_increase`

use faascache_bench::{
    large_size_axis, policy_sweep, print_grid, random_trace, rare_trace, representative_trace,
    small_size_axis,
};

fn main() {
    for (label, trace, sizes) in [
        (
            "(a) representative functions",
            representative_trace(),
            large_size_axis(),
        ),
        ("(b) rare functions", rare_trace(), large_size_axis()),
        ("(c) random sampling", random_trace(), small_size_axis()),
    ] {
        println!("Figure 5{label}: % increase in execution time");
        let grid = policy_sweep(&trace, &sizes);
        print_grid(&grid, &sizes, |r| r.pct_increase_exec_time());
        println!();
    }
}
