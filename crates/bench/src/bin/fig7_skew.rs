//! Figure 7: FaasCache (GD) vs vanilla OpenWhisk (TTL) cold and warm
//! invocation counts under three skewed workloads (skewed frequency,
//! cyclic access, skewed size).
//!
//! The emulated server mirrors the artifact's load tests: many function
//! instances ("clones" of the Table-1 apps, like the LookBusy actions), a
//! pool-memory limit that forces keep-alive decisions, and a CPU
//! concurrency cap so cold-start-heavy systems queue and shed load.
//!
//! Run with: `cargo run --release -p faascache-bench --bin fig7_skew`

use faascache::core::policy::PolicyKind;
use faascache::platform::emulator::{Emulator, PlatformConfig};
use faascache::prelude::*;
use faascache::trace::workloads;

fn config(policy: PolicyKind) -> PlatformConfig {
    let mut cfg = PlatformConfig::new(MemMb::new(6000), policy);
    cfg.max_concurrency = 6;
    cfg.patience = SimDuration::from_secs(15);
    cfg
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let duration = SimDuration::from_mins(30);
    let clones = 8;
    println!(
        "Figure 7: invocations served by OpenWhisk (TTL) vs FaasCache (GD)\n\
         6000 MB pool, 6 CPU slots, {clones} clones per app, 30-minute workloads\n"
    );
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>11}",
        "Workload",
        "OW cold",
        "OW warm",
        "FC cold",
        "FC warm",
        "OW drop",
        "FC drop",
        "warm gain",
        "served gain"
    );

    for (name, trace) in [
        (
            "Skewed Freq",
            workloads::skewed_frequency_clones(duration, clones)?,
        ),
        ("Cyclic", workloads::cyclic_clones(duration, clones)?),
        (
            "Skewed Size",
            workloads::skewed_size_clones(duration, clones)?,
        ),
    ] {
        let ow = Emulator::run(&trace, &config(PolicyKind::Ttl));
        let fc = Emulator::run(&trace, &config(PolicyKind::GreedyDual));
        println!(
            "{:<16} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9.2}x {:>10.2}x",
            name,
            ow.cold,
            ow.warm,
            fc.cold,
            fc.warm,
            ow.dropped,
            fc.dropped,
            fc.warm as f64 / ow.warm.max(1) as f64,
            fc.served() as f64 / ow.served().max(1) as f64,
        );
    }
    Ok(())
}
