//! Figure 8: per-function warm/cold/dropped breakdown for the
//! skewed-frequency workload (CNN, disk-bench, web-serving families at an
//! aggregate 1500 ms IAT; floating-point at 400 ms) on OpenWhisk vs
//! FaasCache, plus the application-latency comparison the paper
//! summarizes as "6×".
//!
//! Run with: `cargo run --release -p faascache-bench --bin fig8_breakdown`

use faascache::core::policy::PolicyKind;
use faascache::platform::emulator::{Emulator, PlatformConfig, PlatformResult};
use faascache::prelude::*;
use faascache::trace::workloads;
use std::collections::BTreeMap;

const CLONES: usize = 8;

fn config(policy: PolicyKind) -> PlatformConfig {
    let mut cfg = PlatformConfig::new(MemMb::new(6000), policy);
    cfg.max_concurrency = 6;
    cfg.patience = SimDuration::from_secs(15);
    cfg
}

/// Aggregates clone statistics back to their app family.
fn by_family(r: &PlatformResult) -> BTreeMap<String, (u64, u64, u64, u64)> {
    let mut fam: BTreeMap<String, (u64, u64, u64, u64)> = BTreeMap::new();
    for f in &r.per_function {
        let family = f
            .name
            .rsplit_once('-')
            .map(|(head, _)| head.to_string())
            .unwrap_or_else(|| f.name.clone());
        let e = fam.entry(family).or_insert((0, 0, 0, 0));
        e.0 += f.warm;
        e.1 += f.cold;
        e.2 += f.dropped;
        e.3 += f.latency_sum_us;
    }
    fam
}

fn print_breakdown(label: &str, r: &PlatformResult) {
    println!("{label} ({}):", r.policy);
    println!(
        "  {:<20} {:>7} {:>7} {:>8} {:>8} {:>13}",
        "app family", "warm", "cold", "dropped", "hit%", "mean latency"
    );
    for (family, (warm, cold, dropped, latency_us)) in by_family(r) {
        let served = warm + cold;
        println!(
            "  {:<20} {:>7} {:>7} {:>8} {:>7.1}% {:>13}",
            family,
            warm,
            cold,
            dropped,
            100.0 * warm as f64 / served.max(1) as f64,
            SimDuration::from_micros(latency_us / served.max(1)).to_string()
        );
    }
    println!(
        "  TOTAL: warm {} cold {} dropped {} | served {} | mean latency {}\n",
        r.warm,
        r.cold,
        r.dropped,
        r.served(),
        r.mean_latency()
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = workloads::skewed_frequency_clones(SimDuration::from_mins(60), CLONES)?;
    println!(
        "Figure 8: skewed-frequency workload breakdown\n\
         6000 MB pool, 6 CPU slots, {CLONES} clones per app, {} requests over 60 minutes\n",
        trace.len()
    );

    let ow = Emulator::run(&trace, &config(PolicyKind::Ttl));
    let fc = Emulator::run(&trace, &config(PolicyKind::GreedyDual));
    print_breakdown("OpenWhisk", &ow);
    print_breakdown("FaasCache", &fc);

    println!(
        "FaasCache vs OpenWhisk: {:.2}x warm starts, {:.2}x served requests, {:.2}x lower mean latency",
        fc.warm as f64 / ow.warm.max(1) as f64,
        fc.served() as f64 / ow.served().max(1) as f64,
        ow.mean_latency().as_secs_f64() / fc.mean_latency().as_secs_f64().max(1e-9),
    );
    Ok(())
}
