//! Figure 9: dynamic cache-size adjustment. The proportional controller
//! keeps the cold-start rate near the target while shrinking the average
//! cache size well below the conservative static provisioning (the paper
//! reports ~30 %).
//!
//! Run with: `cargo run --release -p faascache-bench --bin fig9_elastic`

use faascache::prelude::*;
use faascache::sim::elastic::{run_elastic, ElasticConfig};
use faascache::trace::{adapt, synth};

fn main() {
    // A diurnal day: the arrival rate at peak is about 2x the mean.
    let dataset = synth::generate(&synth::SynthConfig {
        num_functions: 150,
        num_apps: 60,
        max_rate_per_min: 12.0,
        diurnal_amplitude: 1.0,
        seed: faascache_bench::EXPERIMENT_SEED ^ 9,
        ..synth::SynthConfig::default()
    });
    let trace = adapt::adapt(&dataset, &adapt::AdaptOptions::default());

    // Preparation phase: hit-ratio curve from reuse distances.
    let curve = HitRatioCurve::from_reuse(&reuse_distances(&trace));

    // The conservative static choice, and the paper-style horizontal
    // target line: the miss speed a static server would average, with a
    // little slack so quiet periods let the controller shrink.
    let static_size = MemMb::new(10_000);
    let mean_rate = trace.len() as f64 / trace.duration().as_secs_f64();
    let achievable = (1.0 - curve.hit_ratio(static_size)) * mean_rate;
    let target = 1.5 * achievable;
    let controller = Controller::new(
        curve.clone(),
        ControllerConfig::new(target, MemMb::new(1000), static_size),
    );

    let result = run_elastic(&trace, &ElasticConfig::new(static_size), controller);

    println!("Figure 9: elastic cache sizing (target {target:.4} cold starts/s)\n");
    println!(
        "{:>7} {:>12} {:>10} {:>12} {:>8}",
        "min", "cache (MB)", "miss/s", "arrivals/s", "resized"
    );
    for s in result.samples.iter().step_by(3) {
        println!(
            "{:>7.0} {:>12} {:>10.4} {:>12.1} {:>8}",
            s.time_secs / 60.0,
            s.capacity_mb,
            s.miss_speed,
            s.arrival_rate,
            if s.resized { "yes" } else { "" }
        );
    }

    let saving = 100.0 * (1.0 - result.avg_capacity_mb / static_size.as_mb() as f64);
    println!("\nstatic provisioning:  {} MB", static_size.as_mb());
    println!("elastic average:      {:.0} MB", result.avg_capacity_mb);
    println!("reduction:            {saving:.0}%");
    println!(
        "mean miss speed:      {:.4}/s (target {target:.4}/s)",
        result.mean_miss_speed()
    );
    println!(
        "totals: warm {} cold {} dropped {}",
        result.warm, result.cold, result.dropped
    );
}
