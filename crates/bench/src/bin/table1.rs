//! Table 1: FaaS application characteristics (memory, run time, init time).
//!
//! Run with: `cargo run --release -p faascache-bench --bin table1`

use faascache::trace::apps;

fn main() {
    println!("Table 1: FaaS workload diversity (FunctionBench-style apps)\n");
    println!(
        "{:<22} {:>9} {:>10} {:>10} {:>8}",
        "Application", "Mem size", "Run time", "Init time", "Init %"
    );
    for app in apps::table1_apps() {
        println!(
            "{:<22} {:>9} {:>10} {:>10} {:>7.0}%",
            app.name,
            app.mem.to_string(),
            app.run_time.to_string(),
            app.init_time.to_string(),
            app.init_fraction_pct()
        );
    }
    println!("\n(run time is the total cold time; warm time = run − init)");
}
