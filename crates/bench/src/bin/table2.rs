//! Table 2: size and inter-arrival statistics of the three trace samples.
//!
//! Run with: `cargo run --release -p faascache-bench --bin table2`

use faascache::trace::stats::TraceStats;
use faascache_bench::{random_trace, rare_trace, representative_trace};

fn main() {
    println!("Table 2: Azure-like workload samples used in the evaluation\n");
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>12}",
        "Trace", "Functions", "Invocations", "Reqs/sec", "Avg IAT"
    );
    for (name, trace) in [
        ("Representative", representative_trace()),
        ("Rare", rare_trace()),
        ("Random", random_trace()),
    ] {
        let s = TraceStats::compute(&trace);
        println!(
            "{:<16} {:>12} {:>12} {:>10.0}/s {:>10.1}ms",
            name, s.num_functions, s.num_invocations, s.reqs_per_sec, s.avg_iat_ms
        );
    }
    println!("\n(paper: 1,348,162 @ 190/s; 202,121 @ 30/s; 4,291,250 @ 600/s)");
}
