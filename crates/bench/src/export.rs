//! CSV/JSON export of experiment results, for plotting.
//!
//! The paper's artifact pipes simulator pickles into matplotlib; this
//! module renders sweep grids and elastic-scaling samples as plain CSV so
//! any plotting tool can regenerate the figures from the harness output.
//! It also renders the eviction-hot-path microbenchmark (naive
//! scan-and-sort vs incremental index) as the `BENCH_1.json` document
//! written by the `eviction_bench` binary.

use faascache::core::policy::PolicyKind;
use faascache::sim::elastic::ElasticResult;
use faascache::sim::sweep::SweepPoint;
use faascache::sim::SimResult;
use faascache::util::MemMb;

/// Renders a Figure-5/6 sweep grid as CSV: one row per cache size, one
/// column per policy, values produced by `metric`.
pub fn sweep_to_csv(
    grid: &[SweepPoint],
    sizes: &[MemMb],
    metric: impl Fn(&SimResult) -> f64,
) -> String {
    let mut out = String::from("cache_gb");
    for p in PolicyKind::ALL {
        out.push(',');
        out.push_str(p.label());
    }
    out.push('\n');
    for (i, &size) in sizes.iter().enumerate() {
        out.push_str(&format!("{}", size.as_gb_f64()));
        for (j, _) in PolicyKind::ALL.iter().enumerate() {
            let point = &grid[j * sizes.len() + i];
            out.push_str(&format!(",{:.6}", metric(&point.result)));
        }
        out.push('\n');
    }
    out
}

/// Renders a Figure-9 elastic run as CSV: one row per control window.
pub fn elastic_to_csv(result: &ElasticResult) -> String {
    let mut out = String::from("time_secs,capacity_mb,miss_speed,arrival_rate,resized\n");
    for s in &result.samples {
        out.push_str(&format!(
            "{:.1},{},{:.6},{:.6},{}\n",
            s.time_secs, s.capacity_mb, s.miss_speed, s.arrival_rate, s.resized as u8
        ));
    }
    out
}

/// One measured eviction-bench case: a policy at a given idle-set scale,
/// timed on both eviction paths.
#[derive(Debug, Clone)]
pub struct EvictionBenchRow {
    /// Policy label (e.g. `GD`).
    pub policy: String,
    /// Idle containers resident while evicting.
    pub idle_containers: usize,
    /// Nanoseconds per eviction on the naive scan-and-sort path.
    pub naive_ns_per_eviction: f64,
    /// Nanoseconds per eviction on the incremental index path.
    pub indexed_ns_per_eviction: f64,
}

impl EvictionBenchRow {
    /// Naive time over indexed time.
    pub fn speedup(&self) -> f64 {
        self.naive_ns_per_eviction / self.indexed_ns_per_eviction
    }
}

/// Renders eviction-bench rows as the `BENCH_1.json` document.
///
/// The JSON is hand-rolled (the workspace carries no JSON serializer);
/// all values are plain numbers and ASCII policy labels.
pub fn eviction_bench_to_json(rows: &[EvictionBenchRow]) -> String {
    let mut out = String::from(
        "{\n  \"benchmark\": \"eviction_hot_path\",\n  \"unit\": \"ns_per_eviction\",\n  \"rows\": [\n",
    );
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"idle_containers\": {}, \"naive_ns\": {:.1}, \"indexed_ns\": {:.1}, \"speedup\": {:.2}}}{}\n",
            row.policy,
            row.idle_containers,
            row.naive_ns_per_eviction,
            row.indexed_ns_per_eviction,
            row.speedup(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use faascache::prelude::*;
    use faascache::trace::workloads;
    use faascache::util::SimDuration;

    #[test]
    fn sweep_csv_shape() {
        let trace = workloads::skewed_frequency(SimDuration::from_mins(1)).unwrap();
        let sizes = vec![MemMb::from_gb(1), MemMb::from_gb(2)];
        let base = SimConfig::new(sizes[0], PolicyKind::GreedyDual);
        let grid = faascache::sim::sweep::sweep(&trace, &PolicyKind::ALL, &sizes, &base);
        let csv = sweep_to_csv(&grid, &sizes, |r| r.pct_cold());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 size rows");
        assert!(lines[0].starts_with("cache_gb,GD,TTL"));
        assert_eq!(lines[1].split(',').count(), 1 + PolicyKind::ALL.len());
        assert!(lines[1].starts_with('1'));
        assert!(lines[2].starts_with('2'));
    }

    #[test]
    fn eviction_bench_json_shape() {
        let rows = vec![
            EvictionBenchRow {
                policy: "GD".into(),
                idle_containers: 10_000,
                naive_ns_per_eviction: 1000.0,
                indexed_ns_per_eviction: 100.0,
            },
            EvictionBenchRow {
                policy: "LRU".into(),
                idle_containers: 10_000,
                naive_ns_per_eviction: 800.0,
                indexed_ns_per_eviction: 50.0,
            },
        ];
        let json = eviction_bench_to_json(&rows);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"policy\": \"GD\""));
        assert!(json.contains("\"speedup\": 10.00"));
        assert!(
            json.contains("\"speedup\": 16.00}\n"),
            "no trailing comma on last row"
        );
        assert_eq!(json.matches("\"idle_containers\": 10000").count(), 2);
    }

    #[test]
    fn elastic_csv_shape() {
        use faascache::sim::elastic::ElasticSample;
        let result = faascache::sim::elastic::ElasticResult {
            samples: vec![ElasticSample {
                time_secs: 600.0,
                capacity_mb: 4096,
                miss_speed: 0.5,
                arrival_rate: 12.0,
                resized: true,
            }],
            avg_capacity_mb: 4096.0,
            cold: 1,
            warm: 2,
            dropped: 0,
        };
        let csv = elastic_to_csv(&result);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[1], "600.0,4096,0.500000,12.000000,1");
    }
}
