//! Shared experiment setup for the FaasCache reproduction harnesses.
//!
//! Every table and figure of the paper has a binary under `src/bin/`
//! (`table1`, `table2`, `fig1_timeline`, `fig3_hitratio`,
//! `fig5_exec_increase`, `fig6_cold_starts`, `fig7_skew`,
//! `fig8_breakdown`, `fig9_elastic`). This library holds the fixed-seed
//! workload construction they share, so that all experiments run against
//! the *same* synthetic Azure-like day, and the Criterion benches and
//! integration tests can reuse the setup.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;

use faascache::core::policy::PolicyKind;
use faascache::prelude::*;
use faascache::sim::sweep::{sweep, SweepPoint};
use faascache::trace::azure::AzureDataset;
use faascache::trace::{adapt, sample, synth};

/// Seed shared by all experiments.
pub const EXPERIMENT_SEED: u64 = 0x20210419; // ASPLOS '21 dates

/// The synthetic stand-in for day 1 of the Azure Functions dataset.
///
/// 4000 functions so the RARE sampler can draw 1000 functions from the
/// rarest quartile, exactly like the paper's `gen_rare.py`.
pub fn base_dataset() -> AzureDataset {
    synth::generate(&synth::SynthConfig {
        num_functions: 4000,
        num_apps: 1400,
        zipf_exponent: 1.4,
        max_rate_per_min: 1200.0,
        seed: EXPERIMENT_SEED,
        ..synth::SynthConfig::default()
    })
}

/// A smaller dataset for quick runs and tests.
pub fn small_dataset() -> AzureDataset {
    synth::generate(&synth::SynthConfig {
        num_functions: 300,
        num_apps: 100,
        max_rate_per_min: 40.0,
        seed: EXPERIMENT_SEED,
        ..synth::SynthConfig::default()
    })
}

fn to_trace(dataset: &AzureDataset) -> Trace {
    adapt::adapt(dataset, &adapt::AdaptOptions::default())
}

/// The REPRESENTATIVE sample: 400 functions, 100 from each frequency
/// quartile (Table 2 row 1).
pub fn representative_trace() -> Trace {
    let mut rng = Pcg64::seed_from_u64(EXPERIMENT_SEED ^ 1);
    to_trace(&sample::representative(&base_dataset(), 400, &mut rng))
}

/// The RARE sample: 1000 of the most infrequently invoked functions
/// (Table 2 row 2).
pub fn rare_trace() -> Trace {
    let mut rng = Pcg64::seed_from_u64(EXPERIMENT_SEED ^ 2);
    to_trace(&sample::rare(&base_dataset(), 1000, &mut rng))
}

/// The RANDOM sample: 200 functions sampled uniformly (Table 2 row 3).
pub fn random_trace() -> Trace {
    let mut rng = Pcg64::seed_from_u64(EXPERIMENT_SEED ^ 3);
    to_trace(&sample::random(&base_dataset(), 200, &mut rng))
}

/// The cache sizes swept for the representative and rare traces
/// (the paper's Figures 5a/5b use 10–80 GB).
pub fn large_size_axis() -> Vec<MemMb> {
    [10u64, 15, 20, 30, 40, 50, 60, 80]
        .iter()
        .map(|&g| MemMb::from_gb(g))
        .collect()
}

/// The cache sizes swept for the random trace (Figure 5c uses 5–50 GB).
pub fn small_size_axis() -> Vec<MemMb> {
    [5u64, 10, 15, 20, 30, 40, 50]
        .iter()
        .map(|&g| MemMb::from_gb(g))
        .collect()
}

/// Runs the Figure-5/6 sweep (all seven policies over the size axis).
pub fn policy_sweep(trace: &Trace, sizes: &[MemMb]) -> Vec<SweepPoint> {
    let base = SimConfig::new(sizes[0], PolicyKind::GreedyDual);
    sweep(trace, &PolicyKind::ALL, sizes, &base)
}

/// Pretty-prints a sweep grid with one row per size and one column per
/// policy, using `metric` to extract the cell value.
pub fn print_grid(
    grid: &[SweepPoint],
    sizes: &[MemMb],
    metric: impl Fn(&faascache::sim::SimResult) -> f64,
) {
    print!("{:>7}", "GB");
    for p in PolicyKind::ALL {
        print!("{:>9}", p.label());
    }
    println!();
    for (i, &size) in sizes.iter().enumerate() {
        print!("{:>7.0}", size.as_gb_f64());
        for (j, _) in PolicyKind::ALL.iter().enumerate() {
            let point = &grid[j * sizes.len() + i];
            print!("{:>9.3}", metric(&point.result));
        }
        println!();
    }
}

/// Extracts the column of one policy from a sweep grid, in size order.
pub fn policy_column<'a>(
    grid: &'a [SweepPoint],
    sizes: &[MemMb],
    policy: PolicyKind,
) -> Vec<&'a SweepPoint> {
    let j = PolicyKind::ALL
        .iter()
        .position(|&p| p == policy)
        .expect("policy is in ALL");
    (0..sizes.len())
        .map(|i| &grid[j * sizes.len() + i])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use faascache::trace::stats::TraceStats;

    #[test]
    fn samples_have_paper_like_shapes() {
        // Use the small dataset for test speed; same code path.
        let d = small_dataset();
        let mut rng = Pcg64::seed_from_u64(1);
        let rep = to_trace(&sample::representative(&d, 40, &mut rng));
        let rare = to_trace(&sample::rare(&d, 75, &mut rng));
        let rnd = to_trace(&sample::random(&d, 20, &mut rng));
        let rep_stats = TraceStats::compute(&rep);
        let rare_stats = TraceStats::compute(&rare);
        assert!(rep_stats.num_invocations > 0);
        // Rare functions arrive much less often than representative ones.
        assert!(
            rare_stats.reqs_per_sec < rep_stats.reqs_per_sec,
            "rare {} vs representative {}",
            rare_stats.reqs_per_sec,
            rep_stats.reqs_per_sec
        );
        assert!(rnd.num_functions() <= 20);
    }

    #[test]
    fn grid_helpers_are_consistent() {
        let d = small_dataset();
        let mut rng = Pcg64::seed_from_u64(2);
        let trace = to_trace(&sample::random(&d, 15, &mut rng)).truncated(SimTime::from_mins(60));
        let sizes = vec![MemMb::from_gb(1), MemMb::from_gb(4)];
        let grid = policy_sweep(&trace, &sizes);
        assert_eq!(grid.len(), PolicyKind::ALL.len() * sizes.len());
        let gd = policy_column(&grid, &sizes, PolicyKind::GreedyDual);
        assert_eq!(gd.len(), 2);
        assert_eq!(gd[0].memory, MemMb::from_gb(1));
        assert_eq!(gd[1].memory, MemMb::from_gb(4));
        assert!(gd.iter().all(|p| p.policy == PolicyKind::GreedyDual));
    }
}
