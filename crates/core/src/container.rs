//! Container instances held by the keep-alive pool.
//!
//! A container is either *running* a function invocation or sitting *warm*
//! waiting for the next one (paper §3: "At any instant of time, each
//! container is either running a function, or is being kept alive/warm").
//! Only warm containers are eviction candidates.

use crate::function::FunctionId;
use crate::size::ResourceVector;
use faascache_util::{MemMb, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identifier of a container instance within one pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ContainerId(u64);

impl ContainerId {
    /// Builds an id from a raw value (primarily for tests).
    pub const fn from_raw(raw: u64) -> Self {
        ContainerId(raw)
    }

    /// The raw value.
    pub const fn as_raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ContainerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctr#{}", self.0)
    }
}

/// The lifecycle state of a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContainerState {
    /// Idle and initialized, ready to serve a warm start.
    Warm,
    /// Executing an invocation; will release at the recorded time.
    Running {
        /// When the current invocation completes.
        until: SimTime,
    },
}

impl ContainerState {
    /// Whether the container is idle.
    pub fn is_warm(&self) -> bool {
        matches!(self, ContainerState::Warm)
    }
}

/// A container instance: the unit the keep-alive cache caches.
///
/// Carries a snapshot of its function's static characteristics so policies
/// can compute priorities without a registry lookup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Container {
    id: ContainerId,
    function: FunctionId,
    mem: MemMb,
    warm_time: SimDuration,
    cold_time: SimDuration,
    resources: Option<ResourceVector>,
    state: ContainerState,
    created_at: SimTime,
    last_used: SimTime,
    uses: u64,
    #[serde(default)]
    tenant: u32,
}

impl Container {
    /// Creates a container (used by the pool; exposed for tests and for
    /// alternate pool implementations).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: ContainerId,
        function: FunctionId,
        mem: MemMb,
        warm_time: SimDuration,
        cold_time: SimDuration,
        resources: Option<ResourceVector>,
        now: SimTime,
    ) -> Self {
        Container {
            id,
            function,
            mem,
            warm_time,
            cold_time,
            resources,
            state: ContainerState::Warm,
            created_at: now,
            last_used: now,
            uses: 0,
            tenant: 0,
        }
    }

    /// Tags the container with its function's tenant (builder-style, so the
    /// 7-argument constructor and its many test call sites stay unchanged).
    pub fn with_tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// Raw tenant index of the owning function (0 = shared default tenant).
    pub fn tenant(&self) -> u32 {
        self.tenant
    }

    /// The container's id.
    pub fn id(&self) -> ContainerId {
        self.id
    }

    /// The function this container can execute.
    pub fn function(&self) -> FunctionId {
        self.function
    }

    /// Memory held while resident (warm or running).
    pub fn mem(&self) -> MemMb {
        self.mem
    }

    /// Warm execution time of the function.
    pub fn warm_time(&self) -> SimDuration {
        self.warm_time
    }

    /// Cold execution time of the function.
    pub fn cold_time(&self) -> SimDuration {
        self.cold_time
    }

    /// Initialization overhead (`cold − warm`) — the Greedy-Dual `Cost`.
    pub fn init_overhead(&self) -> SimDuration {
        self.cold_time - self.warm_time
    }

    /// Optional multi-dimensional demand vector.
    pub fn resources(&self) -> Option<&ResourceVector> {
        self.resources.as_ref()
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ContainerState {
        self.state
    }

    /// When the container was created (its cold start).
    pub fn created_at(&self) -> SimTime {
        self.created_at
    }

    /// Last time an invocation was assigned to this container.
    pub fn last_used(&self) -> SimTime {
        self.last_used
    }

    /// Number of invocations this container has served.
    pub fn uses(&self) -> u64 {
        self.uses
    }

    /// Marks the container as running an invocation until `until`.
    pub fn begin_invocation(&mut self, now: SimTime, until: SimTime) {
        debug_assert!(self.state.is_warm(), "container already running");
        self.state = ContainerState::Running { until };
        self.last_used = now;
        self.uses += 1;
    }

    /// Marks the invocation as finished; the container becomes warm.
    pub fn finish_invocation(&mut self) {
        debug_assert!(
            !self.state.is_warm(),
            "finishing a container that was not running"
        );
        self.state = ContainerState::Warm;
    }

    /// Whether the container is idle and evictable.
    pub fn is_idle(&self) -> bool {
        self.state.is_warm()
    }

    /// The same container under a new identity.
    ///
    /// Container ids are per-pool (each pool numbers its own), so a pool
    /// adopting a container migrated from another pool must re-id it.
    /// Everything the keep-alive policies price — memory, init overhead,
    /// `created_at`, `last_used`, `uses` — rides along unchanged, which is
    /// what lets warm-set re-homing preserve priority ordering.
    pub fn with_id(mut self, id: ContainerId) -> Self {
        self.id = id;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn container() -> Container {
        Container::new(
            ContainerId::from_raw(1),
            FunctionId::from_index(0),
            MemMb::new(128),
            SimDuration::from_millis(300),
            SimDuration::from_millis(2000),
            None,
            SimTime::from_secs(10),
        )
    }

    #[test]
    fn new_container_is_warm() {
        let c = container();
        assert!(c.is_idle());
        assert_eq!(c.uses(), 0);
        assert_eq!(c.created_at(), SimTime::from_secs(10));
        assert_eq!(c.last_used(), SimTime::from_secs(10));
        assert_eq!(c.init_overhead(), SimDuration::from_millis(1700));
    }

    #[test]
    fn invocation_lifecycle() {
        let mut c = container();
        let start = SimTime::from_secs(20);
        let end = SimTime::from_secs(21);
        c.begin_invocation(start, end);
        assert!(!c.is_idle());
        assert_eq!(c.state(), ContainerState::Running { until: end });
        assert_eq!(c.last_used(), start);
        assert_eq!(c.uses(), 1);
        c.finish_invocation();
        assert!(c.is_idle());
        assert_eq!(c.uses(), 1);
    }

    #[test]
    fn display_ids() {
        assert_eq!(ContainerId::from_raw(7).to_string(), "ctr#7");
        assert_eq!(FunctionId::from_index(3).to_string(), "fn#3");
    }
}
