//! Error types for the keep-alive core.

use faascache_util::MemMb;
use std::fmt;

/// Errors produced by the keep-alive core.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A function was registered twice under the same name.
    DuplicateFunction {
        /// The offending name.
        name: String,
    },
    /// A function declared a zero memory footprint, which would make
    /// size-aware priorities (`Cost / Size`) undefined.
    ZeroSizeFunction {
        /// The offending name.
        name: String,
    },
    /// A function's warm time exceeds its cold time: initialization
    /// overhead would be negative.
    InvalidTimes {
        /// The offending name.
        name: String,
    },
    /// A single container needs more memory than the whole server has.
    FunctionTooLarge {
        /// Required memory.
        required: MemMb,
        /// Server capacity.
        capacity: MemMb,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DuplicateFunction { name } => {
                write!(f, "function {name:?} is already registered")
            }
            CoreError::ZeroSizeFunction { name } => {
                write!(f, "function {name:?} declares a zero memory footprint")
            }
            CoreError::InvalidTimes { name } => {
                write!(f, "function {name:?} has warm time exceeding cold time")
            }
            CoreError::FunctionTooLarge { required, capacity } => {
                write!(
                    f,
                    "container needs {required} but the server only has {capacity}"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CoreError::DuplicateFunction { name: "f".into() };
        assert!(e.to_string().contains("already registered"));
        let e = CoreError::FunctionTooLarge {
            required: MemMb::new(4096),
            capacity: MemMb::new(1024),
        };
        assert!(e.to_string().contains("4GB"));
        assert!(e.to_string().contains("1GB"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<CoreError>();
    }
}
