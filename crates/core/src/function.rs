//! Function identities and static characteristics.
//!
//! A FaaS *function* is characterized (paper §3.1) by its memory footprint,
//! warm execution time, and cold execution time; the difference between
//! cold and warm is the *initialization overhead* that keep-alive avoids.

use crate::error::CoreError;
use crate::size::ResourceVector;
use faascache_util::{MemMb, SimDuration};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A dense, copyable function identifier assigned by [`FunctionRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FunctionId(u32);

impl FunctionId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index (for deserialization and tests).
    pub const fn from_index(idx: u32) -> Self {
        FunctionId(idx)
    }
}

impl fmt::Display for FunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// Static characteristics of a function.
///
/// # Examples
///
/// ```
/// use faascache_core::function::FunctionRegistry;
/// use faascache_util::{MemMb, SimDuration};
///
/// let mut reg = FunctionRegistry::new();
/// let id = reg.register(
///     "video-encode",
///     MemMb::new(500),
///     SimDuration::from_secs(53),
///     SimDuration::from_secs(56),
/// )?;
/// assert_eq!(reg.spec(id).init_overhead(), SimDuration::from_secs(3));
/// # Ok::<(), faascache_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionSpec {
    id: FunctionId,
    name: String,
    mem: MemMb,
    warm_time: SimDuration,
    cold_time: SimDuration,
    resources: Option<ResourceVector>,
}

impl FunctionSpec {
    /// The function's identifier.
    pub fn id(&self) -> FunctionId {
        self.id
    }

    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Memory footprint of one container of this function.
    pub fn mem(&self) -> MemMb {
        self.mem
    }

    /// Execution time when served by a warm container.
    pub fn warm_time(&self) -> SimDuration {
        self.warm_time
    }

    /// Execution time when a new container must be created and initialized.
    pub fn cold_time(&self) -> SimDuration {
        self.cold_time
    }

    /// Initialization overhead (`cold − warm`), the cost a warm start saves.
    pub fn init_overhead(&self) -> SimDuration {
        self.cold_time - self.warm_time
    }

    /// Optional multi-dimensional resource demand (CPU share, memory, I/O),
    /// used by the §4.1 size-representation ablations.
    pub fn resources(&self) -> Option<&ResourceVector> {
        self.resources.as_ref()
    }

    /// Attaches a multi-dimensional resource demand.
    pub fn with_resources(mut self, resources: ResourceVector) -> Self {
        self.resources = Some(resources);
        self
    }
}

/// Registry interning functions by name and assigning dense ids.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FunctionRegistry {
    specs: Vec<FunctionSpec>,
    by_name: HashMap<String, FunctionId>,
}

impl FunctionRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a function and returns its id.
    ///
    /// # Errors
    ///
    /// - [`CoreError::DuplicateFunction`] if `name` is already registered,
    /// - [`CoreError::ZeroSizeFunction`] if `mem` is zero,
    /// - [`CoreError::InvalidTimes`] if `warm_time > cold_time`.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        mem: MemMb,
        warm_time: SimDuration,
        cold_time: SimDuration,
    ) -> Result<FunctionId, CoreError> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(CoreError::DuplicateFunction { name });
        }
        if mem.is_zero() {
            return Err(CoreError::ZeroSizeFunction { name });
        }
        if warm_time > cold_time {
            return Err(CoreError::InvalidTimes { name });
        }
        let id = FunctionId(self.specs.len() as u32);
        self.specs.push(FunctionSpec {
            id,
            name: name.clone(),
            mem,
            warm_time,
            cold_time,
            resources: None,
        });
        self.by_name.insert(name, id);
        Ok(id)
    }

    /// The spec for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this registry.
    pub fn spec(&self, id: FunctionId) -> &FunctionSpec {
        &self.specs[id.index()]
    }

    /// Looks up a function by name.
    pub fn find(&self, name: &str) -> Option<&FunctionSpec> {
        self.by_name.get(name).map(|&id| self.spec(id))
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Iterates over all specs in id order.
    pub fn iter(&self) -> impl Iterator<Item = &FunctionSpec> {
        self.specs.iter()
    }

    /// Total memory if one container of every function were resident.
    pub fn total_mem(&self) -> MemMb {
        self.specs.iter().map(|s| s.mem()).sum()
    }

    /// Replaces the resource vector on a registered function (builder-style
    /// registration convenience for the size-representation ablations).
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this registry.
    pub fn set_resources(&mut self, id: FunctionId, resources: ResourceVector) {
        self.specs[id.index()].resources = Some(resources);
    }
}

impl<'a> IntoIterator for &'a FunctionRegistry {
    type Item = &'a FunctionSpec;
    type IntoIter = std::slice::Iter<'a, FunctionSpec>;

    fn into_iter(self) -> Self::IntoIter {
        self.specs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> FunctionRegistry {
        FunctionRegistry::new()
    }

    #[test]
    fn register_and_lookup() {
        let mut r = reg();
        let id = r
            .register(
                "web",
                MemMb::new(64),
                SimDuration::from_millis(400),
                SimDuration::from_millis(2400),
            )
            .unwrap();
        assert_eq!(r.spec(id).name(), "web");
        assert_eq!(r.spec(id).mem(), MemMb::new(64));
        assert_eq!(r.spec(id).init_overhead(), SimDuration::from_millis(2000));
        assert_eq!(r.find("web").unwrap().id(), id);
        assert!(r.find("nope").is_none());
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut r = reg();
        r.register("a", MemMb::new(1), SimDuration::ZERO, SimDuration::ZERO)
            .unwrap();
        let err = r
            .register("a", MemMb::new(1), SimDuration::ZERO, SimDuration::ZERO)
            .unwrap_err();
        assert!(matches!(err, CoreError::DuplicateFunction { .. }));
    }

    #[test]
    fn zero_size_rejected() {
        let mut r = reg();
        let err = r
            .register("z", MemMb::ZERO, SimDuration::ZERO, SimDuration::ZERO)
            .unwrap_err();
        assert!(matches!(err, CoreError::ZeroSizeFunction { .. }));
    }

    #[test]
    fn warm_exceeding_cold_rejected() {
        let mut r = reg();
        let err = r
            .register(
                "w",
                MemMb::new(1),
                SimDuration::from_secs(5),
                SimDuration::from_secs(2),
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidTimes { .. }));
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut r = reg();
        let a = r
            .register("a", MemMb::new(1), SimDuration::ZERO, SimDuration::ZERO)
            .unwrap();
        let b = r
            .register("b", MemMb::new(2), SimDuration::ZERO, SimDuration::ZERO)
            .unwrap();
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert!(a < b);
        let names: Vec<_> = r.iter().map(|s| s.name().to_string()).collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(r.total_mem(), MemMb::new(3));
    }

    #[test]
    fn resources_attach() {
        let mut r = reg();
        let id = r
            .register("v", MemMb::new(100), SimDuration::ZERO, SimDuration::ZERO)
            .unwrap();
        assert!(r.spec(id).resources().is_none());
        r.set_resources(id, ResourceVector::new(0.5, 100.0, 0.1));
        assert!(r.spec(id).resources().is_some());
    }
}
