//! Function identities and static characteristics.
//!
//! A FaaS *function* is characterized (paper §3.1) by its memory footprint,
//! warm execution time, and cold execution time; the difference between
//! cold and warm is the *initialization overhead* that keep-alive avoids.

use crate::error::CoreError;
use crate::size::ResourceVector;
use faascache_util::{MemMb, SimDuration};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A dense, copyable function identifier assigned by [`FunctionRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FunctionId(u32);

impl FunctionId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index (for deserialization and tests).
    pub const fn from_index(idx: u32) -> Self {
        FunctionId(idx)
    }
}

impl fmt::Display for FunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// A dense, copyable tenant identifier interned by [`FunctionRegistry`].
///
/// Tenant 0 is always the shared default tenant (named `"default"`):
/// functions registered without an explicit tenant land there, so
/// single-tenant deployments pay nothing for the tenant dimension.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct TenantId(u32);

impl TenantId {
    /// The shared default tenant.
    pub const DEFAULT: TenantId = TenantId(0);

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index (for deserialization and tests).
    pub const fn from_index(idx: u32) -> Self {
        TenantId(idx)
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// Name of the shared default tenant.
pub const DEFAULT_TENANT: &str = "default";

fn default_tenant_names() -> Vec<String> {
    vec![DEFAULT_TENANT.to_string()]
}

// Referenced by a `#[serde(default = ...)]` attribute, which the offline
// serde shim erases along with the derive.
#[allow(dead_code)]
fn default_tenant_name() -> String {
    DEFAULT_TENANT.to_string()
}

/// Static characteristics of a function.
///
/// # Examples
///
/// ```
/// use faascache_core::function::FunctionRegistry;
/// use faascache_util::{MemMb, SimDuration};
///
/// let mut reg = FunctionRegistry::new();
/// let id = reg.register(
///     "video-encode",
///     MemMb::new(500),
///     SimDuration::from_secs(53),
///     SimDuration::from_secs(56),
/// )?;
/// assert_eq!(reg.spec(id).init_overhead(), SimDuration::from_secs(3));
/// # Ok::<(), faascache_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionSpec {
    id: FunctionId,
    name: String,
    mem: MemMb,
    warm_time: SimDuration,
    cold_time: SimDuration,
    resources: Option<ResourceVector>,
    #[serde(default)]
    tenant: TenantId,
    #[serde(default = "default_tenant_name")]
    tenant_name: String,
}

impl FunctionSpec {
    /// The function's identifier.
    pub fn id(&self) -> FunctionId {
        self.id
    }

    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Memory footprint of one container of this function.
    pub fn mem(&self) -> MemMb {
        self.mem
    }

    /// Execution time when served by a warm container.
    pub fn warm_time(&self) -> SimDuration {
        self.warm_time
    }

    /// Execution time when a new container must be created and initialized.
    pub fn cold_time(&self) -> SimDuration {
        self.cold_time
    }

    /// Initialization overhead (`cold − warm`), the cost a warm start saves.
    pub fn init_overhead(&self) -> SimDuration {
        self.cold_time - self.warm_time
    }

    /// Optional multi-dimensional resource demand (CPU share, memory, I/O),
    /// used by the §4.1 size-representation ablations.
    pub fn resources(&self) -> Option<&ResourceVector> {
        self.resources.as_ref()
    }

    /// Attaches a multi-dimensional resource demand.
    pub fn with_resources(mut self, resources: ResourceVector) -> Self {
        self.resources = Some(resources);
        self
    }

    /// The tenant this function belongs to.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The name of the tenant this function belongs to.
    pub fn tenant_name(&self) -> &str {
        &self.tenant_name
    }
}

/// Registry interning functions by name and assigning dense ids.
///
/// Tenants are interned alongside functions: slot 0 is always the shared
/// [`DEFAULT_TENANT`], and [`register_in`](Self::register_in) interns new
/// tenant names on first use.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FunctionRegistry {
    specs: Vec<FunctionSpec>,
    by_name: HashMap<String, FunctionId>,
    #[serde(default = "default_tenant_names")]
    tenants: Vec<String>,
}

impl Default for FunctionRegistry {
    fn default() -> Self {
        FunctionRegistry {
            specs: Vec::new(),
            by_name: HashMap::new(),
            tenants: default_tenant_names(),
        }
    }
}

impl FunctionRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a function under the shared default tenant.
    ///
    /// # Errors
    ///
    /// - [`CoreError::DuplicateFunction`] if `name` is already registered,
    /// - [`CoreError::ZeroSizeFunction`] if `mem` is zero,
    /// - [`CoreError::InvalidTimes`] if `warm_time > cold_time`.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        mem: MemMb,
        warm_time: SimDuration,
        cold_time: SimDuration,
    ) -> Result<FunctionId, CoreError> {
        self.register_in(name, mem, warm_time, cold_time, DEFAULT_TENANT)
    }

    /// Registers a function under `tenant`, interning the tenant name on
    /// first use. An empty tenant name means the shared default tenant.
    ///
    /// # Errors
    ///
    /// Same as [`register`](Self::register).
    pub fn register_in(
        &mut self,
        name: impl Into<String>,
        mem: MemMb,
        warm_time: SimDuration,
        cold_time: SimDuration,
        tenant: &str,
    ) -> Result<FunctionId, CoreError> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(CoreError::DuplicateFunction { name });
        }
        if mem.is_zero() {
            return Err(CoreError::ZeroSizeFunction { name });
        }
        if warm_time > cold_time {
            return Err(CoreError::InvalidTimes { name });
        }
        let tenant = self.intern_tenant(tenant);
        let id = FunctionId(self.specs.len() as u32);
        self.specs.push(FunctionSpec {
            id,
            name: name.clone(),
            mem,
            warm_time,
            cold_time,
            resources: None,
            tenant,
            tenant_name: self.tenants[tenant.index()].clone(),
        });
        self.by_name.insert(name, id);
        Ok(id)
    }

    /// Interns `tenant` (empty = default) and returns its dense id.
    pub fn intern_tenant(&mut self, tenant: &str) -> TenantId {
        if tenant.is_empty() {
            return TenantId::DEFAULT;
        }
        match self.tenants.iter().position(|t| t == tenant) {
            Some(idx) => TenantId(idx as u32),
            None => {
                self.tenants.push(tenant.to_string());
                TenantId((self.tenants.len() - 1) as u32)
            }
        }
    }

    /// Re-homes a registered function into `tenant`, interning the tenant
    /// name on first use (used to retrofit tenant assignments onto
    /// registries built by tenant-unaware tooling).
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this registry.
    pub fn set_tenant(&mut self, id: FunctionId, tenant: &str) {
        let t = self.intern_tenant(tenant);
        let name = self.tenants[t.index()].clone();
        let spec = &mut self.specs[id.index()];
        spec.tenant = t;
        spec.tenant_name = name;
    }

    /// The interned name of `tenant`, or `None` if it was never interned.
    pub fn tenant_name(&self, tenant: TenantId) -> Option<&str> {
        self.tenants.get(tenant.index()).map(String::as_str)
    }

    /// All interned tenant names in id order (slot 0 is the default tenant).
    pub fn tenant_names(&self) -> &[String] {
        &self.tenants
    }

    /// The spec for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this registry.
    pub fn spec(&self, id: FunctionId) -> &FunctionSpec {
        &self.specs[id.index()]
    }

    /// Looks up a function by name.
    pub fn find(&self, name: &str) -> Option<&FunctionSpec> {
        self.by_name.get(name).map(|&id| self.spec(id))
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Iterates over all specs in id order.
    pub fn iter(&self) -> impl Iterator<Item = &FunctionSpec> {
        self.specs.iter()
    }

    /// Total memory if one container of every function were resident.
    pub fn total_mem(&self) -> MemMb {
        self.specs.iter().map(|s| s.mem()).sum()
    }

    /// Replaces the resource vector on a registered function (builder-style
    /// registration convenience for the size-representation ablations).
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this registry.
    pub fn set_resources(&mut self, id: FunctionId, resources: ResourceVector) {
        self.specs[id.index()].resources = Some(resources);
    }
}

impl<'a> IntoIterator for &'a FunctionRegistry {
    type Item = &'a FunctionSpec;
    type IntoIter = std::slice::Iter<'a, FunctionSpec>;

    fn into_iter(self) -> Self::IntoIter {
        self.specs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> FunctionRegistry {
        FunctionRegistry::new()
    }

    #[test]
    fn register_and_lookup() {
        let mut r = reg();
        let id = r
            .register(
                "web",
                MemMb::new(64),
                SimDuration::from_millis(400),
                SimDuration::from_millis(2400),
            )
            .unwrap();
        assert_eq!(r.spec(id).name(), "web");
        assert_eq!(r.spec(id).mem(), MemMb::new(64));
        assert_eq!(r.spec(id).init_overhead(), SimDuration::from_millis(2000));
        assert_eq!(r.find("web").unwrap().id(), id);
        assert!(r.find("nope").is_none());
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut r = reg();
        r.register("a", MemMb::new(1), SimDuration::ZERO, SimDuration::ZERO)
            .unwrap();
        let err = r
            .register("a", MemMb::new(1), SimDuration::ZERO, SimDuration::ZERO)
            .unwrap_err();
        assert!(matches!(err, CoreError::DuplicateFunction { .. }));
    }

    #[test]
    fn zero_size_rejected() {
        let mut r = reg();
        let err = r
            .register("z", MemMb::ZERO, SimDuration::ZERO, SimDuration::ZERO)
            .unwrap_err();
        assert!(matches!(err, CoreError::ZeroSizeFunction { .. }));
    }

    #[test]
    fn warm_exceeding_cold_rejected() {
        let mut r = reg();
        let err = r
            .register(
                "w",
                MemMb::new(1),
                SimDuration::from_secs(5),
                SimDuration::from_secs(2),
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidTimes { .. }));
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut r = reg();
        let a = r
            .register("a", MemMb::new(1), SimDuration::ZERO, SimDuration::ZERO)
            .unwrap();
        let b = r
            .register("b", MemMb::new(2), SimDuration::ZERO, SimDuration::ZERO)
            .unwrap();
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert!(a < b);
        let names: Vec<_> = r.iter().map(|s| s.name().to_string()).collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(r.total_mem(), MemMb::new(3));
    }

    #[test]
    fn tenants_intern_and_default() {
        let mut r = reg();
        let a = r
            .register("a", MemMb::new(1), SimDuration::ZERO, SimDuration::ZERO)
            .unwrap();
        let b = r
            .register_in(
                "b",
                MemMb::new(1),
                SimDuration::ZERO,
                SimDuration::ZERO,
                "acme",
            )
            .unwrap();
        let c = r
            .register_in(
                "c",
                MemMb::new(1),
                SimDuration::ZERO,
                SimDuration::ZERO,
                "acme",
            )
            .unwrap();
        assert_eq!(r.spec(a).tenant(), TenantId::DEFAULT);
        assert_eq!(r.spec(a).tenant_name(), DEFAULT_TENANT);
        assert_eq!(r.spec(b).tenant(), TenantId::from_index(1));
        assert_eq!(r.spec(c).tenant(), r.spec(b).tenant());
        assert_eq!(r.tenant_name(TenantId::from_index(1)), Some("acme"));
        assert_eq!(r.tenant_names(), ["default", "acme"]);
        // Empty tenant means the shared default.
        let d = r
            .register_in("d", MemMb::new(1), SimDuration::ZERO, SimDuration::ZERO, "")
            .unwrap();
        assert_eq!(r.spec(d).tenant(), TenantId::DEFAULT);
        // Retrofit: move `a` into a fresh tenant.
        r.set_tenant(a, "beta");
        assert_eq!(r.spec(a).tenant(), TenantId::from_index(2));
        assert_eq!(r.spec(a).tenant_name(), "beta");
    }

    #[test]
    fn resources_attach() {
        let mut r = reg();
        let id = r
            .register("v", MemMb::new(100), SimDuration::ZERO, SimDuration::ZERO)
            .unwrap();
        assert!(r.spec(id).resources().is_none());
        r.set_resources(id, ResourceVector::new(0.5, 100.0, 0.1));
        assert!(r.spec(id).resources().is_some());
    }
}
