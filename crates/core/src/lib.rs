//! Caching-based function keep-alive for serverless platforms.
//!
//! This crate is the primary contribution of the FaasCache paper
//! (Fuerst & Sharma, ASPLOS '21) rendered as a reusable Rust library:
//! *keeping a function's container warm is equivalent to caching an object*,
//! so cache eviction algorithms become keep-alive policies.
//!
//! The centerpiece is the [`pool::ContainerPool`] — a memory-constrained
//! keep-alive cache of warm containers — parameterized by a
//! [`policy::KeepAlivePolicy`]:
//!
//! - [`policy::GreedyDual`] — the paper's GDSF policy:
//!   `Priority = Clock + Freq × Cost / Size` (§4.1),
//! - [`policy::Landlord`] — the rent-charging online algorithm (§4.2),
//! - [`policy::Lru`], [`policy::Lfu`], [`policy::SizeAware`] — degenerate
//!   Greedy-Dual family members (§4.2),
//! - [`policy::Ttl`] — the OpenWhisk default (10-minute TTL, LRU when full),
//! - [`policy::Hist`] — the histogram/prefetching policy of Shahrad et al.
//!   (ATC '20), the paper's state-of-the-art baseline.
//!
//! # Quick start
//!
//! ```
//! use faascache_core::function::FunctionRegistry;
//! use faascache_core::policy::GreedyDual;
//! use faascache_core::pool::{Acquire, ContainerPool};
//! use faascache_util::{MemMb, SimDuration, SimTime};
//!
//! let mut registry = FunctionRegistry::new();
//! let f = registry.register(
//!     "ml-inference",
//!     MemMb::new(512),
//!     SimDuration::from_secs(2),
//!     SimDuration::from_secs_f64(6.5),
//! )?;
//!
//! let mut pool = ContainerPool::new(MemMb::from_gb(4), Box::new(GreedyDual::new()));
//! let t0 = SimTime::ZERO;
//!
//! // First invocation: cold start.
//! let cold = pool.acquire(registry.spec(f), t0);
//! assert!(matches!(cold, Acquire::Cold { .. }));
//! # Ok::<(), faascache_core::error::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod container;
pub mod error;
pub mod function;
pub mod policy;
pub mod pool;
#[cfg(test)]
mod proptests;
pub mod size;

pub use container::{Container, ContainerId, ContainerState};
pub use error::CoreError;
pub use function::{FunctionId, FunctionRegistry, FunctionSpec, TenantId, DEFAULT_TENANT};
pub use pool::{Acquire, ContainerPool, PoolConfig, TenantLedger};
