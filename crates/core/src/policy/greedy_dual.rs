//! The Greedy-Dual-Size-Frequency keep-alive policy (paper §4.1).
//!
//! For every container the policy maintains
//!
//! ```text
//! Priority = Clock + Freq × Cost / Size
//! ```
//!
//! - **Clock** — a per-server logical clock, captured per container at each
//!   use. On every eviction the server clock advances to the maximum
//!   priority of the evicted set, so long-idle containers age out.
//! - **Freq** — invocations of the *function* across all its containers;
//!   reset to zero when the function's last container is terminated.
//! - **Cost** — the termination cost: the function's initialization
//!   overhead (cold − warm) in seconds.
//! - **Size** — the container's memory footprint (MB) by default, or a
//!   scalarized multi-dimensional resource vector (see
//!   [`crate::size::SizeMode`]).

use crate::container::{Container, ContainerId};
use crate::function::FunctionId;
use crate::policy::index::{TotalF64, VictimHeap};
use crate::policy::{take_until_freed, KeepAlivePolicy, TenantWeights};
use crate::size::SizeMode;
use faascache_util::{MemMb, SimTime};
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug, Clone, Copy, Default)]
struct FnStats {
    /// Invocations since the function last had zero resident containers.
    freq: u64,
}

/// Per-container inputs of the priority formula, cached when the container
/// enters the idle set so pops can recompute the priority without a
/// `&Container`.
///
/// Cost and size are cached as the *same* `f64` values `priority()` derives
/// from the container, and the recomputation evaluates the identical
/// expression `snapshot + freq * cost / size` — so heap keys are
/// bit-identical to the priorities the naive sort compares.
#[derive(Debug, Clone, Copy)]
struct GdMeta {
    function: FunctionId,
    cost: f64,
    size: f64,
    tenant: u32,
}

/// Incremental eviction order for GreedyDual.
///
/// A lazy heap is required because an idle container's priority can grow
/// while it sits idle: a sibling container's warm start raises the
/// function's frequency. The snapshot term is fixed while idle and
/// frequency only grows while the function has resident containers, so
/// priorities never decrease while idle — the [`VictimHeap`] invariant.
#[derive(Debug, Default)]
struct GdIndex {
    heap: VictimHeap<TotalF64>,
    meta: HashMap<ContainerId, GdMeta>,
}

/// Greedy-Dual-Size-Frequency keep-alive (the paper's `GD` policy).
///
/// # Examples
///
/// ```
/// use faascache_core::policy::{GreedyDual, KeepAlivePolicy};
/// let gd = GreedyDual::new();
/// assert_eq!(gd.name(), "GD");
/// assert_eq!(gd.clock(), 0.0);
/// ```
#[derive(Debug)]
pub struct GreedyDual {
    clock: f64,
    size_mode: SizeMode,
    funcs: HashMap<FunctionId, FnStats>,
    /// Clock value captured at each container's last use.
    snapshots: HashMap<ContainerId, f64>,
    index: Option<GdIndex>,
    /// Per-tenant eviction weights; `None` (and any unset slot) weighs 1.0.
    ///
    /// An over-budget tenant's weight `w > 1` divides the value term:
    /// `Priority = Clock + (Freq × Cost / Size) / w`, so its containers
    /// sort earlier in eviction order. A weight raised *while a container
    /// sits idle* lowers its already-cached heap key — which a lazy heap
    /// cannot observe — so pops compare [`TenantWeights::generation`]
    /// against `weights_gen` and re-key the whole heap when weights moved.
    weights: Option<Arc<TenantWeights>>,
    /// [`TenantWeights::generation`] the heap keys were last computed at.
    weights_gen: u64,
}

impl GreedyDual {
    /// Creates the policy with the paper's default memory-only size.
    pub fn new() -> Self {
        Self::with_size_mode(SizeMode::MemoryOnly)
    }

    /// Creates the policy with an alternative size scalarization.
    pub fn with_size_mode(size_mode: SizeMode) -> Self {
        GreedyDual {
            clock: 0.0,
            size_mode,
            funcs: HashMap::new(),
            snapshots: HashMap::new(),
            index: Some(GdIndex::default()),
            weights: None,
            weights_gen: 0,
        }
    }

    /// Creates the policy with the naive sort-based eviction path.
    pub fn naive() -> Self {
        GreedyDual {
            index: None,
            ..Self::new()
        }
    }

    /// Current value of the server's logical clock.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Current frequency of a function (0 if never seen or fully evicted).
    pub fn frequency(&self, function: FunctionId) -> u64 {
        self.funcs.get(&function).map_or(0, |s| s.freq)
    }

    fn weight_of(&self, tenant: u32) -> f64 {
        self.weights.as_ref().map_or(1.0, |w| w.get(tenant))
    }

    fn priority(&self, c: &Container) -> f64 {
        let snapshot = self.snapshots.get(&c.id()).copied().unwrap_or(self.clock);
        let freq = self.frequency(c.function()) as f64;
        let cost = c.init_overhead().as_secs_f64();
        let size = self
            .size_mode
            .scalar_size(c.mem().as_mb() as f64, c.resources());
        snapshot + freq * cost / size / self.weight_of(c.tenant())
    }

    fn touch(&mut self, c: &Container) {
        self.funcs.entry(c.function()).or_default().freq += 1;
        self.snapshots.insert(c.id(), self.clock);
    }

    fn index_insert(&mut self, c: &Container) {
        if self.index.is_none() {
            return;
        }
        let key = TotalF64(self.priority(c));
        let meta = GdMeta {
            function: c.function(),
            cost: c.init_overhead().as_secs_f64(),
            size: self
                .size_mode
                .scalar_size(c.mem().as_mb() as f64, c.resources()),
            tenant: c.tenant(),
        };
        let index = self.index.as_mut().expect("checked above");
        index.meta.insert(c.id(), meta);
        index.heap.insert(c.id(), key, c.last_used());
    }

    fn index_remove(&mut self, id: ContainerId) {
        if let Some(index) = self.index.as_mut() {
            index.heap.remove(id);
            index.meta.remove(&id);
        }
    }

    /// Re-keys the whole victim heap when the shared tenant weights have
    /// changed since it was last keyed (a raised weight *lowers* keys,
    /// which the lazy heap cannot observe entry-by-entry).
    fn rekey_if_weights_changed(&mut self) {
        let current = match self.weights.as_ref() {
            Some(w) => w.generation(),
            None => return,
        };
        if current == self.weights_gen {
            return;
        }
        self.weights_gen = current;
        let (clock, funcs, snapshots, weights) =
            (self.clock, &self.funcs, &self.snapshots, &self.weights);
        if let Some(GdIndex { heap, meta }) = self.index.as_mut() {
            heap.rekey_all_with(|id| {
                let m = meta.get(&id).expect("indexed containers have metadata");
                let snapshot = snapshots.get(&id).copied().unwrap_or(clock);
                let freq = funcs.get(&m.function).map_or(0, |s| s.freq) as f64;
                let w = weights.as_ref().map_or(1.0, |t| t.get(m.tenant));
                TotalF64(snapshot + freq * m.cost / m.size / w)
            });
        }
    }
}

impl Default for GreedyDual {
    fn default() -> Self {
        Self::new()
    }
}

impl KeepAlivePolicy for GreedyDual {
    fn name(&self) -> &'static str {
        "GD"
    }

    fn on_warm_start(&mut self, container: &Container, _now: SimTime) {
        self.touch(container);
        self.index_remove(container.id());
    }

    fn on_container_created(&mut self, container: &Container, _now: SimTime, prewarm: bool) {
        if prewarm {
            // Speculative containers get the current clock but no frequency
            // credit until an actual invocation lands on them.
            self.snapshots.insert(container.id(), self.clock);
            self.index_insert(container);
        } else {
            self.touch(container);
        }
    }

    fn on_finish(&mut self, container: &Container, _now: SimTime) {
        self.index_insert(container);
    }

    fn select_victims(&mut self, idle: &[&Container], needed: MemMb) -> Vec<ContainerId> {
        let mut ranked: Vec<&Container> = idle.to_vec();
        ranked.sort_by(|a, b| {
            self.priority(a)
                .partial_cmp(&self.priority(b))
                .expect("priorities are finite")
                .then(a.last_used().cmp(&b.last_used()))
        });
        take_until_freed(&ranked, needed)
    }

    fn on_evicted(&mut self, container: &Container, remaining_of_function: usize, _now: SimTime) {
        // Clock = max over the evicted set of the victims' priorities; the
        // pool reports evictions one at a time, and taking a running max is
        // equivalent.
        let p = self.priority(container);
        if p > self.clock {
            self.clock = p;
        }
        self.snapshots.remove(&container.id());
        if remaining_of_function == 0 {
            self.funcs.remove(&container.function());
        }
        self.index_remove(container.id());
    }

    fn supports_incremental(&self) -> bool {
        self.index.is_some()
    }

    fn peek_victim(&mut self) -> Option<ContainerId> {
        self.rekey_if_weights_changed();
        let (clock, funcs, snapshots, weights) =
            (self.clock, &self.funcs, &self.snapshots, &self.weights);
        let GdIndex { heap, meta } = self.index.as_mut()?;
        heap.peek_min_with(|id| {
            let m = meta.get(&id).expect("indexed containers have metadata");
            let snapshot = snapshots.get(&id).copied().unwrap_or(clock);
            let freq = funcs.get(&m.function).map_or(0, |s| s.freq) as f64;
            let w = weights.as_ref().map_or(1.0, |t| t.get(m.tenant));
            TotalF64(snapshot + freq * m.cost / m.size / w)
        })
    }

    fn pop_victim(&mut self) -> Option<ContainerId> {
        self.rekey_if_weights_changed();
        let (clock, funcs, snapshots, weights) =
            (self.clock, &self.funcs, &self.snapshots, &self.weights);
        let GdIndex { heap, meta } = self.index.as_mut()?;
        let id = heap.pop_min_with(|id| {
            let m = meta.get(&id).expect("indexed containers have metadata");
            let snapshot = snapshots.get(&id).copied().unwrap_or(clock);
            let freq = funcs.get(&m.function).map_or(0, |s| s.freq) as f64;
            let w = weights.as_ref().map_or(1.0, |t| t.get(m.tenant));
            TotalF64(snapshot + freq * m.cost / m.size / w)
        })?;
        meta.remove(&id);
        Some(id)
    }

    fn priority_of(&self, container: &Container) -> Option<f64> {
        Some(self.priority(container))
    }

    fn set_tenant_weights(&mut self, weights: Arc<TenantWeights>) {
        self.weights = Some(weights);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::Container;
    use faascache_util::SimDuration;

    fn container(id: u64, fid: u32, mem: u64, init_ms: u64) -> Container {
        Container::new(
            ContainerId::from_raw(id),
            FunctionId::from_index(fid),
            MemMb::new(mem),
            SimDuration::ZERO,
            SimDuration::from_millis(init_ms),
            None,
            SimTime::ZERO,
        )
    }

    #[test]
    fn priority_formula() {
        let mut gd = GreedyDual::new();
        // 100 MB container with 2 s init cost, invoked 3 times.
        let c = container(1, 0, 100, 2000);
        gd.on_container_created(&c, SimTime::ZERO, false);
        gd.on_warm_start(&c, SimTime::from_secs(1));
        gd.on_warm_start(&c, SimTime::from_secs(2));
        assert_eq!(gd.frequency(c.function()), 3);
        // Clock is still 0: no evictions yet.
        let expected = 0.0 + 3.0 * 2.0 / 100.0;
        assert!((gd.priority_of(&c).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn clock_advances_to_evicted_priority() {
        let mut gd = GreedyDual::new();
        let a = container(1, 0, 100, 1000);
        let b = container(2, 1, 100, 9000);
        gd.on_container_created(&a, SimTime::ZERO, false);
        gd.on_container_created(&b, SimTime::ZERO, false);
        let pa = gd.priority_of(&a).unwrap();
        gd.on_evicted(&a, 0, SimTime::ZERO);
        assert!(
            (gd.clock() - pa).abs() < 1e-12,
            "clock should jump to evicted priority"
        );
        // Subsequent uses incorporate the advanced clock.
        gd.on_warm_start(&b, SimTime::from_secs(1));
        assert!(gd.priority_of(&b).unwrap() > pa);
    }

    #[test]
    fn clock_is_monotone_under_evictions() {
        let mut gd = GreedyDual::new();
        let mut last = 0.0;
        for i in 0..20 {
            let c = container(i, i as u32, 50 + i, 100 * (i + 1));
            gd.on_container_created(&c, SimTime::ZERO, false);
            gd.on_evicted(&c, 0, SimTime::ZERO);
            assert!(gd.clock() >= last);
            last = gd.clock();
        }
    }

    #[test]
    fn frequency_resets_when_last_container_evicted() {
        let mut gd = GreedyDual::new();
        let c1 = container(1, 7, 100, 1000);
        let c2 = container(2, 7, 100, 1000);
        gd.on_container_created(&c1, SimTime::ZERO, false);
        gd.on_container_created(&c2, SimTime::ZERO, false);
        assert_eq!(gd.frequency(FunctionId::from_index(7)), 2);
        gd.on_evicted(&c1, 1, SimTime::ZERO);
        assert_eq!(
            gd.frequency(FunctionId::from_index(7)),
            2,
            "one container remains"
        );
        gd.on_evicted(&c2, 0, SimTime::ZERO);
        assert_eq!(
            gd.frequency(FunctionId::from_index(7)),
            0,
            "reset on last eviction"
        );
    }

    #[test]
    fn eviction_prefers_low_priority() {
        let mut gd = GreedyDual::new();
        // Small+costly+frequent should out-prioritize big+cheap+rare.
        let keep = container(1, 0, 64, 4000);
        let evict = container(2, 1, 1024, 100);
        gd.on_container_created(&keep, SimTime::ZERO, false);
        gd.on_container_created(&evict, SimTime::ZERO, false);
        for _ in 0..5 {
            gd.on_warm_start(&keep, SimTime::from_secs(1));
        }
        let victims = gd.select_victims(&[&keep, &evict], MemMb::new(512));
        assert_eq!(victims, vec![ContainerId::from_raw(2)]);
    }

    #[test]
    fn eviction_takes_multiple_when_needed() {
        let mut gd = GreedyDual::new();
        let a = container(1, 0, 100, 100);
        let b = container(2, 1, 100, 200);
        let c = container(3, 2, 100, 50_000);
        for x in [&a, &b, &c] {
            gd.on_container_created(x, SimTime::ZERO, false);
        }
        let victims = gd.select_victims(&[&a, &b, &c], MemMb::new(150));
        assert_eq!(victims.len(), 2);
        assert!(
            !victims.contains(&ContainerId::from_raw(3)),
            "highest priority survives"
        );
    }

    #[test]
    fn prewarm_created_containers_get_no_frequency() {
        let mut gd = GreedyDual::new();
        let c = container(1, 3, 100, 1000);
        gd.on_container_created(&c, SimTime::ZERO, true);
        assert_eq!(gd.frequency(FunctionId::from_index(3)), 0);
        gd.on_warm_start(&c, SimTime::from_secs(1));
        assert_eq!(gd.frequency(FunctionId::from_index(3)), 1);
    }

    #[test]
    fn incremental_pop_matches_priority_order() {
        let mut gd = GreedyDual::new();
        let keep = container(1, 0, 64, 4000);
        let evict = container(2, 1, 1024, 100);
        gd.on_container_created(&keep, SimTime::ZERO, false);
        gd.on_container_created(&evict, SimTime::ZERO, false);
        for _ in 0..5 {
            gd.on_warm_start(&keep, SimTime::from_secs(1));
        }
        gd.on_finish(&keep, SimTime::from_secs(1));
        gd.on_finish(&evict, SimTime::from_secs(1));
        assert_eq!(gd.peek_victim(), Some(ContainerId::from_raw(2)));
        assert_eq!(gd.pop_victim(), Some(ContainerId::from_raw(2)));
        assert_eq!(gd.pop_victim(), Some(ContainerId::from_raw(1)));
        assert_eq!(gd.pop_victim(), None);
    }

    #[test]
    fn incremental_pop_sees_sibling_frequency_growth() {
        let mut gd = GreedyDual::new();
        // Two containers of function 0, one of function 1 with a higher
        // standalone priority than function 0 at creation time.
        let a = container(1, 0, 1000, 1000);
        let b = container(2, 0, 1000, 1000);
        let c = container(3, 1, 100, 1000);
        for x in [&a, &b, &c] {
            gd.on_container_created(x, SimTime::ZERO, false);
            gd.on_finish(x, SimTime::ZERO);
        }
        // At this point: f0 priority = 2*1/1000 = 0.002, f1 = 1*1/100 = 0.01.
        // Warm starts on `a` push f0's frequency past the point where `b`
        // outranks `c`; the heap key cached for `b` is stale and must be
        // recomputed on pop.
        for _ in 0..20 {
            gd.on_warm_start(&a, SimTime::from_secs(1));
        }
        gd.on_finish(&a, SimTime::from_secs(1));
        // f0 freq = 22 → priority 0.022 > f1's 0.01.
        assert_eq!(gd.pop_victim(), Some(ContainerId::from_raw(3)));
    }

    #[test]
    fn tenant_weight_prefers_over_budget_victims() {
        // Without weights the small+costly+frequent container of tenant 1
        // outranks tenant 0's big+cheap one; a large enough weight on
        // tenant 1 divides its value term until it sorts first — in both
        // the naive sort and the incremental heap path.
        for naive in [false, true] {
            let mut gd = if naive {
                GreedyDual::naive()
            } else {
                GreedyDual::new()
            };
            let weights = Arc::new(TenantWeights::new(4));
            gd.set_tenant_weights(Arc::clone(&weights));
            let cheap = container(1, 0, 1024, 100);
            let hot = container(2, 1, 64, 4000).with_tenant(1);
            gd.on_container_created(&cheap, SimTime::ZERO, false);
            gd.on_container_created(&hot, SimTime::ZERO, false);
            for _ in 0..5 {
                gd.on_warm_start(&hot, SimTime::from_secs(1));
            }
            gd.on_finish(&cheap, SimTime::from_secs(1));
            gd.on_finish(&hot, SimTime::from_secs(1));
            assert_eq!(
                gd.select_victims(&[&cheap, &hot], MemMb::new(1)),
                vec![ContainerId::from_raw(1)],
                "unweighted: cheap container evicts first (naive={naive})"
            );
            weights.set(1, 10_000.0);
            let first = if naive {
                gd.select_victims(&[&cheap, &hot], MemMb::new(1))[0]
            } else {
                gd.pop_victim().unwrap()
            };
            assert_eq!(
                first,
                ContainerId::from_raw(2),
                "over-budget tenant's container evicts first (naive={naive})"
            );
        }
    }

    #[test]
    fn lru_tiebreak_among_equal_priorities() {
        let mut gd = GreedyDual::new();
        // Same function → same freq/cost/size; distinct last_used.
        let mut c1 = container(1, 0, 100, 1000);
        let mut c2 = container(2, 0, 100, 1000);
        gd.on_container_created(&c1, SimTime::ZERO, false);
        gd.on_container_created(&c2, SimTime::ZERO, false);
        c1.begin_invocation(SimTime::from_secs(1), SimTime::from_secs(2));
        c1.finish_invocation();
        c2.begin_invocation(SimTime::from_secs(5), SimTime::from_secs(6));
        c2.finish_invocation();
        // Both snapshots equal, so the older last_used (c1) goes first.
        let victims = gd.select_victims(&[&c2, &c1], MemMb::new(100));
        assert_eq!(victims, vec![ContainerId::from_raw(1)]);
    }
}
