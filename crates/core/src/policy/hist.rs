//! The histogram keep-alive policy of Shahrad et al. (ATC '20), the
//! state-of-the-art baseline the paper reproduces as `HIST` (§7.1).
//!
//! Effectively a "TTL + prefetching" policy:
//!
//! - Per function, inter-arrival times (IATs) are recorded in minute-wide
//!   buckets up to four hours, and the coefficient of variation (CoV) is
//!   maintained with Welford's online algorithm.
//! - When a function's IAT is *predictable* (CoV ≤ 2), a custom window is
//!   used: the container may be released right after an invocation, a
//!   **pre-warm** is scheduled just before the head-percentile IAT, and the
//!   container is kept until the tail-percentile IAT (plus a margin).
//! - Otherwise a generic TTL of two hours applies.
//!
//! Like the paper, we omit the ARIMA path for out-of-window IATs (it covered
//! ~0.56 % of invocations); such IATs land in the histogram's overflow
//! bucket and push the function toward the unpredictable/generic-TTL path.

use crate::container::{Container, ContainerId};
use crate::function::{FunctionId, FunctionSpec};
use crate::policy::{take_until_freed, KeepAlivePolicy};
use faascache_util::stats::{Histogram, Welford};
use faascache_util::{MemMb, SimDuration, SimTime};
use std::collections::HashMap;

/// Tunables of the HIST policy, with the defaults from Shahrad et al. as
/// reproduced by the FaasCache paper.
#[derive(Debug, Clone)]
pub struct HistConfig {
    /// IAT histogram bucket width (paper: one minute).
    pub bucket_width: SimDuration,
    /// Number of in-range buckets (paper: 240 ⇒ four hours).
    pub num_buckets: usize,
    /// CoV at or below which a function counts as predictable (paper: 2).
    pub cov_threshold: f64,
    /// Keep-alive for unpredictable functions (paper: two hours).
    pub generic_ttl: SimDuration,
    /// Head percentile for the pre-warm point.
    pub head_quantile: f64,
    /// Tail percentile for the keep-alive horizon.
    pub tail_quantile: f64,
    /// Safety margin added before the pre-warm and after the keep-alive.
    pub margin: SimDuration,
    /// Minimum IAT samples before the histogram is trusted.
    pub min_samples: u64,
}

impl Default for HistConfig {
    fn default() -> Self {
        HistConfig {
            bucket_width: SimDuration::from_mins(1),
            num_buckets: 240,
            cov_threshold: 2.0,
            generic_ttl: SimDuration::from_mins(120),
            head_quantile: 0.05,
            tail_quantile: 0.99,
            margin: SimDuration::from_mins(1),
            min_samples: 2,
        }
    }
}

#[derive(Debug)]
struct FnHist {
    hist: Histogram,
    welford: Welford,
    last_invocation: Option<SimTime>,
    pending_prewarm: Option<SimTime>,
}

impl FnHist {
    fn new(cfg: &HistConfig) -> Self {
        FnHist {
            hist: Histogram::new(cfg.bucket_width.as_mins_f64(), cfg.num_buckets),
            welford: Welford::new(),
            last_invocation: None,
            pending_prewarm: None,
        }
    }
}

/// The HIST histogram/prefetching keep-alive policy.
///
/// # Examples
///
/// ```
/// use faascache_core::policy::{Hist, HistConfig, KeepAlivePolicy};
/// let hist = Hist::new(HistConfig::default());
/// assert_eq!(hist.name(), "HIST");
/// ```
#[derive(Debug)]
pub struct Hist {
    cfg: HistConfig,
    funcs: HashMap<FunctionId, FnHist>,
}

impl Hist {
    /// Creates the policy with the given configuration.
    pub fn new(cfg: HistConfig) -> Self {
        Hist {
            cfg,
            funcs: HashMap::new(),
        }
    }

    /// Whether a function's IAT pattern is currently considered
    /// predictable (enough samples and CoV at or below the threshold).
    pub fn is_predictable(&self, function: FunctionId) -> bool {
        self.funcs.get(&function).is_some_and(|f| {
            f.welford.count() >= self.cfg.min_samples
                && f.welford.coefficient_of_variation() <= self.cfg.cov_threshold
                && f.hist.overflow_fraction() < 0.5
        })
    }

    /// The head-percentile IAT (pre-warm point) for a predictable function.
    fn head_window(&self, f: &FnHist) -> SimDuration {
        let bucket = f.hist.percentile_bucket(self.cfg.head_quantile);
        SimDuration::from_secs_f64(f.hist.bucket_value(bucket) * 60.0)
    }

    /// The tail-percentile IAT (keep-alive horizon) for a predictable
    /// function.
    fn tail_window(&self, f: &FnHist) -> SimDuration {
        let bucket = f.hist.percentile_bucket(self.cfg.tail_quantile);
        SimDuration::from_secs_f64(f.hist.bucket_value(bucket) * 60.0)
    }

    /// When containers of `function` should be expired, given the current
    /// histogram state.
    fn deadline(&self, function: FunctionId, container: &Container) -> SimTime {
        match self.funcs.get(&function) {
            Some(f) if self.is_predictable(function) => {
                let last = f.last_invocation.unwrap_or(container.last_used());
                // If a pre-warm is scheduled, the container can be released
                // right away ("the function's historical/customized preload
                // and TTL time are used"): it will be re-created just in
                // time for the predicted invocation.
                if f.pending_prewarm.is_some() && container.last_used() <= last {
                    return last + self.cfg.margin;
                }
                last + self.tail_window(f) + self.cfg.margin
            }
            Some(f) => {
                let last = f.last_invocation.unwrap_or(container.last_used());
                last.max(container.last_used()) + self.cfg.generic_ttl
            }
            None => container.last_used() + self.cfg.generic_ttl,
        }
    }

    /// Predicted next invocation time, used to rank eviction victims.
    fn predicted_next(&self, function: FunctionId, container: &Container) -> SimTime {
        match self.funcs.get(&function) {
            Some(f) if self.is_predictable(function) => {
                let last = f.last_invocation.unwrap_or(container.last_used());
                last + SimDuration::from_secs_f64(f.welford.mean() * 60.0)
            }
            _ => container.last_used() + self.cfg.generic_ttl,
        }
    }
}

impl KeepAlivePolicy for Hist {
    fn name(&self) -> &'static str {
        "HIST"
    }

    fn on_request(&mut self, spec: &FunctionSpec, now: SimTime) {
        let cfg_margin = self.cfg.margin;
        let entry = self
            .funcs
            .entry(spec.id())
            .or_insert_with(|| FnHist::new(&self.cfg));
        if let Some(last) = entry.last_invocation {
            let iat_mins = now.since(last).as_mins_f64();
            entry.hist.record(iat_mins);
            entry.welford.push(iat_mins);
        }
        entry.last_invocation = Some(now);
        entry.pending_prewarm = None;
        // Schedule the next pre-warm if the head of the IAT distribution is
        // far enough out that releasing and re-warming pays off.
        if self.is_predictable(spec.id()) {
            let f = self.funcs.get(&spec.id()).expect("just inserted");
            let head = self.head_window(f);
            if head > cfg_margin + cfg_margin {
                let at = now + head.saturating_sub(cfg_margin);
                self.funcs
                    .get_mut(&spec.id())
                    .expect("just inserted")
                    .pending_prewarm = Some(at);
            }
        }
    }

    fn on_warm_start(&mut self, _container: &Container, _now: SimTime) {}

    fn on_container_created(&mut self, _container: &Container, _now: SimTime, _prewarm: bool) {}

    fn select_victims(&mut self, idle: &[&Container], needed: MemMb) -> Vec<ContainerId> {
        // Evict the container whose next invocation is predicted farthest
        // in the future ("evicted when the policy predicts it will not have
        // an invocation in the near future").
        let mut ranked: Vec<&Container> = idle.to_vec();
        ranked.sort_by(|a, b| {
            self.predicted_next(b.function(), b)
                .cmp(&self.predicted_next(a.function(), a))
                .then(a.last_used().cmp(&b.last_used()))
        });
        take_until_freed(&ranked, needed)
    }

    fn on_evicted(&mut self, _container: &Container, _remaining: usize, _now: SimTime) {}

    fn expired(&mut self, idle: &[&Container], now: SimTime) -> Vec<ContainerId> {
        idle.iter()
            .filter(|c| now >= self.deadline(c.function(), c))
            .map(|c| c.id())
            .collect()
    }

    fn prewarm_due(&mut self, now: SimTime) -> Vec<FunctionId> {
        let mut due = Vec::new();
        for (&fid, f) in self.funcs.iter_mut() {
            if let Some(at) = f.pending_prewarm {
                if at <= now {
                    f.pending_prewarm = None;
                    due.push(fid);
                }
            }
        }
        due.sort();
        due
    }

    fn priority_of(&self, container: &Container) -> Option<f64> {
        // Sooner predicted reuse ⇒ higher keep-alive priority.
        Some(-self.predicted_next(container.function(), container).as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionRegistry;

    fn spec(reg: &mut FunctionRegistry, name: &str) -> FunctionSpec {
        let id = reg
            .register(
                name,
                MemMb::new(128),
                SimDuration::from_millis(200),
                SimDuration::from_secs(2),
            )
            .unwrap();
        reg.spec(id).clone()
    }

    fn container_of(spec: &FunctionSpec, id: u64, now: SimTime) -> Container {
        Container::new(
            ContainerId::from_raw(id),
            spec.id(),
            spec.mem(),
            spec.warm_time(),
            spec.cold_time(),
            None,
            now,
        )
    }

    #[test]
    fn becomes_predictable_with_regular_iats() {
        let mut reg = FunctionRegistry::new();
        let s = spec(&mut reg, "regular");
        let mut hist = Hist::new(HistConfig::default());
        assert!(!hist.is_predictable(s.id()));
        // Invocations every 10 minutes, like clockwork.
        for i in 0..10u64 {
            hist.on_request(&s, SimTime::from_mins(i * 10));
        }
        assert!(hist.is_predictable(s.id()));
    }

    #[test]
    fn erratic_iats_stay_unpredictable() {
        let mut reg = FunctionRegistry::new();
        let s = spec(&mut reg, "erratic");
        let mut hist = Hist::new(HistConfig::default());
        // Wildly varying IATs: 1 min, 200 min, 1 min, 200 min...
        let times = [0u64, 1, 201, 202, 402, 403, 603];
        for &t in &times {
            hist.on_request(&s, SimTime::from_mins(t));
        }
        // CoV of {1,200,1,200,1,200} ≈ 0.99 — actually predictable by CoV;
        // use something with CoV > 2 instead.
        let s2 = spec(&mut reg, "erratic2");
        let times2 = [0u64, 1, 2, 3, 4, 5, 230];
        for &t in &times2 {
            hist.on_request(&s2, SimTime::from_mins(t));
        }
        // IATs: 1,1,1,1,1,225 → mean≈38.3, sd≈83.5 → CoV≈2.2 > 2.
        assert!(!hist.is_predictable(s2.id()));
    }

    #[test]
    fn predictable_function_schedules_prewarm() {
        let mut reg = FunctionRegistry::new();
        let s = spec(&mut reg, "periodic");
        let mut hist = Hist::new(HistConfig::default());
        for i in 0..6u64 {
            hist.on_request(&s, SimTime::from_mins(i * 30));
        }
        // A pre-warm should be due before the next expected invocation at
        // t = 180 min, but not immediately.
        assert!(hist.prewarm_due(SimTime::from_mins(151)).is_empty());
        let due = hist.prewarm_due(SimTime::from_mins(180));
        assert_eq!(due, vec![s.id()]);
        // Consumed: not reported twice.
        assert!(hist.prewarm_due(SimTime::from_mins(181)).is_empty());
    }

    #[test]
    fn sub_minute_iats_do_not_prewarm() {
        let mut reg = FunctionRegistry::new();
        let s = spec(&mut reg, "hot");
        let mut hist = Hist::new(HistConfig::default());
        for i in 0..20u64 {
            hist.on_request(&s, SimTime::from_secs(i * 10));
        }
        assert!(hist.is_predictable(s.id()));
        // Head bucket is 0 (< 1 min): the container never gets released, so
        // there is nothing to pre-warm.
        assert!(hist.prewarm_due(SimTime::from_mins(60)).is_empty());
    }

    #[test]
    fn unpredictable_uses_generic_ttl() {
        let mut reg = FunctionRegistry::new();
        let s = spec(&mut reg, "once");
        let mut hist = Hist::new(HistConfig::default());
        hist.on_request(&s, SimTime::ZERO);
        let c = container_of(&s, 1, SimTime::ZERO);
        assert!(hist.expired(&[&c], SimTime::from_mins(119)).is_empty());
        assert_eq!(hist.expired(&[&c], SimTime::from_mins(121)).len(), 1);
    }

    #[test]
    fn predictable_releases_early_then_keeps_prewarmed_until_tail() {
        let mut reg = FunctionRegistry::new();
        let s = spec(&mut reg, "steady");
        let mut hist = Hist::new(HistConfig::default());
        for i in 0..10u64 {
            hist.on_request(&s, SimTime::from_mins(i * 5));
        }
        let last = SimTime::from_mins(45);
        // Phase 1: a pre-warm is pending, so the old container is released
        // after the 1-minute margin rather than held for the whole gap.
        let old = container_of(&s, 1, last);
        assert!(hist.expired(&[&old], SimTime::from_secs(45 * 60 + 30)).is_empty());
        assert_eq!(hist.expired(&[&old], SimTime::from_mins(46)).len(), 1);
        // Phase 2: the pre-warm fires (head ≈ 5.5 min − margin before the
        // predicted invocation); the fresh container survives until
        // last + tail (≈5.5) + margin (1).
        let due = hist.prewarm_due(SimTime::from_secs((45 * 60) + 270));
        assert_eq!(due, vec![s.id()]);
        let fresh = container_of(&s, 2, SimTime::from_secs((45 * 60) + 270));
        assert!(hist.expired(&[&fresh], SimTime::from_mins(50)).is_empty());
        assert_eq!(hist.expired(&[&fresh], SimTime::from_mins(52)).len(), 1);
    }

    #[test]
    fn eviction_prefers_farthest_predicted_use() {
        let mut reg = FunctionRegistry::new();
        let soon = spec(&mut reg, "soon");
        let late = spec(&mut reg, "late");
        let mut hist = Hist::new(HistConfig::default());
        for i in 0..10u64 {
            hist.on_request(&soon, SimTime::from_mins(i * 2));
            hist.on_request(&late, SimTime::from_mins(i * 60));
        }
        let c_soon = container_of(&soon, 1, SimTime::from_mins(18));
        let c_late = container_of(&late, 2, SimTime::from_mins(540));
        let victims = hist.select_victims(&[&c_soon, &c_late], MemMb::new(128));
        assert_eq!(victims, vec![ContainerId::from_raw(2)]);
    }
}
