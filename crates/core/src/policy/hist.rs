//! The histogram keep-alive policy of Shahrad et al. (ATC '20), the
//! state-of-the-art baseline the paper reproduces as `HIST` (§7.1).
//!
//! Effectively a "TTL + prefetching" policy:
//!
//! - Per function, inter-arrival times (IATs) are recorded in minute-wide
//!   buckets up to four hours, and the coefficient of variation (CoV) is
//!   maintained with Welford's online algorithm.
//! - When a function's IAT is *predictable* (CoV ≤ 2), a custom window is
//!   used: the container may be released right after an invocation, a
//!   **pre-warm** is scheduled just before the head-percentile IAT, and the
//!   container is kept until the tail-percentile IAT (plus a margin).
//! - Otherwise a generic TTL of two hours applies.
//!
//! Like the paper, we omit the ARIMA path for out-of-window IATs (it covered
//! ~0.56 % of invocations); such IATs land in the histogram's overflow
//! bucket and push the function toward the unpredictable/generic-TTL path.

use crate::container::{Container, ContainerId};
use crate::function::{FunctionId, FunctionSpec};
use crate::policy::index::OrderedIdleSet;
use crate::policy::{take_until_freed, KeepAlivePolicy};
use faascache_util::stats::{Histogram, Welford};
use faascache_util::{MemMb, SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BTreeSet, HashMap};

/// Tunables of the HIST policy, with the defaults from Shahrad et al. as
/// reproduced by the FaasCache paper.
#[derive(Debug, Clone)]
pub struct HistConfig {
    /// IAT histogram bucket width (paper: one minute).
    pub bucket_width: SimDuration,
    /// Number of in-range buckets (paper: 240 ⇒ four hours).
    pub num_buckets: usize,
    /// CoV at or below which a function counts as predictable (paper: 2).
    pub cov_threshold: f64,
    /// Keep-alive for unpredictable functions (paper: two hours).
    pub generic_ttl: SimDuration,
    /// Head percentile for the pre-warm point.
    pub head_quantile: f64,
    /// Tail percentile for the keep-alive horizon.
    pub tail_quantile: f64,
    /// Safety margin added before the pre-warm and after the keep-alive.
    pub margin: SimDuration,
    /// Minimum IAT samples before the histogram is trusted.
    pub min_samples: u64,
}

impl Default for HistConfig {
    fn default() -> Self {
        HistConfig {
            bucket_width: SimDuration::from_mins(1),
            num_buckets: 240,
            cov_threshold: 2.0,
            generic_ttl: SimDuration::from_mins(120),
            head_quantile: 0.05,
            tail_quantile: 0.99,
            margin: SimDuration::from_mins(1),
            min_samples: 2,
        }
    }
}

#[derive(Debug)]
struct FnHist {
    hist: Histogram,
    welford: Welford,
    last_invocation: Option<SimTime>,
    pending_prewarm: Option<SimTime>,
}

impl FnHist {
    fn new(cfg: &HistConfig) -> Self {
        FnHist {
            hist: Histogram::new(cfg.bucket_width.as_mins_f64(), cfg.num_buckets),
            welford: Welford::new(),
            last_invocation: None,
            pending_prewarm: None,
        }
    }
}

/// Incremental eviction and expiry order for HIST.
///
/// Keys (predicted next invocation and expiry deadline) are derived from
/// per-function histogram state, which changes at exactly two points: a
/// request to the function (`on_request`) and the consumption of a pending
/// pre-warm (`prewarm_due`). Both events re-key that function's idle
/// containers eagerly, so reads always see fresh keys and ordered sets
/// suffice — no lazy heap is needed.
#[derive(Debug, Default)]
struct HistIndex {
    /// Eviction order: predicted next use descending (farthest first),
    /// then `last_used` ascending, then id ascending.
    victims: OrderedIdleSet<Reverse<SimTime>>,
    /// Expiry order: deadline ascending.
    expiry: OrderedIdleSet<SimTime>,
    /// Function and `last_used` of each idle member.
    entries: HashMap<ContainerId, (FunctionId, SimTime)>,
    /// Idle members per function, for re-keying after histogram updates.
    by_fn: HashMap<FunctionId, BTreeSet<ContainerId>>,
    /// Pending pre-warms ordered by fire time.
    prewarms: BTreeSet<(SimTime, FunctionId)>,
}

/// The HIST histogram/prefetching keep-alive policy.
///
/// # Examples
///
/// ```
/// use faascache_core::policy::{Hist, HistConfig, KeepAlivePolicy};
/// let hist = Hist::new(HistConfig::default());
/// assert_eq!(hist.name(), "HIST");
/// ```
#[derive(Debug)]
pub struct Hist {
    cfg: HistConfig,
    funcs: HashMap<FunctionId, FnHist>,
    index: Option<HistIndex>,
}

impl Hist {
    /// Creates the policy with the given configuration (incremental
    /// eviction/expiry indexes).
    pub fn new(cfg: HistConfig) -> Self {
        Hist {
            cfg,
            funcs: HashMap::new(),
            index: Some(HistIndex::default()),
        }
    }

    /// Creates the policy with the naive scan-based eviction/expiry path.
    pub fn naive(cfg: HistConfig) -> Self {
        Hist {
            cfg,
            funcs: HashMap::new(),
            index: None,
        }
    }

    /// Whether a function's IAT pattern is currently considered
    /// predictable (enough samples and CoV at or below the threshold).
    pub fn is_predictable(&self, function: FunctionId) -> bool {
        self.funcs.get(&function).is_some_and(|f| {
            f.welford.count() >= self.cfg.min_samples
                && f.welford.coefficient_of_variation() <= self.cfg.cov_threshold
                && f.hist.overflow_fraction() < 0.5
        })
    }

    /// The head-percentile IAT (pre-warm point) for a predictable function.
    fn head_window(&self, f: &FnHist) -> SimDuration {
        let bucket = f.hist.percentile_bucket(self.cfg.head_quantile);
        SimDuration::from_secs_f64(f.hist.bucket_value(bucket) * 60.0)
    }

    /// The tail-percentile IAT (keep-alive horizon) for a predictable
    /// function.
    fn tail_window(&self, f: &FnHist) -> SimDuration {
        let bucket = f.hist.percentile_bucket(self.cfg.tail_quantile);
        SimDuration::from_secs_f64(f.hist.bucket_value(bucket) * 60.0)
    }

    /// When containers of `function` should be expired, given the current
    /// histogram state, for a container last used at `last_used`.
    fn deadline_at(&self, function: FunctionId, last_used: SimTime) -> SimTime {
        match self.funcs.get(&function) {
            Some(f) if self.is_predictable(function) => {
                let last = f.last_invocation.unwrap_or(last_used);
                // If a pre-warm is scheduled, the container can be released
                // right away ("the function's historical/customized preload
                // and TTL time are used"): it will be re-created just in
                // time for the predicted invocation.
                if f.pending_prewarm.is_some() && last_used <= last {
                    return last + self.cfg.margin;
                }
                last + self.tail_window(f) + self.cfg.margin
            }
            Some(f) => {
                let last = f.last_invocation.unwrap_or(last_used);
                last.max(last_used) + self.cfg.generic_ttl
            }
            None => last_used + self.cfg.generic_ttl,
        }
    }

    /// When containers of `function` should be expired, given the current
    /// histogram state.
    fn deadline(&self, function: FunctionId, container: &Container) -> SimTime {
        self.deadline_at(function, container.last_used())
    }

    /// Predicted next invocation time for a container last used at
    /// `last_used`, used to rank eviction victims.
    fn predicted_next_at(&self, function: FunctionId, last_used: SimTime) -> SimTime {
        match self.funcs.get(&function) {
            Some(f) if self.is_predictable(function) => {
                let last = f.last_invocation.unwrap_or(last_used);
                last + SimDuration::from_secs_f64(f.welford.mean() * 60.0)
            }
            _ => last_used + self.cfg.generic_ttl,
        }
    }

    /// Predicted next invocation time, used to rank eviction victims.
    fn predicted_next(&self, function: FunctionId, container: &Container) -> SimTime {
        self.predicted_next_at(function, container.last_used())
    }

    fn index_insert(&mut self, container: &Container) {
        if self.index.is_none() {
            return;
        }
        let fid = container.function();
        let last_used = container.last_used();
        let predicted = self.predicted_next_at(fid, last_used);
        let deadline = self.deadline_at(fid, last_used);
        let index = self.index.as_mut().expect("checked above");
        index.entries.insert(container.id(), (fid, last_used));
        index.by_fn.entry(fid).or_default().insert(container.id());
        index
            .victims
            .insert(container.id(), Reverse(predicted), last_used);
        index.expiry.insert(container.id(), deadline, last_used);
    }

    fn index_remove(&mut self, id: ContainerId) {
        if let Some(index) = self.index.as_mut() {
            if let Some((fid, _)) = index.entries.remove(&id) {
                if let Some(set) = index.by_fn.get_mut(&fid) {
                    set.remove(&id);
                    if set.is_empty() {
                        index.by_fn.remove(&fid);
                    }
                }
            }
            index.victims.remove(id);
            index.expiry.remove(id);
        }
    }

    /// Recomputes the keys of every idle container of `function`. Called
    /// after the two events that can change the function's histogram state
    /// (a request, or a pre-warm firing).
    fn rekey_function(&mut self, function: FunctionId) {
        let members: Vec<(ContainerId, SimTime)> = match self.index.as_ref() {
            Some(index) => match index.by_fn.get(&function) {
                Some(set) => set.iter().map(|&id| (id, index.entries[&id].1)).collect(),
                None => return,
            },
            None => return,
        };
        let keys: Vec<(ContainerId, SimTime, SimTime, SimTime)> = members
            .into_iter()
            .map(|(id, last_used)| {
                (
                    id,
                    last_used,
                    self.predicted_next_at(function, last_used),
                    self.deadline_at(function, last_used),
                )
            })
            .collect();
        let index = self.index.as_mut().expect("checked above");
        for (id, last_used, predicted, deadline) in keys {
            index.victims.insert(id, Reverse(predicted), last_used);
            index.expiry.insert(id, deadline, last_used);
        }
    }
}

impl KeepAlivePolicy for Hist {
    fn name(&self) -> &'static str {
        "HIST"
    }

    fn on_request(&mut self, spec: &FunctionSpec, now: SimTime) {
        let old_pending = self.funcs.get(&spec.id()).and_then(|f| f.pending_prewarm);
        let cfg_margin = self.cfg.margin;
        let entry = self
            .funcs
            .entry(spec.id())
            .or_insert_with(|| FnHist::new(&self.cfg));
        if let Some(last) = entry.last_invocation {
            let iat_mins = now.since(last).as_mins_f64();
            entry.hist.record(iat_mins);
            entry.welford.push(iat_mins);
        }
        entry.last_invocation = Some(now);
        entry.pending_prewarm = None;
        // Schedule the next pre-warm if the head of the IAT distribution is
        // far enough out that releasing and re-warming pays off.
        if self.is_predictable(spec.id()) {
            let f = self.funcs.get(&spec.id()).expect("just inserted");
            let head = self.head_window(f);
            if head > cfg_margin + cfg_margin {
                let at = now + head.saturating_sub(cfg_margin);
                self.funcs
                    .get_mut(&spec.id())
                    .expect("just inserted")
                    .pending_prewarm = Some(at);
            }
        }
        if self.index.is_some() {
            let new_pending = self.funcs.get(&spec.id()).and_then(|f| f.pending_prewarm);
            let index = self.index.as_mut().expect("checked above");
            if let Some(at) = old_pending {
                index.prewarms.remove(&(at, spec.id()));
            }
            if let Some(at) = new_pending {
                index.prewarms.insert((at, spec.id()));
            }
            // The request changed this function's histogram state (and
            // possibly its predictability), so its idle containers' keys
            // are stale: recompute them now.
            self.rekey_function(spec.id());
        }
    }

    fn on_warm_start(&mut self, container: &Container, _now: SimTime) {
        self.index_remove(container.id());
    }

    fn on_container_created(&mut self, container: &Container, _now: SimTime, prewarm: bool) {
        if prewarm {
            self.index_insert(container);
        }
    }

    fn on_finish(&mut self, container: &Container, _now: SimTime) {
        self.index_insert(container);
    }

    fn select_victims(&mut self, idle: &[&Container], needed: MemMb) -> Vec<ContainerId> {
        // Evict the container whose next invocation is predicted farthest
        // in the future ("evicted when the policy predicts it will not have
        // an invocation in the near future").
        let mut ranked: Vec<&Container> = idle.to_vec();
        ranked.sort_by(|a, b| {
            self.predicted_next(b.function(), b)
                .cmp(&self.predicted_next(a.function(), a))
                .then(a.last_used().cmp(&b.last_used()))
        });
        take_until_freed(&ranked, needed)
    }

    fn on_evicted(&mut self, container: &Container, _remaining: usize, _now: SimTime) {
        self.index_remove(container.id());
    }

    fn expired(&mut self, idle: &[&Container], now: SimTime) -> Vec<ContainerId> {
        idle.iter()
            .filter(|c| now >= self.deadline(c.function(), c))
            .map(|c| c.id())
            .collect()
    }

    fn prewarm_due(&mut self, now: SimTime) -> Vec<FunctionId> {
        if let Some(index) = self.index.as_mut() {
            let mut due = Vec::new();
            while let Some(&(at, fid)) = index.prewarms.first() {
                if at > now {
                    break;
                }
                index.prewarms.pop_first();
                due.push(fid);
            }
            for &fid in &due {
                if let Some(f) = self.funcs.get_mut(&fid) {
                    f.pending_prewarm = None;
                }
            }
            // Match the naive path's function-id order (it affects the
            // order downstream container ids are assigned in).
            due.sort();
            // Consuming a pre-warm changes the release-early deadline of
            // the function's idle containers.
            for &fid in &due {
                self.rekey_function(fid);
            }
            return due;
        }
        let mut due = Vec::new();
        for (&fid, f) in self.funcs.iter_mut() {
            if let Some(at) = f.pending_prewarm {
                if at <= now {
                    f.pending_prewarm = None;
                    due.push(fid);
                }
            }
        }
        due.sort();
        due
    }

    fn supports_incremental(&self) -> bool {
        self.index.is_some()
    }

    fn peek_victim(&mut self) -> Option<ContainerId> {
        self.index.as_ref()?.victims.first().map(|(_, _, id)| id)
    }

    fn pop_victim(&mut self) -> Option<ContainerId> {
        let (_, _, id) = self.index.as_ref()?.victims.first()?;
        self.index_remove(id);
        Some(id)
    }

    fn pop_expired(&mut self, now: SimTime) -> Option<ContainerId> {
        let (deadline, _, id) = self.index.as_ref()?.expiry.first()?;
        if now >= deadline {
            self.index_remove(id);
            Some(id)
        } else {
            None
        }
    }

    fn priority_of(&self, container: &Container) -> Option<f64> {
        // Sooner predicted reuse ⇒ higher keep-alive priority.
        Some(
            -self
                .predicted_next(container.function(), container)
                .as_secs_f64(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionRegistry;

    fn spec(reg: &mut FunctionRegistry, name: &str) -> FunctionSpec {
        let id = reg
            .register(
                name,
                MemMb::new(128),
                SimDuration::from_millis(200),
                SimDuration::from_secs(2),
            )
            .unwrap();
        reg.spec(id).clone()
    }

    fn container_of(spec: &FunctionSpec, id: u64, now: SimTime) -> Container {
        Container::new(
            ContainerId::from_raw(id),
            spec.id(),
            spec.mem(),
            spec.warm_time(),
            spec.cold_time(),
            None,
            now,
        )
    }

    #[test]
    fn becomes_predictable_with_regular_iats() {
        let mut reg = FunctionRegistry::new();
        let s = spec(&mut reg, "regular");
        let mut hist = Hist::new(HistConfig::default());
        assert!(!hist.is_predictable(s.id()));
        // Invocations every 10 minutes, like clockwork.
        for i in 0..10u64 {
            hist.on_request(&s, SimTime::from_mins(i * 10));
        }
        assert!(hist.is_predictable(s.id()));
    }

    #[test]
    fn erratic_iats_stay_unpredictable() {
        let mut reg = FunctionRegistry::new();
        let s = spec(&mut reg, "erratic");
        let mut hist = Hist::new(HistConfig::default());
        // Wildly varying IATs: 1 min, 200 min, 1 min, 200 min...
        let times = [0u64, 1, 201, 202, 402, 403, 603];
        for &t in &times {
            hist.on_request(&s, SimTime::from_mins(t));
        }
        // CoV of {1,200,1,200,1,200} ≈ 0.99 — actually predictable by CoV;
        // use something with CoV > 2 instead.
        let s2 = spec(&mut reg, "erratic2");
        let times2 = [0u64, 1, 2, 3, 4, 5, 230];
        for &t in &times2 {
            hist.on_request(&s2, SimTime::from_mins(t));
        }
        // IATs: 1,1,1,1,1,225 → mean≈38.3, sd≈83.5 → CoV≈2.2 > 2.
        assert!(!hist.is_predictable(s2.id()));
    }

    #[test]
    fn predictable_function_schedules_prewarm() {
        let mut reg = FunctionRegistry::new();
        let s = spec(&mut reg, "periodic");
        let mut hist = Hist::new(HistConfig::default());
        for i in 0..6u64 {
            hist.on_request(&s, SimTime::from_mins(i * 30));
        }
        // A pre-warm should be due before the next expected invocation at
        // t = 180 min, but not immediately.
        assert!(hist.prewarm_due(SimTime::from_mins(151)).is_empty());
        let due = hist.prewarm_due(SimTime::from_mins(180));
        assert_eq!(due, vec![s.id()]);
        // Consumed: not reported twice.
        assert!(hist.prewarm_due(SimTime::from_mins(181)).is_empty());
    }

    #[test]
    fn sub_minute_iats_do_not_prewarm() {
        let mut reg = FunctionRegistry::new();
        let s = spec(&mut reg, "hot");
        let mut hist = Hist::new(HistConfig::default());
        for i in 0..20u64 {
            hist.on_request(&s, SimTime::from_secs(i * 10));
        }
        assert!(hist.is_predictable(s.id()));
        // Head bucket is 0 (< 1 min): the container never gets released, so
        // there is nothing to pre-warm.
        assert!(hist.prewarm_due(SimTime::from_mins(60)).is_empty());
    }

    #[test]
    fn unpredictable_uses_generic_ttl() {
        let mut reg = FunctionRegistry::new();
        let s = spec(&mut reg, "once");
        let mut hist = Hist::new(HistConfig::default());
        hist.on_request(&s, SimTime::ZERO);
        let c = container_of(&s, 1, SimTime::ZERO);
        assert!(hist.expired(&[&c], SimTime::from_mins(119)).is_empty());
        assert_eq!(hist.expired(&[&c], SimTime::from_mins(121)).len(), 1);
    }

    #[test]
    fn predictable_releases_early_then_keeps_prewarmed_until_tail() {
        let mut reg = FunctionRegistry::new();
        let s = spec(&mut reg, "steady");
        let mut hist = Hist::new(HistConfig::default());
        for i in 0..10u64 {
            hist.on_request(&s, SimTime::from_mins(i * 5));
        }
        let last = SimTime::from_mins(45);
        // Phase 1: a pre-warm is pending, so the old container is released
        // after the 1-minute margin rather than held for the whole gap.
        let old = container_of(&s, 1, last);
        assert!(hist
            .expired(&[&old], SimTime::from_secs(45 * 60 + 30))
            .is_empty());
        assert_eq!(hist.expired(&[&old], SimTime::from_mins(46)).len(), 1);
        // Phase 2: the pre-warm fires (head ≈ 5.5 min − margin before the
        // predicted invocation); the fresh container survives until
        // last + tail (≈5.5) + margin (1).
        let due = hist.prewarm_due(SimTime::from_secs((45 * 60) + 270));
        assert_eq!(due, vec![s.id()]);
        let fresh = container_of(&s, 2, SimTime::from_secs((45 * 60) + 270));
        assert!(hist.expired(&[&fresh], SimTime::from_mins(50)).is_empty());
        assert_eq!(hist.expired(&[&fresh], SimTime::from_mins(52)).len(), 1);
    }

    #[test]
    fn incremental_pop_prefers_farthest_predicted_use() {
        let mut reg = FunctionRegistry::new();
        let soon = spec(&mut reg, "soon");
        let late = spec(&mut reg, "late");
        let mut hist = Hist::new(HistConfig::default());
        for i in 0..10u64 {
            hist.on_request(&soon, SimTime::from_mins(i * 2));
            hist.on_request(&late, SimTime::from_mins(i * 60));
        }
        let c_soon = container_of(&soon, 1, SimTime::from_mins(18));
        let c_late = container_of(&late, 2, SimTime::from_mins(540));
        hist.on_finish(&c_soon, SimTime::from_mins(18));
        hist.on_finish(&c_late, SimTime::from_mins(540));
        assert_eq!(hist.peek_victim(), Some(ContainerId::from_raw(2)));
        assert_eq!(hist.pop_victim(), Some(ContainerId::from_raw(2)));
        assert_eq!(hist.pop_victim(), Some(ContainerId::from_raw(1)));
        assert_eq!(hist.pop_victim(), None);
    }

    #[test]
    fn incremental_expiry_follows_generic_ttl() {
        let mut reg = FunctionRegistry::new();
        let s = spec(&mut reg, "once");
        let mut hist = Hist::new(HistConfig::default());
        hist.on_request(&s, SimTime::ZERO);
        let c = container_of(&s, 1, SimTime::ZERO);
        hist.on_finish(&c, SimTime::ZERO);
        assert!(hist.pop_expired(SimTime::from_mins(119)).is_none());
        assert_eq!(hist.pop_expired(SimTime::from_mins(121)), Some(c.id()));
        assert!(hist.pop_expired(SimTime::from_mins(121)).is_none());
    }

    #[test]
    fn request_rekeys_idle_containers() {
        let mut reg = FunctionRegistry::new();
        let s = spec(&mut reg, "steady");
        let mut hist = Hist::new(HistConfig::default());
        for i in 0..10u64 {
            hist.on_request(&s, SimTime::from_mins(i * 5));
        }
        // An idle container of the steady function, last used at the last
        // invocation: a pre-warm is pending, so it is released after the
        // 1-minute margin (deadline ≈ 46 min).
        let c = container_of(&s, 1, SimTime::from_mins(45));
        hist.on_finish(&c, SimTime::from_mins(45));
        assert!(hist.pop_expired(SimTime::from_secs(45 * 60 + 30)).is_none());
        // The pre-warm fires: the container is re-keyed to the tail
        // horizon (≈ 45 + 5.5 + 1 min) instead of expiring at 46 min.
        let due = hist.prewarm_due(SimTime::from_secs(45 * 60 + 270));
        assert_eq!(due, vec![s.id()]);
        assert!(hist.pop_expired(SimTime::from_mins(46)).is_none());
        assert_eq!(hist.pop_expired(SimTime::from_mins(52)), Some(c.id()));
    }

    #[test]
    fn eviction_prefers_farthest_predicted_use() {
        let mut reg = FunctionRegistry::new();
        let soon = spec(&mut reg, "soon");
        let late = spec(&mut reg, "late");
        let mut hist = Hist::new(HistConfig::default());
        for i in 0..10u64 {
            hist.on_request(&soon, SimTime::from_mins(i * 2));
            hist.on_request(&late, SimTime::from_mins(i * 60));
        }
        let c_soon = container_of(&soon, 1, SimTime::from_mins(18));
        let c_late = container_of(&late, 2, SimTime::from_mins(540));
        let victims = hist.select_victims(&[&c_soon, &c_late], MemMb::new(128));
        assert_eq!(victims, vec![ContainerId::from_raw(2)]);
    }
}
