//! Incremental eviction-order indexes shared by the keep-alive policies.
//!
//! The seed implementation re-derived the eviction order on every pool loop
//! iteration: collect all idle containers, sort them by policy priority,
//! take a prefix. These structures maintain the same order persistently so
//! that evicting k victims out of n idle containers costs O(k log n):
//!
//! - [`OrderedIdleSet`] — a `BTreeSet` keyed by an immutable-while-idle
//!   priority key, for policies whose key is fixed between the moment a
//!   container becomes idle and the moment it leaves the idle set (LRU,
//!   TTL, SIZE, Landlord-with-offsets, HIST-with-rekeying).
//! - [`VictimHeap`] — a lazy-deletion binary min-heap with stale-entry
//!   versioning, for policies whose key can *grow* while the container sits
//!   idle (GreedyDual and LFU: another container of the same function can
//!   warm-start and raise the function frequency). Entries are validated
//!   against the live key on pop and re-pushed when outdated, which is
//!   sound exactly because keys never decrease while a container is idle.
//! - [`TotalF64`] — a totally ordered `f64` wrapper (via `total_cmp`) so
//!   finite priorities can be used as ordered keys. For finite values the
//!   order coincides with the `partial_cmp` the naive sort used.

use crate::container::ContainerId;
use faascache_util::SimTime;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};

/// An `f64` ordered by [`f64::total_cmp`].
///
/// Policy priorities are always finite, and over finite values `total_cmp`
/// agrees with `partial_cmp` — so replacing the naive sort's comparator
/// with this key preserves the exact victim order.
#[derive(Debug, Clone, Copy, Default)]
pub struct TotalF64(pub f64);

impl PartialEq for TotalF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == std::cmp::Ordering::Equal
    }
}

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// An ordered index over idle containers whose sort key does not change
/// while the container is idle.
///
/// Iteration (and [`Self::pop_first`]) yields containers in ascending
/// `(key, last_used, id)` order — the victim order every ordering-based
/// policy uses, with the container id as the final tie-break (see the
/// pool's tie-break contract).
#[derive(Debug, Clone, Default)]
pub struct OrderedIdleSet<K: Ord + Copy> {
    set: BTreeSet<(K, SimTime, ContainerId)>,
    keys: HashMap<ContainerId, (K, SimTime)>,
}

impl<K: Ord + Copy> OrderedIdleSet<K> {
    /// Creates an empty index.
    pub fn new() -> Self {
        OrderedIdleSet {
            set: BTreeSet::new(),
            keys: HashMap::new(),
        }
    }

    /// Number of indexed containers.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Whether `id` is indexed.
    pub fn contains(&self, id: ContainerId) -> bool {
        self.keys.contains_key(&id)
    }

    /// The key `id` was inserted with, if indexed.
    pub fn key_of(&self, id: ContainerId) -> Option<K> {
        self.keys.get(&id).map(|&(k, _)| k)
    }

    /// Inserts (or re-keys) a container.
    pub fn insert(&mut self, id: ContainerId, key: K, last_used: SimTime) {
        if let Some((old_key, old_used)) = self.keys.insert(id, (key, last_used)) {
            self.set.remove(&(old_key, old_used, id));
        }
        self.set.insert((key, last_used, id));
    }

    /// Removes a container; a no-op when it is not indexed.
    pub fn remove(&mut self, id: ContainerId) {
        if let Some((key, last_used)) = self.keys.remove(&id) {
            self.set.remove(&(key, last_used, id));
        }
    }

    /// The smallest entry without removing it.
    pub fn first(&self) -> Option<(K, SimTime, ContainerId)> {
        self.set.first().copied()
    }

    /// Removes and returns the smallest entry.
    pub fn pop_first(&mut self) -> Option<(K, SimTime, ContainerId)> {
        let entry = self.set.pop_first()?;
        self.keys.remove(&entry.2);
        Some(entry)
    }
}

type HeapEntry<K> = Reverse<(K, SimTime, ContainerId, u64)>;

/// A lazy-deletion min-heap over idle containers, for policies whose key
/// may *increase* while a container is idle.
///
/// Each insert (and each re-push) gets a fresh generation number; removal
/// just drops the membership record, and superseded or removed heap entries
/// are discarded when they surface. On pop, a live entry's stored key is
/// compared against the policy's current key: if the key has grown since
/// the entry was pushed, the entry is re-pushed at the current key. This
/// settles in at most one re-push per live entry per call *provided keys
/// never decrease while idle* — the invariant GreedyDual and LFU satisfy
/// (frequency only grows while a function has resident containers).
#[derive(Debug, Clone, Default)]
pub struct VictimHeap<K: Ord + Copy> {
    heap: BinaryHeap<HeapEntry<K>>,
    /// id → (generation of the authoritative heap entry, last_used key).
    members: HashMap<ContainerId, (u64, SimTime)>,
    next_gen: u64,
}

impl<K: Ord + Copy> VictimHeap<K> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        VictimHeap {
            heap: BinaryHeap::new(),
            members: HashMap::new(),
            next_gen: 0,
        }
    }

    /// Number of live (member) containers.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether no live containers are indexed.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `id` is a live member.
    pub fn contains(&self, id: ContainerId) -> bool {
        self.members.contains_key(&id)
    }

    fn fresh_gen(&mut self) -> u64 {
        let gen = self.next_gen;
        self.next_gen += 1;
        gen
    }

    /// Inserts (or re-keys) a container at `key`.
    pub fn insert(&mut self, id: ContainerId, key: K, last_used: SimTime) {
        let gen = self.fresh_gen();
        self.members.insert(id, (gen, last_used));
        self.heap.push(Reverse((key, last_used, id, gen)));
    }

    /// Removes a container lazily; a no-op when it is not a member.
    pub fn remove(&mut self, id: ContainerId) {
        self.members.remove(&id);
    }

    /// Removes and returns the container with the minimal
    /// `(current_key(id), last_used, id)`, or `None` when empty.
    ///
    /// `current_key` must return the policy's *live* key for a member id,
    /// and that key must be `>=` the key the member was inserted with.
    pub fn pop_min_with<F>(&mut self, mut current_key: F) -> Option<ContainerId>
    where
        F: FnMut(ContainerId) -> K,
    {
        while let Some(Reverse((key, last_used, id, gen))) = self.heap.pop() {
            match self.members.get(&id) {
                Some(&(live_gen, _)) if live_gen == gen => {
                    let live_key = current_key(id);
                    if live_key == key {
                        self.members.remove(&id);
                        return Some(id);
                    }
                    // Outdated: re-push at the live key. The next time this
                    // entry surfaces (policy state unchanged within one
                    // call) the keys match and it pops for real.
                    let new_gen = self.fresh_gen();
                    self.members.insert(id, (new_gen, last_used));
                    self.heap.push(Reverse((live_key, last_used, id, new_gen)));
                }
                _ => {} // removed or superseded: discard
            }
        }
        None
    }

    /// Re-keys every live member at its current key.
    ///
    /// Lazy re-pushing only corrects keys that have *grown*: an entry whose
    /// live key has shrunk below its stored key stays buried until the
    /// stale (too-high) key surfaces. When an external input to the key
    /// function changes in a way that may decrease keys — e.g. a tenant
    /// eviction weight is raised — callers use this to restore heap order
    /// in one O(n log n) sweep. Old entries are superseded by generation
    /// and discarded when they surface.
    pub fn rekey_all_with<F>(&mut self, mut current_key: F)
    where
        F: FnMut(ContainerId) -> K,
    {
        let live: Vec<(ContainerId, SimTime)> = self
            .members
            .iter()
            .map(|(&id, &(_, last_used))| (id, last_used))
            .collect();
        for (id, last_used) in live {
            let key = current_key(id);
            self.insert(id, key, last_used);
        }
    }

    /// The container that [`Self::pop_min_with`] would return, without
    /// removing it. Settles stale heap entries as a side effect.
    pub fn peek_min_with<F>(&mut self, mut current_key: F) -> Option<ContainerId>
    where
        F: FnMut(ContainerId) -> K,
    {
        loop {
            let Reverse((key, last_used, id, gen)) = *self.heap.peek()?;
            match self.members.get(&id) {
                Some(&(live_gen, _)) if live_gen == gen => {
                    let live_key = current_key(id);
                    if live_key == key {
                        return Some(id);
                    }
                    self.heap.pop();
                    let new_gen = self.fresh_gen();
                    self.members.insert(id, (new_gen, last_used));
                    self.heap.push(Reverse((live_key, last_used, id, new_gen)));
                }
                _ => {
                    self.heap.pop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> ContainerId {
        ContainerId::from_raw(n)
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn total_f64_orders_like_partial_cmp_on_finite() {
        let mut v = [TotalF64(3.5), TotalF64(-1.0), TotalF64(0.0), TotalF64(2.0)];
        v.sort();
        let raw: Vec<f64> = v.iter().map(|x| x.0).collect();
        assert_eq!(raw, vec![-1.0, 0.0, 2.0, 3.5]);
    }

    #[test]
    fn ordered_set_pops_in_key_then_recency_then_id_order() {
        let mut set = OrderedIdleSet::new();
        set.insert(id(3), 1u64, t(5));
        set.insert(id(1), 1, t(5));
        set.insert(id(2), 0, t(9));
        set.insert(id(4), 1, t(2));
        assert_eq!(set.pop_first().unwrap().2, id(2), "lowest key first");
        assert_eq!(set.pop_first().unwrap().2, id(4), "older last_used next");
        assert_eq!(set.pop_first().unwrap().2, id(1), "id breaks exact ties");
        assert_eq!(set.pop_first().unwrap().2, id(3));
        assert!(set.pop_first().is_none());
    }

    #[test]
    fn ordered_set_rekey_and_remove() {
        let mut set = OrderedIdleSet::new();
        set.insert(id(1), 5u64, t(0));
        set.insert(id(2), 1, t(0));
        set.insert(id(2), 9, t(0)); // re-key
        assert_eq!(set.len(), 2);
        assert_eq!(set.first().unwrap().2, id(1));
        set.remove(id(1));
        set.remove(id(1)); // idempotent
        assert_eq!(set.pop_first().unwrap().2, id(2));
        assert!(set.is_empty());
    }

    #[test]
    fn victim_heap_lazy_removal_discards_stale_entries() {
        let mut heap = VictimHeap::new();
        heap.insert(id(1), 1u64, t(0));
        heap.insert(id(2), 2, t(0));
        heap.remove(id(1));
        assert_eq!(heap.len(), 1);
        assert_eq!(heap.pop_min_with(|_| 2), Some(id(2)));
        assert_eq!(heap.pop_min_with(|_| 0), None);
    }

    #[test]
    fn victim_heap_repushes_outdated_keys() {
        let mut heap = VictimHeap::new();
        // id 1 inserted with a low key that has since grown past id 2's.
        heap.insert(id(1), 1u64, t(0));
        heap.insert(id(2), 3, t(0));
        let live = |i: ContainerId| if i == id(1) { 5u64 } else { 3 };
        assert_eq!(heap.peek_min_with(live), Some(id(2)));
        assert_eq!(heap.pop_min_with(live), Some(id(2)));
        assert_eq!(heap.pop_min_with(live), Some(id(1)));
        assert!(heap.is_empty());
    }

    #[test]
    fn victim_heap_ties_break_by_last_used_then_id() {
        let mut heap = VictimHeap::new();
        heap.insert(id(7), 1u64, t(3));
        heap.insert(id(4), 1, t(3));
        heap.insert(id(9), 1, t(1));
        assert_eq!(heap.pop_min_with(|_| 1), Some(id(9)));
        assert_eq!(heap.pop_min_with(|_| 1), Some(id(4)));
        assert_eq!(heap.pop_min_with(|_| 1), Some(id(7)));
    }

    #[test]
    fn victim_heap_reinsert_supersedes_old_entry() {
        let mut heap = VictimHeap::new();
        heap.insert(id(1), 10u64, t(0));
        heap.insert(id(1), 2, t(5)); // became idle again with a new key
        assert_eq!(heap.len(), 1);
        assert_eq!(heap.pop_min_with(|_| 2), Some(id(1)));
        assert!(heap.pop_min_with(|_| 2).is_none());
    }
}
