//! The Landlord online caching algorithm as a keep-alive policy (paper
//! §4.2, Young 2002).
//!
//! Each resident container holds a *credit*. When space must be freed, a
//! "rent" proportional to each container's size is charged: the rent rate
//! is `min(credit / size)` over all idle containers, so at least one
//! credit reaches zero per round. Zero-credit containers are evicted. On a
//! warm hit a container's credit is restored to its cost (we use the
//! initialization overhead, matching Greedy-Dual's `Cost`).
//!
//! Unlike GDSF — where priorities decay only through the global clock
//! captured at use time — Landlord's rent decrement "is computed based on
//! the state of all the cached containers, and not independently applied."

use crate::container::{Container, ContainerId};
use crate::policy::index::{OrderedIdleSet, TotalF64};
use crate::policy::KeepAlivePolicy;
use faascache_util::{MemMb, SimTime};
use std::collections::HashMap;

/// Incremental eviction order for Landlord, using the classic *offset*
/// formulation of the algorithm (often written `L` in analyses of
/// Landlord/GreedyDual): instead of decrementing every idle container's
/// credit on each rent round, a global cumulative rent-per-MB `offset` is
/// advanced and each idle container stores the constant key
///
/// ```text
/// key = offset_at_insert + credit / size
/// ```
///
/// The container with the smallest key is the next to run out of credit.
/// Popping it advances `offset` to its key — implicitly charging every
/// survivor the same rent — and a survivor's effective credit can be
/// recovered as `(key - offset) * size`, clamped at zero.
///
/// Rent rounds subtract `delta * size` from each credit, i.e. they subtract
/// `delta` from each *ratio* `credit / size`; the ordering of ratios is
/// therefore invariant under rent, which is what makes the constant-key
/// encoding exact. Exact floating-point equality with the iterative rounds
/// holds when `cost / size` is exactly representable (e.g. power-of-two
/// sizes); otherwise the two accumulate rounding differently on the order
/// of machine epsilon.
#[derive(Debug, Default)]
struct LandlordIndex {
    /// Idle containers ordered by `(key, last_used, id)` — matching the
    /// naive path's `(used, id)` order within a zero-credit group.
    set: OrderedIdleSet<TotalF64>,
    /// Size (MB, ≥ 1) of each idle member, for effective-credit recovery.
    sizes: HashMap<ContainerId, f64>,
    /// Cumulative rent charged per MB so far.
    offset: f64,
}

/// The Landlord keep-alive policy (`LND` in the paper's figures).
///
/// # Examples
///
/// ```
/// use faascache_core::policy::{KeepAlivePolicy, Landlord};
/// assert_eq!(Landlord::new().name(), "LND");
/// ```
#[derive(Debug)]
pub struct Landlord {
    credits: HashMap<ContainerId, f64>,
    index: Option<LandlordIndex>,
}

impl Landlord {
    /// Creates the policy (incremental eviction index).
    pub fn new() -> Self {
        Landlord {
            credits: HashMap::new(),
            index: Some(LandlordIndex::default()),
        }
    }

    /// Creates the policy with the naive rent-round eviction path.
    pub fn naive() -> Self {
        Landlord {
            credits: HashMap::new(),
            index: None,
        }
    }

    /// Current credit of a container (None if unknown).
    ///
    /// For an idle container under the incremental index this is the
    /// *effective* credit `(key - offset) * size`, which already accounts
    /// for all rent charged since the container went idle.
    pub fn credit(&self, id: ContainerId) -> Option<f64> {
        if let Some(index) = self.index.as_ref() {
            if let Some(key) = index.set.key_of(id) {
                let size = index.sizes.get(&id).copied().unwrap_or(1.0);
                return Some(((key.0 - index.offset) * size).max(0.0));
            }
        }
        self.credits.get(&id).copied()
    }

    fn cost(container: &Container) -> f64 {
        // Guard against zero-cost functions: every container retains a
        // minimal credit so rent rounds terminate sensibly.
        container.init_overhead().as_secs_f64().max(1e-9)
    }

    fn size_of(container: &Container) -> f64 {
        container.mem().as_mb().max(1) as f64
    }

    fn index_insert(&mut self, container: &Container) {
        let credit = self
            .credits
            .get(&container.id())
            .copied()
            .unwrap_or_else(|| Self::cost(container));
        let size = Self::size_of(container);
        if let Some(index) = self.index.as_mut() {
            let key = TotalF64(index.offset + credit / size);
            index.sizes.insert(container.id(), size);
            index.set.insert(container.id(), key, container.last_used());
        }
    }

    fn index_remove(&mut self, id: ContainerId) {
        if let Some(index) = self.index.as_mut() {
            index.set.remove(id);
            index.sizes.remove(&id);
        }
    }
}

impl Default for Landlord {
    fn default() -> Self {
        Self::new()
    }
}

impl KeepAlivePolicy for Landlord {
    fn name(&self) -> &'static str {
        "LND"
    }

    fn on_warm_start(&mut self, container: &Container, _now: SimTime) {
        // Credit refresh: Landlord permits any value in [current, cost];
        // taking the maximum (the cost) is the standard instantiation.
        self.index_remove(container.id());
        self.credits.insert(container.id(), Self::cost(container));
    }

    fn on_container_created(&mut self, container: &Container, _now: SimTime, prewarm: bool) {
        self.credits.insert(container.id(), Self::cost(container));
        if prewarm {
            self.index_insert(container);
        }
    }

    fn on_finish(&mut self, container: &Container, _now: SimTime) {
        self.index_insert(container);
    }

    fn select_victims(&mut self, idle: &[&Container], needed: MemMb) -> Vec<ContainerId> {
        let mut victims = Vec::new();
        let mut freed = MemMb::ZERO;
        // Work on a local copy of the credits of the candidates; commit the
        // rent charges at the end so repeated calls are consistent.
        let mut local: Vec<(&&Container, f64)> = idle
            .iter()
            .map(|c| {
                let credit = self
                    .credits
                    .get(&c.id())
                    .copied()
                    .unwrap_or_else(|| Self::cost(c));
                (c, credit)
            })
            .collect();
        while freed < needed && victims.len() < local.len() {
            // Rent rate: the smallest credit/size among surviving candidates.
            let delta = local
                .iter()
                .filter(|(c, _)| !victims.contains(&c.id()))
                .map(|(c, credit)| credit / c.mem().as_mb().max(1) as f64)
                .fold(f64::INFINITY, f64::min);
            if !delta.is_finite() {
                break;
            }
            // Charge rent to every candidate; evict those that hit zero,
            // lowest first, until enough is freed.
            let mut newly_zero: Vec<(ContainerId, MemMb, SimTime)> = Vec::new();
            for (c, credit) in local.iter_mut() {
                if victims.contains(&c.id()) {
                    continue;
                }
                *credit -= delta * c.mem().as_mb().max(1) as f64;
                if *credit <= 1e-12 {
                    *credit = 0.0;
                    newly_zero.push((c.id(), c.mem(), c.last_used()));
                }
            }
            // Deterministic order: oldest last-use first.
            newly_zero.sort_by_key(|&(id, _, used)| (used, id));
            for (id, mem, _) in newly_zero {
                if freed >= needed {
                    break;
                }
                victims.push(id);
                freed += mem;
            }
        }
        // Commit the surviving candidates' reduced credits.
        for (c, credit) in local {
            if !victims.contains(&c.id()) {
                self.credits.insert(c.id(), credit);
            }
        }
        victims
    }

    fn on_evicted(&mut self, container: &Container, _remaining: usize, _now: SimTime) {
        self.credits.remove(&container.id());
        self.index_remove(container.id());
    }

    fn supports_incremental(&self) -> bool {
        self.index.is_some()
    }

    fn peek_victim(&mut self) -> Option<ContainerId> {
        self.index.as_ref()?.set.first().map(|(_, _, id)| id)
    }

    fn pop_victim(&mut self) -> Option<ContainerId> {
        let index = self.index.as_mut()?;
        let (key, _, id) = index.set.pop_first()?;
        // Advancing the offset to the popped key implicitly charges every
        // surviving idle container the rent that drove this victim's
        // credit to zero.
        if key.0 > index.offset {
            index.offset = key.0;
        }
        index.sizes.remove(&id);
        Some(id)
    }

    fn priority_of(&self, container: &Container) -> Option<f64> {
        self.credit(container.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionId;
    use faascache_util::SimDuration;

    fn container(id: u64, mem: u64, init_secs: u64) -> Container {
        Container::new(
            ContainerId::from_raw(id),
            FunctionId::from_index(id as u32),
            MemMb::new(mem),
            SimDuration::ZERO,
            SimDuration::from_secs(init_secs),
            None,
            SimTime::ZERO,
        )
    }

    #[test]
    fn initial_credit_is_cost() {
        let mut lnd = Landlord::new();
        let c = container(1, 100, 5);
        lnd.on_container_created(&c, SimTime::ZERO, false);
        assert!((lnd.credit(c.id()).unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn warm_hit_refreshes_credit() {
        let mut lnd = Landlord::new();
        let a = container(1, 100, 5);
        let b = container(2, 100, 5);
        lnd.on_container_created(&a, SimTime::ZERO, false);
        lnd.on_container_created(&b, SimTime::ZERO, false);
        // Charge rent by evicting someone else's worth of memory.
        let victims = lnd.select_victims(&[&a, &b], MemMb::new(100));
        assert_eq!(victims.len(), 1);
        let survivor = if victims[0] == a.id() { &b } else { &a };
        let drained = lnd.credit(survivor.id()).unwrap();
        assert!(drained < 5.0);
        lnd.on_warm_start(survivor, SimTime::from_secs(1));
        assert!((lnd.credit(survivor.id()).unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn rent_evicts_lowest_credit_per_size() {
        let mut lnd = Landlord::new();
        // Same size, different costs: the cheap one runs out of credit first.
        let cheap = container(1, 100, 1);
        let dear = container(2, 100, 10);
        lnd.on_container_created(&cheap, SimTime::ZERO, false);
        lnd.on_container_created(&dear, SimTime::ZERO, false);
        let victims = lnd.select_victims(&[&cheap, &dear], MemMb::new(100));
        assert_eq!(victims, vec![ContainerId::from_raw(1)]);
        // Survivor paid rent: 10 - (1/100)*100 = 9.
        assert!((lnd.credit(dear.id()).unwrap() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn rent_favors_small_containers_at_equal_cost() {
        let mut lnd = Landlord::new();
        let small = container(1, 64, 4);
        let big = container(2, 1024, 4);
        lnd.on_container_created(&small, SimTime::ZERO, false);
        lnd.on_container_created(&big, SimTime::ZERO, false);
        // Rent rate = min(4/64, 4/1024) = 4/1024; big hits zero first.
        let victims = lnd.select_victims(&[&small, &big], MemMb::new(512));
        assert_eq!(victims, vec![ContainerId::from_raw(2)]);
    }

    #[test]
    fn multiple_rounds_until_enough_freed() {
        let mut lnd = Landlord::new();
        let a = container(1, 100, 1);
        let b = container(2, 100, 2);
        let c = container(3, 100, 30);
        for x in [&a, &b, &c] {
            lnd.on_container_created(x, SimTime::ZERO, false);
        }
        let victims = lnd.select_victims(&[&a, &b, &c], MemMb::new(200));
        assert_eq!(victims.len(), 2);
        assert!(!victims.contains(&ContainerId::from_raw(3)));
    }

    #[test]
    fn incremental_pop_charges_rent_via_offset() {
        let mut lnd = Landlord::new();
        let cheap = container(1, 100, 1);
        let dear = container(2, 100, 10);
        lnd.on_container_created(&cheap, SimTime::ZERO, false);
        lnd.on_container_created(&dear, SimTime::ZERO, false);
        lnd.on_finish(&cheap, SimTime::ZERO);
        lnd.on_finish(&dear, SimTime::ZERO);
        assert_eq!(lnd.peek_victim(), Some(cheap.id()));
        assert_eq!(lnd.pop_victim(), Some(cheap.id()));
        // Survivor's effective credit: 10 - (1/100)*100 = 9, exactly as
        // the naive rent round computes.
        assert!((lnd.credit(dear.id()).unwrap() - 9.0).abs() < 1e-9);
        assert_eq!(lnd.pop_victim(), Some(dear.id()));
        assert_eq!(lnd.pop_victim(), None);
    }

    #[test]
    fn incremental_rent_is_per_size() {
        let mut lnd = Landlord::new();
        let small = container(1, 64, 4);
        let big = container(2, 1024, 4);
        lnd.on_container_created(&small, SimTime::ZERO, false);
        lnd.on_container_created(&big, SimTime::ZERO, false);
        lnd.on_finish(&small, SimTime::ZERO);
        lnd.on_finish(&big, SimTime::ZERO);
        // Rates to zero: 4/64 vs 4/1024 — the big container drains first.
        assert_eq!(lnd.pop_victim(), Some(big.id()));
        // Small's effective credit: 4 - (4/1024)*64 = 3.75.
        assert!((lnd.credit(small.id()).unwrap() - 3.75).abs() < 1e-12);
    }

    #[test]
    fn warm_start_leaves_eviction_order() {
        let mut lnd = Landlord::new();
        let a = container(1, 100, 1);
        let b = container(2, 100, 10);
        lnd.on_container_created(&a, SimTime::ZERO, false);
        lnd.on_container_created(&b, SimTime::ZERO, false);
        lnd.on_finish(&a, SimTime::ZERO);
        lnd.on_finish(&b, SimTime::ZERO);
        lnd.on_warm_start(&a, SimTime::from_secs(1));
        // `a` is busy again: only `b` is poppable.
        assert_eq!(lnd.pop_victim(), Some(b.id()));
        assert_eq!(lnd.pop_victim(), None);
    }

    #[test]
    fn eviction_clears_credit() {
        let mut lnd = Landlord::new();
        let c = container(1, 100, 5);
        lnd.on_container_created(&c, SimTime::ZERO, false);
        lnd.on_evicted(&c, 0, SimTime::ZERO);
        assert!(lnd.credit(c.id()).is_none());
    }
}
