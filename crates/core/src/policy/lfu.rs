//! Least-frequently-used keep-alive (the paper's `FREQ` variant, §4.2).
//!
//! Uses only invocation frequency as the Greedy-Dual priority; ties break
//! by recency. Like GD, a function's frequency resets when its last
//! container is terminated.

use crate::container::{Container, ContainerId};
use crate::function::FunctionId;
use crate::policy::index::VictimHeap;
use crate::policy::{take_until_freed, KeepAlivePolicy};
use faascache_util::{MemMb, SimTime};
use std::collections::HashMap;

/// Incremental eviction order for LFU.
///
/// A lazy heap is required (not a plain ordered set) because an idle
/// container's key — its function's frequency — grows when a *sibling*
/// container of the same function serves a warm start. Frequencies never
/// decrease while a function has resident containers, which is exactly the
/// monotonicity [`VictimHeap`] needs.
#[derive(Debug, Default)]
struct LfuIndex {
    heap: VictimHeap<u64>,
    /// Function of each idle member, for key recomputation on pop.
    function_of: HashMap<ContainerId, FunctionId>,
}

/// Least-frequently-used keep-alive policy.
///
/// # Examples
///
/// ```
/// use faascache_core::policy::{KeepAlivePolicy, Lfu};
/// assert_eq!(Lfu::new().name(), "FREQ");
/// ```
#[derive(Debug)]
pub struct Lfu {
    freq: HashMap<FunctionId, u64>,
    index: Option<LfuIndex>,
}

impl Lfu {
    /// Creates the policy (incremental eviction index).
    pub fn new() -> Self {
        Lfu {
            freq: HashMap::new(),
            index: Some(LfuIndex::default()),
        }
    }

    /// Creates the policy with the naive sort-based eviction path.
    pub fn naive() -> Self {
        Lfu {
            freq: HashMap::new(),
            index: None,
        }
    }

    /// Current frequency of a function.
    pub fn frequency(&self, function: FunctionId) -> u64 {
        self.freq.get(&function).copied().unwrap_or(0)
    }

    fn bump(&mut self, function: FunctionId) {
        *self.freq.entry(function).or_insert(0) += 1;
    }

    fn index_insert(&mut self, container: &Container) {
        let key = self.frequency(container.function());
        if let Some(index) = self.index.as_mut() {
            index
                .function_of
                .insert(container.id(), container.function());
            index
                .heap
                .insert(container.id(), key, container.last_used());
        }
    }
}

impl Default for Lfu {
    fn default() -> Self {
        Self::new()
    }
}

impl KeepAlivePolicy for Lfu {
    fn name(&self) -> &'static str {
        "FREQ"
    }

    fn on_warm_start(&mut self, container: &Container, _now: SimTime) {
        self.bump(container.function());
        if let Some(index) = self.index.as_mut() {
            index.heap.remove(container.id());
            index.function_of.remove(&container.id());
        }
    }

    fn on_container_created(&mut self, container: &Container, _now: SimTime, prewarm: bool) {
        if !prewarm {
            self.bump(container.function());
        } else {
            self.index_insert(container);
        }
    }

    fn on_finish(&mut self, container: &Container, _now: SimTime) {
        self.index_insert(container);
    }

    fn select_victims(&mut self, idle: &[&Container], needed: MemMb) -> Vec<ContainerId> {
        let mut ranked: Vec<&Container> = idle.to_vec();
        ranked.sort_by(|a, b| {
            self.frequency(a.function())
                .cmp(&self.frequency(b.function()))
                .then(a.last_used().cmp(&b.last_used()))
        });
        take_until_freed(&ranked, needed)
    }

    fn on_evicted(&mut self, container: &Container, remaining_of_function: usize, _now: SimTime) {
        if remaining_of_function == 0 {
            self.freq.remove(&container.function());
        }
        if let Some(index) = self.index.as_mut() {
            index.heap.remove(container.id());
            index.function_of.remove(&container.id());
        }
    }

    fn supports_incremental(&self) -> bool {
        self.index.is_some()
    }

    fn peek_victim(&mut self) -> Option<ContainerId> {
        let freq = &self.freq;
        let LfuIndex { heap, function_of } = self.index.as_mut()?;
        heap.peek_min_with(|id| {
            function_of
                .get(&id)
                .and_then(|f| freq.get(f))
                .copied()
                .unwrap_or(0)
        })
    }

    fn pop_victim(&mut self) -> Option<ContainerId> {
        let freq = &self.freq;
        let LfuIndex { heap, function_of } = self.index.as_mut()?;
        let id = heap.pop_min_with(|id| {
            function_of
                .get(&id)
                .and_then(|f| freq.get(f))
                .copied()
                .unwrap_or(0)
        })?;
        function_of.remove(&id);
        Some(id)
    }

    fn priority_of(&self, container: &Container) -> Option<f64> {
        Some(self.frequency(container.function()) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faascache_util::SimDuration;

    fn container(id: u64, fid: u32) -> Container {
        Container::new(
            ContainerId::from_raw(id),
            FunctionId::from_index(fid),
            MemMb::new(100),
            SimDuration::from_millis(10),
            SimDuration::from_millis(20),
            None,
            SimTime::ZERO,
        )
    }

    #[test]
    fn evicts_least_frequent() {
        let mut lfu = Lfu::new();
        let hot = container(1, 0);
        let cold = container(2, 1);
        lfu.on_container_created(&hot, SimTime::ZERO, false);
        lfu.on_container_created(&cold, SimTime::ZERO, false);
        for _ in 0..9 {
            lfu.on_warm_start(&hot, SimTime::from_secs(1));
        }
        assert_eq!(lfu.frequency(hot.function()), 10);
        assert_eq!(lfu.frequency(cold.function()), 1);
        let victims = lfu.select_victims(&[&hot, &cold], MemMb::new(100));
        assert_eq!(victims, vec![ContainerId::from_raw(2)]);
    }

    #[test]
    fn frequency_resets_on_full_eviction() {
        let mut lfu = Lfu::new();
        let c = container(1, 5);
        lfu.on_container_created(&c, SimTime::ZERO, false);
        lfu.on_warm_start(&c, SimTime::from_secs(1));
        assert_eq!(lfu.frequency(c.function()), 2);
        lfu.on_evicted(&c, 0, SimTime::from_secs(2));
        assert_eq!(lfu.frequency(c.function()), 0);
    }

    #[test]
    fn recency_breaks_frequency_ties() {
        let mut lfu = Lfu::new();
        let mut a = container(1, 0);
        let mut b = container(2, 1);
        lfu.on_container_created(&a, SimTime::ZERO, false);
        lfu.on_container_created(&b, SimTime::ZERO, false);
        a.begin_invocation(SimTime::from_secs(10), SimTime::from_secs(11));
        a.finish_invocation();
        b.begin_invocation(SimTime::from_secs(5), SimTime::from_secs(6));
        b.finish_invocation();
        // Frequencies: a=1 (created) ... begin_invocation on the container does
        // not bump policy frequency by itself; both are tied at 1 → older b first.
        let victims = lfu.select_victims(&[&a, &b], MemMb::new(100));
        assert_eq!(victims, vec![ContainerId::from_raw(2)]);
    }

    #[test]
    fn prewarm_gets_no_credit() {
        let mut lfu = Lfu::new();
        let c = container(1, 2);
        lfu.on_container_created(&c, SimTime::ZERO, true);
        assert_eq!(lfu.frequency(c.function()), 0);
    }

    #[test]
    fn incremental_pop_tracks_sibling_frequency_growth() {
        let mut lfu = Lfu::new();
        // Two containers of function 0, one of function 1.
        let a = container(1, 0);
        let b = container(2, 0);
        let c = container(3, 1);
        for x in [&a, &b, &c] {
            lfu.on_container_created(x, SimTime::ZERO, false);
        }
        // All idle; function 0 at freq 2, function 1 at freq 1.
        for x in [&a, &b, &c] {
            lfu.on_finish(x, SimTime::ZERO);
        }
        // A warm start on `a` bumps function 0 to 3 *after* `b` was
        // indexed at freq 2: the heap must re-rank `b` behind `c`.
        lfu.on_warm_start(&a, SimTime::from_secs(1));
        assert_eq!(lfu.peek_victim(), Some(ContainerId::from_raw(3)));
        assert_eq!(lfu.pop_victim(), Some(ContainerId::from_raw(3)));
        assert_eq!(lfu.pop_victim(), Some(ContainerId::from_raw(2)));
        assert_eq!(lfu.pop_victim(), None);
    }
}
