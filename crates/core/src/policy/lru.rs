//! Least-recently-used keep-alive (paper §4.2).
//!
//! LRU is the Greedy-Dual degenerate case that keeps only the access clock:
//! the least recently used idle container is terminated first. It is
//! resource-conserving — containers never expire while memory is free.

use crate::container::{Container, ContainerId};
use crate::policy::{take_until_freed, KeepAlivePolicy};
use faascache_util::{MemMb, SimTime};

/// Least-recently-used keep-alive policy.
///
/// # Examples
///
/// ```
/// use faascache_core::policy::{KeepAlivePolicy, Lru};
/// assert_eq!(Lru::new().name(), "LRU");
/// ```
#[derive(Debug, Default)]
pub struct Lru {
    _private: (),
}

impl Lru {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl KeepAlivePolicy for Lru {
    fn name(&self) -> &'static str {
        "LRU"
    }

    fn on_warm_start(&mut self, _container: &Container, _now: SimTime) {}

    fn on_container_created(&mut self, _container: &Container, _now: SimTime, _prewarm: bool) {}

    fn select_victims(&mut self, idle: &[&Container], needed: MemMb) -> Vec<ContainerId> {
        let mut ranked: Vec<&Container> = idle.to_vec();
        ranked.sort_by_key(|c| c.last_used());
        take_until_freed(&ranked, needed)
    }

    fn on_evicted(&mut self, _container: &Container, _remaining: usize, _now: SimTime) {}

    fn priority_of(&self, container: &Container) -> Option<f64> {
        Some(container.last_used().as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionId;
    use faascache_util::SimDuration;

    fn container_used_at(id: u64, used: u64) -> Container {
        let mut c = Container::new(
            ContainerId::from_raw(id),
            FunctionId::from_index(id as u32),
            MemMb::new(100),
            SimDuration::from_millis(10),
            SimDuration::from_millis(20),
            None,
            SimTime::ZERO,
        );
        c.begin_invocation(SimTime::from_secs(used), SimTime::from_secs(used + 1));
        c.finish_invocation();
        c
    }

    #[test]
    fn evicts_least_recent_first() {
        let mut lru = Lru::new();
        let old = container_used_at(1, 10);
        let newer = container_used_at(2, 100);
        let victims = lru.select_victims(&[&newer, &old], MemMb::new(100));
        assert_eq!(victims, vec![ContainerId::from_raw(1)]);
    }

    #[test]
    fn takes_enough_to_cover_need() {
        let mut lru = Lru::new();
        let a = container_used_at(1, 1);
        let b = container_used_at(2, 2);
        let c = container_used_at(3, 3);
        let victims = lru.select_victims(&[&c, &a, &b], MemMb::new(150));
        assert_eq!(
            victims,
            vec![ContainerId::from_raw(1), ContainerId::from_raw(2)]
        );
    }

    #[test]
    fn never_expires() {
        let mut lru = Lru::new();
        let c = container_used_at(1, 0);
        assert!(lru
            .expired(&[&c], SimTime::from_mins(10_000))
            .is_empty());
    }

    #[test]
    fn priority_is_recency() {
        let lru = Lru::new();
        let c = container_used_at(1, 42);
        assert!((lru.priority_of(&c).unwrap() - 42.0).abs() < 1e-9);
    }
}
