//! Least-recently-used keep-alive (paper §4.2).
//!
//! LRU is the Greedy-Dual degenerate case that keeps only the access clock:
//! the least recently used idle container is terminated first. It is
//! resource-conserving — containers never expire while memory is free.

use crate::container::{Container, ContainerId};
use crate::policy::index::OrderedIdleSet;
use crate::policy::{take_until_freed, KeepAlivePolicy};
use faascache_util::{MemMb, SimTime};

/// Least-recently-used keep-alive policy.
///
/// By default the eviction order is held in an incremental index keyed by
/// `last_used` (O(log n) per victim); [`Lru::naive`] retains the seed
/// scan-and-sort path as a differential-testing reference.
///
/// # Examples
///
/// ```
/// use faascache_core::policy::{KeepAlivePolicy, Lru};
/// assert_eq!(Lru::new().name(), "LRU");
/// ```
#[derive(Debug)]
pub struct Lru {
    index: Option<OrderedIdleSet<SimTime>>,
}

impl Lru {
    /// Creates the policy (incremental eviction index).
    pub fn new() -> Self {
        Lru {
            index: Some(OrderedIdleSet::new()),
        }
    }

    /// Creates the policy with the naive sort-based eviction path.
    pub fn naive() -> Self {
        Lru { index: None }
    }
}

impl Default for Lru {
    fn default() -> Self {
        Self::new()
    }
}

impl KeepAlivePolicy for Lru {
    fn name(&self) -> &'static str {
        "LRU"
    }

    fn on_warm_start(&mut self, container: &Container, _now: SimTime) {
        if let Some(index) = self.index.as_mut() {
            index.remove(container.id());
        }
    }

    fn on_container_created(&mut self, container: &Container, _now: SimTime, prewarm: bool) {
        // Only prewarmed containers are born idle; cold-start containers
        // enter the idle set through `on_finish`.
        if prewarm {
            if let Some(index) = self.index.as_mut() {
                index.insert(container.id(), container.last_used(), container.last_used());
            }
        }
    }

    fn on_finish(&mut self, container: &Container, _now: SimTime) {
        if let Some(index) = self.index.as_mut() {
            index.insert(container.id(), container.last_used(), container.last_used());
        }
    }

    fn select_victims(&mut self, idle: &[&Container], needed: MemMb) -> Vec<ContainerId> {
        let mut ranked: Vec<&Container> = idle.to_vec();
        ranked.sort_by_key(|c| c.last_used());
        take_until_freed(&ranked, needed)
    }

    fn on_evicted(&mut self, container: &Container, _remaining: usize, _now: SimTime) {
        if let Some(index) = self.index.as_mut() {
            index.remove(container.id());
        }
    }

    fn supports_incremental(&self) -> bool {
        self.index.is_some()
    }

    fn peek_victim(&mut self) -> Option<ContainerId> {
        self.index.as_ref()?.first().map(|(_, _, id)| id)
    }

    fn pop_victim(&mut self) -> Option<ContainerId> {
        self.index.as_mut()?.pop_first().map(|(_, _, id)| id)
    }

    fn priority_of(&self, container: &Container) -> Option<f64> {
        Some(container.last_used().as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionId;
    use faascache_util::SimDuration;

    fn container_used_at(id: u64, used: u64) -> Container {
        let mut c = Container::new(
            ContainerId::from_raw(id),
            FunctionId::from_index(id as u32),
            MemMb::new(100),
            SimDuration::from_millis(10),
            SimDuration::from_millis(20),
            None,
            SimTime::ZERO,
        );
        c.begin_invocation(SimTime::from_secs(used), SimTime::from_secs(used + 1));
        c.finish_invocation();
        c
    }

    #[test]
    fn evicts_least_recent_first() {
        let mut lru = Lru::new();
        let old = container_used_at(1, 10);
        let newer = container_used_at(2, 100);
        let victims = lru.select_victims(&[&newer, &old], MemMb::new(100));
        assert_eq!(victims, vec![ContainerId::from_raw(1)]);
    }

    #[test]
    fn takes_enough_to_cover_need() {
        let mut lru = Lru::new();
        let a = container_used_at(1, 1);
        let b = container_used_at(2, 2);
        let c = container_used_at(3, 3);
        let victims = lru.select_victims(&[&c, &a, &b], MemMb::new(150));
        assert_eq!(
            victims,
            vec![ContainerId::from_raw(1), ContainerId::from_raw(2)]
        );
    }

    #[test]
    fn never_expires() {
        let mut lru = Lru::new();
        let c = container_used_at(1, 0);
        assert!(lru.expired(&[&c], SimTime::from_mins(10_000)).is_empty());
    }

    #[test]
    fn priority_is_recency() {
        let lru = Lru::new();
        let c = container_used_at(1, 42);
        assert!((lru.priority_of(&c).unwrap() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn incremental_pop_follows_lru_order() {
        let mut lru = Lru::new();
        assert!(lru.supports_incremental());
        assert!(!Lru::naive().supports_incremental());
        let a = container_used_at(1, 30);
        let b = container_used_at(2, 10);
        let c = container_used_at(3, 20);
        for x in [&a, &b, &c] {
            lru.on_finish(x, x.last_used());
        }
        assert_eq!(lru.peek_victim(), Some(ContainerId::from_raw(2)));
        assert_eq!(lru.pop_victim(), Some(ContainerId::from_raw(2)));
        // A warm start removes the container from the eviction order.
        lru.on_warm_start(&c, SimTime::from_secs(40));
        assert_eq!(lru.pop_victim(), Some(ContainerId::from_raw(1)));
        assert_eq!(lru.pop_victim(), None);
    }
}
