//! Keep-alive policies: cache eviction algorithms adapted to function
//! keep-alive (paper §4).
//!
//! A policy observes the life of every container (creation, warm hits,
//! completion, eviction) and answers three questions for the pool:
//!
//! 1. **Eviction** — [`KeepAlivePolicy::select_victims`]: which idle
//!    containers to terminate when a new container needs memory.
//! 2. **Expiry** — [`KeepAlivePolicy::expired`]: which idle containers have
//!    outlived their keep-alive lease. Resource-conserving policies (the
//!    Greedy-Dual family) never expire containers; TTL-style policies
//!    (OpenWhisk default, HIST) do.
//! 3. **Prefetch** — [`KeepAlivePolicy::prewarm_due`]: which functions to
//!    warm up ahead of a predicted invocation (only HIST).

use crate::container::{Container, ContainerId};
use crate::function::{FunctionId, FunctionSpec};
use faascache_util::{MemMb, SimDuration, SimTime};
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

mod greedy_dual;
mod hist;
pub mod index;
mod landlord;
mod lfu;
mod lru;
mod size_aware;
mod ttl;

pub use greedy_dual::GreedyDual;
pub use hist::{Hist, HistConfig};
pub use index::{OrderedIdleSet, TotalF64, VictimHeap};
pub use landlord::Landlord;
pub use lfu::Lfu;
pub use lru::Lru;
pub use size_aware::SizeAware;
pub use ttl::Ttl;

/// A keep-alive policy: decides which warm containers to keep, evict,
/// expire, or prefetch.
///
/// Implementations are driven by a [`crate::pool::ContainerPool`]; all
/// hooks are infallible and must be cheap — the pool calls them on the
/// invocation fast path.
pub trait KeepAlivePolicy: fmt::Debug + Send {
    /// Short, stable policy name (e.g. `"GD"`, `"TTL"`).
    fn name(&self) -> &'static str;

    /// A request for `spec` arrived, before hit/miss resolution.
    fn on_request(&mut self, spec: &FunctionSpec, now: SimTime) {
        let _ = (spec, now);
    }

    /// The invocation was served warm by `container`.
    fn on_warm_start(&mut self, container: &Container, now: SimTime);

    /// A new container was created; `prewarm` is true when it was created
    /// speculatively (prefetch) rather than for an in-flight request.
    fn on_container_created(&mut self, container: &Container, now: SimTime, prewarm: bool);

    /// The container finished its invocation and is idle again.
    fn on_finish(&mut self, container: &Container, now: SimTime) {
        let _ = (container, now);
    }

    /// Chooses idle containers to evict so that at least `needed` memory is
    /// freed. `idle` holds every evictable (warm) container.
    ///
    /// The pool calls this in a loop: a policy may return fewer victims
    /// than needed and be asked again with the reduced candidate set.
    /// Returning an empty vector means the policy declines to free more.
    ///
    /// # Victim tie-break contract
    ///
    /// Victims must be ordered by ascending policy priority, breaking ties
    /// by ascending `last_used` and finally by ascending [`ContainerId`]
    /// (equal priority and recency ⇒ the lower id is evicted first). The
    /// pool hands `idle` sorted by id, so a stable sort on
    /// `(priority, last_used)` satisfies the contract. Simulations are only
    /// reproducible — and the incremental index paths only equivalent —
    /// when every implementation honours this order.
    ///
    /// The default implementation adapts the incremental interface: it
    /// drains [`Self::pop_victim`] until enough candidate memory is freed.
    /// It assumes `idle` is the complete idle set (as the pool provides);
    /// popped ids outside `idle` are discarded. Non-incremental policies
    /// must override this method.
    fn select_victims(&mut self, idle: &[&Container], needed: MemMb) -> Vec<ContainerId> {
        let mut candidates: std::collections::HashMap<ContainerId, MemMb> =
            idle.iter().map(|c| (c.id(), c.mem())).collect();
        let mut victims = Vec::new();
        let mut freed = MemMb::ZERO;
        while freed < needed {
            let Some(id) = self.pop_victim() else {
                break;
            };
            if let Some(mem) = candidates.remove(&id) {
                freed += mem;
                victims.push(id);
            }
        }
        victims
    }

    /// Whether this policy maintains an incremental eviction-order index,
    /// i.e. whether [`Self::pop_victim`]/[`Self::pop_expired`] are live.
    ///
    /// When true, the pool evicts via `pop_victim`/`pop_expired` — O(log n)
    /// per victim — instead of materializing and ranking the full idle set
    /// through [`Self::select_victims`]/[`Self::expired`].
    fn supports_incremental(&self) -> bool {
        false
    }

    /// The container [`Self::pop_victim`] would return, without removing it.
    fn peek_victim(&mut self) -> Option<ContainerId> {
        None
    }

    /// Removes and returns the next eviction victim in policy order (the
    /// same `(priority, last_used, id)` order [`Self::select_victims`]
    /// produces). `None` when no idle container remains or the policy is
    /// not incremental.
    fn pop_victim(&mut self) -> Option<ContainerId> {
        None
    }

    /// Removes and returns one idle container whose keep-alive lease has
    /// lapsed at `now` (incremental counterpart of [`Self::expired`]; the
    /// pool drains it and evicts the result set in ascending-id order).
    fn pop_expired(&mut self, now: SimTime) -> Option<ContainerId> {
        let _ = now;
        None
    }

    /// The pool evicted `container`. `remaining_of_function` is how many
    /// containers of the same function are still resident (the Greedy-Dual
    /// family resets a function's frequency when it reaches zero).
    fn on_evicted(&mut self, container: &Container, remaining_of_function: usize, now: SimTime);

    /// Idle containers whose keep-alive lease has lapsed at `now`.
    ///
    /// The default (resource-conserving policies) never expires anything.
    fn expired(&mut self, idle: &[&Container], now: SimTime) -> Vec<ContainerId> {
        let _ = (idle, now);
        Vec::new()
    }

    /// Functions that should be prewarmed at `now` (prefetching policies).
    fn prewarm_due(&mut self, now: SimTime) -> Vec<FunctionId> {
        let _ = now;
        Vec::new()
    }

    /// The policy's current eviction priority for `container`, if the
    /// policy is priority-based (introspection for tests and debugging;
    /// *lower* priority is evicted first).
    fn priority_of(&self, container: &Container) -> Option<f64> {
        let _ = container;
        None
    }

    /// Installs shared per-tenant eviction weights (see [`TenantWeights`]).
    ///
    /// Weight-aware policies (Greedy-Dual) divide a container's value term
    /// by its tenant's weight, so containers of over-budget tenants sort
    /// earlier in eviction order. The default is a no-op: most policies are
    /// tenant-blind, and a pool without quotas never raises a weight.
    fn set_tenant_weights(&mut self, weights: Arc<TenantWeights>) {
        let _ = weights;
    }
}

/// Shared, lock-free per-tenant eviction weight table.
///
/// Slot `t` holds the weight for raw tenant index `t` as `f64` bits in an
/// atomic; tenants beyond the table (or never set) weigh `1.0`. The quota
/// accounting layer raises a tenant's weight above `1.0` while it is over
/// its warm-memory budget, which *lowers* the Greedy-Dual value of that
/// tenant's containers (`value / weight`) and makes them preferred eviction
/// victims. Writers and readers race benignly: a stale weight only delays
/// the preference by one eviction.
#[derive(Debug)]
pub struct TenantWeights {
    slots: Vec<AtomicU64>,
    /// Bumped on every [`Self::set`]; weight-aware policies compare it
    /// against the generation they last keyed their eviction index under
    /// and re-key when it moved (a raised weight *lowers* keys, which lazy
    /// heaps cannot observe on their own).
    generation: AtomicU64,
}

impl TenantWeights {
    /// A table with `capacity` slots, all weighing `1.0`.
    pub fn new(capacity: usize) -> Self {
        TenantWeights {
            slots: (0..capacity)
                .map(|_| AtomicU64::new(1f64.to_bits()))
                .collect(),
            generation: AtomicU64::new(0),
        }
    }

    /// The current weight of raw tenant index `tenant` (`1.0` if unset or
    /// out of range). Always a finite value `>= 1.0`.
    pub fn get(&self, tenant: u32) -> f64 {
        match self.slots.get(tenant as usize) {
            Some(slot) => f64::from_bits(slot.load(Ordering::Relaxed)),
            None => 1.0,
        }
    }

    /// Sets the weight of raw tenant index `tenant`; values below `1.0` or
    /// non-finite are clamped to `1.0`. Out-of-range tenants are ignored.
    pub fn set(&self, tenant: u32, weight: f64) {
        let weight = if weight.is_finite() && weight > 1.0 {
            weight
        } else {
            1.0
        };
        if let Some(slot) = self.slots.get(tenant as usize) {
            slot.store(weight.to_bits(), Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Monotone counter of [`Self::set`] calls (see the field docs).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

/// Greedily takes containers from `candidates` (already sorted in eviction
/// order, soonest victim first) until their memory sums to `needed`.
///
/// Helper shared by the ordering-based policies.
pub(crate) fn take_until_freed(candidates: &[&Container], needed: MemMb) -> Vec<ContainerId> {
    let mut freed = MemMb::ZERO;
    let mut victims = Vec::new();
    for c in candidates {
        if freed >= needed {
            break;
        }
        victims.push(c.id());
        freed += c.mem();
    }
    victims
}

/// The policies evaluated in the paper, with their figure labels.
///
/// # Examples
///
/// ```
/// use faascache_core::policy::PolicyKind;
/// let policy = PolicyKind::GreedyDual.build();
/// assert_eq!(policy.name(), "GD");
/// assert_eq!("LND".parse::<PolicyKind>().unwrap(), PolicyKind::Landlord);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum PolicyKind {
    /// Greedy-Dual-Size-Frequency (the paper's `GD`).
    GreedyDual,
    /// OpenWhisk-style constant TTL with LRU eviction when full (`TTL`).
    Ttl,
    /// Least-recently-used (`LRU`).
    Lru,
    /// Least-frequently-used (`FREQ`).
    Lfu,
    /// Largest-first size-aware eviction (`SIZE`).
    SizeAware,
    /// The Landlord online algorithm (`LND`).
    Landlord,
    /// Histogram-based TTL + prefetching of Shahrad et al. (`HIST`).
    Hist,
}

impl PolicyKind {
    /// All policy kinds in the order the paper's figure legends use.
    pub const ALL: [PolicyKind; 7] = [
        PolicyKind::GreedyDual,
        PolicyKind::Ttl,
        PolicyKind::Lru,
        PolicyKind::Hist,
        PolicyKind::SizeAware,
        PolicyKind::Landlord,
        PolicyKind::Lfu,
    ];

    /// The figure label (`GD`, `TTL`, `LRU`, `HIST`, `SIZE`, `LND`, `FREQ`).
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::GreedyDual => "GD",
            PolicyKind::Ttl => "TTL",
            PolicyKind::Lru => "LRU",
            PolicyKind::Lfu => "FREQ",
            PolicyKind::SizeAware => "SIZE",
            PolicyKind::Landlord => "LND",
            PolicyKind::Hist => "HIST",
        }
    }

    /// Instantiates the policy with its paper-default parameters.
    pub fn build(self) -> Box<dyn KeepAlivePolicy> {
        match self {
            PolicyKind::GreedyDual => Box::new(GreedyDual::new()),
            PolicyKind::Ttl => Box::new(Ttl::open_whisk_default()),
            PolicyKind::Lru => Box::new(Lru::new()),
            PolicyKind::Lfu => Box::new(Lfu::new()),
            PolicyKind::SizeAware => Box::new(SizeAware::new()),
            PolicyKind::Landlord => Box::new(Landlord::new()),
            PolicyKind::Hist => Box::new(Hist::new(HistConfig::default())),
        }
    }

    /// Instantiates the policy with paper-default parameters but the naive
    /// scan-and-sort eviction path — the reference implementation the
    /// incremental indexes are differentially tested against.
    pub fn build_naive(self) -> Box<dyn KeepAlivePolicy> {
        match self {
            PolicyKind::GreedyDual => Box::new(GreedyDual::naive()),
            PolicyKind::Ttl => Box::new(Ttl::naive(SimDuration::from_mins(10))),
            PolicyKind::Lru => Box::new(Lru::naive()),
            PolicyKind::Lfu => Box::new(Lfu::naive()),
            PolicyKind::SizeAware => Box::new(SizeAware::naive()),
            PolicyKind::Landlord => Box::new(Landlord::naive()),
            PolicyKind::Hist => Box::new(Hist::naive(HistConfig::default())),
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when parsing an unknown policy label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError {
    input: String,
}

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown policy {:?} (expected one of GD, TTL, LRU, FREQ, SIZE, LND, HIST)",
            self.input
        )
    }
}

impl std::error::Error for ParsePolicyError {}

impl FromStr for PolicyKind {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "GD" | "GDSF" | "GREEDYDUAL" | "GREEDY-DUAL" => Ok(PolicyKind::GreedyDual),
            "TTL" => Ok(PolicyKind::Ttl),
            "LRU" => Ok(PolicyKind::Lru),
            "FREQ" | "LFU" => Ok(PolicyKind::Lfu),
            "SIZE" => Ok(PolicyKind::SizeAware),
            "LND" | "LANDLORD" => Ok(PolicyKind::Landlord),
            "HIST" | "HISTOGRAM" => Ok(PolicyKind::Hist),
            _ => Err(ParsePolicyError {
                input: s.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faascache_util::SimDuration;

    fn container(id: u64, mem: u64) -> Container {
        Container::new(
            ContainerId::from_raw(id),
            FunctionId::from_index(id as u32),
            MemMb::new(mem),
            SimDuration::from_millis(100),
            SimDuration::from_millis(500),
            None,
            SimTime::ZERO,
        )
    }

    #[test]
    fn take_until_freed_takes_minimum_prefix() {
        let a = container(1, 100);
        let b = container(2, 200);
        let c = container(3, 400);
        let cands = [&a, &b, &c];
        let victims = take_until_freed(&cands, MemMb::new(250));
        assert_eq!(
            victims,
            vec![ContainerId::from_raw(1), ContainerId::from_raw(2)]
        );
        assert!(take_until_freed(&cands, MemMb::ZERO).is_empty());
        let all = take_until_freed(&cands, MemMb::new(10_000));
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn labels_round_trip() {
        for kind in PolicyKind::ALL {
            let parsed: PolicyKind = kind.label().parse().unwrap();
            assert_eq!(parsed, kind);
            assert_eq!(kind.to_string(), kind.label());
        }
    }

    #[test]
    fn parse_aliases_and_errors() {
        assert_eq!(
            "gdsf".parse::<PolicyKind>().unwrap(),
            PolicyKind::GreedyDual
        );
        assert_eq!("lfu".parse::<PolicyKind>().unwrap(), PolicyKind::Lfu);
        assert_eq!(
            "landlord".parse::<PolicyKind>().unwrap(),
            PolicyKind::Landlord
        );
        let err = "bogus".parse::<PolicyKind>().unwrap_err();
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn build_yields_matching_names() {
        for kind in PolicyKind::ALL {
            assert_eq!(kind.build().name(), kind.label());
        }
    }

    #[test]
    fn build_variants_agree_on_incremental_support() {
        for kind in PolicyKind::ALL {
            assert!(kind.build().supports_incremental(), "{kind} default build");
            let naive = kind.build_naive();
            assert!(!naive.supports_incremental(), "{kind} naive build");
            assert_eq!(naive.name(), kind.label());
        }
    }

    /// A minimal incremental policy relying on the trait's default
    /// `select_victims` adapter over `pop_victim`.
    #[derive(Debug)]
    struct PopOnly {
        order: OrderedIdleSet<SimTime>,
    }

    impl KeepAlivePolicy for PopOnly {
        fn name(&self) -> &'static str {
            "POP"
        }
        fn on_warm_start(&mut self, c: &Container, _now: SimTime) {
            self.order.remove(c.id());
        }
        fn on_container_created(&mut self, c: &Container, _now: SimTime, prewarm: bool) {
            if prewarm {
                self.order.insert(c.id(), c.last_used(), c.last_used());
            }
        }
        fn on_finish(&mut self, c: &Container, _now: SimTime) {
            self.order.insert(c.id(), c.last_used(), c.last_used());
        }
        fn on_evicted(&mut self, c: &Container, _remaining: usize, _now: SimTime) {
            self.order.remove(c.id());
        }
        fn supports_incremental(&self) -> bool {
            true
        }
        fn peek_victim(&mut self) -> Option<ContainerId> {
            self.order.first().map(|(_, _, id)| id)
        }
        fn pop_victim(&mut self) -> Option<ContainerId> {
            self.order.pop_first().map(|(_, _, id)| id)
        }
    }

    #[test]
    fn default_select_victims_adapts_pop_victim() {
        let mut policy = PopOnly {
            order: OrderedIdleSet::new(),
        };
        let mut containers = Vec::new();
        for (id, used) in [(1u64, 30u64), (2, 10), (3, 20)] {
            let mut c = container(id, 100);
            c.begin_invocation(SimTime::from_secs(used), SimTime::from_secs(used + 1));
            c.finish_invocation();
            policy.on_finish(&c, SimTime::from_secs(used + 1));
            containers.push(c);
        }
        let refs: Vec<&Container> = containers.iter().collect();
        assert_eq!(policy.peek_victim(), Some(ContainerId::from_raw(2)));
        let victims = policy.select_victims(&refs, MemMb::new(150));
        assert_eq!(
            victims,
            vec![ContainerId::from_raw(2), ContainerId::from_raw(3)],
            "LRU order, minimal prefix covering the need"
        );
        assert_eq!(policy.pop_victim(), Some(ContainerId::from_raw(1)));
        assert_eq!(policy.pop_victim(), None);
    }
}
