//! Keep-alive policies: cache eviction algorithms adapted to function
//! keep-alive (paper §4).
//!
//! A policy observes the life of every container (creation, warm hits,
//! completion, eviction) and answers three questions for the pool:
//!
//! 1. **Eviction** — [`KeepAlivePolicy::select_victims`]: which idle
//!    containers to terminate when a new container needs memory.
//! 2. **Expiry** — [`KeepAlivePolicy::expired`]: which idle containers have
//!    outlived their keep-alive lease. Resource-conserving policies (the
//!    Greedy-Dual family) never expire containers; TTL-style policies
//!    (OpenWhisk default, HIST) do.
//! 3. **Prefetch** — [`KeepAlivePolicy::prewarm_due`]: which functions to
//!    warm up ahead of a predicted invocation (only HIST).

use crate::container::{Container, ContainerId};
use crate::function::{FunctionId, FunctionSpec};
use faascache_util::{MemMb, SimTime};
use std::fmt;
use std::str::FromStr;

mod greedy_dual;
mod hist;
mod landlord;
mod lfu;
mod lru;
mod size_aware;
mod ttl;

pub use greedy_dual::GreedyDual;
pub use hist::{Hist, HistConfig};
pub use landlord::Landlord;
pub use lfu::Lfu;
pub use lru::Lru;
pub use size_aware::SizeAware;
pub use ttl::Ttl;

/// A keep-alive policy: decides which warm containers to keep, evict,
/// expire, or prefetch.
///
/// Implementations are driven by a [`crate::pool::ContainerPool`]; all
/// hooks are infallible and must be cheap — the pool calls them on the
/// invocation fast path.
pub trait KeepAlivePolicy: fmt::Debug + Send {
    /// Short, stable policy name (e.g. `"GD"`, `"TTL"`).
    fn name(&self) -> &'static str;

    /// A request for `spec` arrived, before hit/miss resolution.
    fn on_request(&mut self, spec: &FunctionSpec, now: SimTime) {
        let _ = (spec, now);
    }

    /// The invocation was served warm by `container`.
    fn on_warm_start(&mut self, container: &Container, now: SimTime);

    /// A new container was created; `prewarm` is true when it was created
    /// speculatively (prefetch) rather than for an in-flight request.
    fn on_container_created(&mut self, container: &Container, now: SimTime, prewarm: bool);

    /// The container finished its invocation and is idle again.
    fn on_finish(&mut self, container: &Container, now: SimTime) {
        let _ = (container, now);
    }

    /// Chooses idle containers to evict so that at least `needed` memory is
    /// freed. `idle` holds every evictable (warm) container.
    ///
    /// The pool calls this in a loop: a policy may return fewer victims
    /// than needed and be asked again with the reduced candidate set.
    /// Returning an empty vector means the policy declines to free more.
    fn select_victims(&mut self, idle: &[&Container], needed: MemMb) -> Vec<ContainerId>;

    /// The pool evicted `container`. `remaining_of_function` is how many
    /// containers of the same function are still resident (the Greedy-Dual
    /// family resets a function's frequency when it reaches zero).
    fn on_evicted(&mut self, container: &Container, remaining_of_function: usize, now: SimTime);

    /// Idle containers whose keep-alive lease has lapsed at `now`.
    ///
    /// The default (resource-conserving policies) never expires anything.
    fn expired(&mut self, idle: &[&Container], now: SimTime) -> Vec<ContainerId> {
        let _ = (idle, now);
        Vec::new()
    }

    /// Functions that should be prewarmed at `now` (prefetching policies).
    fn prewarm_due(&mut self, now: SimTime) -> Vec<FunctionId> {
        let _ = now;
        Vec::new()
    }

    /// The policy's current eviction priority for `container`, if the
    /// policy is priority-based (introspection for tests and debugging;
    /// *lower* priority is evicted first).
    fn priority_of(&self, container: &Container) -> Option<f64> {
        let _ = container;
        None
    }
}

/// Greedily takes containers from `candidates` (already sorted in eviction
/// order, soonest victim first) until their memory sums to `needed`.
///
/// Helper shared by the ordering-based policies.
pub(crate) fn take_until_freed(candidates: &[&Container], needed: MemMb) -> Vec<ContainerId> {
    let mut freed = MemMb::ZERO;
    let mut victims = Vec::new();
    for c in candidates {
        if freed >= needed {
            break;
        }
        victims.push(c.id());
        freed += c.mem();
    }
    victims
}

/// The policies evaluated in the paper, with their figure labels.
///
/// # Examples
///
/// ```
/// use faascache_core::policy::PolicyKind;
/// let policy = PolicyKind::GreedyDual.build();
/// assert_eq!(policy.name(), "GD");
/// assert_eq!("LND".parse::<PolicyKind>().unwrap(), PolicyKind::Landlord);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum PolicyKind {
    /// Greedy-Dual-Size-Frequency (the paper's `GD`).
    GreedyDual,
    /// OpenWhisk-style constant TTL with LRU eviction when full (`TTL`).
    Ttl,
    /// Least-recently-used (`LRU`).
    Lru,
    /// Least-frequently-used (`FREQ`).
    Lfu,
    /// Largest-first size-aware eviction (`SIZE`).
    SizeAware,
    /// The Landlord online algorithm (`LND`).
    Landlord,
    /// Histogram-based TTL + prefetching of Shahrad et al. (`HIST`).
    Hist,
}

impl PolicyKind {
    /// All policy kinds in the order the paper's figure legends use.
    pub const ALL: [PolicyKind; 7] = [
        PolicyKind::GreedyDual,
        PolicyKind::Ttl,
        PolicyKind::Lru,
        PolicyKind::Hist,
        PolicyKind::SizeAware,
        PolicyKind::Landlord,
        PolicyKind::Lfu,
    ];

    /// The figure label (`GD`, `TTL`, `LRU`, `HIST`, `SIZE`, `LND`, `FREQ`).
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::GreedyDual => "GD",
            PolicyKind::Ttl => "TTL",
            PolicyKind::Lru => "LRU",
            PolicyKind::Lfu => "FREQ",
            PolicyKind::SizeAware => "SIZE",
            PolicyKind::Landlord => "LND",
            PolicyKind::Hist => "HIST",
        }
    }

    /// Instantiates the policy with its paper-default parameters.
    pub fn build(self) -> Box<dyn KeepAlivePolicy> {
        match self {
            PolicyKind::GreedyDual => Box::new(GreedyDual::new()),
            PolicyKind::Ttl => Box::new(Ttl::open_whisk_default()),
            PolicyKind::Lru => Box::new(Lru::new()),
            PolicyKind::Lfu => Box::new(Lfu::new()),
            PolicyKind::SizeAware => Box::new(SizeAware::new()),
            PolicyKind::Landlord => Box::new(Landlord::new()),
            PolicyKind::Hist => Box::new(Hist::new(HistConfig::default())),
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when parsing an unknown policy label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError {
    input: String,
}

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown policy {:?} (expected one of GD, TTL, LRU, FREQ, SIZE, LND, HIST)",
            self.input
        )
    }
}

impl std::error::Error for ParsePolicyError {}

impl FromStr for PolicyKind {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "GD" | "GDSF" | "GREEDYDUAL" | "GREEDY-DUAL" => Ok(PolicyKind::GreedyDual),
            "TTL" => Ok(PolicyKind::Ttl),
            "LRU" => Ok(PolicyKind::Lru),
            "FREQ" | "LFU" => Ok(PolicyKind::Lfu),
            "SIZE" => Ok(PolicyKind::SizeAware),
            "LND" | "LANDLORD" => Ok(PolicyKind::Landlord),
            "HIST" | "HISTOGRAM" => Ok(PolicyKind::Hist),
            _ => Err(ParsePolicyError { input: s.to_string() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faascache_util::SimDuration;

    fn container(id: u64, mem: u64) -> Container {
        Container::new(
            ContainerId::from_raw(id),
            FunctionId::from_index(id as u32),
            MemMb::new(mem),
            SimDuration::from_millis(100),
            SimDuration::from_millis(500),
            None,
            SimTime::ZERO,
        )
    }

    #[test]
    fn take_until_freed_takes_minimum_prefix() {
        let a = container(1, 100);
        let b = container(2, 200);
        let c = container(3, 400);
        let cands = [&a, &b, &c];
        let victims = take_until_freed(&cands, MemMb::new(250));
        assert_eq!(
            victims,
            vec![ContainerId::from_raw(1), ContainerId::from_raw(2)]
        );
        assert!(take_until_freed(&cands, MemMb::ZERO).is_empty());
        let all = take_until_freed(&cands, MemMb::new(10_000));
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn labels_round_trip() {
        for kind in PolicyKind::ALL {
            let parsed: PolicyKind = kind.label().parse().unwrap();
            assert_eq!(parsed, kind);
            assert_eq!(kind.to_string(), kind.label());
        }
    }

    #[test]
    fn parse_aliases_and_errors() {
        assert_eq!("gdsf".parse::<PolicyKind>().unwrap(), PolicyKind::GreedyDual);
        assert_eq!("lfu".parse::<PolicyKind>().unwrap(), PolicyKind::Lfu);
        assert_eq!("landlord".parse::<PolicyKind>().unwrap(), PolicyKind::Landlord);
        let err = "bogus".parse::<PolicyKind>().unwrap_err();
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn build_yields_matching_names() {
        for kind in PolicyKind::ALL {
            assert_eq!(kind.build().name(), kind.label());
        }
    }
}
