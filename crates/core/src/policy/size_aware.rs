//! Size-aware keep-alive (the paper's `SIZE` variant, §4.2).
//!
//! Uses `1 / size` as the Greedy-Dual priority: the largest idle container
//! is terminated first, which is useful "in scenarios where memory size is
//! at a premium". Ties break by recency.

use crate::container::{Container, ContainerId};
use crate::policy::index::OrderedIdleSet;
use crate::policy::{take_until_freed, KeepAlivePolicy};
use faascache_util::{MemMb, SimTime};
use std::cmp::Reverse;

/// Largest-first, size-aware keep-alive policy.
///
/// The incremental index orders idle containers by descending memory
/// footprint (then ascending recency); [`SizeAware::naive`] retains the
/// seed sort-based path as a reference.
///
/// # Examples
///
/// ```
/// use faascache_core::policy::{KeepAlivePolicy, SizeAware};
/// assert_eq!(SizeAware::new().name(), "SIZE");
/// ```
#[derive(Debug)]
pub struct SizeAware {
    index: Option<OrderedIdleSet<Reverse<MemMb>>>,
}

impl SizeAware {
    /// Creates the policy (incremental eviction index).
    pub fn new() -> Self {
        SizeAware {
            index: Some(OrderedIdleSet::new()),
        }
    }

    /// Creates the policy with the naive sort-based eviction path.
    pub fn naive() -> Self {
        SizeAware { index: None }
    }
}

impl Default for SizeAware {
    fn default() -> Self {
        Self::new()
    }
}

impl KeepAlivePolicy for SizeAware {
    fn name(&self) -> &'static str {
        "SIZE"
    }

    fn on_warm_start(&mut self, container: &Container, _now: SimTime) {
        if let Some(index) = self.index.as_mut() {
            index.remove(container.id());
        }
    }

    fn on_container_created(&mut self, container: &Container, _now: SimTime, prewarm: bool) {
        if prewarm {
            if let Some(index) = self.index.as_mut() {
                index.insert(
                    container.id(),
                    Reverse(container.mem()),
                    container.last_used(),
                );
            }
        }
    }

    fn on_finish(&mut self, container: &Container, _now: SimTime) {
        if let Some(index) = self.index.as_mut() {
            index.insert(
                container.id(),
                Reverse(container.mem()),
                container.last_used(),
            );
        }
    }

    fn select_victims(&mut self, idle: &[&Container], needed: MemMb) -> Vec<ContainerId> {
        let mut ranked: Vec<&Container> = idle.to_vec();
        ranked.sort_by(|a, b| {
            b.mem()
                .cmp(&a.mem())
                .then(a.last_used().cmp(&b.last_used()))
        });
        take_until_freed(&ranked, needed)
    }

    fn on_evicted(&mut self, container: &Container, _remaining: usize, _now: SimTime) {
        if let Some(index) = self.index.as_mut() {
            index.remove(container.id());
        }
    }

    fn supports_incremental(&self) -> bool {
        self.index.is_some()
    }

    fn peek_victim(&mut self) -> Option<ContainerId> {
        self.index.as_ref()?.first().map(|(_, _, id)| id)
    }

    fn pop_victim(&mut self) -> Option<ContainerId> {
        self.index.as_mut()?.pop_first().map(|(_, _, id)| id)
    }

    fn priority_of(&self, container: &Container) -> Option<f64> {
        Some(1.0 / container.mem().as_mb().max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionId;
    use faascache_util::SimDuration;

    fn container(id: u64, mem: u64) -> Container {
        Container::new(
            ContainerId::from_raw(id),
            FunctionId::from_index(id as u32),
            MemMb::new(mem),
            SimDuration::from_millis(10),
            SimDuration::from_millis(20),
            None,
            SimTime::ZERO,
        )
    }

    #[test]
    fn evicts_largest_first() {
        let mut policy = SizeAware::new();
        let small = container(1, 64);
        let big = container(2, 2048);
        let victims = policy.select_victims(&[&small, &big], MemMb::new(100));
        assert_eq!(victims, vec![ContainerId::from_raw(2)]);
    }

    #[test]
    fn priority_is_inverse_size() {
        let policy = SizeAware::new();
        let small = container(1, 64);
        let big = container(2, 2048);
        assert!(policy.priority_of(&small).unwrap() > policy.priority_of(&big).unwrap());
    }

    #[test]
    fn equal_sizes_fall_back_to_lru() {
        let mut policy = SizeAware::new();
        let mut a = container(1, 128);
        let mut b = container(2, 128);
        a.begin_invocation(SimTime::from_secs(50), SimTime::from_secs(51));
        a.finish_invocation();
        b.begin_invocation(SimTime::from_secs(10), SimTime::from_secs(11));
        b.finish_invocation();
        let victims = policy.select_victims(&[&a, &b], MemMb::new(128));
        assert_eq!(victims, vec![ContainerId::from_raw(2)]);
    }

    #[test]
    fn incremental_pop_is_largest_first() {
        let mut policy = SizeAware::new();
        let small = container(1, 64);
        let big = container(2, 2048);
        let mid = container(3, 512);
        for c in [&small, &big, &mid] {
            policy.on_finish(c, SimTime::ZERO);
        }
        assert_eq!(policy.pop_victim(), Some(ContainerId::from_raw(2)));
        assert_eq!(policy.pop_victim(), Some(ContainerId::from_raw(3)));
        assert_eq!(policy.pop_victim(), Some(ContainerId::from_raw(1)));
        assert_eq!(policy.pop_victim(), None);
    }
}
