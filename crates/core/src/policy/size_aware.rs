//! Size-aware keep-alive (the paper's `SIZE` variant, §4.2).
//!
//! Uses `1 / size` as the Greedy-Dual priority: the largest idle container
//! is terminated first, which is useful "in scenarios where memory size is
//! at a premium". Ties break by recency.

use crate::container::{Container, ContainerId};
use crate::policy::{take_until_freed, KeepAlivePolicy};
use faascache_util::{MemMb, SimTime};

/// Largest-first, size-aware keep-alive policy.
///
/// # Examples
///
/// ```
/// use faascache_core::policy::{KeepAlivePolicy, SizeAware};
/// assert_eq!(SizeAware::new().name(), "SIZE");
/// ```
#[derive(Debug, Default)]
pub struct SizeAware {
    _private: (),
}

impl SizeAware {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl KeepAlivePolicy for SizeAware {
    fn name(&self) -> &'static str {
        "SIZE"
    }

    fn on_warm_start(&mut self, _container: &Container, _now: SimTime) {}

    fn on_container_created(&mut self, _container: &Container, _now: SimTime, _prewarm: bool) {}

    fn select_victims(&mut self, idle: &[&Container], needed: MemMb) -> Vec<ContainerId> {
        let mut ranked: Vec<&Container> = idle.to_vec();
        ranked.sort_by(|a, b| {
            b.mem()
                .cmp(&a.mem())
                .then(a.last_used().cmp(&b.last_used()))
        });
        take_until_freed(&ranked, needed)
    }

    fn on_evicted(&mut self, _container: &Container, _remaining: usize, _now: SimTime) {}

    fn priority_of(&self, container: &Container) -> Option<f64> {
        Some(1.0 / container.mem().as_mb().max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionId;
    use faascache_util::SimDuration;

    fn container(id: u64, mem: u64) -> Container {
        Container::new(
            ContainerId::from_raw(id),
            FunctionId::from_index(id as u32),
            MemMb::new(mem),
            SimDuration::from_millis(10),
            SimDuration::from_millis(20),
            None,
            SimTime::ZERO,
        )
    }

    #[test]
    fn evicts_largest_first() {
        let mut policy = SizeAware::new();
        let small = container(1, 64);
        let big = container(2, 2048);
        let victims = policy.select_victims(&[&small, &big], MemMb::new(100));
        assert_eq!(victims, vec![ContainerId::from_raw(2)]);
    }

    #[test]
    fn priority_is_inverse_size() {
        let policy = SizeAware::new();
        let small = container(1, 64);
        let big = container(2, 2048);
        assert!(policy.priority_of(&small).unwrap() > policy.priority_of(&big).unwrap());
    }

    #[test]
    fn equal_sizes_fall_back_to_lru() {
        let mut policy = SizeAware::new();
        let mut a = container(1, 128);
        let mut b = container(2, 128);
        a.begin_invocation(SimTime::from_secs(50), SimTime::from_secs(51));
        a.finish_invocation();
        b.begin_invocation(SimTime::from_secs(10), SimTime::from_secs(11));
        b.finish_invocation();
        let victims = policy.select_victims(&[&a, &b], MemMb::new(128));
        assert_eq!(victims, vec![ContainerId::from_raw(2)]);
    }
}
