//! Constant time-to-live keep-alive — the OpenWhisk default the paper
//! compares against (`TTL`).
//!
//! Every idle container expires a fixed interval after its last use
//! (OpenWhisk uses 10 minutes). This policy is *not* resource-conserving:
//! it terminates containers even when memory is free. When the server is
//! full, it evicts in LRU order (paper §7.1: "When the server is full,
//! this TTL policy evicts containers in an LRU order").

use crate::container::{Container, ContainerId};
use crate::policy::{take_until_freed, KeepAlivePolicy};
use faascache_util::{MemMb, SimDuration, SimTime};

/// Fixed-TTL keep-alive policy with LRU eviction under memory pressure.
///
/// # Examples
///
/// ```
/// use faascache_core::policy::{KeepAlivePolicy, Ttl};
/// use faascache_util::SimDuration;
/// let ow = Ttl::open_whisk_default();
/// assert_eq!(ow.ttl(), SimDuration::from_mins(10));
/// assert_eq!(ow.name(), "TTL");
/// ```
#[derive(Debug)]
pub struct Ttl {
    ttl: SimDuration,
}

impl Ttl {
    /// Creates a policy with the given time-to-live.
    pub fn new(ttl: SimDuration) -> Self {
        Ttl { ttl }
    }

    /// The 10-minute default used by OpenWhisk.
    pub fn open_whisk_default() -> Self {
        Ttl::new(SimDuration::from_mins(10))
    }

    /// The configured time-to-live.
    pub fn ttl(&self) -> SimDuration {
        self.ttl
    }
}

impl KeepAlivePolicy for Ttl {
    fn name(&self) -> &'static str {
        "TTL"
    }

    fn on_warm_start(&mut self, _container: &Container, _now: SimTime) {}

    fn on_container_created(&mut self, _container: &Container, _now: SimTime, _prewarm: bool) {}

    fn select_victims(&mut self, idle: &[&Container], needed: MemMb) -> Vec<ContainerId> {
        let mut ranked: Vec<&Container> = idle.to_vec();
        ranked.sort_by_key(|c| c.last_used());
        take_until_freed(&ranked, needed)
    }

    fn on_evicted(&mut self, _container: &Container, _remaining: usize, _now: SimTime) {}

    fn expired(&mut self, idle: &[&Container], now: SimTime) -> Vec<ContainerId> {
        idle.iter()
            .filter(|c| now.since(c.last_used()) >= self.ttl)
            .map(|c| c.id())
            .collect()
    }

    fn priority_of(&self, container: &Container) -> Option<f64> {
        Some(container.last_used().as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionId;

    fn container_used_at(id: u64, used_secs: u64) -> Container {
        let mut c = Container::new(
            ContainerId::from_raw(id),
            FunctionId::from_index(id as u32),
            MemMb::new(100),
            SimDuration::from_millis(10),
            SimDuration::from_millis(20),
            None,
            SimTime::ZERO,
        );
        c.begin_invocation(
            SimTime::from_secs(used_secs),
            SimTime::from_secs(used_secs + 1),
        );
        c.finish_invocation();
        c
    }

    #[test]
    fn expires_after_ttl() {
        let mut ttl = Ttl::open_whisk_default();
        let c = container_used_at(1, 0);
        assert!(ttl.expired(&[&c], SimTime::from_mins(9)).is_empty());
        let expired = ttl.expired(&[&c], SimTime::from_mins(10));
        assert_eq!(expired, vec![ContainerId::from_raw(1)]);
    }

    #[test]
    fn expiry_measured_from_last_use() {
        let mut ttl = Ttl::new(SimDuration::from_mins(5));
        let c = container_used_at(1, 600); // last used at t=10min
        assert!(ttl.expired(&[&c], SimTime::from_mins(14)).is_empty());
        assert_eq!(ttl.expired(&[&c], SimTime::from_mins(15)).len(), 1);
    }

    #[test]
    fn full_server_evicts_lru() {
        let mut ttl = Ttl::open_whisk_default();
        let old = container_used_at(1, 5);
        let newer = container_used_at(2, 500);
        let victims = ttl.select_victims(&[&newer, &old], MemMb::new(100));
        assert_eq!(victims, vec![ContainerId::from_raw(1)]);
    }

    #[test]
    fn multiple_expired_at_once() {
        let mut ttl = Ttl::new(SimDuration::from_secs(60));
        let a = container_used_at(1, 0);
        let b = container_used_at(2, 10);
        let c = container_used_at(3, 1000);
        let mut expired = ttl.expired(&[&a, &b, &c], SimTime::from_secs(120));
        expired.sort();
        assert_eq!(
            expired,
            vec![ContainerId::from_raw(1), ContainerId::from_raw(2)]
        );
    }
}
