//! Constant time-to-live keep-alive — the OpenWhisk default the paper
//! compares against (`TTL`).
//!
//! Every idle container expires a fixed interval after its last use
//! (OpenWhisk uses 10 minutes). This policy is *not* resource-conserving:
//! it terminates containers even when memory is free. When the server is
//! full, it evicts in LRU order (paper §7.1: "When the server is full,
//! this TTL policy evicts containers in an LRU order").

use crate::container::{Container, ContainerId};
use crate::policy::index::OrderedIdleSet;
use crate::policy::{take_until_freed, KeepAlivePolicy};
use faascache_util::{MemMb, SimDuration, SimTime};

/// Fixed-TTL keep-alive policy with LRU eviction under memory pressure.
///
/// One incremental index keyed by `last_used` serves both duties: its head
/// is the LRU eviction victim *and* the first container to expire.
/// [`Ttl::naive`] retains the seed scan-based path as a reference.
///
/// # Examples
///
/// ```
/// use faascache_core::policy::{KeepAlivePolicy, Ttl};
/// use faascache_util::SimDuration;
/// let ow = Ttl::open_whisk_default();
/// assert_eq!(ow.ttl(), SimDuration::from_mins(10));
/// assert_eq!(ow.name(), "TTL");
/// ```
#[derive(Debug)]
pub struct Ttl {
    ttl: SimDuration,
    index: Option<OrderedIdleSet<SimTime>>,
}

impl Ttl {
    /// Creates a policy with the given time-to-live (incremental index).
    pub fn new(ttl: SimDuration) -> Self {
        Ttl {
            ttl,
            index: Some(OrderedIdleSet::new()),
        }
    }

    /// Creates a policy with the naive scan-based eviction/expiry path.
    pub fn naive(ttl: SimDuration) -> Self {
        Ttl { ttl, index: None }
    }

    /// The 10-minute default used by OpenWhisk.
    pub fn open_whisk_default() -> Self {
        Ttl::new(SimDuration::from_mins(10))
    }

    /// The configured time-to-live.
    pub fn ttl(&self) -> SimDuration {
        self.ttl
    }
}

impl KeepAlivePolicy for Ttl {
    fn name(&self) -> &'static str {
        "TTL"
    }

    fn on_warm_start(&mut self, container: &Container, _now: SimTime) {
        if let Some(index) = self.index.as_mut() {
            index.remove(container.id());
        }
    }

    fn on_container_created(&mut self, container: &Container, _now: SimTime, prewarm: bool) {
        if prewarm {
            if let Some(index) = self.index.as_mut() {
                index.insert(container.id(), container.last_used(), container.last_used());
            }
        }
    }

    fn on_finish(&mut self, container: &Container, _now: SimTime) {
        if let Some(index) = self.index.as_mut() {
            index.insert(container.id(), container.last_used(), container.last_used());
        }
    }

    fn select_victims(&mut self, idle: &[&Container], needed: MemMb) -> Vec<ContainerId> {
        let mut ranked: Vec<&Container> = idle.to_vec();
        ranked.sort_by_key(|c| c.last_used());
        take_until_freed(&ranked, needed)
    }

    fn on_evicted(&mut self, container: &Container, _remaining: usize, _now: SimTime) {
        if let Some(index) = self.index.as_mut() {
            index.remove(container.id());
        }
    }

    fn expired(&mut self, idle: &[&Container], now: SimTime) -> Vec<ContainerId> {
        idle.iter()
            .filter(|c| now.since(c.last_used()) >= self.ttl)
            .map(|c| c.id())
            .collect()
    }

    fn supports_incremental(&self) -> bool {
        self.index.is_some()
    }

    fn peek_victim(&mut self) -> Option<ContainerId> {
        self.index.as_ref()?.first().map(|(_, _, id)| id)
    }

    fn pop_victim(&mut self) -> Option<ContainerId> {
        self.index.as_mut()?.pop_first().map(|(_, _, id)| id)
    }

    fn pop_expired(&mut self, now: SimTime) -> Option<ContainerId> {
        let index = self.index.as_mut()?;
        let (last_used, _, id) = index.first()?;
        if now.since(last_used) >= self.ttl {
            index.pop_first();
            Some(id)
        } else {
            None
        }
    }

    fn priority_of(&self, container: &Container) -> Option<f64> {
        Some(container.last_used().as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionId;

    fn container_used_at(id: u64, used_secs: u64) -> Container {
        let mut c = Container::new(
            ContainerId::from_raw(id),
            FunctionId::from_index(id as u32),
            MemMb::new(100),
            SimDuration::from_millis(10),
            SimDuration::from_millis(20),
            None,
            SimTime::ZERO,
        );
        c.begin_invocation(
            SimTime::from_secs(used_secs),
            SimTime::from_secs(used_secs + 1),
        );
        c.finish_invocation();
        c
    }

    #[test]
    fn expires_after_ttl() {
        let mut ttl = Ttl::open_whisk_default();
        let c = container_used_at(1, 0);
        assert!(ttl.expired(&[&c], SimTime::from_mins(9)).is_empty());
        let expired = ttl.expired(&[&c], SimTime::from_mins(10));
        assert_eq!(expired, vec![ContainerId::from_raw(1)]);
    }

    #[test]
    fn expiry_measured_from_last_use() {
        let mut ttl = Ttl::new(SimDuration::from_mins(5));
        let c = container_used_at(1, 600); // last used at t=10min
        assert!(ttl.expired(&[&c], SimTime::from_mins(14)).is_empty());
        assert_eq!(ttl.expired(&[&c], SimTime::from_mins(15)).len(), 1);
    }

    #[test]
    fn full_server_evicts_lru() {
        let mut ttl = Ttl::open_whisk_default();
        let old = container_used_at(1, 5);
        let newer = container_used_at(2, 500);
        let victims = ttl.select_victims(&[&newer, &old], MemMb::new(100));
        assert_eq!(victims, vec![ContainerId::from_raw(1)]);
    }

    #[test]
    fn multiple_expired_at_once() {
        let mut ttl = Ttl::new(SimDuration::from_secs(60));
        let a = container_used_at(1, 0);
        let b = container_used_at(2, 10);
        let c = container_used_at(3, 1000);
        let mut expired = ttl.expired(&[&a, &b, &c], SimTime::from_secs(120));
        expired.sort();
        assert_eq!(
            expired,
            vec![ContainerId::from_raw(1), ContainerId::from_raw(2)]
        );
    }

    #[test]
    fn incremental_pop_expired_drains_lapsed_only() {
        let mut ttl = Ttl::new(SimDuration::from_secs(60));
        let a = container_used_at(1, 0);
        let b = container_used_at(2, 10);
        let c = container_used_at(3, 1000);
        for x in [&a, &b, &c] {
            ttl.on_finish(x, x.last_used());
        }
        assert!(ttl.pop_expired(SimTime::from_secs(59)).is_none());
        assert_eq!(ttl.pop_expired(SimTime::from_secs(120)), Some(a.id()));
        assert_eq!(ttl.pop_expired(SimTime::from_secs(120)), Some(b.id()));
        assert!(ttl.pop_expired(SimTime::from_secs(120)).is_none());
        // The survivor is still the eviction victim under pressure.
        assert_eq!(ttl.pop_victim(), Some(c.id()));
    }
}
