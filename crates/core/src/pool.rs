//! The keep-alive container pool — the "cache" in the paper's analogy.
//!
//! The pool owns every container on a server (warm and running), enforces
//! the memory capacity, and delegates eviction/expiry/prefetch decisions to
//! a [`KeepAlivePolicy`]. It mirrors the FaasCache modification to
//! OpenWhisk's `ContainerPool` (paper §6): the pool is *not* kept sorted by
//! priority — it is ranked only when an eviction is needed — and evictions
//! can be batched to a free-memory threshold (the paper's default is
//! 1000 MB) to keep the slow path off the invocation critical path.

use crate::container::{Container, ContainerId};
use crate::function::{FunctionId, FunctionSpec};
use crate::policy::KeepAlivePolicy;
use faascache_util::{MemMb, SimTime};
use std::collections::HashMap;

/// Outcome of asking the pool to serve an invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Acquire {
    /// Served by an existing warm container — a cache hit.
    Warm {
        /// The serving container.
        container: ContainerId,
    },
    /// A new container was created — a cache miss (cold start).
    Cold {
        /// The new container.
        container: ContainerId,
        /// Containers terminated to make room.
        evicted: Vec<ContainerId>,
    },
    /// The server had insufficient memory even after evicting every idle
    /// container: the request is dropped (or queued by the caller).
    NoCapacity,
}

impl Acquire {
    /// Whether the invocation was served warm.
    pub fn is_warm(&self) -> bool {
        matches!(self, Acquire::Warm { .. })
    }

    /// Whether the invocation triggered a cold start.
    pub fn is_cold(&self) -> bool {
        matches!(self, Acquire::Cold { .. })
    }

    /// Whether the request could not be served.
    pub fn is_dropped(&self) -> bool {
        matches!(self, Acquire::NoCapacity)
    }
}

/// Pool configuration.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Server memory available to containers.
    pub capacity: MemMb,
    /// Extra memory to free per eviction round (batching; paper default
    /// 1000 MB). Zero means evict exactly what is needed.
    pub eviction_batch: MemMb,
}

impl PoolConfig {
    /// A configuration with the given capacity and no eviction batching.
    pub fn new(capacity: MemMb) -> Self {
        PoolConfig {
            capacity,
            eviction_batch: MemMb::ZERO,
        }
    }

    /// Sets the eviction batch threshold.
    pub fn with_eviction_batch(mut self, batch: MemMb) -> Self {
        self.eviction_batch = batch;
        self
    }
}

/// Counters the pool maintains across its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Invocations served by a warm container.
    pub warm_starts: u64,
    /// Invocations that created a new container.
    pub cold_starts: u64,
    /// Invocations rejected for lack of memory.
    pub drops: u64,
    /// Containers terminated by policy eviction or expiry.
    pub evictions: u64,
    /// Containers created speculatively by prefetching.
    pub prewarms: u64,
}

/// The keep-alive container pool.
///
/// # Examples
///
/// ```
/// use faascache_core::function::FunctionRegistry;
/// use faascache_core::policy::Lru;
/// use faascache_core::pool::ContainerPool;
/// use faascache_util::{MemMb, SimDuration, SimTime};
///
/// let mut reg = FunctionRegistry::new();
/// let f = reg.register("f", MemMb::new(128), SimDuration::from_millis(5),
///                      SimDuration::from_millis(500))?;
/// let mut pool = ContainerPool::new(MemMb::new(256), Box::new(Lru::new()));
/// let outcome = pool.acquire(reg.spec(f), SimTime::ZERO);
/// assert!(outcome.is_cold());
/// # Ok::<(), faascache_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct ContainerPool {
    config: PoolConfig,
    policy: Box<dyn KeepAlivePolicy>,
    containers: HashMap<ContainerId, Container>,
    by_function: HashMap<FunctionId, Vec<ContainerId>>,
    used: MemMb,
    next_id: u64,
    counters: PoolCounters,
}

impl ContainerPool {
    /// Creates a pool with the given capacity and policy (no batching).
    pub fn new(capacity: MemMb, policy: Box<dyn KeepAlivePolicy>) -> Self {
        Self::with_config(PoolConfig::new(capacity), policy)
    }

    /// Creates a pool from a full configuration.
    pub fn with_config(config: PoolConfig, policy: Box<dyn KeepAlivePolicy>) -> Self {
        ContainerPool {
            config,
            policy,
            containers: HashMap::new(),
            by_function: HashMap::new(),
            used: MemMb::ZERO,
            next_id: 0,
            counters: PoolCounters::default(),
        }
    }

    /// Server memory capacity.
    pub fn capacity(&self) -> MemMb {
        self.config.capacity
    }

    /// Memory currently held by containers (warm + running).
    ///
    /// May transiently exceed [`Self::capacity`] after a downward
    /// [`Self::resize`] while running containers finish.
    pub fn used_mem(&self) -> MemMb {
        self.used
    }

    /// Memory not held by any container.
    pub fn free_mem(&self) -> MemMb {
        self.config.capacity.saturating_sub(self.used)
    }

    /// Memory held by idle (warm) containers only.
    pub fn warm_mem(&self) -> MemMb {
        self.containers
            .values()
            .filter(|c| c.is_idle())
            .map(|c| c.mem())
            .sum()
    }

    /// Number of resident containers.
    pub fn len(&self) -> usize {
        self.containers.len()
    }

    /// Whether the pool holds no containers.
    pub fn is_empty(&self) -> bool {
        self.containers.is_empty()
    }

    /// Number of containers currently running an invocation.
    pub fn running_count(&self) -> usize {
        self.containers.values().filter(|c| !c.is_idle()).count()
    }

    /// Number of idle (warm) containers across all functions.
    pub fn warm_count(&self) -> usize {
        self.containers.values().filter(|c| c.is_idle()).count()
    }

    /// Number of idle (warm) containers of `function`.
    pub fn warm_count_of(&self, function: FunctionId) -> usize {
        self.by_function
            .get(&function)
            .map_or(0, |ids| {
                ids.iter()
                    .filter(|id| self.containers[id].is_idle())
                    .count()
            })
    }

    /// Looks up a resident container.
    pub fn container(&self, id: ContainerId) -> Option<&Container> {
        self.containers.get(&id)
    }

    /// Iterates over resident containers in unspecified order.
    pub fn containers(&self) -> impl Iterator<Item = &Container> {
        self.containers.values()
    }

    /// Lifetime counters.
    pub fn counters(&self) -> PoolCounters {
        self.counters
    }

    /// The policy driving this pool.
    pub fn policy(&self) -> &dyn KeepAlivePolicy {
        self.policy.as_ref()
    }

    /// Serves an invocation of `spec` arriving at `now`.
    ///
    /// Warm path: the most recently used idle container of the function is
    /// reused. Cold path: idle containers are evicted (policy order) until
    /// the new container fits; if even that fails — i.e. running containers
    /// pin too much memory — the request is dropped.
    ///
    /// All specs passed to one pool must come from the same
    /// [`crate::function::FunctionRegistry`]: function identity is the
    /// dense [`FunctionId`], and ids from different registries collide.
    pub fn acquire(&mut self, spec: &FunctionSpec, now: SimTime) -> Acquire {
        self.policy.on_request(spec, now);

        // Warm path: most recently used idle container of this function.
        if let Some(id) = self.pick_warm(spec.id()) {
            let until = now + spec.warm_time();
            let c = self.containers.get_mut(&id).expect("picked resident");
            c.begin_invocation(now, until);
            let c = &self.containers[&id];
            self.policy.on_warm_start(c, now);
            self.counters.warm_starts += 1;
            return Acquire::Warm { container: id };
        }

        // Cold path.
        if spec.mem() > self.config.capacity {
            self.counters.drops += 1;
            return Acquire::NoCapacity;
        }
        let evicted = self.make_room(spec.mem(), now);
        if self.free_mem() < spec.mem() {
            self.counters.drops += 1;
            return Acquire::NoCapacity;
        }
        let id = self.insert_container(spec, now, false);
        let until = now + spec.cold_time();
        let c = self.containers.get_mut(&id).expect("just inserted");
        c.begin_invocation(now, until);
        self.counters.cold_starts += 1;
        Acquire::Cold {
            container: id,
            evicted,
        }
    }

    /// Marks a running container's invocation as complete; it becomes warm.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not resident or not running.
    pub fn release(&mut self, id: ContainerId, now: SimTime) {
        let c = self
            .containers
            .get_mut(&id)
            .expect("releasing a non-resident container");
        c.finish_invocation();
        let c = &self.containers[&id];
        self.policy.on_finish(c, now);
    }

    /// Applies TTL-style expiry: asks the policy which idle containers have
    /// lapsed and terminates them. Returns the terminated ids.
    pub fn reap(&mut self, now: SimTime) -> Vec<ContainerId> {
        let idle = idle_refs(&self.containers);
        let expired = self.policy.expired(&idle, now);
        drop(idle);
        for &id in &expired {
            self.evict(id, now);
        }
        expired
    }

    /// Functions the policy wants prewarmed at `now`.
    pub fn prewarm_due(&mut self, now: SimTime) -> Vec<FunctionId> {
        self.policy.prewarm_due(now)
    }

    /// Creates a warm container for `spec` speculatively (prefetch).
    ///
    /// Returns `None` — without evicting anything — if the function already
    /// has an idle container or memory is insufficient; prefetching never
    /// steals memory from demand traffic.
    pub fn prewarm(&mut self, spec: &FunctionSpec, now: SimTime) -> Option<ContainerId> {
        if self.warm_count_of(spec.id()) > 0 || self.free_mem() < spec.mem() {
            return None;
        }
        let id = self.insert_container(spec, now, true);
        self.counters.prewarms += 1;
        Some(id)
    }

    /// Changes the pool capacity (elastic vertical scaling). When
    /// shrinking, idle containers are evicted until the pool fits; running
    /// containers are never killed, so `used_mem` may transiently exceed
    /// the new capacity. Returns the evicted containers.
    pub fn resize(&mut self, new_capacity: MemMb, now: SimTime) -> Vec<ContainerId> {
        self.config.capacity = new_capacity;
        let mut all_evicted = Vec::new();
        while self.used > self.config.capacity {
            let overshoot = self.used - self.config.capacity;
            let idle = idle_refs(&self.containers);
            if idle.is_empty() {
                break;
            }
            let victims = self.policy.select_victims(&idle, overshoot);
            drop(idle);
            if victims.is_empty() {
                break;
            }
            let mut progressed = false;
            for id in victims {
                // Guard against policies returning stale or running ids.
                if self.containers.get(&id).is_some_and(|c| c.is_idle()) {
                    self.evict(id, now);
                    all_evicted.push(id);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        all_evicted
    }

    fn pick_warm(&self, function: FunctionId) -> Option<ContainerId> {
        self.by_function.get(&function).and_then(|ids| {
            ids.iter()
                .filter(|id| self.containers[id].is_idle())
                .max_by_key(|&&id| (self.containers[&id].last_used(), id))
                .copied()
        })
    }



    /// Evicts idle containers (policy order) until at least `needed` memory
    /// is free, possibly over-freeing by the configured batch. Returns the
    /// evicted ids.
    fn make_room(&mut self, needed: MemMb, now: SimTime) -> Vec<ContainerId> {
        let mut evicted = Vec::new();
        if self.free_mem() >= needed {
            return evicted;
        }
        // Batching: once we must evict at all, free up to the batch
        // threshold beyond the immediate need (paper §6).
        let target = needed + self.config.eviction_batch;
        loop {
            let free = self.free_mem();
            if free >= needed {
                break;
            }
            let shortfall = target.saturating_sub(free);
            let idle = idle_refs(&self.containers);
            if idle.is_empty() {
                break;
            }
            let victims = self.policy.select_victims(&idle, shortfall);
            drop(idle);
            if victims.is_empty() {
                break;
            }
            let mut progressed = false;
            for id in victims {
                // Guard against policies returning stale or running ids.
                if self.containers.get(&id).is_some_and(|c| c.is_idle()) {
                    self.evict(id, now);
                    evicted.push(id);
                    progressed = true;
                }
            }
            // A policy that returns only bogus ids must not loop forever.
            if !progressed {
                break;
            }
        }
        evicted
    }

    fn insert_container(&mut self, spec: &FunctionSpec, now: SimTime, prewarm: bool) -> ContainerId {
        let id = ContainerId::from_raw(self.next_id);
        self.next_id += 1;
        let container = Container::new(
            id,
            spec.id(),
            spec.mem(),
            spec.warm_time(),
            spec.cold_time(),
            spec.resources().copied(),
            now,
        );
        self.used += container.mem();
        self.policy.on_container_created(&container, now, prewarm);
        self.by_function.entry(spec.id()).or_default().push(id);
        self.containers.insert(id, container);
        id
    }

    fn evict(&mut self, id: ContainerId, now: SimTime) {
        let Some(container) = self.containers.remove(&id) else {
            return;
        };
        debug_assert!(
            container.is_idle(),
            "attempted to evict a running container"
        );
        self.used -= container.mem();
        let remaining = {
            let ids = self
                .by_function
                .get_mut(&container.function())
                .expect("function index entry exists");
            ids.retain(|&x| x != id);
            let remaining = ids.len();
            if remaining == 0 {
                self.by_function.remove(&container.function());
            }
            remaining
        };
        self.counters.evictions += 1;
        self.policy.on_evicted(&container, remaining, now);
    }
}

/// Idle (warm) containers of a pool, collected for a policy call.
///
/// Sorted by container id so policies see a canonical order — `HashMap`
/// iteration order is per-instance random, and letting it leak into policy
/// tie-breaking would make simulations non-reproducible.
fn idle_refs(containers: &HashMap<ContainerId, Container>) -> Vec<&Container> {
    let mut idle: Vec<&Container> = containers.values().filter(|c| c.is_idle()).collect();
    idle.sort_by_key(|c| c.id());
    idle
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionRegistry;
    use crate::policy::{GreedyDual, Lru, Ttl};
    use faascache_util::SimDuration;

    fn registry() -> (FunctionRegistry, Vec<FunctionId>) {
        let mut reg = FunctionRegistry::new();
        let ids = vec![
            reg.register("a", MemMb::new(100), SimDuration::from_millis(10), SimDuration::from_millis(500))
                .unwrap(),
            reg.register("b", MemMb::new(200), SimDuration::from_millis(20), SimDuration::from_millis(800))
                .unwrap(),
            reg.register("c", MemMb::new(300), SimDuration::from_millis(30), SimDuration::from_millis(900))
                .unwrap(),
        ];
        (reg, ids)
    }

    #[test]
    fn cold_then_warm() {
        let (reg, ids) = registry();
        let mut pool = ContainerPool::new(MemMb::new(1000), Box::new(Lru::new()));
        let t0 = SimTime::ZERO;
        let first = pool.acquire(reg.spec(ids[0]), t0);
        let Acquire::Cold { container, evicted } = first else {
            panic!("expected cold start");
        };
        assert!(evicted.is_empty());
        pool.release(container, t0 + SimDuration::from_millis(500));
        let second = pool.acquire(reg.spec(ids[0]), SimTime::from_secs(1));
        assert_eq!(second, Acquire::Warm { container });
        assert_eq!(pool.counters().cold_starts, 1);
        assert_eq!(pool.counters().warm_starts, 1);
    }

    #[test]
    fn memory_accounting() {
        let (reg, ids) = registry();
        let mut pool = ContainerPool::new(MemMb::new(1000), Box::new(Lru::new()));
        let t = SimTime::ZERO;
        for &f in &ids {
            pool.acquire(reg.spec(f), t);
        }
        assert_eq!(pool.used_mem(), MemMb::new(600));
        assert_eq!(pool.free_mem(), MemMb::new(400));
        assert_eq!(pool.len(), 3);
        // Running containers hold memory but are not "warm".
        assert_eq!(pool.warm_mem(), MemMb::ZERO);
    }

    #[test]
    fn eviction_makes_room() {
        let (reg, ids) = registry();
        let mut pool = ContainerPool::new(MemMb::new(350), Box::new(Lru::new()));
        let c0 = match pool.acquire(reg.spec(ids[0]), SimTime::ZERO) {
            Acquire::Cold { container, .. } => container,
            other => panic!("unexpected {other:?}"),
        };
        pool.release(c0, SimTime::from_millis(500));
        let c1 = match pool.acquire(reg.spec(ids[1]), SimTime::from_secs(1)) {
            Acquire::Cold { container, evicted } => {
                assert!(evicted.is_empty(), "100+200 fits in 350");
                container
            }
            other => panic!("unexpected {other:?}"),
        };
        pool.release(c1, SimTime::from_secs(2));
        // c (300MB) does not fit alongside 300MB of warm containers: evict.
        match pool.acquire(reg.spec(ids[2]), SimTime::from_secs(3)) {
            Acquire::Cold { evicted, .. } => {
                assert_eq!(evicted.len(), 2, "both warm containers evicted (LRU)");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(pool.used_mem(), MemMb::new(300));
        assert_eq!(pool.counters().evictions, 2);
    }

    #[test]
    fn running_containers_pin_memory() {
        let (reg, ids) = registry();
        let mut pool = ContainerPool::new(MemMb::new(350), Box::new(Lru::new()));
        // a and b running concurrently (300MB total, never released).
        pool.acquire(reg.spec(ids[0]), SimTime::ZERO);
        pool.acquire(reg.spec(ids[1]), SimTime::ZERO);
        // c needs 300MB; only 50 free, nothing evictable → dropped.
        let out = pool.acquire(reg.spec(ids[2]), SimTime::from_millis(1));
        assert_eq!(out, Acquire::NoCapacity);
        assert_eq!(pool.counters().drops, 1);
    }

    #[test]
    fn oversized_function_dropped() {
        let (reg, _) = registry();
        let mut big_reg = FunctionRegistry::new();
        let big = big_reg
            .register("big", MemMb::new(4096), SimDuration::ZERO, SimDuration::ZERO)
            .unwrap();
        let mut pool = ContainerPool::new(MemMb::new(1000), Box::new(Lru::new()));
        assert_eq!(pool.acquire(big_reg.spec(big), SimTime::ZERO), Acquire::NoCapacity);
        let _ = reg;
    }

    #[test]
    fn concurrent_invocations_use_separate_containers() {
        let (reg, ids) = registry();
        let mut pool = ContainerPool::new(MemMb::new(1000), Box::new(GreedyDual::new()));
        let a1 = pool.acquire(reg.spec(ids[0]), SimTime::ZERO);
        let a2 = pool.acquire(reg.spec(ids[0]), SimTime::from_millis(1));
        assert!(a1.is_cold() && a2.is_cold(), "second concurrent invocation needs its own container");
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.used_mem(), MemMb::new(200));
    }

    #[test]
    fn warm_picks_most_recently_used() {
        let (reg, ids) = registry();
        let mut pool = ContainerPool::new(MemMb::new(1000), Box::new(Lru::new()));
        let c1 = match pool.acquire(reg.spec(ids[0]), SimTime::ZERO) {
            Acquire::Cold { container, .. } => container,
            _ => unreachable!(),
        };
        let c2 = match pool.acquire(reg.spec(ids[0]), SimTime::from_millis(1)) {
            Acquire::Cold { container, .. } => container,
            _ => unreachable!(),
        };
        pool.release(c1, SimTime::from_secs(1));
        pool.release(c2, SimTime::from_secs(2));
        // c2 released later but last_used is begin time; c2 began later.
        match pool.acquire(reg.spec(ids[0]), SimTime::from_secs(3)) {
            Acquire::Warm { container } => assert_eq!(container, c2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ttl_reaping() {
        let (reg, ids) = registry();
        let mut pool = ContainerPool::new(
            MemMb::new(1000),
            Box::new(Ttl::new(SimDuration::from_mins(10))),
        );
        let c = match pool.acquire(reg.spec(ids[0]), SimTime::ZERO) {
            Acquire::Cold { container, .. } => container,
            _ => unreachable!(),
        };
        pool.release(c, SimTime::from_millis(500));
        assert!(pool.reap(SimTime::from_mins(9)).is_empty());
        let reaped = pool.reap(SimTime::from_mins(10));
        assert_eq!(reaped, vec![c]);
        assert!(pool.is_empty());
        assert_eq!(pool.used_mem(), MemMb::ZERO);
    }

    #[test]
    fn reap_never_kills_running() {
        let (reg, ids) = registry();
        let mut pool = ContainerPool::new(
            MemMb::new(1000),
            Box::new(Ttl::new(SimDuration::from_mins(10))),
        );
        pool.acquire(reg.spec(ids[0]), SimTime::ZERO);
        // Still running (never released): reap must not touch it.
        assert!(pool.reap(SimTime::from_mins(60)).is_empty());
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn prewarm_creates_idle_container() {
        let (reg, ids) = registry();
        let mut pool = ContainerPool::new(MemMb::new(1000), Box::new(GreedyDual::new()));
        let id = pool.prewarm(reg.spec(ids[0]), SimTime::ZERO).unwrap();
        assert!(pool.container(id).unwrap().is_idle());
        assert_eq!(pool.counters().prewarms, 1);
        // Next acquire is a warm start.
        assert!(pool.acquire(reg.spec(ids[0]), SimTime::from_secs(1)).is_warm());
        // Prewarm is a no-op when a warm container exists.
        assert!(pool.prewarm(reg.spec(ids[1]), SimTime::ZERO).is_some());
        assert!(pool.prewarm(reg.spec(ids[1]), SimTime::ZERO).is_none());
    }

    #[test]
    fn prewarm_does_not_evict() {
        let (reg, ids) = registry();
        let mut pool = ContainerPool::new(MemMb::new(250), Box::new(Lru::new()));
        let c = match pool.acquire(reg.spec(ids[1]), SimTime::ZERO) {
            Acquire::Cold { container, .. } => container,
            _ => unreachable!(),
        };
        pool.release(c, SimTime::from_secs(1));
        // 50MB free; prewarming a 100MB function must fail, not evict.
        assert!(pool.prewarm(reg.spec(ids[0]), SimTime::from_secs(2)).is_none());
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn resize_shrinks_by_evicting_idle() {
        let (reg, ids) = registry();
        let mut pool = ContainerPool::new(MemMb::new(1000), Box::new(Lru::new()));
        let mut released = Vec::new();
        for &f in &ids {
            if let Acquire::Cold { container, .. } = pool.acquire(reg.spec(f), SimTime::ZERO) {
                released.push(container);
            }
        }
        for (i, c) in released.iter().enumerate() {
            pool.release(*c, SimTime::from_secs(i as u64 + 1));
        }
        assert_eq!(pool.used_mem(), MemMb::new(600));
        let evicted = pool.resize(MemMb::new(350), SimTime::from_secs(10));
        assert!(!evicted.is_empty());
        assert!(pool.used_mem() <= MemMb::new(350));
        assert_eq!(pool.capacity(), MemMb::new(350));
    }

    #[test]
    fn resize_cannot_evict_running() {
        let (reg, ids) = registry();
        let mut pool = ContainerPool::new(MemMb::new(1000), Box::new(Lru::new()));
        pool.acquire(reg.spec(ids[2]), SimTime::ZERO); // 300MB running
        let evicted = pool.resize(MemMb::new(100), SimTime::from_secs(1));
        assert!(evicted.is_empty());
        assert_eq!(pool.used_mem(), MemMb::new(300), "overcommitted until release");
        assert_eq!(pool.free_mem(), MemMb::ZERO);
    }

    #[test]
    fn eviction_batching_frees_extra() {
        let (reg, ids) = registry();
        let config = PoolConfig::new(MemMb::new(600)).with_eviction_batch(MemMb::new(300));
        let mut pool = ContainerPool::with_config(config, Box::new(Lru::new()));
        // Fill with six 100MB warm containers of function a.
        let mut cs = Vec::new();
        for i in 0..6 {
            if let Acquire::Cold { container, .. } =
                pool.acquire(reg.spec(ids[0]), SimTime::from_millis(i))
            {
                cs.push(container);
            }
        }
        for (i, c) in cs.iter().enumerate() {
            pool.release(*c, SimTime::from_secs(i as u64 + 1));
        }
        assert_eq!(pool.used_mem(), MemMb::new(600));
        // b needs 200MB: with a 300MB batch, the pool frees ≥ 300MB extra
        // beyond... (target = needed + batch = 500MB free).
        match pool.acquire(reg.spec(ids[1]), SimTime::from_secs(100)) {
            Acquire::Cold { evicted, .. } => assert_eq!(evicted.len(), 5),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn warm_count_tracks_function_state() {
        let (reg, ids) = registry();
        let mut pool = ContainerPool::new(MemMb::new(1000), Box::new(Lru::new()));
        assert_eq!(pool.warm_count_of(ids[0]), 0);
        let c = match pool.acquire(reg.spec(ids[0]), SimTime::ZERO) {
            Acquire::Cold { container, .. } => container,
            _ => unreachable!(),
        };
        assert_eq!(pool.warm_count_of(ids[0]), 0, "running, not warm");
        pool.release(c, SimTime::from_secs(1));
        assert_eq!(pool.warm_count_of(ids[0]), 1);
    }
}
