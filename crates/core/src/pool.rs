//! The keep-alive container pool — the "cache" in the paper's analogy.
//!
//! The pool owns every container on a server (warm and running), enforces
//! the memory capacity, and delegates eviction/expiry/prefetch decisions to
//! a [`KeepAlivePolicy`]. It mirrors the FaasCache modification to
//! OpenWhisk's `ContainerPool` (paper §6): the pool is *not* kept sorted by
//! priority — it is ranked only when an eviction is needed — and evictions
//! can be batched to a free-memory threshold (the paper's default is
//! 1000 MB) to keep the slow path off the invocation critical path.
//!
//! # Indexed hot path
//!
//! The pool maintains a persistent idle-set index: per-function idle
//! containers ordered by recency (warm-path pick is a `BTreeSet::last`),
//! a pool-wide idle registry in id order, and a running idle-memory
//! counter. `warm_mem`/`warm_count`/`warm_count_of`/`running_count` are
//! O(1), and when the policy supports incremental victim selection
//! ([`KeepAlivePolicy::supports_incremental`]) evictions, expiry sweeps,
//! and resizes pop victims one at a time — O(log n) each — instead of
//! materializing and sorting a `Vec<&Container>` snapshot of the idle set.
//!
//! # Victim tie-break contract
//!
//! Whichever path is taken, victims leave the pool in the order
//! `(policy priority ascending, last_used ascending, ContainerId
//! ascending)` — in particular, among equally ranked idle containers the
//! one with the **lowest id** is evicted first. The naive path guarantees
//! this by handing policies the idle snapshot sorted by id and relying on
//! stable sorts; the incremental path by including `(last_used, id)` in
//! every index key.

use crate::container::{Container, ContainerId};
use crate::function::{FunctionId, FunctionSpec};
use crate::policy::KeepAlivePolicy;
use faascache_util::{MemMb, SimTime};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Observer of per-tenant resident-memory changes.
///
/// Every change to the pool's resident memory flows through exactly four
/// sites — container insertion and adoption (`+mem`), idle extraction and
/// eviction (`−mem`) — and each notifies the ledger with the container's
/// tenant tag. A quota-accounting layer implements this to maintain exact
/// per-tenant warm-memory totals without mirroring any pool state; the
/// default ledger does nothing.
pub trait TenantLedger: std::fmt::Debug + Send + Sync {
    /// A container of raw tenant index `tenant` became resident with `mem`.
    fn container_added(&self, tenant: u32, mem: MemMb);
    /// A container of raw tenant index `tenant` left the pool, freeing
    /// `mem`.
    fn container_removed(&self, tenant: u32, mem: MemMb);
}

/// The default ledger: ignores every notification.
#[derive(Debug)]
struct NoopLedger;

impl TenantLedger for NoopLedger {
    fn container_added(&self, _tenant: u32, _mem: MemMb) {}
    fn container_removed(&self, _tenant: u32, _mem: MemMb) {}
}

/// Outcome of asking the pool to serve an invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Acquire {
    /// Served by an existing warm container — a cache hit.
    Warm {
        /// The serving container.
        container: ContainerId,
    },
    /// A new container was created — a cache miss (cold start).
    Cold {
        /// The new container.
        container: ContainerId,
        /// Containers terminated to make room.
        evicted: Vec<ContainerId>,
    },
    /// The server had insufficient memory even after evicting every idle
    /// container: the request is dropped (or queued by the caller).
    NoCapacity,
}

impl Acquire {
    /// Whether the invocation was served warm.
    pub fn is_warm(&self) -> bool {
        matches!(self, Acquire::Warm { .. })
    }

    /// Whether the invocation triggered a cold start.
    pub fn is_cold(&self) -> bool {
        matches!(self, Acquire::Cold { .. })
    }

    /// Whether the request could not be served.
    pub fn is_dropped(&self) -> bool {
        matches!(self, Acquire::NoCapacity)
    }
}

/// Pool configuration.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Server memory available to containers.
    pub capacity: MemMb,
    /// Extra memory to free per eviction round (batching; paper default
    /// 1000 MB). Zero means evict exactly what is needed.
    pub eviction_batch: MemMb,
}

impl PoolConfig {
    /// A configuration with the given capacity and no eviction batching.
    pub fn new(capacity: MemMb) -> Self {
        PoolConfig {
            capacity,
            eviction_batch: MemMb::ZERO,
        }
    }

    /// Sets the eviction batch threshold.
    pub fn with_eviction_batch(mut self, batch: MemMb) -> Self {
        self.eviction_batch = batch;
        self
    }
}

/// Increments a lifetime counter, saturating at `u64::MAX`.
///
/// Request counters run for the life of a serving process; a silent wrap
/// under sustained load would violate the conservation invariants
/// (`warm + cold + dropped == submitted`) every caller checks, so the
/// counters saturate instead and flag the (practically unreachable)
/// overflow in debug builds.
pub(crate) fn bump(counter: &mut u64) {
    debug_assert!(*counter < u64::MAX, "lifetime counter overflow");
    *counter = counter.saturating_add(1);
}

/// Counters the pool maintains across its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Invocations served by a warm container.
    pub warm_starts: u64,
    /// Invocations that created a new container.
    pub cold_starts: u64,
    /// Invocations rejected for lack of memory.
    pub drops: u64,
    /// Containers terminated by policy eviction or expiry.
    pub evictions: u64,
    /// Containers created speculatively by prefetching.
    pub prewarms: u64,
}

/// The keep-alive container pool.
///
/// # Examples
///
/// ```
/// use faascache_core::function::FunctionRegistry;
/// use faascache_core::policy::Lru;
/// use faascache_core::pool::ContainerPool;
/// use faascache_util::{MemMb, SimDuration, SimTime};
///
/// let mut reg = FunctionRegistry::new();
/// let f = reg.register("f", MemMb::new(128), SimDuration::from_millis(5),
///                      SimDuration::from_millis(500))?;
/// let mut pool = ContainerPool::new(MemMb::new(256), Box::new(Lru::new()));
/// let outcome = pool.acquire(reg.spec(f), SimTime::ZERO);
/// assert!(outcome.is_cold());
/// # Ok::<(), faascache_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct ContainerPool {
    config: PoolConfig,
    policy: Box<dyn KeepAlivePolicy>,
    containers: HashMap<ContainerId, Container>,
    by_function: HashMap<FunctionId, Vec<ContainerId>>,
    /// Idle containers per function, ordered by `(last_used, id)`; the
    /// warm-path pick is the set's maximum.
    idle_by_fn: HashMap<FunctionId, BTreeSet<(SimTime, ContainerId)>>,
    /// Every idle container, in the canonical (ascending id) order policy
    /// snapshots are handed out in.
    idle_ids: BTreeSet<ContainerId>,
    /// Memory held by idle containers, maintained incrementally.
    idle_mem: MemMb,
    used: MemMb,
    next_id: u64,
    counters: PoolCounters,
    ledger: Arc<dyn TenantLedger>,
}

impl ContainerPool {
    /// Creates a pool with the given capacity and policy (no batching).
    pub fn new(capacity: MemMb, policy: Box<dyn KeepAlivePolicy>) -> Self {
        Self::with_config(PoolConfig::new(capacity), policy)
    }

    /// Creates a pool from a full configuration.
    pub fn with_config(config: PoolConfig, policy: Box<dyn KeepAlivePolicy>) -> Self {
        Self::with_config_and_ledger(config, policy, Arc::new(NoopLedger))
    }

    /// Creates a pool that reports per-tenant resident-memory changes to
    /// `ledger` (see [`TenantLedger`]).
    pub fn with_config_and_ledger(
        config: PoolConfig,
        policy: Box<dyn KeepAlivePolicy>,
        ledger: Arc<dyn TenantLedger>,
    ) -> Self {
        ContainerPool {
            config,
            policy,
            containers: HashMap::new(),
            by_function: HashMap::new(),
            idle_by_fn: HashMap::new(),
            idle_ids: BTreeSet::new(),
            idle_mem: MemMb::ZERO,
            used: MemMb::ZERO,
            next_id: 0,
            counters: PoolCounters::default(),
            ledger,
        }
    }

    /// Server memory capacity.
    pub fn capacity(&self) -> MemMb {
        self.config.capacity
    }

    /// Memory currently held by containers (warm + running).
    ///
    /// May transiently exceed [`Self::capacity`] after a downward
    /// [`Self::resize`] while running containers finish.
    pub fn used_mem(&self) -> MemMb {
        self.used
    }

    /// Memory not held by any container.
    pub fn free_mem(&self) -> MemMb {
        self.config.capacity.saturating_sub(self.used)
    }

    /// Memory held by idle (warm) containers only. O(1).
    pub fn warm_mem(&self) -> MemMb {
        self.idle_mem
    }

    /// Number of resident containers.
    pub fn len(&self) -> usize {
        self.containers.len()
    }

    /// Whether the pool holds no containers.
    pub fn is_empty(&self) -> bool {
        self.containers.is_empty()
    }

    /// Number of containers currently running an invocation. O(1).
    pub fn running_count(&self) -> usize {
        self.containers.len() - self.idle_ids.len()
    }

    /// Number of idle (warm) containers across all functions. O(1).
    pub fn warm_count(&self) -> usize {
        self.idle_ids.len()
    }

    /// Number of idle (warm) containers of `function`. O(1).
    pub fn warm_count_of(&self, function: FunctionId) -> usize {
        self.idle_by_fn.get(&function).map_or(0, |set| set.len())
    }

    /// Iterates over idle container ids in ascending order.
    pub fn idle_ids(&self) -> impl Iterator<Item = ContainerId> + '_ {
        self.idle_ids.iter().copied()
    }

    /// Looks up a resident container.
    pub fn container(&self, id: ContainerId) -> Option<&Container> {
        self.containers.get(&id)
    }

    /// Iterates over resident containers in unspecified order.
    pub fn containers(&self) -> impl Iterator<Item = &Container> {
        self.containers.values()
    }

    /// Lifetime counters.
    pub fn counters(&self) -> PoolCounters {
        self.counters
    }

    /// The policy driving this pool.
    pub fn policy(&self) -> &dyn KeepAlivePolicy {
        self.policy.as_ref()
    }

    /// Installs shared per-tenant eviction weights on the policy (a no-op
    /// for tenant-blind policies).
    pub fn set_tenant_weights(&mut self, weights: Arc<crate::policy::TenantWeights>) {
        self.policy.set_tenant_weights(weights);
    }

    /// Serves an invocation of `spec` arriving at `now`.
    ///
    /// Warm path: the most recently used idle container of the function is
    /// reused. Cold path: idle containers are evicted (policy order) until
    /// the new container fits; if even that fails — i.e. running containers
    /// pin too much memory — the request is dropped.
    ///
    /// All specs passed to one pool must come from the same
    /// [`crate::function::FunctionRegistry`]: function identity is the
    /// dense [`FunctionId`], and ids from different registries collide.
    pub fn acquire(&mut self, spec: &FunctionSpec, now: SimTime) -> Acquire {
        self.policy.on_request(spec, now);

        // Warm path: most recently used idle container of this function.
        if let Some(id) = self.pick_warm(spec.id()) {
            // Leave the idle index before `begin_invocation` changes the
            // `last_used` the index entry is keyed under.
            self.unmark_idle(id);
            let until = now + spec.warm_time();
            let c = self.containers.get_mut(&id).expect("picked resident");
            c.begin_invocation(now, until);
            let c = &self.containers[&id];
            self.policy.on_warm_start(c, now);
            bump(&mut self.counters.warm_starts);
            return Acquire::Warm { container: id };
        }

        // Cold path.
        if spec.mem() > self.config.capacity {
            bump(&mut self.counters.drops);
            return Acquire::NoCapacity;
        }
        let evicted = self.make_room(spec.mem(), now);
        if self.free_mem() < spec.mem() {
            bump(&mut self.counters.drops);
            return Acquire::NoCapacity;
        }
        let id = self.insert_container(spec, now, false);
        let until = now + spec.cold_time();
        let c = self.containers.get_mut(&id).expect("just inserted");
        c.begin_invocation(now, until);
        bump(&mut self.counters.cold_starts);
        Acquire::Cold {
            container: id,
            evicted,
        }
    }

    /// Marks a running container's invocation as complete; it becomes warm.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not resident or not running.
    pub fn release(&mut self, id: ContainerId, now: SimTime) {
        let c = self
            .containers
            .get_mut(&id)
            .expect("releasing a non-resident container");
        c.finish_invocation();
        self.mark_idle(id);
        let c = &self.containers[&id];
        self.policy.on_finish(c, now);
    }

    /// Applies TTL-style expiry: asks the policy which idle containers have
    /// lapsed and terminates them. Returns the terminated ids.
    pub fn reap(&mut self, now: SimTime) -> Vec<ContainerId> {
        if self.policy.supports_incremental() {
            // Drain the policy's expiry index, then terminate in ascending
            // id order — the order the naive path reports (its snapshot is
            // id-sorted and `expired` filters it in place).
            let mut expired = Vec::new();
            while let Some(id) = self.policy.pop_expired(now) {
                expired.push(id);
            }
            expired.sort_unstable();
            for &id in &expired {
                if self.containers.get(&id).is_some_and(|c| c.is_idle()) {
                    self.evict(id, now);
                }
            }
            return expired;
        }
        let idle = idle_refs(&self.containers, &self.idle_ids);
        let expired = self.policy.expired(&idle, now);
        drop(idle);
        for &id in &expired {
            self.evict(id, now);
        }
        expired
    }

    /// Functions the policy wants prewarmed at `now`.
    pub fn prewarm_due(&mut self, now: SimTime) -> Vec<FunctionId> {
        self.policy.prewarm_due(now)
    }

    /// Creates a warm container for `spec` speculatively (prefetch).
    ///
    /// Returns `None` — without evicting anything — if the function already
    /// has an idle container or memory is insufficient; prefetching never
    /// steals memory from demand traffic.
    pub fn prewarm(&mut self, spec: &FunctionSpec, now: SimTime) -> Option<ContainerId> {
        if self.warm_count_of(spec.id()) > 0 || self.free_mem() < spec.mem() {
            return None;
        }
        let id = self.insert_container(spec, now, true);
        bump(&mut self.counters.prewarms);
        Some(id)
    }

    /// Removes and returns every *idle* container of `function` for live
    /// migration to another pool (warm-set re-homing). Running containers
    /// stay put.
    ///
    /// The policy is told to forget each container (via
    /// [`KeepAlivePolicy::on_evicted`], so incremental indexes drop it)
    /// but the **eviction counter is not bumped**: migration relocates a
    /// warm set, it does not destroy it, and the conservation invariants
    /// callers check must not see phantom evictions.
    pub fn extract_idle_of(&mut self, function: FunctionId, now: SimTime) -> Vec<Container> {
        let ids: Vec<ContainerId> = self
            .idle_by_fn
            .get(&function)
            .map(|set| set.iter().map(|&(_, id)| id).collect())
            .unwrap_or_default();
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            self.unmark_idle(id);
            let container = self.containers.remove(&id).expect("indexed idle container");
            debug_assert!(container.is_idle());
            self.used -= container.mem();
            self.ledger
                .container_removed(container.tenant(), container.mem());
            let remaining = {
                let ids = self
                    .by_function
                    .get_mut(&container.function())
                    .expect("function index entry exists");
                ids.retain(|&x| x != id);
                let remaining = ids.len();
                if remaining == 0 {
                    self.by_function.remove(&container.function());
                }
                remaining
            };
            self.policy.on_evicted(&container, remaining, now);
            out.push(container);
        }
        out
    }

    /// Adopts a container migrated from another pool, re-identifying it
    /// under this pool's id space while preserving its history
    /// (`created_at`, `last_used`, `uses`) so policy priorities carry
    /// over. The container enters the idle set immediately.
    ///
    /// Like [`Self::prewarm`], adoption never evicts: if the container
    /// does not fit in free memory it is handed back via `Err` so the
    /// source pool can re-adopt it — migration must move a warm set, not
    /// shrink it.
    ///
    /// # Panics
    ///
    /// Panics if the container is not idle.
    pub fn adopt(&mut self, container: Container, now: SimTime) -> Result<ContainerId, Container> {
        assert!(container.is_idle(), "only idle containers migrate");
        if self.free_mem() < container.mem() {
            return Err(container);
        }
        let id = ContainerId::from_raw(self.next_id);
        self.next_id += 1;
        let container = container.with_id(id);
        self.used += container.mem();
        self.ledger
            .container_added(container.tenant(), container.mem());
        // The prewarm flag makes policies index the container as
        // born-idle (no frequency credit until an invocation lands).
        self.policy.on_container_created(&container, now, true);
        self.by_function
            .entry(container.function())
            .or_default()
            .push(id);
        self.containers.insert(id, container);
        self.mark_idle(id);
        Ok(id)
    }

    /// Changes the pool capacity (elastic vertical scaling). When
    /// shrinking, idle containers are evicted until the pool fits; running
    /// containers are never killed, so `used_mem` may transiently exceed
    /// the new capacity. Returns the evicted containers.
    pub fn resize(&mut self, new_capacity: MemMb, now: SimTime) -> Vec<ContainerId> {
        self.config.capacity = new_capacity;
        let mut all_evicted = Vec::new();
        if self.policy.supports_incremental() {
            while self.used > self.config.capacity {
                let Some(id) = self.policy.pop_victim() else {
                    break;
                };
                // Guard against stale or running ids.
                if self.containers.get(&id).is_some_and(|c| c.is_idle()) {
                    self.evict(id, now);
                    all_evicted.push(id);
                }
            }
            return all_evicted;
        }
        while self.used > self.config.capacity {
            let overshoot = self.used - self.config.capacity;
            let idle = idle_refs(&self.containers, &self.idle_ids);
            if idle.is_empty() {
                break;
            }
            let victims = self.policy.select_victims(&idle, overshoot);
            drop(idle);
            if victims.is_empty() {
                break;
            }
            let mut progressed = false;
            for id in victims {
                // Guard against policies returning stale or running ids.
                if self.containers.get(&id).is_some_and(|c| c.is_idle()) {
                    self.evict(id, now);
                    all_evicted.push(id);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        all_evicted
    }

    /// Most recently used idle container of `function`: the maximum of its
    /// `(last_used, id)`-ordered idle set. O(log n).
    fn pick_warm(&self, function: FunctionId) -> Option<ContainerId> {
        self.idle_by_fn
            .get(&function)
            .and_then(|set| set.last())
            .map(|&(_, id)| id)
    }

    /// Registers a container as idle. Must be called while the container's
    /// `last_used` is the value it will keep for the idle period.
    fn mark_idle(&mut self, id: ContainerId) {
        let (mem, function, last_used) = {
            let c = &self.containers[&id];
            debug_assert!(c.is_idle(), "marking a running container idle");
            (c.mem(), c.function(), c.last_used())
        };
        if self.idle_ids.insert(id) {
            self.idle_mem += mem;
            self.idle_by_fn
                .entry(function)
                .or_default()
                .insert((last_used, id));
        }
    }

    /// Removes a container from the idle index. Must be called *before*
    /// `begin_invocation` mutates `last_used` (the per-function key) and
    /// before the container is dropped from the pool.
    fn unmark_idle(&mut self, id: ContainerId) {
        if self.idle_ids.remove(&id) {
            let (mem, function, last_used) = {
                let c = &self.containers[&id];
                (c.mem(), c.function(), c.last_used())
            };
            self.idle_mem -= mem;
            if let Some(set) = self.idle_by_fn.get_mut(&function) {
                set.remove(&(last_used, id));
                if set.is_empty() {
                    self.idle_by_fn.remove(&function);
                }
            }
        }
    }

    /// Evicts idle containers (policy order) until at least `needed` memory
    /// is free, possibly over-freeing by the configured batch. Returns the
    /// evicted ids.
    fn make_room(&mut self, needed: MemMb, now: SimTime) -> Vec<ContainerId> {
        let mut evicted = Vec::new();
        if self.free_mem() >= needed {
            return evicted;
        }
        // Batching: once we must evict at all, free up to the batch
        // threshold beyond the immediate need (paper §6).
        let target = needed + self.config.eviction_batch;
        if self.policy.supports_incremental() {
            // The naive rounds below always either reach the batch target
            // or exhaust the idle set, so popping straight to the target is
            // equivalent — at O(log n) per victim instead of a full
            // snapshot, sort, and rank per round.
            while self.free_mem() < target {
                let Some(id) = self.policy.pop_victim() else {
                    break;
                };
                // Guard against stale or running ids.
                if self.containers.get(&id).is_some_and(|c| c.is_idle()) {
                    self.evict(id, now);
                    evicted.push(id);
                }
            }
            return evicted;
        }
        loop {
            let free = self.free_mem();
            if free >= needed {
                break;
            }
            let shortfall = target.saturating_sub(free);
            let idle = idle_refs(&self.containers, &self.idle_ids);
            if idle.is_empty() {
                break;
            }
            let victims = self.policy.select_victims(&idle, shortfall);
            drop(idle);
            if victims.is_empty() {
                break;
            }
            let mut progressed = false;
            for id in victims {
                // Guard against policies returning stale or running ids.
                if self.containers.get(&id).is_some_and(|c| c.is_idle()) {
                    self.evict(id, now);
                    evicted.push(id);
                    progressed = true;
                }
            }
            // A policy that returns only bogus ids must not loop forever.
            if !progressed {
                break;
            }
        }
        evicted
    }

    fn insert_container(
        &mut self,
        spec: &FunctionSpec,
        now: SimTime,
        prewarm: bool,
    ) -> ContainerId {
        let id = ContainerId::from_raw(self.next_id);
        self.next_id += 1;
        let container = Container::new(
            id,
            spec.id(),
            spec.mem(),
            spec.warm_time(),
            spec.cold_time(),
            spec.resources().copied(),
            now,
        )
        .with_tenant(spec.tenant().index() as u32);
        self.used += container.mem();
        self.ledger
            .container_added(container.tenant(), container.mem());
        self.policy.on_container_created(&container, now, prewarm);
        self.by_function.entry(spec.id()).or_default().push(id);
        self.containers.insert(id, container);
        if prewarm {
            // Cold-start containers begin an invocation immediately and
            // enter the idle index on release; prewarmed ones are born idle.
            self.mark_idle(id);
        }
        id
    }

    fn evict(&mut self, id: ContainerId, now: SimTime) {
        if !self.containers.contains_key(&id) {
            return;
        }
        self.unmark_idle(id);
        let container = self.containers.remove(&id).expect("checked above");
        debug_assert!(
            container.is_idle(),
            "attempted to evict a running container"
        );
        self.used -= container.mem();
        self.ledger
            .container_removed(container.tenant(), container.mem());
        let remaining = {
            let ids = self
                .by_function
                .get_mut(&container.function())
                .expect("function index entry exists");
            ids.retain(|&x| x != id);
            let remaining = ids.len();
            if remaining == 0 {
                self.by_function.remove(&container.function());
            }
            remaining
        };
        bump(&mut self.counters.evictions);
        self.policy.on_evicted(&container, remaining, now);
    }
}

/// Idle (warm) containers of a pool, collected for a naive-path policy
/// call.
///
/// Canonical (ascending id) order comes straight from the pool's idle-id
/// registry — no scan over the full container map and no sort. The order
/// matters: `HashMap` iteration order is per-instance random, and letting
/// it leak into policy tie-breaking would make simulations
/// non-reproducible.
fn idle_refs<'a>(
    containers: &'a HashMap<ContainerId, Container>,
    idle_ids: &BTreeSet<ContainerId>,
) -> Vec<&'a Container> {
    idle_ids.iter().map(|id| &containers[id]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionRegistry;
    use crate::policy::{GreedyDual, Lru, Ttl};
    use faascache_util::SimDuration;

    fn registry() -> (FunctionRegistry, Vec<FunctionId>) {
        let mut reg = FunctionRegistry::new();
        let ids = vec![
            reg.register(
                "a",
                MemMb::new(100),
                SimDuration::from_millis(10),
                SimDuration::from_millis(500),
            )
            .unwrap(),
            reg.register(
                "b",
                MemMb::new(200),
                SimDuration::from_millis(20),
                SimDuration::from_millis(800),
            )
            .unwrap(),
            reg.register(
                "c",
                MemMb::new(300),
                SimDuration::from_millis(30),
                SimDuration::from_millis(900),
            )
            .unwrap(),
        ];
        (reg, ids)
    }

    #[test]
    fn cold_then_warm() {
        let (reg, ids) = registry();
        let mut pool = ContainerPool::new(MemMb::new(1000), Box::new(Lru::new()));
        let t0 = SimTime::ZERO;
        let first = pool.acquire(reg.spec(ids[0]), t0);
        let Acquire::Cold { container, evicted } = first else {
            panic!("expected cold start");
        };
        assert!(evicted.is_empty());
        pool.release(container, t0 + SimDuration::from_millis(500));
        let second = pool.acquire(reg.spec(ids[0]), SimTime::from_secs(1));
        assert_eq!(second, Acquire::Warm { container });
        assert_eq!(pool.counters().cold_starts, 1);
        assert_eq!(pool.counters().warm_starts, 1);
    }

    #[test]
    fn memory_accounting() {
        let (reg, ids) = registry();
        let mut pool = ContainerPool::new(MemMb::new(1000), Box::new(Lru::new()));
        let t = SimTime::ZERO;
        for &f in &ids {
            pool.acquire(reg.spec(f), t);
        }
        assert_eq!(pool.used_mem(), MemMb::new(600));
        assert_eq!(pool.free_mem(), MemMb::new(400));
        assert_eq!(pool.len(), 3);
        // Running containers hold memory but are not "warm".
        assert_eq!(pool.warm_mem(), MemMb::ZERO);
    }

    #[test]
    fn eviction_makes_room() {
        let (reg, ids) = registry();
        let mut pool = ContainerPool::new(MemMb::new(350), Box::new(Lru::new()));
        let c0 = match pool.acquire(reg.spec(ids[0]), SimTime::ZERO) {
            Acquire::Cold { container, .. } => container,
            other => panic!("unexpected {other:?}"),
        };
        pool.release(c0, SimTime::from_millis(500));
        let c1 = match pool.acquire(reg.spec(ids[1]), SimTime::from_secs(1)) {
            Acquire::Cold { container, evicted } => {
                assert!(evicted.is_empty(), "100+200 fits in 350");
                container
            }
            other => panic!("unexpected {other:?}"),
        };
        pool.release(c1, SimTime::from_secs(2));
        // c (300MB) does not fit alongside 300MB of warm containers: evict.
        match pool.acquire(reg.spec(ids[2]), SimTime::from_secs(3)) {
            Acquire::Cold { evicted, .. } => {
                assert_eq!(evicted.len(), 2, "both warm containers evicted (LRU)");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(pool.used_mem(), MemMb::new(300));
        assert_eq!(pool.counters().evictions, 2);
    }

    #[test]
    fn running_containers_pin_memory() {
        let (reg, ids) = registry();
        let mut pool = ContainerPool::new(MemMb::new(350), Box::new(Lru::new()));
        // a and b running concurrently (300MB total, never released).
        pool.acquire(reg.spec(ids[0]), SimTime::ZERO);
        pool.acquire(reg.spec(ids[1]), SimTime::ZERO);
        // c needs 300MB; only 50 free, nothing evictable → dropped.
        let out = pool.acquire(reg.spec(ids[2]), SimTime::from_millis(1));
        assert_eq!(out, Acquire::NoCapacity);
        assert_eq!(pool.counters().drops, 1);
    }

    #[test]
    fn oversized_function_dropped() {
        let (reg, _) = registry();
        let mut big_reg = FunctionRegistry::new();
        let big = big_reg
            .register(
                "big",
                MemMb::new(4096),
                SimDuration::ZERO,
                SimDuration::ZERO,
            )
            .unwrap();
        let mut pool = ContainerPool::new(MemMb::new(1000), Box::new(Lru::new()));
        assert_eq!(
            pool.acquire(big_reg.spec(big), SimTime::ZERO),
            Acquire::NoCapacity
        );
        let _ = reg;
    }

    #[test]
    fn concurrent_invocations_use_separate_containers() {
        let (reg, ids) = registry();
        let mut pool = ContainerPool::new(MemMb::new(1000), Box::new(GreedyDual::new()));
        let a1 = pool.acquire(reg.spec(ids[0]), SimTime::ZERO);
        let a2 = pool.acquire(reg.spec(ids[0]), SimTime::from_millis(1));
        assert!(
            a1.is_cold() && a2.is_cold(),
            "second concurrent invocation needs its own container"
        );
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.used_mem(), MemMb::new(200));
    }

    #[test]
    fn warm_picks_most_recently_used() {
        let (reg, ids) = registry();
        let mut pool = ContainerPool::new(MemMb::new(1000), Box::new(Lru::new()));
        let c1 = match pool.acquire(reg.spec(ids[0]), SimTime::ZERO) {
            Acquire::Cold { container, .. } => container,
            _ => unreachable!(),
        };
        let c2 = match pool.acquire(reg.spec(ids[0]), SimTime::from_millis(1)) {
            Acquire::Cold { container, .. } => container,
            _ => unreachable!(),
        };
        pool.release(c1, SimTime::from_secs(1));
        pool.release(c2, SimTime::from_secs(2));
        // c2 released later but last_used is begin time; c2 began later.
        match pool.acquire(reg.spec(ids[0]), SimTime::from_secs(3)) {
            Acquire::Warm { container } => assert_eq!(container, c2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ttl_reaping() {
        let (reg, ids) = registry();
        let mut pool = ContainerPool::new(
            MemMb::new(1000),
            Box::new(Ttl::new(SimDuration::from_mins(10))),
        );
        let c = match pool.acquire(reg.spec(ids[0]), SimTime::ZERO) {
            Acquire::Cold { container, .. } => container,
            _ => unreachable!(),
        };
        pool.release(c, SimTime::from_millis(500));
        assert!(pool.reap(SimTime::from_mins(9)).is_empty());
        let reaped = pool.reap(SimTime::from_mins(10));
        assert_eq!(reaped, vec![c]);
        assert!(pool.is_empty());
        assert_eq!(pool.used_mem(), MemMb::ZERO);
    }

    #[test]
    fn reap_never_kills_running() {
        let (reg, ids) = registry();
        let mut pool = ContainerPool::new(
            MemMb::new(1000),
            Box::new(Ttl::new(SimDuration::from_mins(10))),
        );
        pool.acquire(reg.spec(ids[0]), SimTime::ZERO);
        // Still running (never released): reap must not touch it.
        assert!(pool.reap(SimTime::from_mins(60)).is_empty());
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn prewarm_creates_idle_container() {
        let (reg, ids) = registry();
        let mut pool = ContainerPool::new(MemMb::new(1000), Box::new(GreedyDual::new()));
        let id = pool.prewarm(reg.spec(ids[0]), SimTime::ZERO).unwrap();
        assert!(pool.container(id).unwrap().is_idle());
        assert_eq!(pool.counters().prewarms, 1);
        // Next acquire is a warm start.
        assert!(pool
            .acquire(reg.spec(ids[0]), SimTime::from_secs(1))
            .is_warm());
        // Prewarm is a no-op when a warm container exists.
        assert!(pool.prewarm(reg.spec(ids[1]), SimTime::ZERO).is_some());
        assert!(pool.prewarm(reg.spec(ids[1]), SimTime::ZERO).is_none());
    }

    #[test]
    fn prewarm_does_not_evict() {
        let (reg, ids) = registry();
        let mut pool = ContainerPool::new(MemMb::new(250), Box::new(Lru::new()));
        let c = match pool.acquire(reg.spec(ids[1]), SimTime::ZERO) {
            Acquire::Cold { container, .. } => container,
            _ => unreachable!(),
        };
        pool.release(c, SimTime::from_secs(1));
        // 50MB free; prewarming a 100MB function must fail, not evict.
        assert!(pool
            .prewarm(reg.spec(ids[0]), SimTime::from_secs(2))
            .is_none());
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn resize_shrinks_by_evicting_idle() {
        let (reg, ids) = registry();
        let mut pool = ContainerPool::new(MemMb::new(1000), Box::new(Lru::new()));
        let mut released = Vec::new();
        for &f in &ids {
            if let Acquire::Cold { container, .. } = pool.acquire(reg.spec(f), SimTime::ZERO) {
                released.push(container);
            }
        }
        for (i, c) in released.iter().enumerate() {
            pool.release(*c, SimTime::from_secs(i as u64 + 1));
        }
        assert_eq!(pool.used_mem(), MemMb::new(600));
        let evicted = pool.resize(MemMb::new(350), SimTime::from_secs(10));
        assert!(!evicted.is_empty());
        assert!(pool.used_mem() <= MemMb::new(350));
        assert_eq!(pool.capacity(), MemMb::new(350));
    }

    #[test]
    fn resize_cannot_evict_running() {
        let (reg, ids) = registry();
        let mut pool = ContainerPool::new(MemMb::new(1000), Box::new(Lru::new()));
        pool.acquire(reg.spec(ids[2]), SimTime::ZERO); // 300MB running
        let evicted = pool.resize(MemMb::new(100), SimTime::from_secs(1));
        assert!(evicted.is_empty());
        assert_eq!(
            pool.used_mem(),
            MemMb::new(300),
            "overcommitted until release"
        );
        assert_eq!(pool.free_mem(), MemMb::ZERO);
    }

    #[test]
    fn eviction_batching_frees_extra() {
        let (reg, ids) = registry();
        let config = PoolConfig::new(MemMb::new(600)).with_eviction_batch(MemMb::new(300));
        let mut pool = ContainerPool::with_config(config, Box::new(Lru::new()));
        // Fill with six 100MB warm containers of function a.
        let mut cs = Vec::new();
        for i in 0..6 {
            if let Acquire::Cold { container, .. } =
                pool.acquire(reg.spec(ids[0]), SimTime::from_millis(i))
            {
                cs.push(container);
            }
        }
        for (i, c) in cs.iter().enumerate() {
            pool.release(*c, SimTime::from_secs(i as u64 + 1));
        }
        assert_eq!(pool.used_mem(), MemMb::new(600));
        // b needs 200MB: with a 300MB batch, the pool frees ≥ 300MB extra
        // beyond... (target = needed + batch = 500MB free).
        match pool.acquire(reg.spec(ids[1]), SimTime::from_secs(100)) {
            Acquire::Cold { evicted, .. } => assert_eq!(evicted.len(), 5),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Satellite contract test: among equally ranked idle containers the
    /// pool evicts the one with the lowest `ContainerId` first — in both
    /// the incremental and the naive eviction path.
    #[test]
    fn victim_tiebreak_prefers_lower_id_in_both_modes() {
        for naive in [false, true] {
            let (reg, ids) = registry();
            let policy: Box<dyn KeepAlivePolicy> = if naive {
                Box::new(Lru::naive())
            } else {
                Box::new(Lru::new())
            };
            let mut pool = ContainerPool::new(MemMb::new(300), policy);
            // Two concurrent containers of the same 100 MB function start
            // at the same instant: identical priority and last_used.
            let t0 = SimTime::ZERO;
            let c0 = match pool.acquire(reg.spec(ids[0]), t0) {
                Acquire::Cold { container, .. } => container,
                other => panic!("unexpected {other:?}"),
            };
            let c1 = match pool.acquire(reg.spec(ids[0]), t0) {
                Acquire::Cold { container, .. } => container,
                other => panic!("unexpected {other:?}"),
            };
            assert!(c0 < c1);
            pool.release(c0, SimTime::from_secs(1));
            pool.release(c1, SimTime::from_secs(1));
            // b (200 MB) needs 100 MB freed: exactly one victim, and the
            // tie must break toward the lower id.
            match pool.acquire(reg.spec(ids[1]), SimTime::from_secs(2)) {
                Acquire::Cold { evicted, .. } => {
                    assert_eq!(evicted, vec![c0], "naive={naive}");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn incremental_matches_naive_on_scripted_workload() {
        let (reg, ids) = registry();
        let mut fast = ContainerPool::with_config(
            PoolConfig::new(MemMb::new(500)).with_eviction_batch(MemMb::new(100)),
            Box::new(GreedyDual::new()),
        );
        let mut slow = ContainerPool::with_config(
            PoolConfig::new(MemMb::new(500)).with_eviction_batch(MemMb::new(100)),
            Box::new(GreedyDual::naive()),
        );
        assert!(fast.policy().supports_incremental());
        assert!(!slow.policy().supports_incremental());
        let script: Vec<(usize, u64)> = vec![
            (0, 0),
            (1, 1),
            (0, 2),
            (2, 3),
            (1, 4),
            (0, 5),
            (2, 6),
            (2, 7),
            (1, 8),
            (0, 9),
        ];
        for &(f, t) in &script {
            let now = SimTime::from_secs(t);
            let a = fast.acquire(reg.spec(ids[f]), now);
            let b = slow.acquire(reg.spec(ids[f]), now);
            assert_eq!(a, b, "acquire diverged at t={t}");
            let release_at = now + SimDuration::from_millis(900);
            for (pool, out) in [(&mut fast, &a), (&mut slow, &b)] {
                match out {
                    Acquire::Warm { container } | Acquire::Cold { container, .. } => {
                        pool.release(*container, release_at);
                    }
                    Acquire::NoCapacity => {}
                }
            }
        }
        assert_eq!(fast.counters(), slow.counters());
        assert_eq!(fast.used_mem(), slow.used_mem());
    }

    #[test]
    fn idle_index_accounting_stays_consistent() {
        let (reg, ids) = registry();
        let mut pool = ContainerPool::new(MemMb::new(1000), Box::new(Lru::new()));
        let c0 = match pool.acquire(reg.spec(ids[0]), SimTime::ZERO) {
            Acquire::Cold { container, .. } => container,
            _ => unreachable!(),
        };
        let c1 = match pool.acquire(reg.spec(ids[1]), SimTime::ZERO) {
            Acquire::Cold { container, .. } => container,
            _ => unreachable!(),
        };
        assert_eq!(pool.warm_count(), 0);
        assert_eq!(pool.running_count(), 2);
        assert_eq!(pool.warm_mem(), MemMb::ZERO);
        pool.release(c0, SimTime::from_secs(1));
        assert_eq!(pool.warm_count(), 1);
        assert_eq!(pool.running_count(), 1);
        assert_eq!(pool.warm_mem(), MemMb::new(100));
        assert_eq!(pool.idle_ids().collect::<Vec<_>>(), vec![c0]);
        pool.release(c1, SimTime::from_secs(2));
        assert_eq!(pool.warm_mem(), MemMb::new(300));
        // Warm start removes from the idle index...
        assert!(pool
            .acquire(reg.spec(ids[0]), SimTime::from_secs(3))
            .is_warm());
        assert_eq!(pool.warm_count(), 1);
        assert_eq!(pool.warm_mem(), MemMb::new(200));
        // ...and resize-driven eviction drains it.
        let evicted = pool.resize(MemMb::new(100), SimTime::from_secs(4));
        assert_eq!(evicted, vec![c1]);
        assert_eq!(pool.warm_count(), 0);
        assert_eq!(pool.warm_mem(), MemMb::ZERO);
        assert_eq!(pool.running_count(), 1);
    }

    #[test]
    fn extract_and_adopt_migrate_a_warm_set_without_evictions() {
        let (reg, ids) = registry();
        let mut src = ContainerPool::new(MemMb::new(1000), Box::new(Lru::new()));
        let mut dst = ContainerPool::new(MemMb::new(1000), Box::new(Lru::new()));
        // Two warm containers of a, one of b, on the source.
        let mut warm = Vec::new();
        for (f, t) in [(0, 0u64), (0, 1), (1, 2)] {
            match src.acquire(reg.spec(ids[f]), SimTime::from_secs(t)) {
                Acquire::Cold { container, .. } => warm.push(container),
                other => panic!("unexpected {other:?}"),
            }
        }
        for (i, &c) in warm.iter().enumerate() {
            src.release(c, SimTime::from_secs(10 + i as u64));
        }
        let moved = src.extract_idle_of(ids[0], SimTime::from_secs(20));
        assert_eq!(moved.len(), 2);
        assert_eq!(src.warm_count_of(ids[0]), 0);
        assert_eq!(src.warm_count_of(ids[1]), 1, "other functions untouched");
        assert_eq!(src.used_mem(), MemMb::new(200));
        assert_eq!(src.counters().evictions, 0, "migration is not eviction");
        let mut adopted = Vec::new();
        for c in moved {
            let last_used = c.last_used();
            let uses = c.uses();
            let id = dst.adopt(c, SimTime::from_secs(21)).unwrap();
            let resident = dst.container(id).unwrap();
            assert!(resident.is_idle());
            assert_eq!(resident.last_used(), last_used, "history preserved");
            assert_eq!(resident.uses(), uses);
            adopted.push(id);
        }
        assert_eq!(dst.warm_count_of(ids[0]), 2);
        assert_eq!(dst.used_mem(), MemMb::new(200));
        assert_eq!(dst.counters().prewarms, 0, "adoption is not a prewarm");
        // The warm set serves warm on the destination.
        assert!(dst
            .acquire(reg.spec(ids[0]), SimTime::from_secs(30))
            .is_warm());
    }

    #[test]
    fn adopt_never_evicts_and_hands_back_what_does_not_fit() {
        let (reg, ids) = registry();
        let mut src = ContainerPool::new(MemMb::new(1000), Box::new(Lru::new()));
        let mut dst = ContainerPool::new(MemMb::new(250), Box::new(Lru::new()));
        // Fill the destination with a 200 MB warm container of b.
        let b = match dst.acquire(reg.spec(ids[1]), SimTime::ZERO) {
            Acquire::Cold { container, .. } => container,
            other => panic!("unexpected {other:?}"),
        };
        dst.release(b, SimTime::from_secs(1));
        // Source holds two 100 MB warm containers of a.
        let mut cs = Vec::new();
        for t in 0..2 {
            if let Acquire::Cold { container, .. } =
                src.acquire(reg.spec(ids[0]), SimTime::from_secs(t))
            {
                cs.push(container);
            }
        }
        for &c in &cs {
            src.release(c, SimTime::from_secs(5));
        }
        let moved = src.extract_idle_of(ids[0], SimTime::from_secs(6));
        assert_eq!(moved.len(), 2);
        // Only one fits (50 MB free after it would be -50): the second is
        // handed back un-adopted and re-adoptable at the source.
        let mut fitted = 0;
        for c in moved {
            match dst.adopt(c, SimTime::from_secs(7)) {
                Ok(_) => fitted += 1,
                Err(returned) => {
                    src.adopt(returned, SimTime::from_secs(7))
                        .expect("the source freed this memory moments ago");
                }
            }
        }
        assert_eq!(fitted, 0, "250 cap - 200 warm leaves room for neither");
        assert_eq!(dst.counters().evictions, 0, "adoption must not evict");
        assert_eq!(src.warm_count_of(ids[0]), 2, "handed back home");
        assert_eq!(src.used_mem(), MemMb::new(200));
    }

    #[test]
    fn extract_leaves_running_containers_in_place() {
        let (reg, ids) = registry();
        let mut pool = ContainerPool::new(MemMb::new(1000), Box::new(Lru::new()));
        let c0 = match pool.acquire(reg.spec(ids[0]), SimTime::ZERO) {
            Acquire::Cold { container, .. } => container,
            _ => unreachable!(),
        };
        // Second container of the same function, released (idle).
        let c1 = match pool.acquire(reg.spec(ids[0]), SimTime::from_millis(1)) {
            Acquire::Cold { container, .. } => container,
            _ => unreachable!(),
        };
        pool.release(c1, SimTime::from_secs(1));
        let moved = pool.extract_idle_of(ids[0], SimTime::from_secs(2));
        assert_eq!(moved.len(), 1, "only the idle container migrates");
        assert_eq!(pool.len(), 1);
        assert!(!pool.container(c0).unwrap().is_idle());
        // Releasing the still-running container must work afterwards.
        pool.release(c0, SimTime::from_secs(3));
        assert_eq!(pool.warm_count_of(ids[0]), 1);
    }

    #[test]
    fn warm_count_tracks_function_state() {
        let (reg, ids) = registry();
        let mut pool = ContainerPool::new(MemMb::new(1000), Box::new(Lru::new()));
        assert_eq!(pool.warm_count_of(ids[0]), 0);
        let c = match pool.acquire(reg.spec(ids[0]), SimTime::ZERO) {
            Acquire::Cold { container, .. } => container,
            _ => unreachable!(),
        };
        assert_eq!(pool.warm_count_of(ids[0]), 0, "running, not warm");
        pool.release(c, SimTime::from_secs(1));
        assert_eq!(pool.warm_count_of(ids[0]), 1);
    }
}
