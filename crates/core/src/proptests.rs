//! Property-based tests for the keep-alive core.

#![cfg(test)]

use crate::function::FunctionRegistry;
use crate::policy::{GreedyDual, Landlord, PolicyKind};
use crate::pool::{Acquire, ContainerPool};
use faascache_util::{MemMb, SimDuration, SimTime};
use proptest::prelude::*;

/// A scripted pool workload: functions and an arrival schedule. Each
/// arrival runs to completion `hold_ms` later; completions are applied
/// before the next arrival when due.
#[derive(Debug, Clone)]
struct PoolScript {
    sizes: Vec<u16>,
    init_ms: Vec<u16>,
    arrivals: Vec<(usize, u16, u16)>, // (fn, gap_ms, hold_ms)
}

fn script_strategy() -> impl Strategy<Value = PoolScript> {
    (1usize..=8).prop_flat_map(|n| {
        (
            prop::collection::vec(1u16..1024, n),
            prop::collection::vec(0u16..5000, n),
            prop::collection::vec((0usize..n, 0u16..5000, 1u16..5000), 1..150),
        )
            .prop_map(|(sizes, init_ms, arrivals)| PoolScript {
                sizes,
                init_ms,
                arrivals,
            })
    })
}

fn run_script(pool: &mut ContainerPool, script: &PoolScript) -> (u64, u64, u64) {
    let mut reg = FunctionRegistry::new();
    let ids: Vec<_> = script
        .sizes
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            reg.register(
                format!("f{i}"),
                MemMb::new(s as u64),
                SimDuration::from_millis(1),
                SimDuration::from_millis(1 + script.init_ms[i] as u64),
            )
            .unwrap()
        })
        .collect();
    let mut now = SimTime::ZERO;
    let mut running: Vec<(SimTime, crate::container::ContainerId)> = Vec::new();
    let (mut warm, mut cold, mut dropped) = (0u64, 0u64, 0u64);
    for &(f, gap, hold) in &script.arrivals {
        now += SimDuration::from_millis(gap as u64);
        running.retain(|&(until, id)| {
            if until <= now {
                pool.release(id, until);
                false
            } else {
                true
            }
        });
        match pool.acquire(reg.spec(ids[f % ids.len()]), now) {
            Acquire::Warm { container } => {
                warm += 1;
                running.push((now + SimDuration::from_millis(hold as u64), container));
            }
            Acquire::Cold { container, .. } => {
                cold += 1;
                running.push((now + SimDuration::from_millis(hold as u64), container));
            }
            Acquire::NoCapacity => dropped += 1,
        }
    }
    (warm, cold, dropped)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Memory accounting is exact for every policy: `used_mem` equals the
    /// sum of resident container sizes at all times, and never exceeds
    /// capacity.
    #[test]
    fn pool_accounting_is_exact(
        script in script_strategy(),
        policy_idx in 0usize..PolicyKind::ALL.len(),
        capacity_mb in 64u64..8192,
    ) {
        let kind = PolicyKind::ALL[policy_idx];
        let mut pool = ContainerPool::new(MemMb::new(capacity_mb), kind.build());
        let (warm, cold, dropped) = run_script(&mut pool, &script);
        prop_assert_eq!(warm + cold + dropped, script.arrivals.len() as u64);
        let resident: MemMb = pool.containers().map(|c| c.mem()).sum();
        prop_assert_eq!(resident, pool.used_mem());
        prop_assert!(pool.used_mem() <= MemMb::new(capacity_mb));
        let counters = pool.counters();
        prop_assert_eq!(counters.warm_starts, warm);
        prop_assert_eq!(counters.cold_starts, cold);
        prop_assert_eq!(counters.drops, dropped);
    }

    /// The GD logical clock never decreases, and the priority of any
    /// resident container is at least the clock (it was touched at some
    /// clock value ≤ the current one, plus a non-negative bonus)…
    /// precisely: priority ≥ its captured clock snapshot ≥ 0.
    #[test]
    fn gd_clock_monotone_and_priorities_finite(script in script_strategy(), capacity_mb in 64u64..4096) {
        let mut pool = ContainerPool::new(
            MemMb::new(capacity_mb),
            Box::new(GreedyDual::new()),
        );
        let _ = run_script(&mut pool, &script);
        for c in pool.containers() {
            let p = pool.policy().priority_of(c).expect("GD is priority-based");
            prop_assert!(p.is_finite() && p >= 0.0, "priority {p}");
        }
    }

    /// Landlord credits stay within [0, cost] for resident containers.
    #[test]
    fn landlord_credits_bounded(script in script_strategy(), capacity_mb in 64u64..4096) {
        let mut pool = ContainerPool::new(MemMb::new(capacity_mb), Box::new(Landlord::new()));
        let _ = run_script(&mut pool, &script);
        for c in pool.containers() {
            if let Some(credit) = pool.policy().priority_of(c) {
                let cost = c.init_overhead().as_secs_f64().max(1e-9);
                prop_assert!(
                    credit >= -1e-9 && credit <= cost + 1e-9,
                    "credit {credit} outside [0, {cost}]"
                );
            }
        }
    }

    /// Registry validation holds under arbitrary inputs.
    #[test]
    fn registry_rejects_invalid_specs(mem in 0u64..4, warm_ms in 0u64..100, cold_ms in 0u64..100) {
        let mut reg = FunctionRegistry::new();
        let result = reg.register(
            "f",
            MemMb::new(mem),
            SimDuration::from_millis(warm_ms),
            SimDuration::from_millis(cold_ms),
        );
        if mem == 0 || warm_ms > cold_ms {
            prop_assert!(result.is_err());
        } else {
            prop_assert!(result.is_ok());
        }
    }
}
