//! Size representations for keep-alive priorities (paper §4.1).
//!
//! The Greedy-Dual priority divides by a container's *size*. The paper uses
//! plain memory, but also describes how to scalarize a multi-dimensional
//! resource vector **d** against server capacity **a**: the vector magnitude
//! `||d||`, the normalized sum `Σ dⱼ/aⱼ`, or the cosine similarity between
//! **d** and **a** (borrowed from multi-dimensional bin-packing). All four
//! are implemented here so the ablation benches can compare them.

use serde::{Deserialize, Serialize};

/// Multi-dimensional resource demand: CPU cores, memory (MB), and
/// normalized I/O bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceVector {
    /// CPU demand in cores.
    pub cpu: f64,
    /// Memory demand in MB.
    pub mem_mb: f64,
    /// I/O demand (arbitrary normalized unit).
    pub io: f64,
}

impl ResourceVector {
    /// Creates a resource vector.
    pub fn new(cpu: f64, mem_mb: f64, io: f64) -> Self {
        ResourceVector { cpu, mem_mb, io }
    }

    /// Euclidean magnitude `||d||`.
    pub fn magnitude(&self) -> f64 {
        (self.cpu * self.cpu + self.mem_mb * self.mem_mb + self.io * self.io).sqrt()
    }

    /// Normalized sum `Σ dⱼ/aⱼ` against a capacity vector.
    pub fn normalized_sum(&self, capacity: &ResourceVector) -> f64 {
        let term = |d: f64, a: f64| if a > 0.0 { d / a } else { 0.0 };
        term(self.cpu, capacity.cpu)
            + term(self.mem_mb, capacity.mem_mb)
            + term(self.io, capacity.io)
    }

    /// Cosine similarity between this demand and a capacity vector.
    ///
    /// Returns 0 when either vector is zero.
    pub fn cosine_similarity(&self, capacity: &ResourceVector) -> f64 {
        let dot = self.cpu * capacity.cpu + self.mem_mb * capacity.mem_mb + self.io * capacity.io;
        let denom = self.magnitude() * capacity.magnitude();
        if denom == 0.0 {
            0.0
        } else {
            dot / denom
        }
    }
}

/// How the Greedy-Dual family converts a container's footprint to the
/// scalar `Size` in `Priority = Clock + Freq × Cost / Size`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum SizeMode {
    /// Memory only — the paper's default ("for ease of exposition and
    /// practicality, we consider only the container memory use").
    #[default]
    MemoryOnly,
    /// Euclidean magnitude of the resource vector.
    Magnitude,
    /// `Σ dⱼ/aⱼ` normalized by the server capacity vector.
    NormalizedSum {
        /// The server's total resource capacity.
        capacity: ResourceVector,
    },
    /// Cosine similarity with the capacity vector, as used in
    /// multi-dimensional bin-packing heuristics.
    CosineSimilarity {
        /// The server's total resource capacity.
        capacity: ResourceVector,
    },
}

impl SizeMode {
    /// Scalar size for a container with memory `mem_mb` and optional
    /// resource vector `resources`.
    ///
    /// Falls back to memory when a vector mode is selected but the function
    /// declared no resource vector. The result is clamped to be strictly
    /// positive so priorities stay finite.
    pub fn scalar_size(&self, mem_mb: f64, resources: Option<&ResourceVector>) -> f64 {
        let fallback = mem_mb.max(f64::MIN_POSITIVE);
        let value = match (self, resources) {
            (SizeMode::MemoryOnly, _) | (_, None) => fallback,
            (SizeMode::Magnitude, Some(r)) => r.magnitude(),
            (SizeMode::NormalizedSum { capacity }, Some(r)) => r.normalized_sum(capacity),
            (SizeMode::CosineSimilarity { capacity }, Some(r)) => r.cosine_similarity(capacity),
        };
        if value > 0.0 {
            value
        } else {
            fallback
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magnitude_pythagorean() {
        let v = ResourceVector::new(3.0, 4.0, 0.0);
        assert!((v.magnitude() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_sum_basic() {
        let d = ResourceVector::new(1.0, 512.0, 0.5);
        let a = ResourceVector::new(4.0, 1024.0, 1.0);
        assert!((d.normalized_sum(&a) - (0.25 + 0.5 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn normalized_sum_ignores_zero_capacity_axis() {
        let d = ResourceVector::new(1.0, 100.0, 1.0);
        let a = ResourceVector::new(0.0, 200.0, 0.0);
        assert!((d.normalized_sum(&a) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cosine_similarity_parallel_is_one() {
        let d = ResourceVector::new(1.0, 2.0, 3.0);
        let a = ResourceVector::new(2.0, 4.0, 6.0);
        assert!((d.cosine_similarity(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_similarity_orthogonal_is_zero() {
        let d = ResourceVector::new(1.0, 0.0, 0.0);
        let a = ResourceVector::new(0.0, 1.0, 0.0);
        assert!(d.cosine_similarity(&a).abs() < 1e-12);
    }

    #[test]
    fn cosine_similarity_zero_vector() {
        let d = ResourceVector::new(0.0, 0.0, 0.0);
        let a = ResourceVector::new(1.0, 1.0, 1.0);
        assert_eq!(d.cosine_similarity(&a), 0.0);
    }

    #[test]
    fn size_mode_memory_default() {
        let mode = SizeMode::default();
        assert_eq!(mode.scalar_size(512.0, None), 512.0);
        let r = ResourceVector::new(1.0, 512.0, 0.0);
        assert_eq!(mode.scalar_size(512.0, Some(&r)), 512.0);
    }

    #[test]
    fn size_mode_vector_falls_back_without_resources() {
        let mode = SizeMode::Magnitude;
        assert_eq!(mode.scalar_size(256.0, None), 256.0);
    }

    #[test]
    fn size_mode_vector_uses_resources() {
        let mode = SizeMode::Magnitude;
        let r = ResourceVector::new(3.0, 4.0, 0.0);
        assert!((mode.scalar_size(256.0, Some(&r)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn size_mode_never_zero() {
        let mode = SizeMode::CosineSimilarity {
            capacity: ResourceVector::new(0.0, 0.0, 0.0),
        };
        let r = ResourceVector::new(1.0, 1.0, 1.0);
        assert!(mode.scalar_size(128.0, Some(&r)) > 0.0);
    }
}
