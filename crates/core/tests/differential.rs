//! Differential tests for the indexed eviction hot path.
//!
//! Every keep-alive policy ships in two modes: the default incremental
//! mode (`PolicyKind::build`) and the retained naive scan-and-sort
//! reference (`PolicyKind::build_naive`). These tests drive two pools —
//! one per mode — through identical randomized workloads covering the
//! whole pool surface (acquire, release, reap, prewarm, resize) and
//! assert byte-identical behavior: the same acquire outcomes including
//! the evicted-victim sequences, the same reap and resize results, and
//! the same counters and memory accounting at the end.
//!
//! Memory sizes and cold-start times are drawn from power-of-two-friendly
//! sets so that Landlord's credit arithmetic (`cost / size`) is exactly
//! representable: the incremental offset encoding and the naive iterative
//! rent rounds then agree bit-for-bit, not merely approximately.

use faascache_core::container::ContainerId;
use faascache_core::function::FunctionRegistry;
use faascache_core::policy::PolicyKind;
use faascache_core::pool::{Acquire, ContainerPool, PoolConfig};
use faascache_util::{MemMb, SimDuration, SimTime};
use proptest::prelude::*;

/// Memory footprints (MB): powers of two.
const MEM_CHOICES: [u64; 4] = [64, 128, 256, 512];
/// Cold-start times (ms) whose init overhead (cold − warm = cold / 2) is
/// an exact binary fraction of a second: 0.125, 0.25, 0.5, 1.0.
const COLD_CHOICES: [u64; 4] = [250, 500, 1000, 2000];

#[derive(Debug, Clone)]
struct Workload {
    /// Per-function (mem MB, cold ms).
    functions: Vec<(u64, u64)>,
    /// (function index, inter-arrival gap ms, hold ms).
    arrivals: Vec<(usize, u16, u16)>,
    capacity_mb: u64,
    batch_mb: u64,
    /// Run reap/prewarm maintenance every this many arrivals.
    maintenance_every: usize,
    /// Mid-run shrink target; 0 disables the resize.
    resize_to_mb: u64,
}

fn workload_strategy() -> impl Strategy<Value = Workload> {
    (1usize..=6).prop_flat_map(|n| {
        (
            prop::collection::vec((0usize..4, 0usize..4), n),
            prop::collection::vec((0usize..n, 0u16..3000, 1u16..2000), 1..120),
            (1u64..=4, 0usize..3, 2usize..20, 0u64..2048),
        )
            .prop_map(
                |(choices, arrivals, (cap_units, batch_idx, every, resize_to))| Workload {
                    functions: choices
                        .into_iter()
                        .map(|(m, c)| (MEM_CHOICES[m], COLD_CHOICES[c]))
                        .collect(),
                    arrivals,
                    capacity_mb: cap_units * 512,
                    batch_mb: [0u64, 256, 1000][batch_idx],
                    maintenance_every: every,
                    resize_to_mb: resize_to,
                },
            )
    })
}

/// Drives an incremental and a naive pool of `kind` through `w` in
/// lockstep, asserting identical observable behavior at every step.
fn assert_modes_agree(kind: PolicyKind, w: &Workload) {
    let mut reg = FunctionRegistry::new();
    let ids: Vec<_> = w
        .functions
        .iter()
        .enumerate()
        .map(|(i, &(mem, cold))| {
            reg.register(
                format!("f{i}"),
                MemMb::new(mem),
                SimDuration::from_millis(cold / 2),
                SimDuration::from_millis(cold),
            )
            .unwrap()
        })
        .collect();
    let config =
        PoolConfig::new(MemMb::new(w.capacity_mb)).with_eviction_batch(MemMb::new(w.batch_mb));
    let mut fast = ContainerPool::with_config(config, kind.build());
    let mut slow = ContainerPool::with_config(config, kind.build_naive());
    prop_assert!(fast.policy().supports_incremental(), "{kind:?}");
    prop_assert!(!slow.policy().supports_incremental(), "{kind:?}");

    let mut now = SimTime::ZERO;
    // Outcomes are asserted identical, so one schedule serves both pools.
    let mut running: Vec<(SimTime, ContainerId)> = Vec::new();
    let mut resized = false;
    for (step, &(f, gap, hold)) in w.arrivals.iter().enumerate() {
        now += SimDuration::from_millis(gap as u64);
        running.retain(|&(until, id)| {
            if until <= now {
                fast.release(id, until);
                slow.release(id, until);
                false
            } else {
                true
            }
        });
        if step % w.maintenance_every == w.maintenance_every - 1 {
            let reaped_fast = fast.reap(now);
            let reaped_slow = slow.reap(now);
            prop_assert_eq!(
                &reaped_fast,
                &reaped_slow,
                "{:?}: reap diverged at {}",
                kind,
                step
            );
            let due_fast = fast.prewarm_due(now);
            let due_slow = slow.prewarm_due(now);
            prop_assert_eq!(
                &due_fast,
                &due_slow,
                "{:?}: prewarm_due diverged at {}",
                kind,
                step
            );
            for fid in due_fast {
                let a = fast.prewarm(reg.spec(fid), now);
                let b = slow.prewarm(reg.spec(fid), now);
                prop_assert_eq!(a, b, "{:?}: prewarm diverged at {}", kind, step);
            }
            if !resized && w.resize_to_mb > 0 && step >= w.arrivals.len() / 2 {
                resized = true;
                let ev_fast = fast.resize(MemMb::new(w.resize_to_mb), now);
                let ev_slow = slow.resize(MemMb::new(w.resize_to_mb), now);
                prop_assert_eq!(
                    &ev_fast,
                    &ev_slow,
                    "{:?}: resize diverged at {}",
                    kind,
                    step
                );
            }
        }
        let spec = reg.spec(ids[f % ids.len()]);
        let a = fast.acquire(spec, now);
        let b = slow.acquire(spec, now);
        prop_assert_eq!(&a, &b, "{:?}: acquire diverged at step {}", kind, step);
        match a {
            Acquire::Warm { container } | Acquire::Cold { container, .. } => {
                running.push((now + SimDuration::from_millis(hold as u64), container));
            }
            Acquire::NoCapacity => {}
        }
    }
    prop_assert_eq!(
        fast.counters(),
        slow.counters(),
        "{:?}: counters diverged",
        kind
    );
    prop_assert_eq!(fast.used_mem(), slow.used_mem(), "{:?}", kind);
    prop_assert_eq!(fast.warm_mem(), slow.warm_mem(), "{:?}", kind);
    prop_assert_eq!(fast.warm_count(), slow.warm_count(), "{:?}", kind);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The incremental indexes pick byte-identical victim sequences to
    /// the naive scan-and-sort reference — for every policy, across the
    /// full pool lifecycle.
    #[test]
    fn incremental_policies_match_naive_reference(w in workload_strategy()) {
        for kind in PolicyKind::ALL {
            assert_modes_agree(kind, &w);
        }
    }
}
