//! The invoker emulator: keep-alive pool + request buffer + latency
//! accounting, in virtual time.
//!
//! Vanilla OpenWhisk is emulated as `PolicyKind::Ttl` (10-minute TTL);
//! FaasCache as `PolicyKind::GreedyDual`. Requests that cannot be served
//! immediately wait in a bounded [`RequestQueue`] and are dropped on
//! overflow or timeout — reproducing the §7.2 behavior where OpenWhisk's
//! higher cold-start load makes it shed a large fraction of requests
//! while FaasCache serves ~2× more.

use crate::lifecycle::PhaseModel;
use crate::queue::RequestQueue;
use faascache_core::container::ContainerId;
use faascache_core::policy::PolicyKind;
use faascache_core::pool::{Acquire, ContainerPool, PoolConfig};
use faascache_trace::record::Trace;
use faascache_util::{MemMb, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Emulated platform configuration.
#[derive(Debug, Clone, Copy)]
pub struct PlatformConfig {
    /// Memory available to the container pool.
    pub memory: MemMb,
    /// Keep-alive policy (TTL = vanilla OpenWhisk, GD = FaasCache).
    pub policy: PolicyKind,
    /// Eviction batching threshold (paper §6: 1000 MB).
    pub eviction_batch: MemMb,
    /// Maximum concurrently running containers (CPU slots); `0` = unbounded.
    pub max_concurrency: usize,
    /// Request buffer length.
    pub queue_capacity: usize,
    /// How long a buffered request waits before being dropped.
    pub patience: SimDuration,
    /// Housekeeping tick (queue expiry, TTL reaping, pre-warming). Ticks
    /// pop only expired/due entries from the pool's incremental indexes
    /// rather than scanning the idle set, so short intervals are cheap.
    pub tick_interval: SimDuration,
    /// Cold-start phase model (adds the pool-check latency to every
    /// request).
    pub phases: PhaseModel,
}

impl PlatformConfig {
    /// A configuration with paper-like defaults for the given memory and
    /// policy.
    pub fn new(memory: MemMb, policy: PolicyKind) -> Self {
        PlatformConfig {
            memory,
            policy,
            eviction_batch: MemMb::new(1000),
            max_concurrency: 0,
            queue_capacity: 512,
            patience: SimDuration::from_secs(30),
            tick_interval: SimDuration::from_secs(1),
            phases: PhaseModel::default(),
        }
    }
}

/// Per-function platform statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FunctionPlatformStats {
    /// Function name.
    pub name: String,
    /// Warm starts.
    pub warm: u64,
    /// Cold starts.
    pub cold: u64,
    /// Dropped requests (buffer overflow or timeout).
    pub dropped: u64,
    /// Sum of end-to-end latencies (µs) over served invocations.
    pub latency_sum_us: u64,
}

impl FunctionPlatformStats {
    /// Served invocations.
    pub fn served(&self) -> u64 {
        self.warm + self.cold
    }

    /// Mean end-to-end latency over served invocations.
    pub fn mean_latency(&self) -> SimDuration {
        self.latency_sum_us
            .checked_div(self.served())
            .map_or(SimDuration::ZERO, SimDuration::from_micros)
    }

    /// Warm-start ratio among served invocations.
    pub fn hit_ratio(&self) -> f64 {
        let n = self.served();
        if n == 0 {
            0.0
        } else {
            self.warm as f64 / n as f64
        }
    }
}

/// Result of a platform emulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformResult {
    /// The policy label.
    pub policy: String,
    /// Total warm starts.
    pub warm: u64,
    /// Total cold starts.
    pub cold: u64,
    /// Total dropped requests.
    pub dropped: u64,
    /// Per-function statistics (indexed by function index).
    pub per_function: Vec<FunctionPlatformStats>,
}

impl PlatformResult {
    /// Invocations served (warm + cold).
    pub fn served(&self) -> u64 {
        self.warm + self.cold
    }

    /// Total requests observed.
    pub fn total(&self) -> u64 {
        self.served() + self.dropped
    }

    /// Overall mean end-to-end latency over served invocations.
    pub fn mean_latency(&self) -> SimDuration {
        let served = self.served();
        if served == 0 {
            return SimDuration::ZERO;
        }
        let sum: u64 = self.per_function.iter().map(|f| f.latency_sum_us).sum();
        SimDuration::from_micros(sum / served)
    }
}

/// The platform emulator.
///
/// # Examples
///
/// ```
/// use faascache_core::policy::PolicyKind;
/// use faascache_platform::emulator::{Emulator, PlatformConfig};
/// use faascache_trace::workloads;
/// use faascache_util::{MemMb, SimDuration};
///
/// let trace = workloads::skewed_frequency(SimDuration::from_mins(2))?;
/// let cfg = PlatformConfig::new(MemMb::from_gb(4), PolicyKind::GreedyDual);
/// let result = Emulator::run(&trace, &cfg);
/// assert!(result.served() > 0);
/// # Ok::<(), faascache_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct Emulator;

impl Emulator {
    /// Replays `trace` against the emulated platform.
    pub fn run(trace: &Trace, config: &PlatformConfig) -> PlatformResult {
        let pool_config = PoolConfig::new(config.memory).with_eviction_batch(config.eviction_batch);
        let mut pool = ContainerPool::with_config(pool_config, config.policy.build());
        let registry = trace.registry();
        let mut queue = RequestQueue::new(config.queue_capacity, config.patience);

        let mut result = PlatformResult {
            policy: pool.policy().name().to_string(),
            warm: 0,
            cold: 0,
            dropped: 0,
            per_function: registry
                .iter()
                .map(|s| FunctionPlatformStats {
                    name: s.name().to_string(),
                    ..FunctionPlatformStats::default()
                })
                .collect(),
        };

        let mut completions: BinaryHeap<Reverse<(SimTime, ContainerId)>> = BinaryHeap::new();
        let mut running = 0usize;
        let mut next_tick = SimTime::ZERO + config.tick_interval;
        let pool_check = config.phases.pool_check;

        // Attempts to serve a request that arrived at `arrived` for
        // function `fid` at time `now`. Returns false when the platform is
        // saturated (caller queues or drops).
        let try_serve = |pool: &mut ContainerPool,
                         completions: &mut BinaryHeap<Reverse<(SimTime, ContainerId)>>,
                         running: &mut usize,
                         result: &mut PlatformResult,
                         fid: faascache_core::FunctionId,
                         arrived: SimTime,
                         now: SimTime|
         -> bool {
            if config.max_concurrency > 0 && *running >= config.max_concurrency {
                return false;
            }
            let spec = registry.spec(fid);
            match pool.acquire(spec, now) {
                Acquire::Warm { container } => {
                    let finish = now + spec.warm_time();
                    completions.push(Reverse((finish, container)));
                    *running += 1;
                    result.warm += 1;
                    let stats = &mut result.per_function[fid.index()];
                    stats.warm += 1;
                    stats.latency_sum_us += (finish + pool_check).since(arrived).as_micros();
                    true
                }
                Acquire::Cold { container, .. } => {
                    let finish = now + spec.cold_time();
                    completions.push(Reverse((finish, container)));
                    *running += 1;
                    result.cold += 1;
                    let stats = &mut result.per_function[fid.index()];
                    stats.cold += 1;
                    stats.latency_sum_us += (finish + pool_check).since(arrived).as_micros();
                    true
                }
                Acquire::NoCapacity => false,
            }
        };

        // Serves queued requests in FIFO order for as long as they admit.
        macro_rules! drain_queue {
            ($now:expr) => {
                while let Some(front) = queue.front().copied() {
                    if try_serve(
                        &mut pool,
                        &mut completions,
                        &mut running,
                        &mut result,
                        front.function,
                        front.arrived,
                        $now,
                    ) {
                        queue.pop();
                    } else {
                        break;
                    }
                }
            };
        }

        macro_rules! drain_completions {
            ($upto:expr) => {
                while let Some(&Reverse((t, id))) = completions.peek() {
                    if t > $upto {
                        break;
                    }
                    completions.pop();
                    pool.release(id, t);
                    running -= 1;
                    drain_queue!(t);
                }
            };
        }

        macro_rules! housekeeping {
            ($now:expr) => {
                for req in queue.expire($now) {
                    result.dropped += 1;
                    result.per_function[req.function.index()].dropped += 1;
                }
                pool.reap($now);
                for fid in pool.prewarm_due($now) {
                    pool.prewarm(registry.spec(fid), $now);
                }
                drain_queue!($now);
            };
        }

        for inv in trace.invocations() {
            let now = inv.time;
            while next_tick <= now {
                drain_completions!(next_tick);
                housekeeping!(next_tick);
                next_tick += config.tick_interval;
            }
            drain_completions!(now);

            // A new arrival goes behind any already-queued requests.
            if queue.is_empty()
                && try_serve(
                    &mut pool,
                    &mut completions,
                    &mut running,
                    &mut result,
                    inv.function,
                    now,
                    now,
                )
            {
                continue;
            }
            if !queue.push(inv.function, now) {
                result.dropped += 1;
                result.per_function[inv.function.index()].dropped += 1;
            }
        }

        // Let the system settle: keep processing completions and queue
        // expiry until both are empty.
        while !completions.is_empty() || !queue.is_empty() {
            if let Some(&Reverse((t, _))) = completions.peek() {
                let boundary = t.min(next_tick);
                drain_completions!(boundary);
                if next_tick <= boundary {
                    housekeeping!(next_tick);
                    next_tick += config.tick_interval;
                }
            } else {
                // Only queued requests remain; ticks will expire them.
                housekeeping!(next_tick);
                next_tick += config.tick_interval;
            }
        }

        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faascache_trace::workloads;

    fn run(policy: PolicyKind, mem_gb: u64) -> PlatformResult {
        let trace = workloads::skewed_frequency(SimDuration::from_mins(5)).unwrap();
        let cfg = PlatformConfig::new(MemMb::from_gb(mem_gb), policy);
        Emulator::run(&trace, &cfg)
    }

    #[test]
    fn accounting_sums_to_trace_length() {
        let trace = workloads::skewed_frequency(SimDuration::from_mins(5)).unwrap();
        for policy in [PolicyKind::GreedyDual, PolicyKind::Ttl] {
            let cfg = PlatformConfig::new(MemMb::from_gb(2), policy);
            let r = Emulator::run(&trace, &cfg);
            assert_eq!(r.total() as usize, trace.len(), "{policy}");
            let per_fn: u64 = r.per_function.iter().map(|f| f.served() + f.dropped).sum();
            assert_eq!(per_fn as usize, trace.len(), "{policy} per-function");
        }
    }

    #[test]
    fn ample_memory_serves_everything() {
        let r = run(PolicyKind::GreedyDual, 64);
        assert_eq!(r.dropped, 0);
        assert!(r.warm > r.cold, "steady workload should be mostly warm");
    }

    #[test]
    fn faascache_beats_openwhisk_under_pressure() {
        // Constrained memory: GD should serve at least as many requests
        // warm as the TTL baseline.
        let gd = run(PolicyKind::GreedyDual, 2);
        let ow = run(PolicyKind::Ttl, 2);
        assert!(
            gd.warm >= ow.warm,
            "GD warm {} should be >= TTL warm {}",
            gd.warm,
            ow.warm
        );
    }

    #[test]
    fn latency_includes_queue_wait() {
        // Saturate concurrency so requests queue.
        let trace = workloads::skewed_frequency(SimDuration::from_mins(2)).unwrap();
        let mut cfg = PlatformConfig::new(MemMb::from_gb(16), PolicyKind::GreedyDual);
        cfg.max_concurrency = 2;
        let constrained = Emulator::run(&trace, &cfg);
        let mut free_cfg = PlatformConfig::new(MemMb::from_gb(16), PolicyKind::GreedyDual);
        free_cfg.max_concurrency = 0;
        let free = Emulator::run(&trace, &free_cfg);
        assert!(
            constrained.mean_latency() > free.mean_latency(),
            "queueing should raise latency: {} vs {}",
            constrained.mean_latency(),
            free.mean_latency()
        );
        assert!(constrained.dropped > 0, "saturation should drop requests");
    }

    #[test]
    fn per_function_names_match_registry() {
        let trace = workloads::skewed_frequency(SimDuration::from_mins(1)).unwrap();
        let cfg = PlatformConfig::new(MemMb::from_gb(4), PolicyKind::GreedyDual);
        let r = Emulator::run(&trace, &cfg);
        for (spec, stats) in trace.registry().iter().zip(&r.per_function) {
            assert_eq!(spec.name(), stats.name);
        }
    }

    #[test]
    fn deterministic() {
        let a = run(PolicyKind::Ttl, 2);
        let b = run(PolicyKind::Ttl, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn mean_latency_zero_when_nothing_served() {
        let r = PlatformResult {
            policy: "GD".into(),
            warm: 0,
            cold: 0,
            dropped: 5,
            per_function: vec![],
        };
        assert_eq!(r.mean_latency(), SimDuration::ZERO);
    }
}
