//! A virtual-time OpenWhisk-like FaaS platform emulator.
//!
//! The paper's §7.2 evaluation runs FaasCache (modified OpenWhisk) against
//! vanilla OpenWhisk on a real server with FunctionBench applications.
//! Docker and a 48-core testbed are out of scope for a library, so this
//! crate emulates the parts of the platform that produce Figures 1, 7 and
//! 8 (see DESIGN.md for the substitution argument):
//!
//! - [`lifecycle`] — the cold-start phase breakdown of Figure 1 (container
//!   pool check → Docker/Akka startup → runtime init → explicit init →
//!   execution);
//! - [`queue`] — OpenWhisk's request buffering: requests wait bounded time
//!   in a bounded buffer and are *dropped* under sustained overload;
//! - [`emulator`] — the invoker loop: a keep-alive [`ContainerPool`]
//!   (TTL for vanilla OpenWhisk, Greedy-Dual for FaasCache) fed from the
//!   buffer, with per-function latency accounting;
//! - [`shared`] — a thread-safe invoker façade (the pool behind a
//!   [`parking_lot::Mutex`]) exercised by concurrent load-generator
//!   threads, mirroring the artifact's LookBusy load tests;
//! - [`sharded`] — the scalable successor to [`shared`]: N pool shards
//!   behind N locks with function-affinity routing, bounded admission
//!   queues (explicit backpressure), and drain support — the in-process
//!   engine of the `faascached` serving daemon.
//!
//! [`ContainerPool`]: faascache_core::ContainerPool

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod emulator;
pub mod lifecycle;
pub mod queue;
pub mod sharded;
pub mod shared;
pub mod tenant;

pub use emulator::{Emulator, PlatformConfig, PlatformResult};
pub use lifecycle::{ColdStartTimeline, Phase, PhaseModel};
pub use sharded::{InvokeOutcome, InvokerStats, ShardedConfig, ShardedInvoker};
pub use tenant::{TenantQuota, TenantQuotas, TenantSnapshot, TenantTable};
