//! The cold-start timeline of Figure 1.
//!
//! For an ML-inference invocation OpenWhisk spends ~8 s end to end:
//!
//! ```text
//! | pool check | Akka/Docker startup 0.45s | OW runtime init 1.5s + 0.76s |
//! | explicit init 1.9s | function execution 4.3s |
//! ```
//!
//! The phase model splits a function's cold time into platform-fixed
//! phases (pool check, container launch, runtime init) and the
//! function-specific explicit initialization, with execution last.

use faascache_core::function::FunctionSpec;
use faascache_util::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A cold-start phase, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Checking the warm container pool for a hit.
    PoolCheck,
    /// Launching the container (Akka scheduling + Docker startup).
    ContainerLaunch,
    /// Initializing the OpenWhisk + language runtime inside the container.
    RuntimeInit,
    /// Function-specific explicit initialization (imports, model download).
    ExplicitInit,
    /// Executing the function body.
    Execution,
}

impl Phase {
    /// All phases in execution order.
    pub const ALL: [Phase; 5] = [
        Phase::PoolCheck,
        Phase::ContainerLaunch,
        Phase::RuntimeInit,
        Phase::ExplicitInit,
        Phase::Execution,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Phase::PoolCheck => "container pool check",
            Phase::ContainerLaunch => "Akka/Docker startup",
            Phase::RuntimeInit => "OW runtime init",
            Phase::ExplicitInit => "explicit init",
            Phase::Execution => "function execution",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Platform-fixed phase durations, calibrated to Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseModel {
    /// Pool lookup latency.
    pub pool_check: SimDuration,
    /// Container (Docker) launch latency.
    pub container_launch: SimDuration,
    /// Runtime initialization latency (OpenWhisk + language runtime).
    pub runtime_init: SimDuration,
}

impl Default for PhaseModel {
    fn default() -> Self {
        PhaseModel {
            pool_check: SimDuration::from_millis(50),
            container_launch: SimDuration::from_millis(450),
            runtime_init: SimDuration::from_millis(2260), // 1.5s + 0.76s
        }
    }
}

impl PhaseModel {
    /// Total platform overhead before any function-specific work.
    pub fn platform_overhead(&self) -> SimDuration {
        self.pool_check + self.container_launch + self.runtime_init
    }

    /// Builds the cold-start timeline for a function.
    ///
    /// The function's initialization overhead (`cold − warm`) covers
    /// container launch + runtime init + explicit init; whatever exceeds
    /// the platform-fixed phases is attributed to explicit init. Functions
    /// whose init overhead is *smaller* than the platform phases get the
    /// phases scaled down proportionally so the timeline still sums to the
    /// observed cold latency.
    pub fn timeline(&self, spec: &FunctionSpec) -> ColdStartTimeline {
        let init = spec.init_overhead();
        let fixed = self.container_launch + self.runtime_init;
        let (launch, runtime, explicit) = if init >= fixed {
            (self.container_launch, self.runtime_init, init - fixed)
        } else {
            let scale = init.as_secs_f64() / fixed.as_secs_f64().max(1e-12);
            (
                self.container_launch.mul_f64(scale),
                self.runtime_init.mul_f64(scale),
                SimDuration::ZERO,
            )
        };
        ColdStartTimeline {
            phases: vec![
                (Phase::PoolCheck, self.pool_check),
                (Phase::ContainerLaunch, launch),
                (Phase::RuntimeInit, runtime),
                (Phase::ExplicitInit, explicit),
                (Phase::Execution, spec.warm_time()),
            ],
        }
    }
}

/// A per-phase breakdown of one cold invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColdStartTimeline {
    phases: Vec<(Phase, SimDuration)>,
}

impl ColdStartTimeline {
    /// The phases and their durations, in execution order.
    pub fn phases(&self) -> &[(Phase, SimDuration)] {
        &self.phases
    }

    /// Total end-to-end latency of the cold invocation.
    pub fn total(&self) -> SimDuration {
        self.phases.iter().map(|&(_, d)| d).sum()
    }

    /// Latency up to (excluding) execution — the user-visible cold-start
    /// overhead.
    pub fn overhead(&self) -> SimDuration {
        self.phases
            .iter()
            .filter(|&&(p, _)| p != Phase::Execution)
            .map(|&(_, d)| d)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faascache_core::function::FunctionRegistry;
    use faascache_trace::apps;
    use faascache_util::MemMb;

    fn spec_for(profile: &apps::AppProfile) -> FunctionSpec {
        let mut reg = FunctionRegistry::new();
        let id = profile.register(&mut reg).unwrap();
        reg.spec(id).clone()
    }

    #[test]
    fn ml_inference_timeline_matches_figure_1() {
        let model = PhaseModel::default();
        let tl = model.timeline(&spec_for(&apps::ML_INFERENCE));
        // Total ≈ pool check + cold time = 0.05 + 6.5 ≈ 6.55 s; the figure's
        // ~8 s includes scheduling slack we fold into the pool check.
        assert_eq!(tl.total(), SimDuration::from_millis(6550));
        // Explicit init = 4.5 − (0.45 + 2.26) = 1.79 s ≈ the figure's 1.9 s.
        let explicit = tl
            .phases()
            .iter()
            .find(|&&(p, _)| p == Phase::ExplicitInit)
            .unwrap()
            .1;
        assert_eq!(explicit, SimDuration::from_millis(1790));
        // Overhead dominates execution for this app.
        assert!(tl.overhead() > SimDuration::from_secs(4));
    }

    #[test]
    fn phases_in_order_and_complete() {
        let model = PhaseModel::default();
        let tl = model.timeline(&spec_for(&apps::WEB_SERVING));
        let order: Vec<Phase> = tl.phases().iter().map(|&(p, _)| p).collect();
        assert_eq!(order, Phase::ALL.to_vec());
    }

    #[test]
    fn small_init_scales_platform_phases() {
        // A function with only 1 s init (< 2.71 s of platform phases).
        let mut reg = FunctionRegistry::new();
        let id = reg
            .register(
                "fast",
                MemMb::new(64),
                SimDuration::from_millis(100),
                SimDuration::from_millis(1100),
            )
            .unwrap();
        let tl = PhaseModel::default().timeline(reg.spec(id));
        let explicit = tl
            .phases()
            .iter()
            .find(|&&(p, _)| p == Phase::ExplicitInit)
            .unwrap()
            .1;
        assert_eq!(explicit, SimDuration::ZERO);
        // Timeline still sums to pool check + cold time.
        let expected = SimDuration::from_millis(50) + SimDuration::from_millis(1100);
        let diff = tl.total().as_secs_f64() - expected.as_secs_f64();
        assert!(diff.abs() < 0.002, "total {} vs {}", tl.total(), expected);
    }

    #[test]
    fn labels_are_human_readable() {
        for p in Phase::ALL {
            assert!(!p.label().is_empty());
            assert_eq!(p.to_string(), p.label());
        }
    }
}
