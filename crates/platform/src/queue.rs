//! OpenWhisk-style request buffering.
//!
//! "OpenWhisk buffers and eventually drops requests if it cannot fulfill
//! them" (§7.2). The buffer is bounded in both length and waiting time:
//! requests that overflow the buffer or wait longer than the patience
//! threshold are dropped — exactly the mechanism that makes vanilla
//! OpenWhisk shed ~50 % of the Figure-8 workload.

use faascache_core::function::FunctionId;
use faascache_util::{SimDuration, SimTime};
use std::collections::VecDeque;

/// A queued invocation request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedRequest {
    /// The requested function.
    pub function: FunctionId,
    /// When the request arrived.
    pub arrived: SimTime,
}

/// A bounded FIFO request buffer with waiting-time expiry.
///
/// # Examples
///
/// ```
/// use faascache_core::function::FunctionId;
/// use faascache_platform::queue::RequestQueue;
/// use faascache_util::{SimDuration, SimTime};
///
/// let mut q = RequestQueue::new(2, SimDuration::from_secs(60));
/// assert!(q.push(FunctionId::from_index(0), SimTime::ZERO));
/// assert!(q.push(FunctionId::from_index(1), SimTime::ZERO));
/// assert!(!q.push(FunctionId::from_index(2), SimTime::ZERO)); // full
/// ```
#[derive(Debug, Clone)]
pub struct RequestQueue {
    queue: VecDeque<QueuedRequest>,
    max_len: usize,
    patience: SimDuration,
    timed_out: u64,
    rejected: u64,
}

impl RequestQueue {
    /// Creates a buffer holding at most `max_len` requests, each willing
    /// to wait at most `patience`.
    pub fn new(max_len: usize, patience: SimDuration) -> Self {
        RequestQueue {
            queue: VecDeque::new(),
            max_len,
            patience,
            timed_out: 0,
            rejected: 0,
        }
    }

    /// Current queue length.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Requests dropped because they waited longer than the patience.
    pub fn timed_out(&self) -> u64 {
        self.timed_out
    }

    /// Requests rejected because the buffer was full.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Enqueues a request; returns `false` (and counts a rejection) when
    /// the buffer is full.
    pub fn push(&mut self, function: FunctionId, now: SimTime) -> bool {
        if self.queue.len() >= self.max_len {
            // Saturating: a lifetime rejection counter must not wrap under
            // sustained overload (see the core pool's counter contract).
            debug_assert!(self.rejected < u64::MAX, "rejection counter overflow");
            self.rejected = self.rejected.saturating_add(1);
            return false;
        }
        self.queue.push_back(QueuedRequest {
            function,
            arrived: now,
        });
        true
    }

    /// Drops requests that have waited past their patience; returns them.
    pub fn expire(&mut self, now: SimTime) -> Vec<QueuedRequest> {
        let mut dropped = Vec::new();
        // FIFO: expired requests are a prefix ordered by arrival time...
        // except the queue *is* arrival-ordered, so scan from the front.
        while let Some(front) = self.queue.front() {
            if now.since(front.arrived) > self.patience {
                dropped.push(self.queue.pop_front().expect("front exists"));
            } else {
                break;
            }
        }
        debug_assert!(
            u64::MAX - self.timed_out >= dropped.len() as u64,
            "timeout counter overflow"
        );
        self.timed_out = self.timed_out.saturating_add(dropped.len() as u64);
        dropped
    }

    /// The next waiting request, if any (peek).
    pub fn front(&self) -> Option<&QueuedRequest> {
        self.queue.front()
    }

    /// Removes and returns the next waiting request.
    pub fn pop(&mut self) -> Option<QueuedRequest> {
        self.queue.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FunctionId {
        FunctionId::from_index(i)
    }

    #[test]
    fn fifo_order() {
        let mut q = RequestQueue::new(10, SimDuration::from_secs(60));
        q.push(f(1), SimTime::from_secs(1));
        q.push(f(2), SimTime::from_secs(2));
        assert_eq!(q.pop().unwrap().function, f(1));
        assert_eq!(q.pop().unwrap().function, f(2));
        assert!(q.pop().is_none());
    }

    #[test]
    fn overflow_rejects() {
        let mut q = RequestQueue::new(1, SimDuration::from_secs(60));
        assert!(q.push(f(1), SimTime::ZERO));
        assert!(!q.push(f(2), SimTime::ZERO));
        assert_eq!(q.rejected(), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn patience_expiry() {
        let mut q = RequestQueue::new(10, SimDuration::from_secs(30));
        q.push(f(1), SimTime::from_secs(0));
        q.push(f(2), SimTime::from_secs(20));
        let dropped = q.expire(SimTime::from_secs(31));
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].function, f(1));
        assert_eq!(q.timed_out(), 1);
        assert_eq!(q.len(), 1);
        // Second request survives until t=50.
        assert!(q.expire(SimTime::from_secs(50)).is_empty());
        assert_eq!(q.expire(SimTime::from_secs(51)).len(), 1);
    }

    #[test]
    fn exact_patience_boundary_not_dropped() {
        let mut q = RequestQueue::new(10, SimDuration::from_secs(30));
        q.push(f(1), SimTime::ZERO);
        assert!(q.expire(SimTime::from_secs(30)).is_empty());
    }
}
