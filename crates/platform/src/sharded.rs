//! A sharded, concurrency-safe invoker: N pools behind N locks.
//!
//! The single-mutex [`SharedInvoker`](crate::shared::SharedInvoker) caps
//! throughput at one lock; this module scales the invoker the way the
//! paper's §9 cluster discussion suggests scaling keep-alive servers:
//! partition the memory into `N` independent [`ContainerPool`] shards and
//! route every function to a fixed home shard with the stable affinity
//! hash ([`faascache_util::route`]). Affinity routing preserves the
//! temporal locality keep-alive depends on — all warm containers of a
//! function live on one shard — while invocations of different functions
//! contend on different locks.
//!
//! Each shard also carries a bounded admission gate mirroring the
//! OpenWhisk-style buffer in [`crate::queue`]: at most `queue_bound`
//! requests may be admitted-but-unfinished per shard, and requests beyond
//! the bound are *rejected* with explicit backpressure
//! ([`InvokeOutcome::Rejected`]) rather than queued without limit.
//! Draining ([`ShardedInvoker::begin_drain`]) flips the gate shut
//! everywhere so in-flight requests finish while new arrivals are turned
//! away — the mechanism behind the `faascached` daemon's graceful
//! shutdown.
//!
//! # Load-aware routing
//!
//! A static affinity hash is only as good as its worst shard: one hot
//! function saturates its home shard while the rest idle. Two optional
//! mechanisms spread such skew without giving up warm locality:
//!
//! - **Power-of-two-choices admission** ([`ShardedConfig::with_p2c`]):
//!   every function has a seeded *alternate* candidate shard
//!   ([`faascache_util::route::alt_shard_for`]); when the preferred
//!   shard's in-flight count is above the configured watermark, the
//!   request is admitted to the less-loaded of the two candidates.
//! - **Warm-set re-homing** ([`ShardedConfig::with_rebalance`],
//!   [`ShardedInvoker::rebalance_tick`]): when a shard's served-per-tick
//!   load exceeds the fleet mean by a configurable factor for K
//!   consecutive ticks, the hottest function's *idle* warm containers
//!   migrate to the coldest shard and a route override is published, so
//!   subsequent invocations follow their warm set — moved, not destroyed.
//!
//! Per-shard load (in-flight, admission-queue depth, committed warm
//! memory, served window) is exposed lock-free via
//! [`ShardedInvoker::load`]/[`ShardedInvoker::loads`].

use crate::tenant::{TenantQuotas, TenantSnapshot, TenantTable};
use faascache_core::function::{FunctionId, FunctionSpec};
use faascache_core::policy::{KeepAlivePolicy, PolicyKind};
use faascache_core::pool::{Acquire, ContainerPool, PoolConfig, PoolCounters};
use faascache_util::{route, MemMb, SimTime};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Outcome of an invocation through a concurrency-safe invoker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvokeOutcome {
    /// Served warm.
    Warm,
    /// Served with a cold start.
    Cold,
    /// Dropped by the pool: no capacity even after evicting idle
    /// containers.
    Dropped,
    /// Rejected at admission: the shard's bounded queue was full, or the
    /// invoker is draining. Explicit backpressure — the caller may retry
    /// elsewhere or shed the request.
    Rejected,
    /// Throttled at admission: the function's *tenant* is over one of its
    /// isolation budgets (in-flight concurrency or resident container
    /// memory — see [`crate::tenant`]). Unlike [`Self::Rejected`], this is
    /// not server pressure: the right reaction is to back off this
    /// tenant's traffic, and other tenants proceed unaffected.
    Throttled,
}

impl InvokeOutcome {
    /// Whether the invocation was actually served (warm or cold).
    pub fn is_served(self) -> bool {
        matches!(self, InvokeOutcome::Warm | InvokeOutcome::Cold)
    }
}

/// Warm-set re-homing knobs (see [`ShardedInvoker::rebalance_tick`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceConfig {
    /// A shard is *overloaded* when its served count for one tick window
    /// exceeds `factor ×` the fleet mean.
    pub factor: f64,
    /// Consecutive overloaded ticks required before a migration fires —
    /// hysteresis against reacting to a single bursty window.
    pub ticks: u32,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            factor: 1.5,
            ticks: 2,
        }
    }
}

/// Configuration of a sharded invoker.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Number of pool shards (≥ 1).
    pub shards: usize,
    /// Per-shard pool configuration (its `capacity` is per shard).
    pub per_shard: PoolConfig,
    /// Maximum admitted-but-unfinished requests per shard before
    /// backpressure kicks in. `usize::MAX` disables the bound.
    pub queue_bound: usize,
    /// Power-of-two-choices admission: consider the seeded alternate
    /// candidate shard when the preferred shard is above the watermark.
    pub p2c: bool,
    /// In-flight count above which the preferred shard counts as loaded
    /// and the alternate candidate is consulted. Only meaningful with
    /// [`Self::p2c`]; a watermark ≥ 1 keeps purely sequential callers on
    /// their home shard (their observed in-flight is always 0).
    pub p2c_watermark: u64,
    /// Background warm-set re-homing; `None` disables it.
    pub rebalance: Option<RebalanceConfig>,
    /// Per-tenant isolation budgets enforced at admission (see
    /// [`crate::tenant`]). The default is unlimited everywhere, which
    /// makes the tenant gate a no-op.
    pub tenant_quotas: TenantQuotas,
}

impl ShardedConfig {
    /// A configuration splitting `total_mem` evenly across `shards`
    /// shards with an unbounded admission queue and load-aware routing
    /// disabled (pure affinity).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn split(total_mem: MemMb, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardedConfig {
            shards,
            per_shard: PoolConfig::new(MemMb::new(total_mem.as_mb() / shards as u64)),
            queue_bound: usize::MAX,
            p2c: false,
            p2c_watermark: 2,
            rebalance: None,
            tenant_quotas: TenantQuotas::unlimited(),
        }
    }

    /// Sets the per-shard admission bound.
    pub fn with_queue_bound(mut self, bound: usize) -> Self {
        self.queue_bound = bound;
        self
    }

    /// Sets the per-shard eviction batch threshold.
    pub fn with_eviction_batch(mut self, batch: MemMb) -> Self {
        self.per_shard = self.per_shard.with_eviction_batch(batch);
        self
    }

    /// Enables power-of-two-choices admission with the given in-flight
    /// watermark.
    pub fn with_p2c(mut self, watermark: u64) -> Self {
        self.p2c = true;
        self.p2c_watermark = watermark;
        self
    }

    /// Enables background warm-set re-homing.
    pub fn with_rebalance(mut self, rebalance: RebalanceConfig) -> Self {
        self.rebalance = Some(rebalance);
        self
    }

    /// Sets the per-tenant isolation budgets.
    pub fn with_tenant_quotas(mut self, quotas: TenantQuotas) -> Self {
        self.tenant_quotas = quotas;
        self
    }
}

/// A point-in-time snapshot of one shard.
#[derive(Debug, Clone, Copy)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// The shard pool's lifetime counters.
    pub counters: PoolCounters,
    /// Requests rejected at this shard's admission gate.
    pub rejected: u64,
    /// Requests currently admitted but unfinished.
    pub in_flight: u64,
    /// Memory held by the shard's containers.
    pub used_mem: MemMb,
    /// Idle (warm) containers resident on the shard.
    pub warm_containers: usize,
}

/// A lock-free point-in-time load snapshot of one shard: everything the
/// router and the rebalancer read is an atomic, so snapshotting never
/// contends with request service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardLoad {
    /// Shard index.
    pub shard: usize,
    /// Admitted-but-unfinished requests.
    pub in_flight: u64,
    /// Admission-queue occupancy. Service is synchronous, so every
    /// admitted request is being served and the queue depth equals
    /// [`Self::in_flight`]; kept as its own field so an asynchronous
    /// executor can diverge without an API change.
    pub queue_depth: u64,
    /// Memory committed to idle (warm) containers, in MB. Refreshed on
    /// every pool operation, so transiently stale by at most one request.
    pub warm_mem_mb: u64,
    /// Requests served since the last rebalance tick reset the window.
    pub window_served: u64,
}

/// One warm-set migration performed by [`ShardedInvoker::rebalance_tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalanceEvent {
    /// The re-homed function.
    pub function: FunctionId,
    /// The overloaded source shard.
    pub from: usize,
    /// The destination (coldest) shard now published as the function's
    /// route override.
    pub to: usize,
    /// Warm containers that moved.
    pub moved: usize,
    /// Idle containers that did not fit on the destination and were
    /// re-adopted by the source (running containers are not counted; they
    /// stay put regardless).
    pub left_behind: usize,
}

/// Aggregated counters across every shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InvokerStats {
    /// Invocations served warm.
    pub warm: u64,
    /// Invocations served cold.
    pub cold: u64,
    /// Invocations dropped by a pool for lack of memory.
    pub dropped: u64,
    /// Invocations rejected at admission (backpressure or drain).
    pub rejected: u64,
    /// Invocations throttled at admission by a tenant budget.
    pub throttled: u64,
    /// Containers evicted across shards.
    pub evictions: u64,
    /// Containers prewarmed across shards.
    pub prewarms: u64,
    /// Warm-set migrations performed by the rebalancer.
    pub migrations: u64,
}

impl InvokerStats {
    /// Invocations served (warm + cold).
    pub fn served(&self) -> u64 {
        self.warm + self.cold
    }

    /// Every request that received a definite outcome.
    pub fn accounted(&self) -> u64 {
        self.warm + self.cold + self.dropped + self.rejected + self.throttled
    }
}

#[derive(Debug)]
struct Shard {
    pool: Mutex<ContainerPool>,
    /// Monotone virtual clock in microseconds.
    clock_us: AtomicU64,
    /// Admitted-but-unfinished requests (the admission "queue" occupancy:
    /// service is synchronous, so admitted requests are being served).
    in_flight: AtomicU64,
    /// Requests turned away at the admission gate.
    rejected: AtomicU64,
    /// Idle (warm) memory in MB, mirrored out of the pool after every
    /// locked operation so load snapshots never take the pool lock.
    warm_mem_mb: AtomicU64,
    /// Requests served since the last rebalance tick (the tick window).
    window_served: AtomicU64,
    /// Per-function served counts for the current tick window — the
    /// rebalancer's hotness signal. Only maintained when re-homing is
    /// enabled.
    recent: Mutex<HashMap<FunctionId, u64>>,
}

impl Shard {
    fn advance(&self, at: SimTime) -> SimTime {
        let proposed = at.as_micros();
        let clock = self
            .clock_us
            .fetch_max(proposed, Ordering::AcqRel)
            .max(proposed);
        SimTime::from_micros(clock)
    }
}

/// Per-shard overload streak lengths, updated once per rebalance tick.
#[derive(Debug)]
struct RebalanceState {
    streaks: Vec<u32>,
}

#[derive(Debug)]
struct Inner {
    shards: Vec<Shard>,
    queue_bound: u64,
    draining: AtomicBool,
    p2c: bool,
    p2c_watermark: u64,
    rebalance: Option<RebalanceConfig>,
    /// Published route overrides: functions whose warm set was re-homed
    /// off their hash home. Read on every routed invocation, written only
    /// by the (serialized) rebalancer.
    overrides: RwLock<HashMap<FunctionId, usize>>,
    /// Warm-set migrations performed.
    migrations: AtomicU64,
    rebalancer: Mutex<RebalanceState>,
    /// Per-tenant accounting and budget enforcement, shared with every
    /// shard pool as its [`faascache_core::pool::TenantLedger`].
    tenants: Arc<TenantTable>,
}

/// Decrements a shard's in-flight counter on drop, however the
/// invocation ends — normal return or unwind.
struct AdmissionSlot<'a>(&'a AtomicU64);

impl Drop for AdmissionSlot<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A multi-shard concurrency-safe invoker.
///
/// Cloning is cheap (shared handle). Invocations carry explicit virtual
/// timestamps; each shard enforces a monotone clock, so racing threads
/// cannot move a shard's time backwards.
///
/// # Examples
///
/// ```
/// use faascache_core::function::FunctionRegistry;
/// use faascache_core::policy::PolicyKind;
/// use faascache_platform::sharded::{InvokeOutcome, ShardedConfig, ShardedInvoker};
/// use faascache_util::{MemMb, SimDuration, SimTime};
///
/// let mut reg = FunctionRegistry::new();
/// let f = reg.register("f", MemMb::new(64), SimDuration::from_millis(5),
///                      SimDuration::from_millis(50))?;
/// let inv = ShardedInvoker::with_kind(
///     ShardedConfig::split(MemMb::from_gb(1), 4),
///     PolicyKind::GreedyDual,
/// );
/// assert_eq!(inv.invoke(reg.spec(f), SimTime::ZERO), InvokeOutcome::Cold);
/// assert_eq!(inv.invoke(reg.spec(f), SimTime::from_secs(1)), InvokeOutcome::Warm);
/// # Ok::<(), faascache_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ShardedInvoker {
    inner: Arc<Inner>,
}

impl ShardedInvoker {
    /// Creates an invoker from a configuration and one policy per shard.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards == 0` or `policies.len() != config.shards`.
    pub fn new(config: ShardedConfig, policies: Vec<Box<dyn KeepAlivePolicy>>) -> Self {
        assert!(config.shards > 0, "need at least one shard");
        assert_eq!(
            policies.len(),
            config.shards,
            "one policy instance per shard"
        );
        let tenants = Arc::new(TenantTable::new(config.tenant_quotas.clone()));
        let shards: Vec<Shard> = policies
            .into_iter()
            .map(|mut policy| {
                // Every shard's policy shares one weight table, so an
                // over-budget tenant is deprioritized fleet-wide, and
                // every pool reports memory changes to one ledger, so
                // tenant accounting is exact across migrations.
                policy.set_tenant_weights(tenants.weights());
                Shard {
                    pool: Mutex::new(ContainerPool::with_config_and_ledger(
                        config.per_shard,
                        policy,
                        tenants.clone(),
                    )),
                    clock_us: AtomicU64::new(0),
                    in_flight: AtomicU64::new(0),
                    rejected: AtomicU64::new(0),
                    warm_mem_mb: AtomicU64::new(0),
                    window_served: AtomicU64::new(0),
                    recent: Mutex::new(HashMap::new()),
                }
            })
            .collect();
        let streaks = vec![0; shards.len()];
        ShardedInvoker {
            inner: Arc::new(Inner {
                shards,
                queue_bound: config.queue_bound as u64,
                draining: AtomicBool::new(false),
                p2c: config.p2c,
                p2c_watermark: config.p2c_watermark,
                rebalance: config.rebalance,
                overrides: RwLock::new(HashMap::new()),
                migrations: AtomicU64::new(0),
                rebalancer: Mutex::new(RebalanceState { streaks }),
                tenants,
            }),
        }
    }

    /// Creates an invoker with a fresh policy of `kind` on every shard.
    pub fn with_kind(config: ShardedConfig, kind: PolicyKind) -> Self {
        let policies = (0..config.shards).map(|_| kind.build()).collect();
        Self::new(config, policies)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// The home shard of a function (stable affinity routing), ignoring
    /// route overrides and load.
    pub fn shard_of(&self, function: FunctionId) -> usize {
        route::shard_for(function.index() as u64, self.inner.shards.len())
    }

    /// The function's published route override, if the rebalancer has
    /// re-homed its warm set off the hash home.
    pub fn route_override(&self, function: FunctionId) -> Option<usize> {
        self.inner.overrides.read().get(&function).copied()
    }

    /// The shard an invocation of `function` is admitted to *right now*.
    ///
    /// The preferred shard is the published override (the warm set lives
    /// there) or else the hash home. With power-of-two-choices enabled,
    /// when the preferred shard's in-flight count is above the watermark
    /// the request spills to the less-loaded of the two candidates; ties
    /// keep it on the preferred shard, preserving warm affinity.
    pub fn route_of(&self, function: FunctionId) -> usize {
        let n = self.inner.shards.len();
        if n == 1 {
            return 0;
        }
        let idx = function.index() as u64;
        let home = route::shard_for(idx, n);
        let pinned = self.route_override(function).unwrap_or(home);
        if !self.inner.p2c {
            return pinned;
        }
        // The second candidate: the seeded alternate — or, once an
        // override moved the function away from its hash home, the home
        // itself (stragglers of the warm set may still live there).
        let alt = if pinned == home {
            route::alt_shard_for(idx, n)
        } else {
            home
        };
        let pinned_load = self.inner.shards[pinned].in_flight.load(Ordering::Acquire);
        if pinned_load <= self.inner.p2c_watermark {
            return pinned;
        }
        let alt_load = self.inner.shards[alt].in_flight.load(Ordering::Acquire);
        if alt_load < pinned_load {
            alt
        } else {
            pinned
        }
    }

    /// Invokes `spec` at virtual time `at` on its routed shard and
    /// synchronously completes the invocation.
    ///
    /// Admission is gated in a fixed order: a draining invoker rejects;
    /// then the function's *tenant* budgets are checked (over-budget
    /// tenants are throttled — see [`crate::tenant`]); then the shard's
    /// bounded queue rejects on backpressure. A throttled request never
    /// consumes a shard admission slot and never touches the pool.
    pub fn invoke(&self, spec: &FunctionSpec, at: SimTime) -> InvokeOutcome {
        let shard = &self.inner.shards[self.route_of(spec.id())];
        if self.inner.draining.load(Ordering::Acquire) {
            shard.rejected.fetch_add(1, Ordering::Relaxed);
            return InvokeOutcome::Rejected;
        }
        // RAII brackets: both the tenant slot and the shard admission
        // slot are released even if the handler aborts (a policy panic
        // unwinding through `serve`), so `await_quiesce` can never wedge
        // on a leaked in-flight count and no tenant counter can leak.
        let Some(_tenant_slot) = self
            .inner
            .tenants
            .try_admit(spec.tenant().index() as u32, spec.tenant_name())
        else {
            return InvokeOutcome::Throttled;
        };
        if !self.try_admit(shard) {
            shard.rejected.fetch_add(1, Ordering::Relaxed);
            return InvokeOutcome::Rejected;
        }
        let _slot = AdmissionSlot(&shard.in_flight);
        let outcome = Self::serve(shard, spec, at);
        if outcome.is_served() {
            self.inner
                .tenants
                .record_served(spec.tenant().index() as u32);
            shard.window_served.fetch_add(1, Ordering::AcqRel);
            if self.inner.rebalance.is_some() {
                *shard.recent.lock().entry(spec.id()).or_insert(0) += 1;
            }
        }
        outcome
    }

    fn try_admit(&self, shard: &Shard) -> bool {
        let bound = self.inner.queue_bound;
        let mut cur = shard.in_flight.load(Ordering::Acquire);
        loop {
            if cur >= bound {
                return false;
            }
            match shard.in_flight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(observed) => cur = observed,
            }
        }
    }

    fn serve(shard: &Shard, spec: &FunctionSpec, at: SimTime) -> InvokeOutcome {
        let now = shard.advance(at);
        let mut pool = shard.pool.lock();
        let served = match pool.acquire(spec, now) {
            Acquire::Warm { container } => {
                let finish = now + spec.warm_time();
                pool.release(container, finish);
                Some((finish, InvokeOutcome::Warm))
            }
            Acquire::Cold { container, .. } => {
                let finish = now + spec.cold_time();
                pool.release(container, finish);
                Some((finish, InvokeOutcome::Cold))
            }
            // Evictions may have happened even on the drop path, so the
            // warm-memory mirror is refreshed on every branch.
            Acquire::NoCapacity => None,
        };
        shard
            .warm_mem_mb
            .store(pool.warm_mem().as_mb(), Ordering::Release);
        drop(pool);
        match served {
            Some((finish, outcome)) => {
                shard.advance(finish);
                outcome
            }
            None => InvokeOutcome::Dropped,
        }
    }

    /// Applies TTL-style expiry on one shard at virtual time `at`;
    /// returns the number of containers reaped.
    ///
    /// The daemon runs one wall-clock reaper thread per shard, each
    /// calling this for its own shard so reaping never serializes the
    /// whole invoker.
    pub fn reap_shard(&self, shard: usize, at: SimTime) -> usize {
        let s = &self.inner.shards[shard];
        let now = s.advance(at);
        let mut pool = s.pool.lock();
        let reaped = pool.reap(now).len();
        s.warm_mem_mb
            .store(pool.warm_mem().as_mb(), Ordering::Release);
        reaped
    }

    /// Applies TTL-style expiry on every shard; returns the total reaped.
    pub fn reap(&self, at: SimTime) -> usize {
        (0..self.num_shards()).map(|i| self.reap_shard(i, at)).sum()
    }

    /// Starts draining: every subsequent invocation is rejected while
    /// requests already admitted run to completion.
    pub fn begin_drain(&self) {
        self.inner.draining.store(true, Ordering::Release);
    }

    /// Whether the invoker is draining.
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::Acquire)
    }

    /// Blocks until no shard has an in-flight request, or `timeout`
    /// elapses. Returns `true` when fully quiesced.
    ///
    /// Usually preceded by [`Self::begin_drain`]; without it new arrivals
    /// can keep the invoker busy indefinitely.
    pub fn await_quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.in_flight() == 0 {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Begins draining and waits for in-flight requests to finish.
    /// Returns `true` when fully quiesced within `timeout`.
    pub fn drain(&self, timeout: Duration) -> bool {
        self.begin_drain();
        self.await_quiesce(timeout)
    }

    /// Total admitted-but-unfinished requests across shards.
    pub fn in_flight(&self) -> u64 {
        self.inner
            .shards
            .iter()
            .map(|s| s.in_flight.load(Ordering::Acquire))
            .sum()
    }

    /// Aggregated lifetime pool counters across shards.
    pub fn pool_counters(&self) -> PoolCounters {
        let mut total = PoolCounters::default();
        for s in &self.inner.shards {
            let c = s.pool.lock().counters();
            total.warm_starts += c.warm_starts;
            total.cold_starts += c.cold_starts;
            total.drops += c.drops;
            total.evictions += c.evictions;
            total.prewarms += c.prewarms;
        }
        total
    }

    /// Aggregated invoker statistics (pool counters + admission
    /// rejections).
    pub fn stats(&self) -> InvokerStats {
        let c = self.pool_counters();
        InvokerStats {
            warm: c.warm_starts,
            cold: c.cold_starts,
            dropped: c.drops,
            rejected: self
                .inner
                .shards
                .iter()
                .map(|s| s.rejected.load(Ordering::Acquire))
                .sum(),
            throttled: self.inner.tenants.total_throttled(),
            evictions: c.evictions,
            prewarms: c.prewarms,
            migrations: self.inner.migrations.load(Ordering::Acquire),
        }
    }

    /// Per-tenant accounting snapshots (tenants seen at least once), in
    /// tenant-index order. Lock-free.
    pub fn tenant_snapshots(&self) -> Vec<TenantSnapshot> {
        self.inner.tenants.snapshots()
    }

    /// Updates a tenant's admission budget at runtime (see
    /// [`TenantTable::set_quota`]): stored for tenants not yet seen,
    /// applied immediately — limits and eviction weight — for tenants
    /// with a live accounting slot. Returns `true` when a live slot was
    /// updated.
    pub fn set_tenant_quota(&self, name: &str, quota: crate::tenant::TenantQuota) -> bool {
        self.inner.tenants.set_quota(name, quota)
    }

    /// A point-in-time clone of the tenant quota configuration
    /// (boot-time flags plus every runtime update), for durability
    /// snapshots.
    pub fn tenant_quotas(&self) -> TenantQuotas {
        self.inner.tenants.quotas_snapshot()
    }

    /// Warm-set migrations performed by the rebalancer.
    pub fn migrations(&self) -> u64 {
        self.inner.migrations.load(Ordering::Acquire)
    }

    /// Lock-free load snapshot of one shard.
    pub fn load(&self, shard: usize) -> ShardLoad {
        let s = &self.inner.shards[shard];
        let in_flight = s.in_flight.load(Ordering::Acquire);
        ShardLoad {
            shard,
            in_flight,
            queue_depth: in_flight,
            warm_mem_mb: s.warm_mem_mb.load(Ordering::Acquire),
            window_served: s.window_served.load(Ordering::Acquire),
        }
    }

    /// Lock-free load snapshots of every shard, in shard order.
    pub fn loads(&self) -> Vec<ShardLoad> {
        (0..self.num_shards()).map(|i| self.load(i)).collect()
    }

    /// One step of background warm-set re-homing, meant to run on the
    /// reaper cadence. Returns the migration performed, if any.
    ///
    /// Each call closes one observation window: per-shard served counts
    /// since the previous tick. A shard whose window exceeds the fleet
    /// mean by the configured factor grows an overload streak; once a
    /// streak reaches the configured tick count, the hottest function
    /// still routed to that shard has its idle warm containers migrated
    /// to the coldest shard and a route override published so subsequent
    /// invocations follow the warm set. All selection tie-breaks are
    /// deterministic (highest served → lowest shard index; highest
    /// per-function count → lowest function id), so identical histories
    /// rebalance identically.
    ///
    /// The migration itself holds both pool locks (acquired in ascending
    /// shard order — the rebalancer is the only multi-lock path, so lock
    /// ordering is trivially deadlock-free) and never evicts on the
    /// destination: containers that do not fit are re-adopted by the
    /// source. No counter of either pool is disturbed — a moved warm set
    /// is not an eviction — so the conservation invariant
    /// `warm + cold + dropped + rejected == requests` is unaffected.
    ///
    /// Returns `None` when re-homing is disabled, the fleet is balanced,
    /// a streak has not matured, or nothing migratable was found.
    pub fn rebalance_tick(&self, at: SimTime) -> Option<RebalanceEvent> {
        let cfg = self.inner.rebalance?;
        let n = self.inner.shards.len();
        if n < 2 {
            return None;
        }
        // Serializes concurrent ticks; nothing else takes this lock.
        let mut state = self.inner.rebalancer.lock();
        let served: Vec<u64> = self
            .inner
            .shards
            .iter()
            .map(|s| s.window_served.swap(0, Ordering::AcqRel))
            .collect();
        let recent: Vec<HashMap<FunctionId, u64>> = self
            .inner
            .shards
            .iter()
            .map(|s| std::mem::take(&mut *s.recent.lock()))
            .collect();
        let total: u64 = served.iter().sum();
        if total == 0 {
            state.streaks.iter_mut().for_each(|s| *s = 0);
            return None;
        }
        let mean = total as f64 / n as f64;
        for (i, &count) in served.iter().enumerate() {
            if count as f64 > cfg.factor * mean {
                state.streaks[i] = state.streaks[i].saturating_add(1);
            } else {
                state.streaks[i] = 0;
            }
        }
        let hot = (0..n)
            .filter(|&i| state.streaks[i] >= cfg.ticks)
            .max_by_key(|&i| (served[i], std::cmp::Reverse(i)))?;
        let cold = (0..n)
            .filter(|&i| i != hot)
            .min_by_key(|&i| {
                (
                    served[i],
                    self.inner.shards[i].warm_mem_mb.load(Ordering::Acquire),
                    i,
                )
            })
            .expect("n >= 2");
        // Candidate functions by window count (desc), ties toward the
        // lowest id. Only functions still pinned to the hot shard are
        // eligible — a function whose traffic already routes elsewhere
        // would leave its migrated warm set unreachable.
        let mut by_fn: Vec<(FunctionId, u64)> = recent[hot].iter().map(|(&f, &c)| (f, c)).collect();
        by_fn.sort_by_key(|&(f, c)| (std::cmp::Reverse(c), f));
        let pinned_here: Vec<FunctionId> = by_fn
            .iter()
            .map(|&(f, _)| f)
            .filter(|&f| self.route_override(f).unwrap_or_else(|| self.shard_of(f)) == hot)
            .collect();
        // Advance both shard clocks to a common migration time.
        let now = self.inner.shards[hot].advance(at);
        let now = self.inner.shards[cold].advance(now);
        let (lo, hi) = (hot.min(cold), hot.max(cold));
        let mut guard_lo = self.inner.shards[lo].pool.lock();
        let mut guard_hi = self.inner.shards[hi].pool.lock();
        let (src, dst) = if hot == lo {
            (&mut *guard_lo, &mut *guard_hi)
        } else {
            (&mut *guard_hi, &mut *guard_lo)
        };
        let Some(function) = pinned_here.into_iter().find(|&f| src.warm_count_of(f) > 0) else {
            // Nothing migratable this window (hot traffic may be running,
            // not idle): restart the streak rather than thrash.
            drop(guard_hi);
            drop(guard_lo);
            state.streaks[hot] = 0;
            return None;
        };
        let mut moved = 0usize;
        let mut left_behind = 0usize;
        for container in src.extract_idle_of(function, now) {
            match dst.adopt(container, now) {
                Ok(_) => moved += 1,
                Err(back) => {
                    src.adopt(back, now)
                        .expect("the source freed this memory moments ago");
                    left_behind += 1;
                }
            }
        }
        self.inner.shards[hot]
            .warm_mem_mb
            .store(src.warm_mem().as_mb(), Ordering::Release);
        self.inner.shards[cold]
            .warm_mem_mb
            .store(dst.warm_mem().as_mb(), Ordering::Release);
        drop(guard_hi);
        drop(guard_lo);
        if moved == 0 {
            // Nothing actually re-homed (destination full): leave the
            // route alone so requests keep hitting the warm set in place.
            state.streaks[hot] = 0;
            return None;
        }
        {
            let mut overrides = self.inner.overrides.write();
            if cold == self.shard_of(function) {
                // Moved back to its hash home: the override retires.
                overrides.remove(&function);
            } else {
                overrides.insert(function, cold);
            }
        }
        self.inner.migrations.fetch_add(1, Ordering::AcqRel);
        state.streaks[hot] = 0;
        Some(RebalanceEvent {
            function,
            from: hot,
            to: cold,
            moved,
            left_behind,
        })
    }

    /// The warm (idle) containers resident on one shard, as
    /// `(function, last_used)` pairs in sorted order — a diagnostic view
    /// for tests and tooling that need to check warm-set placement and
    /// history (e.g. that migration preserved both), not just counts.
    pub fn warm_set(&self, shard: usize) -> Vec<(FunctionId, SimTime)> {
        let pool = self.inner.shards[shard].pool.lock();
        let mut set: Vec<(FunctionId, SimTime)> = pool
            .idle_ids()
            .map(|id| {
                let c = pool.container(id).expect("idle ids are resident");
                (c.function(), c.last_used())
            })
            .collect();
        set.sort_unstable();
        set
    }

    /// Per-shard snapshots, in shard order.
    pub fn per_shard(&self) -> Vec<ShardStats> {
        self.inner
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let pool = s.pool.lock();
                ShardStats {
                    shard: i,
                    counters: pool.counters(),
                    rejected: s.rejected.load(Ordering::Acquire),
                    in_flight: s.in_flight.load(Ordering::Acquire),
                    used_mem: pool.used_mem(),
                    warm_containers: pool.warm_count(),
                }
            })
            .collect()
    }

    /// Memory held by containers across every shard.
    pub fn used_mem(&self) -> MemMb {
        self.inner
            .shards
            .iter()
            .map(|s| s.pool.lock().used_mem())
            .sum()
    }

    /// Total memory capacity across every shard.
    pub fn capacity(&self) -> MemMb {
        self.inner
            .shards
            .iter()
            .map(|s| s.pool.lock().capacity())
            .sum()
    }

    /// The most advanced shard clock — a monotone upper bound on every
    /// shard's virtual time.
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(
            self.inner
                .shards
                .iter()
                .map(|s| s.clock_us.load(Ordering::Acquire))
                .max()
                .unwrap_or(0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faascache_core::function::FunctionRegistry;
    use faascache_util::SimDuration;

    fn registry(n: usize) -> FunctionRegistry {
        let mut reg = FunctionRegistry::new();
        for i in 0..n {
            reg.register(
                format!("f{i}"),
                MemMb::new(64),
                SimDuration::from_millis(5),
                SimDuration::from_millis(50),
            )
            .unwrap();
        }
        reg
    }

    #[test]
    fn warm_after_cold_per_function() {
        let reg = registry(16);
        let inv = ShardedInvoker::with_kind(
            ShardedConfig::split(MemMb::from_gb(2), 4),
            PolicyKind::GreedyDual,
        );
        for spec in reg.iter() {
            assert_eq!(inv.invoke(spec, SimTime::ZERO), InvokeOutcome::Cold);
        }
        for spec in reg.iter() {
            assert_eq!(inv.invoke(spec, SimTime::from_secs(1)), InvokeOutcome::Warm);
        }
        let stats = inv.stats();
        assert_eq!(stats.warm, 16);
        assert_eq!(stats.cold, 16);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn tenant_mem_budget_throttles_only_the_offender() {
        use crate::tenant::{TenantQuota, TenantQuotas};
        let mut reg = FunctionRegistry::new();
        let hog = reg
            .register_in(
                "hog",
                MemMb::new(256),
                SimDuration::from_millis(5),
                SimDuration::from_millis(50),
                "greedy",
            )
            .unwrap();
        let bystander = reg
            .register_in(
                "bystander",
                MemMb::new(64),
                SimDuration::from_millis(5),
                SimDuration::from_millis(50),
                "victim",
            )
            .unwrap();
        let mut quotas = TenantQuotas::unlimited();
        quotas.set("greedy", TenantQuota::parse("mem=256").unwrap());
        let inv = ShardedInvoker::with_kind(
            ShardedConfig::split(MemMb::from_gb(2), 1).with_tenant_quotas(quotas),
            PolicyKind::GreedyDual,
        );
        // First hog invocation cold-starts a 256 MB container, putting the
        // tenant exactly at its budget; the next one is throttled, not
        // rejected, and the other tenant is untouched.
        assert_eq!(
            inv.invoke(reg.spec(hog), SimTime::ZERO),
            InvokeOutcome::Cold
        );
        assert_eq!(
            inv.invoke(reg.spec(hog), SimTime::from_secs(1)),
            InvokeOutcome::Throttled
        );
        assert_eq!(
            inv.invoke(reg.spec(bystander), SimTime::from_secs(1)),
            InvokeOutcome::Cold
        );
        let stats = inv.stats();
        assert_eq!(stats.throttled, 1);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.accounted(), 3);
        let snaps = inv.tenant_snapshots();
        let greedy = snaps.iter().find(|s| s.name == "greedy").unwrap();
        assert_eq!(greedy.throttled, 1);
        assert_eq!(greedy.mem_mb, 256);
        assert_eq!(greedy.mem_limit_mb, 256);
        let victim = snaps.iter().find(|s| s.name == "victim").unwrap();
        assert_eq!(victim.throttled, 0);
        assert_eq!(victim.mem_mb, 64);
    }

    #[test]
    fn tenant_inflight_budget_is_released_after_service() {
        use crate::tenant::{TenantQuota, TenantQuotas};
        let mut reg = FunctionRegistry::new();
        let f = reg
            .register_in(
                "f",
                MemMb::new(64),
                SimDuration::from_millis(5),
                SimDuration::from_millis(50),
                "capped",
            )
            .unwrap();
        let mut quotas = TenantQuotas::unlimited();
        quotas.set("capped", TenantQuota::parse("inflight=1").unwrap());
        let inv = ShardedInvoker::with_kind(
            ShardedConfig::split(MemMb::from_gb(1), 1).with_tenant_quotas(quotas),
            PolicyKind::GreedyDual,
        );
        // Service is synchronous, so sequential invocations each hold the
        // single in-flight slot only while being served — none throttles.
        for i in 0..8u64 {
            assert!(inv.invoke(reg.spec(f), SimTime::from_secs(i)).is_served());
        }
        assert_eq!(inv.stats().throttled, 0);
        let snaps = inv.tenant_snapshots();
        let snap = snaps.iter().find(|s| s.name == "capped").unwrap();
        assert_eq!(snap.index, 1, "interned after the default tenant");
        assert_eq!(snap.in_flight, 0, "slots all released");
        assert_eq!(snap.served, 8);
        assert_eq!(snap.inflight_limit, 1);
    }

    #[test]
    fn routing_is_stable_and_matches_shard_of() {
        let reg = registry(64);
        let inv = ShardedInvoker::with_kind(
            ShardedConfig::split(MemMb::from_gb(4), 8),
            PolicyKind::GreedyDual,
        );
        for spec in reg.iter() {
            inv.invoke(spec, SimTime::ZERO);
        }
        // Each function's containers live exactly on its home shard.
        let per_shard = inv.per_shard();
        let mut expected = vec![0u64; 8];
        for spec in reg.iter() {
            expected[inv.shard_of(spec.id())] += 1;
        }
        for (s, &e) in per_shard.iter().zip(&expected) {
            assert_eq!(s.counters.cold_starts, e, "shard {}", s.shard);
        }
    }

    #[test]
    fn bounded_queue_rejects_under_pressure() {
        // queue_bound = 0: every request is backpressured away.
        let reg = registry(4);
        let inv = ShardedInvoker::with_kind(
            ShardedConfig::split(MemMb::from_gb(1), 2).with_queue_bound(0),
            PolicyKind::GreedyDual,
        );
        let spec = reg.iter().next().unwrap();
        assert_eq!(inv.invoke(spec, SimTime::ZERO), InvokeOutcome::Rejected);
        assert_eq!(inv.stats().rejected, 1);
        assert_eq!(inv.stats().served(), 0);
    }

    #[test]
    fn drain_rejects_new_work_and_quiesces() {
        let reg = registry(4);
        let inv = ShardedInvoker::with_kind(
            ShardedConfig::split(MemMb::from_gb(1), 2),
            PolicyKind::GreedyDual,
        );
        let spec = reg.iter().next().unwrap();
        assert_eq!(inv.invoke(spec, SimTime::ZERO), InvokeOutcome::Cold);
        assert!(inv.drain(Duration::from_secs(1)));
        assert!(inv.is_draining());
        assert_eq!(
            inv.invoke(spec, SimTime::from_secs(1)),
            InvokeOutcome::Rejected
        );
        let stats = inv.stats();
        assert_eq!(stats.cold, 1);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.accounted(), 2);
    }

    #[test]
    fn reap_per_shard_clears_expired_containers() {
        use faascache_core::policy::Ttl;
        let reg = registry(8);
        let config = ShardedConfig::split(MemMb::from_gb(1), 4);
        let policies = (0..4)
            .map(|_| Box::new(Ttl::new(SimDuration::from_mins(1))) as Box<dyn KeepAlivePolicy>)
            .collect();
        let inv = ShardedInvoker::new(config, policies);
        for spec in reg.iter() {
            inv.invoke(spec, SimTime::ZERO);
        }
        assert_eq!(inv.reap(SimTime::from_secs(30)), 0);
        assert_eq!(inv.reap(SimTime::from_mins(5)), 8);
        assert_eq!(inv.used_mem(), MemMb::ZERO);
    }

    #[test]
    fn aborted_handler_releases_its_admission_slot() {
        use faascache_core::container::{Container, ContainerId};

        /// A policy that aborts the invocation mid-handling.
        #[derive(Debug)]
        struct PanickingPolicy;

        impl KeepAlivePolicy for PanickingPolicy {
            fn name(&self) -> &'static str {
                "PANIC"
            }

            fn on_warm_start(&mut self, _c: &Container, _now: SimTime) {}

            fn on_container_created(&mut self, _c: &Container, _now: SimTime, _prewarm: bool) {
                panic!("injected policy abort");
            }

            fn select_victims(&mut self, _idle: &[&Container], _needed: MemMb) -> Vec<ContainerId> {
                Vec::new()
            }

            fn on_evicted(&mut self, _c: &Container, _remaining: usize, _now: SimTime) {}
        }

        let reg = registry(1);
        let config = ShardedConfig::split(MemMb::from_gb(1), 1).with_queue_bound(4);
        let inv = ShardedInvoker::new(config, vec![Box::new(PanickingPolicy)]);
        let spec = reg.iter().next().unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inv.invoke(spec, SimTime::ZERO)
        }));
        assert!(result.is_err(), "the policy abort must propagate");
        // The admission bracket must have been released on unwind:
        // drain-time quiescence cannot wedge on a leaked slot.
        assert_eq!(inv.in_flight(), 0, "aborted handler leaked its slot");
        assert!(inv.await_quiesce(Duration::from_millis(10)));
    }

    #[test]
    fn p2c_is_a_no_op_for_sequential_callers() {
        // A sequential caller observes in_flight == 0 at routing time, so
        // with any watermark ≥ 0 the preferred shard always wins and p2c
        // changes nothing: same outcomes, same placement as affinity.
        let reg = registry(64);
        let affinity = ShardedInvoker::with_kind(
            ShardedConfig::split(MemMb::from_gb(4), 8),
            PolicyKind::GreedyDual,
        );
        let p2c = ShardedInvoker::with_kind(
            ShardedConfig::split(MemMb::from_gb(4), 8).with_p2c(2),
            PolicyKind::GreedyDual,
        );
        for spec in reg.iter() {
            assert_eq!(p2c.route_of(spec.id()), p2c.shard_of(spec.id()));
            assert_eq!(
                affinity.invoke(spec, SimTime::ZERO),
                p2c.invoke(spec, SimTime::ZERO)
            );
        }
        assert_eq!(affinity.stats(), p2c.stats());
    }

    #[test]
    fn load_snapshot_tracks_warm_memory_and_window() {
        let reg = registry(8);
        let inv = ShardedInvoker::with_kind(
            ShardedConfig::split(MemMb::from_gb(1), 2),
            PolicyKind::GreedyDual,
        );
        for spec in reg.iter() {
            inv.invoke(spec, SimTime::ZERO);
        }
        let loads = inv.loads();
        assert_eq!(loads.len(), 2);
        let warm_total: u64 = loads.iter().map(|l| l.warm_mem_mb).sum();
        assert_eq!(warm_total, 8 * 64, "8 idle 64 MB containers");
        let window_total: u64 = loads.iter().map(|l| l.window_served).sum();
        assert_eq!(window_total, 8);
        for l in &loads {
            assert_eq!(l.in_flight, 0);
            assert_eq!(l.queue_depth, 0);
        }
    }

    /// Drives a skewed sequential workload until the rebalancer migrates
    /// the hot function's warm set, then checks the override routes
    /// follow-up invocations to the new shard — warm.
    #[test]
    fn rebalance_migrates_hot_warm_set_and_publishes_override() {
        let reg = registry(16);
        let inv = ShardedInvoker::with_kind(
            ShardedConfig::split(MemMb::from_gb(2), 4).with_rebalance(RebalanceConfig {
                factor: 1.5,
                ticks: 2,
            }),
            PolicyKind::GreedyDual,
        );
        let hot = reg.iter().next().unwrap();
        let home = inv.shard_of(hot.id());
        // Two overload windows: the hot function dominates its shard.
        let mut t = 0u64;
        let mut event = None;
        for _tick in 0..4 {
            for _ in 0..32 {
                assert!(inv.invoke(hot, SimTime::from_millis(t)).is_served());
                t += 100;
            }
            // Background traffic keeps other shards nonzero but cool.
            for spec in reg.iter().skip(1).take(6) {
                inv.invoke(spec, SimTime::from_millis(t));
            }
            t += 100;
            if let Some(e) = inv.rebalance_tick(SimTime::from_millis(t)) {
                event = Some(e);
                break;
            }
        }
        let e = event.expect("sustained skew must trigger a migration");
        assert_eq!(e.function, hot.id());
        assert_eq!(e.from, home);
        assert_ne!(e.to, home);
        assert!(e.moved >= 1);
        assert_eq!(inv.route_override(hot.id()), Some(e.to));
        assert_eq!(inv.route_of(hot.id()), e.to);
        assert_eq!(inv.migrations(), 1);
        // The warm set moved, not died: the next invocation is warm, on
        // the destination shard.
        let before = inv.per_shard()[e.to].counters.warm_starts;
        assert!(matches!(
            inv.invoke(hot, SimTime::from_millis(t + 1000)),
            InvokeOutcome::Warm
        ));
        let after = inv.per_shard()[e.to].counters.warm_starts;
        assert_eq!(after, before + 1, "warm start landed on the new home");
        // Conservation: every request got exactly one outcome.
        let stats = inv.stats();
        assert_eq!(
            stats.accounted(),
            stats.served() + stats.dropped + stats.rejected
        );
    }

    #[test]
    fn rebalance_tick_is_quiet_on_balanced_load() {
        let reg = registry(64);
        let inv = ShardedInvoker::with_kind(
            ShardedConfig::split(MemMb::from_gb(4), 4).with_rebalance(RebalanceConfig::default()),
            PolicyKind::GreedyDual,
        );
        for round in 0..6u64 {
            for spec in reg.iter() {
                inv.invoke(spec, SimTime::from_secs(round));
            }
            assert_eq!(
                inv.rebalance_tick(SimTime::from_secs(round) + SimDuration::from_millis(500)),
                None,
                "balanced fleet must not migrate"
            );
        }
        assert_eq!(inv.migrations(), 0);
    }

    #[test]
    fn rebalance_requires_sustained_overload() {
        let reg = registry(16);
        let inv = ShardedInvoker::with_kind(
            ShardedConfig::split(MemMb::from_gb(2), 4).with_rebalance(RebalanceConfig {
                factor: 1.5,
                ticks: 3,
            }),
            PolicyKind::GreedyDual,
        );
        let hot = reg.iter().next().unwrap();
        // One hot window, then a balanced window: the streak resets.
        for _ in 0..32 {
            inv.invoke(hot, SimTime::from_secs(1));
        }
        assert_eq!(
            inv.rebalance_tick(SimTime::from_secs(2)),
            None,
            "tick 1 of 3"
        );
        for spec in reg.iter() {
            inv.invoke(spec, SimTime::from_secs(3));
        }
        assert_eq!(
            inv.rebalance_tick(SimTime::from_secs(4)),
            None,
            "streak reset"
        );
        assert_eq!(inv.route_override(hot.id()), None);
    }

    #[test]
    fn memory_splits_across_shards() {
        let inv = ShardedInvoker::with_kind(
            ShardedConfig::split(MemMb::from_gb(4), 4),
            PolicyKind::GreedyDual,
        );
        assert_eq!(inv.capacity(), MemMb::from_gb(4));
        assert_eq!(inv.num_shards(), 4);
        assert_eq!(inv.used_mem(), MemMb::ZERO);
    }
}
