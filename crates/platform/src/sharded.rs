//! A sharded, concurrency-safe invoker: N pools behind N locks.
//!
//! The single-mutex [`SharedInvoker`](crate::shared::SharedInvoker) caps
//! throughput at one lock; this module scales the invoker the way the
//! paper's §9 cluster discussion suggests scaling keep-alive servers:
//! partition the memory into `N` independent [`ContainerPool`] shards and
//! route every function to a fixed home shard with the stable affinity
//! hash ([`faascache_util::route`]). Affinity routing preserves the
//! temporal locality keep-alive depends on — all warm containers of a
//! function live on one shard — while invocations of different functions
//! contend on different locks.
//!
//! Each shard also carries a bounded admission gate mirroring the
//! OpenWhisk-style buffer in [`crate::queue`]: at most `queue_bound`
//! requests may be admitted-but-unfinished per shard, and requests beyond
//! the bound are *rejected* with explicit backpressure
//! ([`InvokeOutcome::Rejected`]) rather than queued without limit.
//! Draining ([`ShardedInvoker::begin_drain`]) flips the gate shut
//! everywhere so in-flight requests finish while new arrivals are turned
//! away — the mechanism behind the `faascached` daemon's graceful
//! shutdown.

use faascache_core::function::{FunctionId, FunctionSpec};
use faascache_core::policy::{KeepAlivePolicy, PolicyKind};
use faascache_core::pool::{Acquire, ContainerPool, PoolConfig, PoolCounters};
use faascache_util::{route, MemMb, SimTime};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Outcome of an invocation through a concurrency-safe invoker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvokeOutcome {
    /// Served warm.
    Warm,
    /// Served with a cold start.
    Cold,
    /// Dropped by the pool: no capacity even after evicting idle
    /// containers.
    Dropped,
    /// Rejected at admission: the shard's bounded queue was full, or the
    /// invoker is draining. Explicit backpressure — the caller may retry
    /// elsewhere or shed the request.
    Rejected,
}

impl InvokeOutcome {
    /// Whether the invocation was actually served (warm or cold).
    pub fn is_served(self) -> bool {
        matches!(self, InvokeOutcome::Warm | InvokeOutcome::Cold)
    }
}

/// Configuration of a sharded invoker.
#[derive(Debug, Clone, Copy)]
pub struct ShardedConfig {
    /// Number of pool shards (≥ 1).
    pub shards: usize,
    /// Per-shard pool configuration (its `capacity` is per shard).
    pub per_shard: PoolConfig,
    /// Maximum admitted-but-unfinished requests per shard before
    /// backpressure kicks in. `usize::MAX` disables the bound.
    pub queue_bound: usize,
}

impl ShardedConfig {
    /// A configuration splitting `total_mem` evenly across `shards`
    /// shards with an unbounded admission queue.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn split(total_mem: MemMb, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardedConfig {
            shards,
            per_shard: PoolConfig::new(MemMb::new(total_mem.as_mb() / shards as u64)),
            queue_bound: usize::MAX,
        }
    }

    /// Sets the per-shard admission bound.
    pub fn with_queue_bound(mut self, bound: usize) -> Self {
        self.queue_bound = bound;
        self
    }

    /// Sets the per-shard eviction batch threshold.
    pub fn with_eviction_batch(mut self, batch: MemMb) -> Self {
        self.per_shard = self.per_shard.with_eviction_batch(batch);
        self
    }
}

/// A point-in-time snapshot of one shard.
#[derive(Debug, Clone, Copy)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// The shard pool's lifetime counters.
    pub counters: PoolCounters,
    /// Requests rejected at this shard's admission gate.
    pub rejected: u64,
    /// Requests currently admitted but unfinished.
    pub in_flight: u64,
    /// Memory held by the shard's containers.
    pub used_mem: MemMb,
    /// Idle (warm) containers resident on the shard.
    pub warm_containers: usize,
}

/// Aggregated counters across every shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InvokerStats {
    /// Invocations served warm.
    pub warm: u64,
    /// Invocations served cold.
    pub cold: u64,
    /// Invocations dropped by a pool for lack of memory.
    pub dropped: u64,
    /// Invocations rejected at admission (backpressure or drain).
    pub rejected: u64,
    /// Containers evicted across shards.
    pub evictions: u64,
    /// Containers prewarmed across shards.
    pub prewarms: u64,
}

impl InvokerStats {
    /// Invocations served (warm + cold).
    pub fn served(&self) -> u64 {
        self.warm + self.cold
    }

    /// Every request that received a definite outcome.
    pub fn accounted(&self) -> u64 {
        self.warm + self.cold + self.dropped + self.rejected
    }
}

#[derive(Debug)]
struct Shard {
    pool: Mutex<ContainerPool>,
    /// Monotone virtual clock in microseconds.
    clock_us: AtomicU64,
    /// Admitted-but-unfinished requests (the admission "queue" occupancy:
    /// service is synchronous, so admitted requests are being served).
    in_flight: AtomicU64,
    /// Requests turned away at the admission gate.
    rejected: AtomicU64,
}

impl Shard {
    fn advance(&self, at: SimTime) -> SimTime {
        let proposed = at.as_micros();
        let clock = self
            .clock_us
            .fetch_max(proposed, Ordering::AcqRel)
            .max(proposed);
        SimTime::from_micros(clock)
    }
}

#[derive(Debug)]
struct Inner {
    shards: Vec<Shard>,
    queue_bound: u64,
    draining: AtomicBool,
}

/// Decrements a shard's in-flight counter on drop, however the
/// invocation ends — normal return or unwind.
struct AdmissionSlot<'a>(&'a AtomicU64);

impl Drop for AdmissionSlot<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A multi-shard concurrency-safe invoker.
///
/// Cloning is cheap (shared handle). Invocations carry explicit virtual
/// timestamps; each shard enforces a monotone clock, so racing threads
/// cannot move a shard's time backwards.
///
/// # Examples
///
/// ```
/// use faascache_core::function::FunctionRegistry;
/// use faascache_core::policy::PolicyKind;
/// use faascache_platform::sharded::{InvokeOutcome, ShardedConfig, ShardedInvoker};
/// use faascache_util::{MemMb, SimDuration, SimTime};
///
/// let mut reg = FunctionRegistry::new();
/// let f = reg.register("f", MemMb::new(64), SimDuration::from_millis(5),
///                      SimDuration::from_millis(50))?;
/// let inv = ShardedInvoker::with_kind(
///     ShardedConfig::split(MemMb::from_gb(1), 4),
///     PolicyKind::GreedyDual,
/// );
/// assert_eq!(inv.invoke(reg.spec(f), SimTime::ZERO), InvokeOutcome::Cold);
/// assert_eq!(inv.invoke(reg.spec(f), SimTime::from_secs(1)), InvokeOutcome::Warm);
/// # Ok::<(), faascache_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ShardedInvoker {
    inner: Arc<Inner>,
}

impl ShardedInvoker {
    /// Creates an invoker from a configuration and one policy per shard.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards == 0` or `policies.len() != config.shards`.
    pub fn new(config: ShardedConfig, policies: Vec<Box<dyn KeepAlivePolicy>>) -> Self {
        assert!(config.shards > 0, "need at least one shard");
        assert_eq!(
            policies.len(),
            config.shards,
            "one policy instance per shard"
        );
        let shards = policies
            .into_iter()
            .map(|policy| Shard {
                pool: Mutex::new(ContainerPool::with_config(config.per_shard, policy)),
                clock_us: AtomicU64::new(0),
                in_flight: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
            })
            .collect();
        ShardedInvoker {
            inner: Arc::new(Inner {
                shards,
                queue_bound: config.queue_bound as u64,
                draining: AtomicBool::new(false),
            }),
        }
    }

    /// Creates an invoker with a fresh policy of `kind` on every shard.
    pub fn with_kind(config: ShardedConfig, kind: PolicyKind) -> Self {
        let policies = (0..config.shards).map(|_| kind.build()).collect();
        Self::new(config, policies)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// The home shard of a function (stable affinity routing).
    pub fn shard_of(&self, function: FunctionId) -> usize {
        route::shard_for(function.index() as u64, self.inner.shards.len())
    }

    /// Invokes `spec` at virtual time `at` on its home shard and
    /// synchronously completes the invocation.
    ///
    /// Admission is bounded: when the home shard already has `queue_bound`
    /// requests in flight — or the invoker is draining — the request is
    /// rejected without touching the pool.
    pub fn invoke(&self, spec: &FunctionSpec, at: SimTime) -> InvokeOutcome {
        let shard = &self.inner.shards[self.shard_of(spec.id())];
        if self.inner.draining.load(Ordering::Acquire) || !self.try_admit(shard) {
            shard.rejected.fetch_add(1, Ordering::Relaxed);
            return InvokeOutcome::Rejected;
        }
        // RAII bracket: the admission slot is released even if the
        // handler aborts (a policy panic unwinding through `serve`), so
        // `await_quiesce` can never wedge on a leaked in-flight count.
        let _slot = AdmissionSlot(&shard.in_flight);
        Self::serve(shard, spec, at)
    }

    fn try_admit(&self, shard: &Shard) -> bool {
        let bound = self.inner.queue_bound;
        let mut cur = shard.in_flight.load(Ordering::Acquire);
        loop {
            if cur >= bound {
                return false;
            }
            match shard.in_flight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(observed) => cur = observed,
            }
        }
    }

    fn serve(shard: &Shard, spec: &FunctionSpec, at: SimTime) -> InvokeOutcome {
        let now = shard.advance(at);
        let mut pool = shard.pool.lock();
        match pool.acquire(spec, now) {
            Acquire::Warm { container } => {
                let finish = now + spec.warm_time();
                pool.release(container, finish);
                drop(pool);
                shard.advance(finish);
                InvokeOutcome::Warm
            }
            Acquire::Cold { container, .. } => {
                let finish = now + spec.cold_time();
                pool.release(container, finish);
                drop(pool);
                shard.advance(finish);
                InvokeOutcome::Cold
            }
            Acquire::NoCapacity => InvokeOutcome::Dropped,
        }
    }

    /// Applies TTL-style expiry on one shard at virtual time `at`;
    /// returns the number of containers reaped.
    ///
    /// The daemon runs one wall-clock reaper thread per shard, each
    /// calling this for its own shard so reaping never serializes the
    /// whole invoker.
    pub fn reap_shard(&self, shard: usize, at: SimTime) -> usize {
        let s = &self.inner.shards[shard];
        let now = s.advance(at);
        s.pool.lock().reap(now).len()
    }

    /// Applies TTL-style expiry on every shard; returns the total reaped.
    pub fn reap(&self, at: SimTime) -> usize {
        (0..self.num_shards()).map(|i| self.reap_shard(i, at)).sum()
    }

    /// Starts draining: every subsequent invocation is rejected while
    /// requests already admitted run to completion.
    pub fn begin_drain(&self) {
        self.inner.draining.store(true, Ordering::Release);
    }

    /// Whether the invoker is draining.
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::Acquire)
    }

    /// Blocks until no shard has an in-flight request, or `timeout`
    /// elapses. Returns `true` when fully quiesced.
    ///
    /// Usually preceded by [`Self::begin_drain`]; without it new arrivals
    /// can keep the invoker busy indefinitely.
    pub fn await_quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.in_flight() == 0 {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Begins draining and waits for in-flight requests to finish.
    /// Returns `true` when fully quiesced within `timeout`.
    pub fn drain(&self, timeout: Duration) -> bool {
        self.begin_drain();
        self.await_quiesce(timeout)
    }

    /// Total admitted-but-unfinished requests across shards.
    pub fn in_flight(&self) -> u64 {
        self.inner
            .shards
            .iter()
            .map(|s| s.in_flight.load(Ordering::Acquire))
            .sum()
    }

    /// Aggregated lifetime pool counters across shards.
    pub fn pool_counters(&self) -> PoolCounters {
        let mut total = PoolCounters::default();
        for s in &self.inner.shards {
            let c = s.pool.lock().counters();
            total.warm_starts += c.warm_starts;
            total.cold_starts += c.cold_starts;
            total.drops += c.drops;
            total.evictions += c.evictions;
            total.prewarms += c.prewarms;
        }
        total
    }

    /// Aggregated invoker statistics (pool counters + admission
    /// rejections).
    pub fn stats(&self) -> InvokerStats {
        let c = self.pool_counters();
        InvokerStats {
            warm: c.warm_starts,
            cold: c.cold_starts,
            dropped: c.drops,
            rejected: self
                .inner
                .shards
                .iter()
                .map(|s| s.rejected.load(Ordering::Acquire))
                .sum(),
            evictions: c.evictions,
            prewarms: c.prewarms,
        }
    }

    /// Per-shard snapshots, in shard order.
    pub fn per_shard(&self) -> Vec<ShardStats> {
        self.inner
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let pool = s.pool.lock();
                ShardStats {
                    shard: i,
                    counters: pool.counters(),
                    rejected: s.rejected.load(Ordering::Acquire),
                    in_flight: s.in_flight.load(Ordering::Acquire),
                    used_mem: pool.used_mem(),
                    warm_containers: pool.warm_count(),
                }
            })
            .collect()
    }

    /// Memory held by containers across every shard.
    pub fn used_mem(&self) -> MemMb {
        self.inner
            .shards
            .iter()
            .map(|s| s.pool.lock().used_mem())
            .sum()
    }

    /// Total memory capacity across every shard.
    pub fn capacity(&self) -> MemMb {
        self.inner
            .shards
            .iter()
            .map(|s| s.pool.lock().capacity())
            .sum()
    }

    /// The most advanced shard clock — a monotone upper bound on every
    /// shard's virtual time.
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(
            self.inner
                .shards
                .iter()
                .map(|s| s.clock_us.load(Ordering::Acquire))
                .max()
                .unwrap_or(0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faascache_core::function::FunctionRegistry;
    use faascache_util::SimDuration;

    fn registry(n: usize) -> FunctionRegistry {
        let mut reg = FunctionRegistry::new();
        for i in 0..n {
            reg.register(
                format!("f{i}"),
                MemMb::new(64),
                SimDuration::from_millis(5),
                SimDuration::from_millis(50),
            )
            .unwrap();
        }
        reg
    }

    #[test]
    fn warm_after_cold_per_function() {
        let reg = registry(16);
        let inv = ShardedInvoker::with_kind(
            ShardedConfig::split(MemMb::from_gb(2), 4),
            PolicyKind::GreedyDual,
        );
        for spec in reg.iter() {
            assert_eq!(inv.invoke(spec, SimTime::ZERO), InvokeOutcome::Cold);
        }
        for spec in reg.iter() {
            assert_eq!(inv.invoke(spec, SimTime::from_secs(1)), InvokeOutcome::Warm);
        }
        let stats = inv.stats();
        assert_eq!(stats.warm, 16);
        assert_eq!(stats.cold, 16);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn routing_is_stable_and_matches_shard_of() {
        let reg = registry(64);
        let inv = ShardedInvoker::with_kind(
            ShardedConfig::split(MemMb::from_gb(4), 8),
            PolicyKind::GreedyDual,
        );
        for spec in reg.iter() {
            inv.invoke(spec, SimTime::ZERO);
        }
        // Each function's containers live exactly on its home shard.
        let per_shard = inv.per_shard();
        let mut expected = vec![0u64; 8];
        for spec in reg.iter() {
            expected[inv.shard_of(spec.id())] += 1;
        }
        for (s, &e) in per_shard.iter().zip(&expected) {
            assert_eq!(s.counters.cold_starts, e, "shard {}", s.shard);
        }
    }

    #[test]
    fn bounded_queue_rejects_under_pressure() {
        // queue_bound = 0: every request is backpressured away.
        let reg = registry(4);
        let inv = ShardedInvoker::with_kind(
            ShardedConfig::split(MemMb::from_gb(1), 2).with_queue_bound(0),
            PolicyKind::GreedyDual,
        );
        let spec = reg.iter().next().unwrap();
        assert_eq!(inv.invoke(spec, SimTime::ZERO), InvokeOutcome::Rejected);
        assert_eq!(inv.stats().rejected, 1);
        assert_eq!(inv.stats().served(), 0);
    }

    #[test]
    fn drain_rejects_new_work_and_quiesces() {
        let reg = registry(4);
        let inv = ShardedInvoker::with_kind(
            ShardedConfig::split(MemMb::from_gb(1), 2),
            PolicyKind::GreedyDual,
        );
        let spec = reg.iter().next().unwrap();
        assert_eq!(inv.invoke(spec, SimTime::ZERO), InvokeOutcome::Cold);
        assert!(inv.drain(Duration::from_secs(1)));
        assert!(inv.is_draining());
        assert_eq!(
            inv.invoke(spec, SimTime::from_secs(1)),
            InvokeOutcome::Rejected
        );
        let stats = inv.stats();
        assert_eq!(stats.cold, 1);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.accounted(), 2);
    }

    #[test]
    fn reap_per_shard_clears_expired_containers() {
        use faascache_core::policy::Ttl;
        let reg = registry(8);
        let config = ShardedConfig::split(MemMb::from_gb(1), 4);
        let policies = (0..4)
            .map(|_| Box::new(Ttl::new(SimDuration::from_mins(1))) as Box<dyn KeepAlivePolicy>)
            .collect();
        let inv = ShardedInvoker::new(config, policies);
        for spec in reg.iter() {
            inv.invoke(spec, SimTime::ZERO);
        }
        assert_eq!(inv.reap(SimTime::from_secs(30)), 0);
        assert_eq!(inv.reap(SimTime::from_mins(5)), 8);
        assert_eq!(inv.used_mem(), MemMb::ZERO);
    }

    #[test]
    fn aborted_handler_releases_its_admission_slot() {
        use faascache_core::container::{Container, ContainerId};

        /// A policy that aborts the invocation mid-handling.
        #[derive(Debug)]
        struct PanickingPolicy;

        impl KeepAlivePolicy for PanickingPolicy {
            fn name(&self) -> &'static str {
                "PANIC"
            }

            fn on_warm_start(&mut self, _c: &Container, _now: SimTime) {}

            fn on_container_created(&mut self, _c: &Container, _now: SimTime, _prewarm: bool) {
                panic!("injected policy abort");
            }

            fn select_victims(&mut self, _idle: &[&Container], _needed: MemMb) -> Vec<ContainerId> {
                Vec::new()
            }

            fn on_evicted(&mut self, _c: &Container, _remaining: usize, _now: SimTime) {}
        }

        let reg = registry(1);
        let config = ShardedConfig::split(MemMb::from_gb(1), 1).with_queue_bound(4);
        let inv = ShardedInvoker::new(config, vec![Box::new(PanickingPolicy)]);
        let spec = reg.iter().next().unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inv.invoke(spec, SimTime::ZERO)
        }));
        assert!(result.is_err(), "the policy abort must propagate");
        // The admission bracket must have been released on unwind:
        // drain-time quiescence cannot wedge on a leaked slot.
        assert_eq!(inv.in_flight(), 0, "aborted handler leaked its slot");
        assert!(inv.await_quiesce(Duration::from_millis(10)));
    }

    #[test]
    fn memory_splits_across_shards() {
        let inv = ShardedInvoker::with_kind(
            ShardedConfig::split(MemMb::from_gb(4), 4),
            PolicyKind::GreedyDual,
        );
        assert_eq!(inv.capacity(), MemMb::from_gb(4));
        assert_eq!(inv.num_shards(), 4);
        assert_eq!(inv.used_mem(), MemMb::ZERO);
    }
}
