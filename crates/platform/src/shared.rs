//! A thread-safe invoker façade.
//!
//! The real FaasCache ContainerPool lives inside OpenWhisk's concurrent
//! invoker; this module provides the equivalent for Rust embedders: a
//! [`SharedInvoker`] driving the pool behind a single lock with a
//! monotonically advancing virtual clock, safe to drive from any number of
//! load-generator threads (the artifact's LookBusy load tests do exactly
//! this against the modified OpenWhisk).
//!
//! Since the serving layer grew shards, `SharedInvoker` is a thin façade
//! over a one-shard [`ShardedInvoker`] with an unbounded admission queue —
//! the exact legacy semantics (`Warm`/`Cold`/`Dropped`, never `Rejected`)
//! on the shared hot path. New code that wants scalability or
//! backpressure should use [`crate::sharded`] directly.

use crate::sharded::{ShardedConfig, ShardedInvoker};
use faascache_core::function::FunctionSpec;
use faascache_core::policy::KeepAlivePolicy;
use faascache_core::pool::{PoolConfig, PoolCounters};
use faascache_util::{MemMb, SimTime};

pub use crate::sharded::InvokeOutcome;

/// A concurrency-safe invoker around a single
/// [`ContainerPool`](faascache_core::pool::ContainerPool).
///
/// Invocations carry explicit virtual timestamps; the invoker enforces a
/// monotone clock so out-of-order calls from racing threads cannot move
/// time backwards.
///
/// # Examples
///
/// ```
/// use faascache_core::function::FunctionRegistry;
/// use faascache_core::policy::GreedyDual;
/// use faascache_platform::shared::{InvokeOutcome, SharedInvoker};
/// use faascache_util::{MemMb, SimDuration, SimTime};
///
/// let mut reg = FunctionRegistry::new();
/// let f = reg.register("f", MemMb::new(64), SimDuration::from_millis(5),
///                      SimDuration::from_millis(50))?;
/// let invoker = SharedInvoker::new(MemMb::new(256), Box::new(GreedyDual::new()));
/// let outcome = invoker.invoke(reg.spec(f), SimTime::ZERO);
/// assert_eq!(outcome, InvokeOutcome::Cold);
/// # Ok::<(), faascache_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SharedInvoker {
    inner: ShardedInvoker,
}

impl SharedInvoker {
    /// Creates an invoker with the given capacity and policy.
    pub fn new(capacity: MemMb, policy: Box<dyn KeepAlivePolicy>) -> Self {
        Self::with_config(PoolConfig::new(capacity), policy)
    }

    /// Creates an invoker from a full pool configuration.
    pub fn with_config(config: PoolConfig, policy: Box<dyn KeepAlivePolicy>) -> Self {
        let sharded = ShardedConfig {
            per_shard: config,
            ..ShardedConfig::split(config.capacity, 1)
        };
        SharedInvoker {
            inner: ShardedInvoker::new(sharded, vec![policy]),
        }
    }

    /// Invokes `spec` at virtual time `at` and synchronously completes the
    /// invocation (warm or cold duration later in virtual time).
    pub fn invoke(&self, spec: &FunctionSpec, at: SimTime) -> InvokeOutcome {
        self.inner.invoke(spec, at)
    }

    /// Applies TTL-style expiry at virtual time `at`.
    ///
    /// Delegates to the pool's indexed reap: O(k log n) for k expired
    /// containers, so callers may poll this on a tight interval.
    pub fn reap(&self, at: SimTime) -> usize {
        self.inner.reap(at)
    }

    /// Current pool counters.
    pub fn counters(&self) -> PoolCounters {
        self.inner.pool_counters()
    }

    /// Current pool memory use.
    pub fn used_mem(&self) -> MemMb {
        self.inner.used_mem()
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.now()
    }

    /// The sharded invoker backing this façade (always one shard).
    pub fn as_sharded(&self) -> &ShardedInvoker {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faascache_core::function::FunctionRegistry;
    use faascache_core::policy::{GreedyDual, Ttl};
    use faascache_core::pool::PoolConfig;
    use faascache_util::SimDuration;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn registry() -> FunctionRegistry {
        let mut reg = FunctionRegistry::new();
        for i in 0..8 {
            reg.register(
                format!("f{i}"),
                MemMb::new(64),
                SimDuration::from_millis(5),
                SimDuration::from_millis(50),
            )
            .unwrap();
        }
        reg
    }

    #[test]
    fn warm_after_cold() {
        let reg = registry();
        let spec = reg.find("f0").unwrap();
        let inv = SharedInvoker::new(MemMb::new(256), Box::new(GreedyDual::new()));
        assert_eq!(inv.invoke(spec, SimTime::ZERO), InvokeOutcome::Cold);
        assert_eq!(inv.invoke(spec, SimTime::from_secs(1)), InvokeOutcome::Warm);
        assert_eq!(inv.counters().warm_starts, 1);
    }

    #[test]
    fn clock_is_monotone() {
        let reg = registry();
        let spec = reg.find("f0").unwrap();
        let inv = SharedInvoker::new(MemMb::new(256), Box::new(GreedyDual::new()));
        inv.invoke(spec, SimTime::from_secs(100));
        // An "earlier" invocation cannot rewind the clock.
        inv.invoke(spec, SimTime::from_secs(1));
        assert!(inv.now() >= SimTime::from_secs(100));
    }

    #[test]
    fn concurrent_invocations_from_many_threads() {
        let reg = Arc::new(registry());
        let inv = SharedInvoker::new(MemMb::new(512), Box::new(GreedyDual::new()));
        let total = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let inv = inv.clone();
                let reg = Arc::clone(&reg);
                let total = Arc::clone(&total);
                scope.spawn(move || {
                    for i in 0..200u64 {
                        let spec = reg.find(&format!("f{}", (t + i) % 8)).unwrap();
                        let at = SimTime::from_millis(i * 10);
                        match inv.invoke(spec, at) {
                            InvokeOutcome::Dropped | InvokeOutcome::Rejected => {}
                            _ => {
                                total.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });
        let counters = inv.counters();
        assert_eq!(
            counters.warm_starts + counters.cold_starts,
            total.load(Ordering::Relaxed)
        );
        // Pool memory accounting survives the contention.
        assert!(inv.used_mem() <= MemMb::new(512));
    }

    #[test]
    fn reap_through_facade() {
        let reg = registry();
        let spec = reg.find("f0").unwrap();
        let inv = SharedInvoker::with_config(
            PoolConfig::new(MemMb::new(256)),
            Box::new(Ttl::new(SimDuration::from_mins(1))),
        );
        inv.invoke(spec, SimTime::ZERO);
        assert_eq!(inv.reap(SimTime::from_secs(30)), 0);
        assert_eq!(inv.reap(SimTime::from_mins(2)), 1);
        assert_eq!(inv.used_mem(), MemMb::ZERO);
    }

    #[test]
    fn unbounded_legacy_queue_never_rejects() {
        let reg = registry();
        let spec = reg.find("f0").unwrap();
        let inv = SharedInvoker::new(MemMb::new(256), Box::new(GreedyDual::new()));
        for i in 0..100 {
            let out = inv.invoke(spec, SimTime::from_millis(i));
            assert_ne!(out, InvokeOutcome::Rejected);
        }
    }
}
