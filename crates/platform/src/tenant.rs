//! Per-tenant quota accounting and admission budgets.
//!
//! FaasCache's keep-alive pool is one shared cache, so a single hot tenant
//! can monopolize warm memory and in-flight capacity. This module adds the
//! isolation layer: a lock-free [`TenantTable`] tracks, per tenant,
//! in-flight requests (equal to admission-queue occupancy — service is
//! synchronous), resident container memory, served and throttled totals —
//! and enforces two budgets at admission, *before* the per-shard gates:
//!
//! - **In-flight budget** — at most `inflight` concurrently admitted
//!   requests per tenant; excess arrivals are throttled.
//! - **Memory budget** — while a tenant's resident container memory is at
//!   or above `mem_mb`, new arrivals (which could only grow it) are
//!   throttled, and the tenant's eviction weight is raised (see
//!   [`TenantWeights`]) so the greedy-dual policy prefers its containers
//!   as victims until it is back under budget.
//!
//! A throttled request gets [`InvokeOutcome::Throttled`] — distinct from
//! pool-pressure `Dropped` and backpressure `Rejected`, because the right
//! client reaction differs: back off *this tenant's* traffic, not the
//! server.
//!
//! Memory accounting is exact, not mirrored: the table implements
//! [`TenantLedger`] and is installed on every shard pool, which reports
//! each of its resident-memory changes (insert, adopt, extract, evict)
//! with the container's tenant tag.
//!
//! [`InvokeOutcome::Throttled`]: crate::sharded::InvokeOutcome::Throttled

use faascache_core::policy::TenantWeights;
use faascache_core::pool::TenantLedger;
use faascache_util::MemMb;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Capacity of the accounting table. Tenants are dense registry indices;
/// indices at or beyond the capacity share the final (overflow) slot —
/// their accounting stays conserved, merely merged.
pub const MAX_TENANTS: usize = 64;

/// Eviction weight applied to a tenant while it is over its memory
/// budget: its containers' greedy-dual value term is divided by this, so
/// they sort decisively earlier in eviction order without zeroing the
/// clock component that keeps the order stable.
pub const OVER_BUDGET_WEIGHT: f64 = 8.0;

/// Budget limits for one tenant. `u64::MAX` means unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Maximum concurrently admitted requests.
    pub inflight: u64,
    /// Resident container memory (MB) at or above which new arrivals are
    /// throttled and the tenant's eviction weight is raised.
    pub mem_mb: u64,
}

impl TenantQuota {
    /// No limits.
    pub const UNLIMITED: TenantQuota = TenantQuota {
        inflight: u64::MAX,
        mem_mb: u64::MAX,
    };

    /// Whether either budget is actually bounded.
    pub fn is_limited(&self) -> bool {
        self.inflight != u64::MAX || self.mem_mb != u64::MAX
    }

    /// Parses a budget spec of the form `inflight=K,mem=MB` (both keys
    /// optional, omitted keys stay unlimited).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending key or value.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut quota = TenantQuota::UNLIMITED;
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("quota knob `{part}` is not key=value"))?;
            let parsed: u64 = value
                .parse()
                .map_err(|_| format!("quota knob `{key}` has non-numeric value `{value}`"))?;
            match key {
                "inflight" => quota.inflight = parsed,
                "mem" => quota.mem_mb = parsed,
                other => return Err(format!("unknown quota knob `{other}`")),
            }
        }
        Ok(quota)
    }
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota::UNLIMITED
    }
}

/// Quota configuration: a default budget plus per-tenant overrides by
/// name.
#[derive(Debug, Clone, Default)]
pub struct TenantQuotas {
    /// Budget for tenants without a named override.
    pub default: TenantQuota,
    /// Named overrides, looked up by exact tenant name.
    pub named: Vec<(String, TenantQuota)>,
}

impl TenantQuotas {
    /// A configuration with no limits anywhere.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a named override.
    pub fn set(&mut self, name: impl Into<String>, quota: TenantQuota) {
        let name = name.into();
        match self.named.iter_mut().find(|(n, _)| *n == name) {
            Some((_, q)) => *q = quota,
            None => self.named.push((name, quota)),
        }
    }

    /// The budget for `name`: its override, or the default quota for any
    /// unknown tenant.
    pub fn quota_for(&self, name: &str) -> TenantQuota {
        self.named
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, q)| q)
            .unwrap_or(self.default)
    }

    /// Whether any budget (default or named) is actually bounded.
    pub fn any_limited(&self) -> bool {
        self.default.is_limited() || self.named.iter().any(|(_, q)| q.is_limited())
    }
}

/// One tenant's accounting slot. Limits are bound lazily on the tenant's
/// first admission (the name arrives with the function spec); until then
/// the slot is unlimited, which is indistinguishable from the tenant not
/// existing.
#[derive(Debug)]
struct TenantSlot {
    /// Tenant name, set exactly once when the slot binds.
    name: OnceLock<String>,
    inflight_limit: AtomicU64,
    mem_limit: AtomicU64,
    /// Admitted-but-unfinished requests (= admission-queue occupancy).
    in_flight: AtomicU64,
    /// Resident container memory in MB, maintained exactly via
    /// [`TenantLedger`].
    mem_mb: AtomicU64,
    /// Requests served (warm or cold).
    served: AtomicU64,
    /// Requests throttled by either budget.
    throttled: AtomicU64,
}

impl TenantSlot {
    fn new() -> Self {
        TenantSlot {
            name: OnceLock::new(),
            inflight_limit: AtomicU64::new(u64::MAX),
            mem_limit: AtomicU64::new(u64::MAX),
            in_flight: AtomicU64::new(0),
            mem_mb: AtomicU64::new(0),
            served: AtomicU64::new(0),
            throttled: AtomicU64::new(0),
        }
    }
}

/// A point-in-time snapshot of one tenant's accounting slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// Raw tenant index (registry interning order; 0 = default tenant).
    pub index: u32,
    /// Tenant name.
    pub name: String,
    /// Admitted-but-unfinished requests.
    pub in_flight: u64,
    /// Resident container memory in MB.
    pub mem_mb: u64,
    /// Requests served (warm or cold).
    pub served: u64,
    /// Requests throttled by either budget.
    pub throttled: u64,
    /// Concurrency budget (`u64::MAX` = unlimited).
    pub inflight_limit: u64,
    /// Memory budget in MB (`u64::MAX` = unlimited).
    pub mem_limit_mb: u64,
}

/// Releases a tenant's in-flight slot on drop, however the invocation
/// ends — normal return or unwind (mirrors the shard `AdmissionSlot`).
#[derive(Debug)]
pub struct TenantAdmission<'a>(&'a AtomicU64);

impl Drop for TenantAdmission<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The lock-free per-tenant accounting and budget-enforcement table.
///
/// Indexed by the registry's dense tenant index; every counter is an
/// atomic, so the admission gate and the ledger hooks never take a lock.
#[derive(Debug)]
pub struct TenantTable {
    /// Quota configuration. Behind a mutex only because quotas are now
    /// updatable at runtime; the admission hot path touches it solely on
    /// a slot's *first* bind, never per-request.
    quotas: Mutex<TenantQuotas>,
    slots: Vec<TenantSlot>,
    weights: Arc<TenantWeights>,
}

impl TenantTable {
    /// Builds a table enforcing `quotas`, with [`MAX_TENANTS`] slots.
    pub fn new(quotas: TenantQuotas) -> Self {
        TenantTable {
            quotas: Mutex::new(quotas),
            slots: (0..MAX_TENANTS).map(|_| TenantSlot::new()).collect(),
            weights: Arc::new(TenantWeights::new(MAX_TENANTS)),
        }
    }

    /// The shared eviction-weight table, for installation on shard
    /// policies.
    pub fn weights(&self) -> Arc<TenantWeights> {
        Arc::clone(&self.weights)
    }

    fn slot_index(&self, tenant: u32) -> usize {
        (tenant as usize).min(self.slots.len() - 1)
    }

    fn slot(&self, tenant: u32) -> &TenantSlot {
        &self.slots[self.slot_index(tenant)]
    }

    /// Binds the slot's limits on first sight of the tenant. Racing binds
    /// are benign: the registry guarantees one name per index, so every
    /// racer computes identical limits.
    fn bind(&self, slot: &TenantSlot, name: &str) {
        if slot.name.get().is_some() {
            return;
        }
        if slot.name.set(name.to_string()).is_ok() {
            let quota = self
                .quotas
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .quota_for(name);
            slot.inflight_limit.store(quota.inflight, Ordering::Release);
            slot.mem_limit.store(quota.mem_mb, Ordering::Release);
        }
    }

    /// Updates `name`'s budget at runtime. The new quota is stored in the
    /// configuration (so a tenant not yet seen binds to it later) and, if
    /// the tenant already has a bound slot, applied to the live limits
    /// immediately — including re-deriving the eviction weight against
    /// the new memory budget, so a tenant pushed over (or pulled under)
    /// its budget by the update changes eviction order right away.
    ///
    /// Returns `true` when a live bound slot was updated, `false` when
    /// the quota was only stored for a future bind.
    pub fn set_quota(&self, name: &str, quota: TenantQuota) -> bool {
        self.quotas
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .set(name, quota);
        let Some((index, slot)) = self
            .slots
            .iter()
            .enumerate()
            .find(|(_, s)| s.name.get().is_some_and(|n| n == name))
        else {
            return false;
        };
        slot.inflight_limit.store(quota.inflight, Ordering::Release);
        slot.mem_limit.store(quota.mem_mb, Ordering::Release);
        let over = slot.mem_mb.load(Ordering::Acquire) >= quota.mem_mb;
        let w = if over { OVER_BUDGET_WEIGHT } else { 1.0 };
        self.weights.set(index as u32, w);
        true
    }

    /// The tenant-budget admission gate, consulted before the per-shard
    /// gates. On success the returned guard holds the tenant's in-flight
    /// slot until dropped; on failure the request must be answered
    /// `Throttled` (the table has already counted it).
    ///
    /// A tenant is throttled when its resident container memory is at or
    /// above its memory budget, or its in-flight count is at its
    /// concurrency budget. Both checks are budget decisions about *this
    /// tenant*, independent of pool pressure.
    ///
    /// Returns `None` when the tenant is over either budget.
    pub fn try_admit(&self, tenant: u32, name: &str) -> Option<TenantAdmission<'_>> {
        let slot = self.slot(tenant);
        self.bind(slot, name);
        if slot.mem_mb.load(Ordering::Acquire) >= slot.mem_limit.load(Ordering::Acquire) {
            slot.throttled.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let bound = slot.inflight_limit.load(Ordering::Acquire);
        let mut cur = slot.in_flight.load(Ordering::Acquire);
        loop {
            if cur >= bound {
                slot.throttled.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            match slot.in_flight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(TenantAdmission(&slot.in_flight)),
                Err(observed) => cur = observed,
            }
        }
    }

    /// A point-in-time clone of the quota configuration (boot-time flags
    /// plus every runtime update), for durability snapshots.
    pub fn quotas_snapshot(&self) -> TenantQuotas {
        self.quotas
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Records a served (warm or cold) request for `tenant`.
    pub fn record_served(&self, tenant: u32) {
        self.slot(tenant).served.fetch_add(1, Ordering::Relaxed);
    }

    /// Total requests throttled across every tenant.
    pub fn total_throttled(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.throttled.load(Ordering::Acquire))
            .sum()
    }

    /// Snapshots of every *bound* slot (tenants that have been seen at
    /// least once), in index order.
    pub fn snapshots(&self) -> Vec<TenantSnapshot> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                let name = s.name.get()?.clone();
                Some(TenantSnapshot {
                    index: i as u32,
                    name,
                    in_flight: s.in_flight.load(Ordering::Acquire),
                    mem_mb: s.mem_mb.load(Ordering::Acquire),
                    served: s.served.load(Ordering::Acquire),
                    throttled: s.throttled.load(Ordering::Acquire),
                    inflight_limit: s.inflight_limit.load(Ordering::Acquire),
                    mem_limit_mb: s.mem_limit.load(Ordering::Acquire),
                })
            })
            .collect()
    }

    /// Re-derives the tenant's eviction weight after a memory change
    /// crossed its budget boundary in either direction.
    fn reweigh(&self, index: usize, before: u64, after: u64) {
        let limit = self.slots[index].mem_limit.load(Ordering::Acquire);
        let over_before = before >= limit;
        let over_after = after >= limit;
        if over_before != over_after {
            let w = if over_after { OVER_BUDGET_WEIGHT } else { 1.0 };
            self.weights.set(index as u32, w);
        }
    }
}

impl TenantLedger for TenantTable {
    fn container_added(&self, tenant: u32, mem: MemMb) {
        let index = self.slot_index(tenant);
        let before = self.slots[index]
            .mem_mb
            .fetch_add(mem.as_mb(), Ordering::AcqRel);
        self.reweigh(index, before, before + mem.as_mb());
    }

    fn container_removed(&self, tenant: u32, mem: MemMb) {
        let index = self.slot_index(tenant);
        let before = self.slots[index]
            .mem_mb
            .fetch_sub(mem.as_mb(), Ordering::AcqRel);
        debug_assert!(before >= mem.as_mb(), "tenant memory underflow");
        self.reweigh(index, before, before.saturating_sub(mem.as_mb()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_spec_parses_and_rejects() {
        assert_eq!(TenantQuota::parse("").unwrap(), TenantQuota::UNLIMITED);
        let q = TenantQuota::parse("inflight=4,mem=512").unwrap();
        assert_eq!(q.inflight, 4);
        assert_eq!(q.mem_mb, 512);
        let q = TenantQuota::parse("mem=100").unwrap();
        assert_eq!(q.inflight, u64::MAX);
        assert_eq!(q.mem_mb, 100);
        assert!(TenantQuota::parse("mem").is_err());
        assert!(TenantQuota::parse("mem=abc").is_err());
        assert!(TenantQuota::parse("cpus=2").is_err());
    }

    #[test]
    fn quotas_fall_back_to_default_for_unknown_names() {
        let mut quotas = TenantQuotas::unlimited();
        quotas.default = TenantQuota::parse("inflight=8").unwrap();
        quotas.set("acme", TenantQuota::parse("mem=256").unwrap());
        assert_eq!(quotas.quota_for("acme").mem_mb, 256);
        assert_eq!(quotas.quota_for("acme").inflight, u64::MAX);
        assert_eq!(quotas.quota_for("never-seen").inflight, 8);
        assert!(quotas.any_limited());
        assert!(!TenantQuotas::unlimited().any_limited());
    }

    #[test]
    fn inflight_budget_throttles_and_releases() {
        let mut quotas = TenantQuotas::unlimited();
        quotas.set("t", TenantQuota::parse("inflight=2").unwrap());
        let table = TenantTable::new(quotas);
        let a = table.try_admit(1, "t").unwrap();
        let _b = table.try_admit(1, "t").unwrap();
        assert!(table.try_admit(1, "t").is_none(), "third concurrent admit");
        assert_eq!(table.total_throttled(), 1);
        drop(a);
        assert!(table.try_admit(1, "t").is_some(), "slot released on drop");
        // The default tenant is unaffected.
        assert!(table.try_admit(0, "default").is_some());
    }

    #[test]
    fn memory_budget_throttles_and_reweighs() {
        let mut quotas = TenantQuotas::unlimited();
        quotas.set("t", TenantQuota::parse("mem=100").unwrap());
        let table = TenantTable::new(quotas);
        // Bind the slot first so the limit is live.
        drop(table.try_admit(1, "t").unwrap());
        let weights = table.weights();
        assert_eq!(weights.get(1), 1.0);
        table.container_added(1, MemMb::new(64));
        assert!(table.try_admit(1, "t").is_some(), "under budget");
        table.container_added(1, MemMb::new(64));
        assert!(table.try_admit(1, "t").is_none(), "128 >= 100");
        assert_eq!(weights.get(1), OVER_BUDGET_WEIGHT, "weight raised");
        table.container_removed(1, MemMb::new(64));
        assert!(table.try_admit(1, "t").is_some(), "back under budget");
        assert_eq!(weights.get(1), 1.0, "weight restored");
    }

    #[test]
    fn runtime_quota_update_applies_to_bound_slot() {
        let table = TenantTable::new(TenantQuotas::unlimited());
        // Bind the slot under unlimited quotas.
        drop(table.try_admit(1, "t").unwrap());
        table.container_added(1, MemMb::new(64));
        assert!(table.try_admit(1, "t").is_some(), "unlimited admits");
        // Tighten at runtime: the live limits and the eviction weight
        // must both flip without any new admission traffic.
        assert!(table.set_quota("t", TenantQuota::parse("mem=50").unwrap()));
        assert!(table.try_admit(1, "t").is_none(), "64 >= 50 now throttles");
        assert_eq!(table.weights().get(1), OVER_BUDGET_WEIGHT);
        // Loosen again: weight restored, admissions resume.
        assert!(table.set_quota("t", TenantQuota::parse("mem=100").unwrap()));
        assert!(table.try_admit(1, "t").is_some());
        assert_eq!(table.weights().get(1), 1.0);
        // In-flight budget updates take effect on the next admit.
        assert!(table.set_quota("t", TenantQuota::parse("inflight=1").unwrap()));
        let held = table.try_admit(1, "t").unwrap();
        assert!(table.try_admit(1, "t").is_none(), "second concurrent admit");
        drop(held);
    }

    #[test]
    fn runtime_quota_update_before_bind_applies_on_first_sight() {
        let table = TenantTable::new(TenantQuotas::unlimited());
        // Not bound yet: stored for the future bind.
        assert!(!table.set_quota("late", TenantQuota::parse("inflight=1").unwrap()));
        let held = table.try_admit(3, "late").unwrap();
        assert!(
            table.try_admit(3, "late").is_none(),
            "bound to stored quota"
        );
        drop(held);
    }

    #[test]
    fn snapshots_cover_bound_slots_only() {
        let table = TenantTable::new(TenantQuotas::unlimited());
        assert!(table.snapshots().is_empty());
        drop(table.try_admit(0, "default").unwrap());
        table.record_served(0);
        let snaps = table.snapshots();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].name, "default");
        assert_eq!(snaps[0].served, 1);
        assert_eq!(snaps[0].in_flight, 0);
    }

    #[test]
    fn overflow_indices_share_the_last_slot() {
        let table = TenantTable::new(TenantQuotas::unlimited());
        table.container_added(MAX_TENANTS as u32 + 7, MemMb::new(10));
        table.container_added(MAX_TENANTS as u32 + 9, MemMb::new(10));
        drop(table.try_admit(MAX_TENANTS as u32 + 7, "overflow").unwrap());
        let snaps = table.snapshots();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].index, MAX_TENANTS as u32 - 1);
        assert_eq!(snaps[0].mem_mb, 20);
    }
}
