//! Model-based test harness for the sharded invoker's load-aware routing.
//!
//! A single-threaded *reference model* — plain `Vec`s and integer
//! arithmetic, no locks, no indexes — executes the same seeded op
//! sequence (invoke / reap / rebalance / drain) as the real
//! [`ShardedInvoker`] and the two are compared after **every** operation:
//! per-op outcomes, per-shard warm-container counts and memory, lifetime
//! counters, published route overrides, and the global conservation
//! invariant. Because the model tracks every warm container explicitly,
//! state equality after each step proves no container is ever lost or
//! double-counted across re-home events — the property that makes
//! warm-set migration safe.
//!
//! The TTL policy is used throughout: its behaviour (expiry at
//! `now - last_used >= ttl`, LRU eviction under pressure) is exactly
//! modelable, so any divergence is a real bug, not model slack.
//!
//! Case count defaults to 512 and is elevatable via the
//! `FAASCACHE_MODEL_CASES` environment variable (the CI model job runs
//! more).

use faascache_core::function::{FunctionId, FunctionRegistry};
use faascache_core::policy::{KeepAlivePolicy, Ttl};
use faascache_platform::sharded::{
    InvokeOutcome, RebalanceConfig, RebalanceEvent, ShardedConfig, ShardedInvoker,
};
use faascache_platform::tenant::{TenantQuota, TenantQuotas};
use faascache_util::{route, MemMb, SimDuration, SimTime};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BTreeMap;

const WARM_US: u64 = 5_000;
const COLD_US: u64 = 50_000;

/// Function memory footprint: two size classes exercise partial-fit
/// adoption (a migrated set that only partly fits the destination).
fn mem_of(f: usize) -> u64 {
    if f.is_multiple_of(2) {
        64
    } else {
        128
    }
}

/// One scripted operation against both systems.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Invoke function `f` after advancing time by `gap` µs.
    Invoke { f: usize, gap: u64 },
    /// TTL-reap every shard after advancing time by `gap` µs.
    Reap { gap: u64 },
    /// One rebalancer tick after advancing time by `gap` µs.
    Rebalance { gap: u64 },
    /// Flip the drain gate: every later invoke must be rejected.
    Drain,
}

/// Scenario parameters drawn per case.
#[derive(Debug, Clone)]
struct Scenario {
    shards: usize,
    functions: usize,
    per_shard_mb: u64,
    ttl_ms: u64,
    factor: f64,
    ticks: u32,
    /// Functions are spread over this many tenants (`f % n_tenants`).
    n_tenants: usize,
    /// Two bits of quota class per tenant, see [`quota_for_class`].
    quota_bits: u16,
    ops: Vec<Op>,
}

/// Decodes a 2-bit quota class: unlimited, two memory-budget tiers that
/// real workloads will actually hit at these shard sizes, and the
/// degenerate zero-in-flight budget (admits nothing, throttles all).
fn quota_for_class(class: u16) -> TenantQuota {
    match class & 3 {
        0 => TenantQuota::UNLIMITED,
        1 => TenantQuota {
            inflight: u64::MAX,
            mem_mb: 128,
        },
        2 => TenantQuota {
            inflight: u64::MAX,
            mem_mb: 256,
        },
        _ => TenantQuota {
            inflight: 0,
            mem_mb: u64::MAX,
        },
    }
}

fn scenario_quotas(s: &Scenario) -> TenantQuotas {
    let mut quotas = TenantQuotas::unlimited();
    for t in 0..s.n_tenants {
        quotas.set(format!("t{t}"), quota_for_class(s.quota_bits >> (2 * t)));
    }
    quotas
}

// ---------------------------------------------------------------------------
// The reference model
// ---------------------------------------------------------------------------

/// A warm container: identity, owner, and the `last_used` stamp that
/// drives both the warm pick (max) and eviction/expiry order (min).
#[derive(Debug, Clone, Copy)]
struct ModelContainer {
    id: u64,
    f: usize,
    last_used: u64,
}

#[derive(Debug, Default)]
struct ModelShard {
    cap_mb: u64,
    clock: u64,
    next_id: u64,
    /// Every resident container. Single-threaded service releases each
    /// container before the next op, so all residents are idle (warm).
    idle: Vec<ModelContainer>,
    warm: u64,
    cold: u64,
    drops: u64,
    evictions: u64,
    rejected: u64,
    window: u64,
    recent: BTreeMap<usize, u64>,
}

impl ModelShard {
    fn used_mb(&self) -> u64 {
        self.idle.iter().map(|c| mem_of(c.f)).sum()
    }

    fn free_mb(&self) -> u64 {
        self.cap_mb - self.used_mb()
    }
}

/// Per-tenant reference state: the budget and the lifetime counters the
/// real lock-free [`TenantTable`](faascache_platform::tenant::TenantTable)
/// must agree with after every op.
#[derive(Debug, Clone, Copy)]
struct ModelTenant {
    inflight_limit: u64,
    mem_limit: u64,
    served: u64,
    throttled: u64,
}

/// The single-threaded reference model of the whole sharded invoker.
struct Model {
    shards: Vec<ModelShard>,
    tenants: Vec<ModelTenant>,
    ttl_us: u64,
    factor: f64,
    ticks: u32,
    overrides: BTreeMap<usize, usize>,
    streaks: Vec<u32>,
    migrations: u64,
    draining: bool,
}

impl Model {
    fn new(s: &Scenario) -> Self {
        Model {
            shards: (0..s.shards)
                .map(|_| ModelShard {
                    cap_mb: s.per_shard_mb,
                    ..ModelShard::default()
                })
                .collect(),
            tenants: (0..s.n_tenants)
                .map(|t| {
                    let q = quota_for_class(s.quota_bits >> (2 * t));
                    ModelTenant {
                        inflight_limit: q.inflight,
                        mem_limit: q.mem_mb,
                        served: 0,
                        throttled: 0,
                    }
                })
                .collect(),
            ttl_us: s.ttl_ms * 1_000,
            factor: s.factor,
            ticks: s.ticks,
            overrides: BTreeMap::new(),
            streaks: vec![0; s.shards],
            migrations: 0,
            draining: false,
        }
    }

    fn home(&self, f: usize) -> usize {
        route::shard_for(f as u64, self.shards.len())
    }

    fn tenant_of(&self, f: usize) -> usize {
        f % self.tenants.len()
    }

    /// A tenant's resident warm memory, summed across every shard — the
    /// quantity the real ledger maintains incrementally through cold
    /// starts, evictions, reaps, and migrations, recomputed here from
    /// first principles each time.
    fn tenant_mem(&self, t: usize) -> u64 {
        self.shards
            .iter()
            .flat_map(|s| &s.idle)
            .filter(|c| self.tenant_of(c.f) == t)
            .map(|c| mem_of(c.f))
            .sum()
    }

    /// The shard a sequential invocation of `f` lands on: override or
    /// home. Power-of-two-choices is deliberately absent — a sequential
    /// caller always observes zero in-flight, so p2c must be a no-op; the
    /// real invoker runs with p2c *enabled* and equality proves it.
    fn route(&self, f: usize) -> usize {
        self.overrides
            .get(&f)
            .copied()
            .unwrap_or_else(|| self.home(f))
    }

    fn invoke(&mut self, f: usize, at: u64) -> InvokeOutcome {
        let s = self.route(f);
        if self.draining {
            self.shards[s].rejected += 1;
            return InvokeOutcome::Rejected;
        }
        // Tenant budget gate, mirroring `TenantTable::try_admit` exactly:
        // the memory check runs first (resident warm memory at or over
        // budget throttles), then the in-flight reservation — which, for
        // this sequential driver (in-flight always 0 between ops), can
        // only fail on the degenerate zero budget. A throttle touches no
        // shard state: no clock advance, no window, no recent entry.
        let t = self.tenant_of(f);
        if self.tenant_mem(t) >= self.tenants[t].mem_limit || self.tenants[t].inflight_limit == 0 {
            self.tenants[t].throttled += 1;
            return InvokeOutcome::Throttled;
        }
        let shard = &mut self.shards[s];
        shard.clock = shard.clock.max(at);
        let now = shard.clock;
        // Warm pick: most recently used idle container of f, ties toward
        // the highest id (the pool's `(last_used, id)` BTreeSet max).
        let pick = shard
            .idle
            .iter()
            .enumerate()
            .filter(|(_, c)| c.f == f)
            .max_by_key(|(_, c)| (c.last_used, c.id))
            .map(|(i, _)| i);
        let outcome = if let Some(i) = pick {
            shard.idle[i].last_used = now;
            shard.warm += 1;
            shard.clock = shard.clock.max(now + WARM_US);
            InvokeOutcome::Warm
        } else {
            let mem = mem_of(f);
            if mem > shard.cap_mb {
                shard.drops += 1;
                return InvokeOutcome::Dropped;
            }
            // LRU eviction until the new container fits: ascending
            // `(last_used, id)` — the TTL policy's victim order.
            while shard.free_mb() < mem && !shard.idle.is_empty() {
                let victim = shard
                    .idle
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, c)| (c.last_used, c.id))
                    .map(|(i, _)| i)
                    .expect("non-empty");
                shard.idle.remove(victim);
                shard.evictions += 1;
            }
            if shard.free_mb() < mem {
                shard.drops += 1;
                return InvokeOutcome::Dropped;
            }
            let id = shard.next_id;
            shard.next_id += 1;
            shard.idle.push(ModelContainer {
                id,
                f,
                last_used: now,
            });
            shard.cold += 1;
            shard.clock = shard.clock.max(now + COLD_US);
            InvokeOutcome::Cold
        };
        shard.window += 1;
        *shard.recent.entry(f).or_insert(0) += 1;
        self.tenants[t].served += 1;
        outcome
    }

    fn reap(&mut self, at: u64) -> usize {
        let ttl = self.ttl_us;
        let mut total = 0;
        for shard in &mut self.shards {
            shard.clock = shard.clock.max(at);
            let now = shard.clock;
            let before = shard.idle.len();
            shard.idle.retain(|c| now - c.last_used < ttl);
            let reaped = before - shard.idle.len();
            shard.evictions += reaped as u64;
            total += reaped;
        }
        total
    }

    /// Mirrors `ShardedInvoker::rebalance_tick` step for step, including
    /// every deterministic tie-break.
    fn rebalance(&mut self, at: u64) -> Option<(usize, usize, usize, usize, usize)> {
        let n = self.shards.len();
        let served: Vec<u64> = self
            .shards
            .iter_mut()
            .map(|s| std::mem::take(&mut s.window))
            .collect();
        let recent: Vec<BTreeMap<usize, u64>> = self
            .shards
            .iter_mut()
            .map(|s| std::mem::take(&mut s.recent))
            .collect();
        let total: u64 = served.iter().sum();
        if total == 0 {
            self.streaks.iter_mut().for_each(|s| *s = 0);
            return None;
        }
        let mean = total as f64 / n as f64;
        for (i, &count) in served.iter().enumerate() {
            if count as f64 > self.factor * mean {
                self.streaks[i] += 1;
            } else {
                self.streaks[i] = 0;
            }
        }
        let hot = (0..n)
            .filter(|&i| self.streaks[i] >= self.ticks)
            .max_by_key(|&i| (served[i], Reverse(i)))?;
        let cold = (0..n)
            .filter(|&i| i != hot)
            .min_by_key(|&i| (served[i], self.shards[i].used_mb(), i))
            .expect("n >= 2");
        let mut by_fn: Vec<(usize, u64)> = recent[hot].iter().map(|(&f, &c)| (f, c)).collect();
        by_fn.sort_by_key(|&(f, c)| (Reverse(c), f));
        let pinned_here: Vec<usize> = by_fn
            .iter()
            .map(|&(f, _)| f)
            .filter(|&f| self.route(f) == hot)
            .collect();
        let now1 = {
            let s = &mut self.shards[hot];
            s.clock = s.clock.max(at);
            s.clock
        };
        {
            let s = &mut self.shards[cold];
            s.clock = s.clock.max(now1);
        }
        let Some(f) = pinned_here
            .into_iter()
            .find(|&f| self.shards[hot].idle.iter().any(|c| c.f == f))
        else {
            self.streaks[hot] = 0;
            return None;
        };
        // Extract in ascending (last_used, id) — the idle-index order the
        // real pool hands them out in — and adopt one by one.
        let mut extracted: Vec<ModelContainer> = Vec::new();
        self.shards[hot].idle.retain(|c| {
            if c.f == f {
                extracted.push(*c);
                false
            } else {
                true
            }
        });
        extracted.sort_by_key(|c| (c.last_used, c.id));
        let mem = mem_of(f);
        let (mut moved, mut left_behind) = (0usize, 0usize);
        for c in extracted {
            if self.shards[cold].free_mb() >= mem {
                let id = self.shards[cold].next_id;
                self.shards[cold].next_id += 1;
                self.shards[cold].idle.push(ModelContainer {
                    id,
                    f,
                    last_used: c.last_used,
                });
                moved += 1;
            } else {
                let id = self.shards[hot].next_id;
                self.shards[hot].next_id += 1;
                self.shards[hot].idle.push(ModelContainer {
                    id,
                    f,
                    last_used: c.last_used,
                });
                left_behind += 1;
            }
        }
        if moved == 0 {
            self.streaks[hot] = 0;
            return None;
        }
        if cold == self.home(f) {
            self.overrides.remove(&f);
        } else {
            self.overrides.insert(f, cold);
        }
        self.migrations += 1;
        self.streaks[hot] = 0;
        Some((f, hot, cold, moved, left_behind))
    }
}

// ---------------------------------------------------------------------------
// The harness: drive both, compare after every op
// ---------------------------------------------------------------------------

struct Harness {
    real: ShardedInvoker,
    model: Model,
    reg: FunctionRegistry,
    fns: Vec<FunctionId>,
    issued: u64,
    now: u64,
}

impl Harness {
    fn new(s: &Scenario) -> Self {
        let mut reg = FunctionRegistry::new();
        let fns: Vec<FunctionId> = (0..s.functions)
            .map(|f| {
                reg.register_in(
                    format!("f{f}"),
                    MemMb::new(mem_of(f)),
                    SimDuration::from_micros(WARM_US),
                    SimDuration::from_micros(COLD_US),
                    &format!("t{}", f % s.n_tenants),
                )
                .expect("registration")
            })
            .collect();
        let ttl = SimDuration::from_millis(s.ttl_ms);
        let policies = (0..s.shards)
            .map(|_| Box::new(Ttl::new(ttl)) as Box<dyn KeepAlivePolicy>)
            .collect();
        // p2c is ON with watermark 0 — the most aggressive setting — yet
        // the p2c-blind model must still match exactly: a sequential
        // caller always routes to its pinned shard.
        let config = ShardedConfig::split(MemMb::new(s.per_shard_mb * s.shards as u64), s.shards)
            .with_p2c(0)
            .with_rebalance(RebalanceConfig {
                factor: s.factor,
                ticks: s.ticks,
            })
            .with_tenant_quotas(scenario_quotas(s));
        Harness {
            real: ShardedInvoker::new(config, policies),
            model: Model::new(s),
            reg,
            fns,
            issued: 0,
            now: 0,
        }
    }

    fn step(&mut self, op: Op) {
        match op {
            Op::Invoke { f, gap } => {
                self.now += gap;
                let f = f % self.fns.len();
                let spec = self.reg.spec(self.fns[f]);
                let got = self.real.invoke(spec, SimTime::from_micros(self.now));
                let want = self.model.invoke(f, self.now);
                self.issued += 1;
                assert_eq!(got, want, "invoke(f{f}) diverged at t={}", self.now);
            }
            Op::Reap { gap } => {
                self.now += gap;
                let got = self.real.reap(SimTime::from_micros(self.now));
                let want = self.model.reap(self.now);
                assert_eq!(got, want, "reap count diverged at t={}", self.now);
            }
            Op::Rebalance { gap } => {
                self.now += gap;
                let got = self.real.rebalance_tick(SimTime::from_micros(self.now));
                let want = self.model.rebalance(self.now);
                let got_tuple = got.map(
                    |RebalanceEvent {
                         function,
                         from,
                         to,
                         moved,
                         left_behind,
                     }| { (function.index(), from, to, moved, left_behind) },
                );
                assert_eq!(got_tuple, want, "rebalance diverged at t={}", self.now);
            }
            Op::Drain => {
                self.real.begin_drain();
                self.model.draining = true;
                assert!(self.real.is_draining());
            }
        }
        self.check_state();
    }

    /// Full-state equivalence: per-shard containers (count + memory),
    /// lifetime counters, overrides, and conservation. Holding after
    /// every op means no warm container is ever lost or double-counted.
    fn check_state(&self) {
        let per_shard = self.real.per_shard();
        assert_eq!(per_shard.len(), self.model.shards.len());
        for (real, model) in per_shard.iter().zip(&self.model.shards) {
            let i = real.shard;
            assert_eq!(
                real.warm_containers,
                model.idle.len(),
                "shard {i} warm-container count diverged"
            );
            // The exact warm set — which functions' containers live here,
            // with which usage history. Identity-level equality, not just
            // counts: a lost, duplicated, or history-mangled container
            // shows up immediately.
            let want: Vec<(FunctionId, SimTime)> = {
                let mut v: Vec<(FunctionId, SimTime)> = model
                    .idle
                    .iter()
                    .map(|c| (self.fns[c.f], SimTime::from_micros(c.last_used)))
                    .collect();
                v.sort_unstable();
                v
            };
            assert_eq!(self.real.warm_set(i), want, "shard {i} warm set diverged");
            assert_eq!(
                real.used_mem,
                MemMb::new(model.used_mb()),
                "shard {i} memory diverged"
            );
            assert_eq!(real.counters.warm_starts, model.warm, "shard {i} warm");
            assert_eq!(real.counters.cold_starts, model.cold, "shard {i} cold");
            assert_eq!(real.counters.drops, model.drops, "shard {i} drops");
            assert_eq!(
                real.counters.evictions, model.evictions,
                "shard {i} evictions"
            );
            assert_eq!(real.rejected, model.rejected, "shard {i} rejected");
            assert_eq!(real.in_flight, 0, "sequential driver left work in flight");
        }
        // Published route overrides match exactly — a stale or missing
        // override would orphan a migrated warm set.
        for (f, &id) in self.fns.iter().enumerate() {
            assert_eq!(
                self.real.route_override(id),
                self.model.overrides.get(&f).copied(),
                "override for f{f} diverged"
            );
        }
        assert_eq!(self.real.migrations(), self.model.migrations);
        // Tenant ledger equality: the real lock-free table's per-tenant
        // resident memory, in-flight reservation, and lifetime counters
        // against the model's from-first-principles recomputation.
        // Holding after every op — through cold starts, evictions, reaps,
        // re-homes, and throttles — proves no tenant counter is ever
        // lost, double-counted, or leaked.
        let snaps = self.real.tenant_snapshots();
        for snap in &snaps {
            let t: usize = snap
                .name
                .strip_prefix('t')
                .and_then(|n| n.parse().ok())
                .unwrap_or_else(|| panic!("unexpected tenant slot {:?}", snap.name));
            let model = &self.model.tenants[t];
            assert_eq!(
                snap.mem_mb,
                self.model.tenant_mem(t),
                "tenant t{t} resident memory diverged"
            );
            assert_eq!(snap.in_flight, 0, "tenant t{t} leaked an in-flight slot");
            assert_eq!(snap.served, model.served, "tenant t{t} served diverged");
            assert_eq!(
                snap.throttled, model.throttled,
                "tenant t{t} throttled diverged"
            );
        }
        // Every tenant with any activity must have a bound slot: a
        // missing snapshot means its counters went somewhere else's.
        for (t, model) in self.model.tenants.iter().enumerate() {
            if model.served + model.throttled > 0 {
                assert!(
                    snaps.iter().any(|s| s.name == format!("t{t}")),
                    "active tenant t{t} has no bound slot"
                );
            }
        }
        // Conservation: every issued request got exactly one outcome.
        let stats = self.real.stats();
        assert_eq!(
            stats.warm + stats.cold + stats.dropped + stats.rejected + stats.throttled,
            self.issued,
            "conservation violated"
        );
        assert_eq!(
            stats.throttled,
            self.model.tenants.iter().map(|t| t.throttled).sum::<u64>(),
            "aggregate throttled count diverged"
        );
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// Raw op tuples `(kind, f, gap_ms)` are decoded into [`Op`]s: invokes
/// dominate, function choice is skewed toward f0 (so one function runs
/// hot and the rebalancer has something to do), and drain appears rarely.
fn decode_op(kind: u8, x: u64, gap_ms: u16) -> Op {
    let gap = (gap_ms as u64 % 2_000) * 1_000;
    match kind % 16 {
        0..=5 => Op::Invoke { f: 0, gap }, // hot function
        6..=11 => Op::Invoke {
            f: (x % 1024) as usize,
            gap,
        },
        12 => Op::Reap { gap },
        13 | 14 => Op::Rebalance { gap },
        _ => Op::Drain,
    }
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        (2usize..=4, 4usize..=12, 0usize..=2),
        (200u64..=2_000, 1.05f64..1.8, 1u32..=3),
        (1usize..=3, any::<u16>()),
        prop::collection::vec((any::<u8>(), any::<u64>(), any::<u16>()), 20..=120),
    )
        .prop_map(
            |(
                (shards, functions, cap_class),
                (ttl_ms, factor, ticks),
                (n_tenants, quota_bits),
                raw,
            )| Scenario {
                shards,
                functions,
                per_shard_mb: [192, 256, 384][cap_class],
                ttl_ms,
                factor,
                ticks,
                n_tenants,
                quota_bits,
                ops: raw
                    .into_iter()
                    .map(|(k, x, g)| decode_op(k, x, g))
                    .collect(),
            },
        )
}

fn model_cases() -> u32 {
    std::env::var("FAASCACHE_MODEL_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(512)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(model_cases()))]

    /// The flagship property: the real sharded invoker — p2c enabled at
    /// the most aggressive watermark, rebalancing enabled — is
    /// indistinguishable from the single-threaded reference model on any
    /// seeded op sequence, after every single operation.
    #[test]
    fn sharded_invoker_matches_reference_model(scenario in scenario_strategy()) {
        let mut h = Harness::new(&scenario);
        for &op in &scenario.ops {
            h.step(op);
        }
    }
}

// ---------------------------------------------------------------------------
// Directed model scripts: force the interesting paths every run
// ---------------------------------------------------------------------------

/// Sustained skew must drive the full migration cycle — override
/// published, warm set served at the new home, and the model agrees at
/// every step. Random sequences hit this too, but only probabilistically;
/// this script guarantees the migration path is exercised on every run.
#[test]
fn model_agrees_across_a_forced_migration_cycle() {
    let scenario = Scenario {
        shards: 4,
        functions: 8,
        per_shard_mb: 384,
        ttl_ms: 60_000,
        factor: 1.3,
        ticks: 2,
        n_tenants: 2,
        quota_bits: 0, // both tenants unlimited: quotas must not perturb migration
        ops: Vec::new(),
    };
    let mut h = Harness::new(&scenario);
    let mut ops: Vec<Op> = Vec::new();
    // Six windows of one hot function plus background traffic, a
    // rebalance tick after each.
    for _ in 0..6 {
        for _ in 0..24 {
            ops.push(Op::Invoke { f: 0, gap: 500 });
        }
        for f in 1..8 {
            ops.push(Op::Invoke { f, gap: 200 });
        }
        ops.push(Op::Rebalance { gap: 1_000 });
    }
    // Post-migration traffic follows the override; then expiry, a quiet
    // tick, and drain.
    for _ in 0..8 {
        ops.push(Op::Invoke { f: 0, gap: 700 });
    }
    ops.push(Op::Reap { gap: 120_000_000 });
    ops.push(Op::Rebalance { gap: 1_000 });
    ops.push(Op::Drain);
    ops.push(Op::Invoke { f: 0, gap: 100 });
    for op in ops {
        h.step(op);
    }
    assert!(
        h.real.migrations() >= 1,
        "the script must force at least one migration"
    );
    assert_eq!(h.real.migrations(), h.model.migrations);
}

/// Quota-cycle script: a tenant with a tight memory budget fills it with
/// cold starts and gets throttled; then a TTL reap releases the memory
/// and the gate must reopen — proving the real ledger goes down as well
/// as up, with the model in lockstep and the bystander tenant untouched.
#[test]
fn model_agrees_across_a_throttle_and_release_cycle() {
    let scenario = Scenario {
        shards: 2,
        functions: 8,
        per_shard_mb: 384,
        ttl_ms: 10_000,
        factor: 1.3,
        ticks: 2,
        n_tenants: 2,
        quota_bits: 0b00_01, // t0 capped at mem=128, t1 unlimited
        ops: Vec::new(),
    };
    let mut h = Harness::new(&scenario);
    let mut ops: Vec<Op> = Vec::new();
    // t0 owns the even (64 MB) functions: two cold starts reach the
    // 128 MB budget, so the next two even invokes must throttle.
    for f in [0, 2, 4, 6] {
        ops.push(Op::Invoke { f, gap: 500 });
    }
    // The odd functions belong to the unlimited tenant t1 and sail through.
    for f in [1, 3, 5] {
        ops.push(Op::Invoke { f, gap: 200 });
    }
    // Expire everything; t0's budget reopens and its invokes serve again.
    ops.push(Op::Reap { gap: 60_000_000 });
    for f in [0, 2] {
        ops.push(Op::Invoke { f, gap: 300 });
    }
    for op in ops {
        h.step(op);
    }
    let stats = h.real.stats();
    assert_eq!(stats.throttled, 2, "f4 and f6 must have throttled");
    assert_eq!(
        h.model.tenants[1].throttled, 0,
        "bystander tenant throttled"
    );
    // The post-reap invokes were admitted: cold twice more than the
    // pre-reap pair, nothing stuck behind a stale ledger.
    assert_eq!(stats.cold, 2 + 3 + 2);
}

/// Memory-pressure script: shards too small for the offered warm sets, so
/// migration runs into partial-fit adoption (left_behind > 0 paths) and
/// eviction churn — with the model in lockstep throughout.
#[test]
fn model_agrees_under_memory_pressure_migration() {
    let scenario = Scenario {
        shards: 2,
        functions: 6,
        per_shard_mb: 192,
        ttl_ms: 30_000,
        factor: 1.1,
        ticks: 1,
        n_tenants: 3,
        quota_bits: 0b10_00_00, // t2 capped at mem=256 while migration churns
        ops: Vec::new(),
    };
    let mut h = Harness::new(&scenario);
    let mut ops: Vec<Op> = Vec::new();
    for round in 0..10 {
        // Alternate hot function between rounds so overrides flip and
        // the destination shard is already crowded when adoption runs.
        let hot = if round % 2 == 0 { 1 } else { 3 };
        for _ in 0..16 {
            ops.push(Op::Invoke { f: hot, gap: 300 });
        }
        for f in 0..6 {
            ops.push(Op::Invoke { f, gap: 100 });
        }
        ops.push(Op::Rebalance { gap: 500 });
        if round % 3 == 2 {
            ops.push(Op::Reap { gap: 5_000 });
        }
    }
    for op in ops {
        h.step(op);
    }
}
