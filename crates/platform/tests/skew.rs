//! Skew regression tests: Zipf-distributed traffic through the sharded
//! invoker with and without load-aware routing.
//!
//! Three properties are pinned:
//!
//! 1. Power-of-two-choices spill is *deterministic* given shard load —
//!    exercised with a gate policy that holds an invocation (and its
//!    admission slot) open so the home shard's in-flight count is under
//!    test control, no thread-timing luck required.
//! 2. Under a concurrent Zipf(s = 1.2) hammer, p2c never worsens — and
//!    with real concurrency improves — the max/min per-shard served-load
//!    ratio vs affinity-only routing of the *same* request sequences,
//!    and the ratio stays under a fixed bound.
//! 3. On a seeded single-threaded Zipf(s = 1.2) replay, enabling warm-set
//!    re-homing never increases total cold starts vs affinity-only on
//!    the same seed (the warm set is moved, not destroyed) while
//!    strictly improving the served balance ratio.

use faascache_core::container::{Container, ContainerId};
use faascache_core::function::{FunctionRegistry, FunctionSpec};
use faascache_core::policy::{KeepAlivePolicy, PolicyKind, Ttl};
use faascache_platform::sharded::{RebalanceConfig, ShardedConfig, ShardedInvoker};
use faascache_util::stats::balance_ratio;
use faascache_util::{route, MemMb, SimDuration, SimTime};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHARDS: usize = 8;
const FUNCTIONS: usize = 64;
const ZIPF_S: f64 = 1.2;

fn registry(n: usize, mem: u64) -> FunctionRegistry {
    let mut reg = FunctionRegistry::new();
    for i in 0..n {
        reg.register(
            format!("f{i}"),
            MemMb::new(mem),
            SimDuration::from_micros(200),
            SimDuration::from_millis(2),
        )
        .expect("registration");
    }
    reg
}

/// Seeded Zipf(s) sampler over ranks `0..n` (rank 0 hottest): inverse-CDF
/// over the normalized `1/(k+1)^s` weights, driven by the same SplitMix64
/// stream the router's hash uses, so sequences are identical across runs
/// and across the invoker configurations under comparison.
struct ZipfSampler {
    cdf: Vec<f64>,
    state: u64,
}

impl ZipfSampler {
    fn new(n: usize, s: f64, seed: u64) -> Self {
        let weights: Vec<f64> = (0..n).map(|k| 1.0 / ((k + 1) as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        ZipfSampler { cdf, state: seed }
    }

    fn next(&mut self) -> usize {
        self.state = self.state.wrapping_add(1);
        let u = route::stable_hash(self.state) as f64 / u64::MAX as f64;
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Served (warm + cold) count per shard.
fn served_per_shard(inv: &ShardedInvoker) -> Vec<u64> {
    inv.per_shard()
        .iter()
        .map(|s| s.counters.warm_starts + s.counters.cold_starts)
        .collect()
}

// ---------------------------------------------------------------------------
// 1. Deterministic p2c spill
// ---------------------------------------------------------------------------

/// A TTL policy with a gate: while the gate is closed, every request
/// parks inside the pool — holding its admission slot — so the test can
/// pin a shard's in-flight count at an exact value.
#[derive(Debug)]
struct GatedTtl {
    inner: Ttl,
    gate_open: Arc<AtomicBool>,
}

impl KeepAlivePolicy for GatedTtl {
    fn name(&self) -> &'static str {
        "GATED-TTL"
    }

    fn on_request(&mut self, spec: &FunctionSpec, now: SimTime) {
        while !self.gate_open.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_micros(100));
        }
        self.inner.on_request(spec, now);
    }

    fn on_warm_start(&mut self, c: &Container, now: SimTime) {
        self.inner.on_warm_start(c, now);
    }

    fn on_container_created(&mut self, c: &Container, now: SimTime, prewarm: bool) {
        self.inner.on_container_created(c, now, prewarm);
    }

    fn on_finish(&mut self, c: &Container, now: SimTime) {
        self.inner.on_finish(c, now);
    }

    fn select_victims(&mut self, idle: &[&Container], needed: MemMb) -> Vec<ContainerId> {
        self.inner.select_victims(idle, needed)
    }

    fn on_evicted(&mut self, c: &Container, remaining: usize, now: SimTime) {
        self.inner.on_evicted(c, remaining, now);
    }

    fn expired(&mut self, idle: &[&Container], now: SimTime) -> Vec<ContainerId> {
        self.inner.expired(idle, now)
    }
}

/// Holding the home shard busy must deterministically spill the hot
/// function to its seeded alternate — and releasing the gate must return
/// it home.
#[test]
fn p2c_spills_to_the_alternate_exactly_when_home_is_loaded() {
    let reg = registry(8, 64);
    let hot = reg.iter().next().unwrap();
    let ttl = SimDuration::from_mins(10);
    let home = route::shard_for(hot.id().index() as u64, SHARDS);
    let alt = route::alt_shard_for(hot.id().index() as u64, SHARDS);
    let gate_open = Arc::new(AtomicBool::new(false));
    let policies: Vec<Box<dyn KeepAlivePolicy>> = (0..SHARDS)
        .map(|i| {
            if i == home {
                Box::new(GatedTtl {
                    inner: Ttl::new(ttl),
                    gate_open: Arc::clone(&gate_open),
                }) as Box<dyn KeepAlivePolicy>
            } else {
                Box::new(Ttl::new(ttl))
            }
        })
        .collect();
    let config = ShardedConfig::split(MemMb::from_gb(4), SHARDS).with_p2c(0);
    let inv = ShardedInvoker::new(config, policies);

    // Unloaded: the hot function routes home.
    assert_eq!(inv.route_of(hot.id()), home);

    // Park one invocation inside the home shard (gate closed): its
    // admission slot stays held, so home in-flight == 1 > watermark 0.
    let parked = {
        let inv = inv.clone();
        let spec = hot.clone();
        std::thread::spawn(move || inv.invoke(&spec, SimTime::ZERO))
    };
    while inv.load(home).in_flight == 0 {
        std::thread::sleep(Duration::from_micros(100));
    }

    // Deterministic spill: home is loaded, the alternate is idle. (No
    // pool-lock-taking calls here — the parked thread holds the home
    // pool's lock while it spins on the gate.)
    assert_eq!(inv.route_of(hot.id()), alt, "loaded home must spill to alt");
    assert!(inv.invoke(hot, SimTime::from_millis(1)).is_served());

    // Release the gate; once home quiesces the route snaps back.
    gate_open.store(true, Ordering::Release);
    assert!(parked.join().expect("parked invocation").is_served());
    assert!(inv.await_quiesce(Duration::from_secs(5)));
    assert_eq!(inv.route_of(hot.id()), home, "unloaded home wins again");
    let per_shard = served_per_shard(&inv);
    assert_eq!(
        per_shard[alt], 1,
        "the spilled request must have been served on the alternate"
    );
    assert_eq!(per_shard[home], 1, "the parked request finished at home");
    let stats = inv.stats();
    assert_eq!(stats.served(), 2);
    assert_eq!(stats.rejected + stats.dropped, 0);
}

// ---------------------------------------------------------------------------
// 2. Concurrent Zipf hammer: p2c never worsens the balance ratio
// ---------------------------------------------------------------------------

/// A TTL policy that burns real time per request inside the pool, where
/// the admission slot is held. Without it, a release build serves each
/// request so fast that no two ever overlap — in-flight stays at zero,
/// p2c provably never spills, and the hammer would measure nothing but
/// affinity placement. The spin guarantees genuine overlap in both debug
/// and release, on any host.
#[derive(Debug)]
struct SpinTtl {
    inner: Ttl,
    cost: Duration,
}

fn spin(cost: Duration) {
    let end = Instant::now() + cost;
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

impl KeepAlivePolicy for SpinTtl {
    fn name(&self) -> &'static str {
        "SPIN-TTL"
    }

    fn on_warm_start(&mut self, c: &Container, now: SimTime) {
        spin(self.cost);
        self.inner.on_warm_start(c, now);
    }

    fn on_container_created(&mut self, c: &Container, now: SimTime, prewarm: bool) {
        if !prewarm {
            spin(self.cost);
        }
        self.inner.on_container_created(c, now, prewarm);
    }

    fn on_finish(&mut self, c: &Container, now: SimTime) {
        self.inner.on_finish(c, now);
    }

    fn select_victims(&mut self, idle: &[&Container], needed: MemMb) -> Vec<ContainerId> {
        self.inner.select_victims(idle, needed)
    }

    fn on_evicted(&mut self, c: &Container, remaining: usize, now: SimTime) {
        self.inner.on_evicted(c, remaining, now);
    }

    fn expired(&mut self, idle: &[&Container], now: SimTime) -> Vec<ContainerId> {
        self.inner.expired(idle, now)
    }
}

fn spin_policies(cost: Duration) -> Vec<Box<dyn KeepAlivePolicy>> {
    (0..SHARDS)
        .map(|_| {
            Box::new(SpinTtl {
                inner: Ttl::new(SimDuration::from_mins(10)),
                cost,
            }) as Box<dyn KeepAlivePolicy>
        })
        .collect()
}

fn hammer(inv: &ShardedInvoker, reg: &FunctionRegistry, threads: usize, per_thread: usize) {
    std::thread::scope(|scope| {
        for t in 0..threads {
            let inv = inv.clone();
            scope.spawn(move || {
                let mut zipf = ZipfSampler::new(FUNCTIONS, ZIPF_S, 0xC0FFEE ^ (t as u64) << 32);
                let specs: Vec<&FunctionSpec> = reg.iter().collect();
                for i in 0..per_thread {
                    let f = zipf.next();
                    let at = SimTime::from_micros((i as u64) * 50);
                    assert!(inv.invoke(specs[f], at).is_served());
                }
            });
        }
    });
}

/// Eight threads replay identical seeded Zipf(1.2) sequences against an
/// affinity-only and a p2c invoker. The p2c served-load balance ratio
/// must never exceed the affinity ratio (spill only moves requests from
/// a more- to a less-loaded candidate) and must stay under a fixed
/// bound; conservation holds exactly on both.
#[test]
fn zipf_hammer_p2c_bounds_the_balance_ratio() {
    let reg = registry(FUNCTIONS, 64);
    let threads = 8;
    let per_thread = 2_000;
    let total = (threads * per_thread) as u64;

    // Each request burns ~10 µs inside its shard, so requests genuinely
    // overlap and the in-flight counters p2c reads are non-trivial in
    // every build profile (see SpinTtl).
    let cost = Duration::from_micros(10);
    let affinity = ShardedInvoker::new(
        ShardedConfig::split(MemMb::from_gb(32), SHARDS),
        spin_policies(cost),
    );
    hammer(&affinity, &reg, threads, per_thread);
    let p2c = ShardedInvoker::new(
        ShardedConfig::split(MemMb::from_gb(32), SHARDS).with_p2c(1),
        spin_policies(cost),
    );
    hammer(&p2c, &reg, threads, per_thread);

    for (name, inv) in [("affinity", &affinity), ("p2c", &p2c)] {
        let stats = inv.stats();
        assert_eq!(stats.served(), total, "{name}: every request served");
        assert_eq!(stats.dropped + stats.rejected, 0, "{name}");
    }
    let r_affinity = balance_ratio(&served_per_shard(&affinity));
    let r_p2c = balance_ratio(&served_per_shard(&p2c));
    eprintln!("skew hammer: affinity balance {r_affinity:.2}, p2c {r_p2c:.2}");
    // Affinity-only placement of this seeded workload is deterministic:
    // the ratio reflects pure hash placement of the Zipf head. p2c may
    // only redistribute load from a loaded home toward its less-loaded
    // alternate, so the ratio cannot meaningfully exceed it (tiny slack
    // for scheduling noise) and both sit under a fixed ceiling.
    assert!(
        r_p2c <= r_affinity * 1.05,
        "p2c must not worsen balance: affinity {r_affinity:.2}, p2c {r_p2c:.2}"
    );
    assert!(
        r_p2c <= 8.0,
        "p2c balance ratio out of bounds: {r_p2c:.2} (affinity {r_affinity:.2})"
    );
}

// ---------------------------------------------------------------------------
// 3. Seeded replay: re-homing never costs cold starts
// ---------------------------------------------------------------------------

fn replay_seeded_zipf(inv: &ShardedInvoker, reg: &FunctionRegistry, requests: usize) {
    let mut zipf = ZipfSampler::new(FUNCTIONS, ZIPF_S, 0xFAA5CACE);
    let specs: Vec<&FunctionSpec> = reg.iter().collect();
    for i in 0..requests {
        let f = zipf.next();
        let at = SimTime::from_micros((i as u64) * 500);
        inv.invoke(specs[f], at);
        // A no-op on the affinity invoker (no rebalance config), so both
        // runs execute the identical sequence of calls.
        if i % 256 == 255 {
            inv.rebalance_tick(at + SimDuration::from_micros(100));
        }
    }
}

/// The same seeded Zipf(1.2) trace replayed through 8 shards, affinity
/// vs rebalancing: the rebalanced run must not pay a single extra cold
/// start (migration moves the warm set, it never destroys it), must
/// actually migrate, and must improve the served balance ratio.
#[test]
fn rebalancing_never_increases_cold_starts_on_the_seeded_trace() {
    let requests = 8_192;
    // Memory sized for pressure: 64 × 64 MB functions over 8 × 512 MB
    // shards — warm sets matter and eviction is live.
    let reg = registry(FUNCTIONS, 64);
    let affinity = ShardedInvoker::with_kind(
        ShardedConfig::split(MemMb::from_gb(4), SHARDS),
        PolicyKind::GreedyDual,
    );
    replay_seeded_zipf(&affinity, &reg, requests);
    let rebalancing = ShardedInvoker::with_kind(
        ShardedConfig::split(MemMb::from_gb(4), SHARDS).with_rebalance(RebalanceConfig::default()),
        PolicyKind::GreedyDual,
    );
    replay_seeded_zipf(&rebalancing, &reg, requests);

    let base = affinity.stats();
    let rb = rebalancing.stats();
    assert_eq!(base.accounted(), requests as u64);
    assert_eq!(rb.accounted(), requests as u64);
    assert!(
        rebalancing.migrations() >= 1,
        "the skewed trace must trigger re-homing"
    );
    assert!(
        rb.cold <= base.cold,
        "re-homing must not add cold starts: affinity {} vs rebalanced {}",
        base.cold,
        rb.cold
    );
    let r_base = balance_ratio(&served_per_shard(&affinity));
    let r_rb = balance_ratio(&served_per_shard(&rebalancing));
    assert!(
        r_rb <= r_base,
        "re-homing must improve the served balance: {r_base:.2} -> {r_rb:.2}"
    );
}
