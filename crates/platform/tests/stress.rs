//! Concurrency stress tests for the invoker path (satellite of the
//! `faascached` serving-layer PR): hammer the sharded and legacy shared
//! invokers from many threads and prove that
//!
//! 1. every submitted invocation receives exactly one outcome
//!    (`warm + cold + dropped + rejected == submitted`),
//! 2. the server-side counters agree with the client-side tallies, and
//! 3. pool memory accounting balances once the invoker quiesces.

use faascache_core::function::FunctionRegistry;
use faascache_core::policy::{KeepAlivePolicy, PolicyKind, Ttl};
use faascache_platform::sharded::{InvokeOutcome, ShardedConfig, ShardedInvoker};
use faascache_platform::shared::SharedInvoker;
use faascache_util::{MemMb, SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const THREADS: u64 = 8;
const PER_THREAD: u64 = 5_000;
const FUNCTIONS: u32 = 64;

fn registry() -> Arc<FunctionRegistry> {
    let mut reg = FunctionRegistry::new();
    for i in 0..FUNCTIONS {
        reg.register(
            format!("f{i}"),
            MemMb::new(32 + (i as u64 % 8) * 16),
            SimDuration::from_millis(2),
            SimDuration::from_millis(40),
        )
        .unwrap();
    }
    Arc::new(reg)
}

#[derive(Default)]
struct Tally {
    warm: AtomicU64,
    cold: AtomicU64,
    dropped: AtomicU64,
    rejected: AtomicU64,
    throttled: AtomicU64,
}

impl Tally {
    fn record(&self, outcome: InvokeOutcome) {
        let slot = match outcome {
            InvokeOutcome::Warm => &self.warm,
            InvokeOutcome::Cold => &self.cold,
            InvokeOutcome::Dropped => &self.dropped,
            InvokeOutcome::Rejected => &self.rejected,
            InvokeOutcome::Throttled => &self.throttled,
        };
        slot.fetch_add(1, Ordering::Relaxed);
    }

    fn total(&self) -> u64 {
        self.warm.load(Ordering::Relaxed)
            + self.cold.load(Ordering::Relaxed)
            + self.dropped.load(Ordering::Relaxed)
            + self.rejected.load(Ordering::Relaxed)
            + self.throttled.load(Ordering::Relaxed)
    }
}

fn hammer(tally: &Tally, invoke: impl Fn(u32, SimTime) -> InvokeOutcome + Sync) {
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let invoke = &invoke;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    let f = ((t * 31 + i) % FUNCTIONS as u64) as u32;
                    tally.record(invoke(f, SimTime::from_millis(i)));
                }
            });
        }
    });
}

#[test]
fn sharded_invoker_conserves_every_request() {
    let reg = registry();
    let inv = ShardedInvoker::with_kind(
        // Tight per-shard memory plus a small admission bound: all four
        // outcome classes occur under contention.
        ShardedConfig::split(MemMb::new(2048), 4).with_queue_bound(4),
        PolicyKind::GreedyDual,
    );
    let tally = Tally::default();
    hammer(&tally, |f, at| {
        let spec = reg.spec(faascache_core::function::FunctionId::from_index(f));
        inv.invoke(spec, at)
    });

    let submitted = THREADS * PER_THREAD;
    assert_eq!(tally.total(), submitted, "an invocation vanished");

    // Client-side tallies must agree with the server-side counters.
    let stats = inv.stats();
    assert_eq!(stats.warm, tally.warm.load(Ordering::Relaxed));
    assert_eq!(stats.cold, tally.cold.load(Ordering::Relaxed));
    assert_eq!(stats.dropped, tally.dropped.load(Ordering::Relaxed));
    assert_eq!(stats.rejected, tally.rejected.load(Ordering::Relaxed));
    assert_eq!(stats.accounted(), submitted);

    // Quiesce: no in-flight work, memory within capacity, and per-shard
    // sums equal the aggregate.
    assert!(inv.drain(Duration::from_secs(5)));
    assert_eq!(inv.in_flight(), 0);
    assert!(inv.used_mem() <= inv.capacity());
    let per_shard_mem: u64 = inv.per_shard().iter().map(|s| s.used_mem.as_mb()).sum();
    assert_eq!(per_shard_mem, inv.used_mem().as_mb());
}

#[test]
fn legacy_shared_invoker_conserves_every_request() {
    let reg = registry();
    let inv = SharedInvoker::new(
        MemMb::new(1024),
        Box::new(faascache_core::policy::GreedyDual::new()),
    );
    let tally = Tally::default();
    hammer(&tally, |f, at| {
        let spec = reg.spec(faascache_core::function::FunctionId::from_index(f));
        inv.invoke(spec, at)
    });

    let submitted = THREADS * PER_THREAD;
    assert_eq!(tally.total(), submitted);
    // The legacy façade has an unbounded queue: nothing is ever rejected.
    assert_eq!(tally.rejected.load(Ordering::Relaxed), 0);
    let counters = inv.counters();
    assert_eq!(
        counters.warm_starts + counters.cold_starts + counters.drops,
        submitted
    );
    assert!(inv.used_mem() <= MemMb::new(1024));
}

#[test]
fn sharded_memory_balances_to_zero_after_ttl_reap() {
    let reg = registry();
    let config = ShardedConfig::split(MemMb::new(4096), 4);
    let policies: Vec<Box<dyn KeepAlivePolicy>> = (0..4)
        .map(|_| Box::new(Ttl::new(SimDuration::from_mins(10))) as Box<dyn KeepAlivePolicy>)
        .collect();
    let inv = ShardedInvoker::new(config, policies);
    let tally = Tally::default();
    hammer(&tally, |f, at| {
        let spec = reg.spec(faascache_core::function::FunctionId::from_index(f));
        inv.invoke(spec, at)
    });
    assert_eq!(tally.total(), THREADS * PER_THREAD);
    assert!(inv.drain(Duration::from_secs(5)));

    // Every container is idle after quiesce; a far-future reap must return
    // the pool to exactly zero bytes — the accounting balances.
    let reaped = inv.reap(SimTime::from_mins(10_000));
    assert!(reaped > 0);
    assert_eq!(inv.used_mem(), MemMb::ZERO);
    for shard in inv.per_shard() {
        assert_eq!(shard.used_mem, MemMb::ZERO, "shard {}", shard.shard);
        assert_eq!(shard.in_flight, 0);
        assert_eq!(shard.warm_containers, 0);
    }
}
