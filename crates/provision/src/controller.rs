//! The proportional vertical-scaling controller (paper §5.2, Figure 9).
//!
//! The controller periodically observes the exponentially smoothed arrival
//! rate `λ` and the measured *miss speed* (cold starts per second). Given
//! a target miss speed, it computes the hit ratio that would bring the
//! miss speed back to target at the current arrival rate,
//!
//! ```text
//! HR(c′) = 1 − target_miss_speed / λ        (Eq. 3, rearranged)
//! ```
//!
//! and inverts the hit-ratio curve to get the new cache size `c′`. To
//! avoid churn and memory fragmentation the paper uses a *large error
//! deadband*: the size only changes when the observed miss speed deviates
//! from the target by more than 30 %.

use faascache_analysis::hitratio::HitRatioCurve;
use faascache_util::stats::Ewma;
use faascache_util::{MemMb, SimDuration};
use serde::{Deserialize, Serialize};

/// What the controller observed over one control window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowStats {
    /// Requests that arrived during the window.
    pub arrivals: u64,
    /// Cold starts during the window.
    pub cold_starts: u64,
    /// Window length.
    pub window: SimDuration,
}

impl WindowStats {
    /// Arrival rate over the window (per second).
    pub fn arrival_rate(&self) -> f64 {
        let secs = self.window.as_secs_f64();
        if secs > 0.0 {
            self.arrivals as f64 / secs
        } else {
            0.0
        }
    }

    /// Miss speed (cold starts per second) over the window.
    pub fn miss_speed(&self) -> f64 {
        let secs = self.window.as_secs_f64();
        if secs > 0.0 {
            self.cold_starts as f64 / secs
        } else {
            0.0
        }
    }
}

/// Controller configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Target miss speed in cold starts per second.
    pub target_miss_speed: f64,
    /// Relative deadband; the paper uses 0.3 (30 %).
    pub deadband: f64,
    /// EWMA smoothing factor for the arrival rate.
    pub ewma_alpha: f64,
    /// Smallest cache size the controller will request.
    pub min_capacity: MemMb,
    /// Largest cache size the controller will request.
    pub max_capacity: MemMb,
}

impl ControllerConfig {
    /// A configuration with the paper's defaults (30 % deadband) for a
    /// given target miss speed and capacity range.
    pub fn new(target_miss_speed: f64, min_capacity: MemMb, max_capacity: MemMb) -> Self {
        ControllerConfig {
            target_miss_speed,
            deadband: 0.3,
            ewma_alpha: 0.3,
            min_capacity,
            max_capacity,
        }
    }
}

/// The proportional vertical-scaling controller.
///
/// # Examples
///
/// ```
/// use faascache_analysis::hitratio::HitRatioCurve;
/// use faascache_provision::controller::{Controller, ControllerConfig, WindowStats};
/// use faascache_util::{MemMb, SimDuration};
///
/// let curve = HitRatioCurve::from_distances(&(1..=100u64).map(|i| i * 100).collect::<Vec<_>>(), 0);
/// let cfg = ControllerConfig::new(0.5, MemMb::new(500), MemMb::from_gb(10));
/// let mut ctl = Controller::new(curve, cfg);
/// // Far too many cold starts → grow.
/// let decision = ctl.observe(WindowStats {
///     arrivals: 6000, cold_starts: 3000, window: SimDuration::from_mins(10),
/// });
/// assert!(decision.is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Controller {
    curve: HitRatioCurve,
    config: ControllerConfig,
    arrival_rate: Ewma,
}

impl Controller {
    /// Creates a controller over a hit-ratio curve.
    ///
    /// # Panics
    ///
    /// Panics if the target miss speed is not positive, the deadband is
    /// negative, or `min_capacity > max_capacity`.
    pub fn new(curve: HitRatioCurve, config: ControllerConfig) -> Self {
        assert!(
            config.target_miss_speed > 0.0,
            "target miss speed must be positive"
        );
        assert!(config.deadband >= 0.0, "deadband must be non-negative");
        assert!(
            config.min_capacity <= config.max_capacity,
            "min capacity exceeds max"
        );
        let alpha = config.ewma_alpha;
        Controller {
            curve,
            config,
            arrival_rate: Ewma::new(alpha),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// The smoothed arrival rate (per second).
    pub fn smoothed_arrival_rate(&self) -> f64 {
        self.arrival_rate.value()
    }

    /// Feeds one control window; returns the new cache size if the
    /// deadband was exceeded, otherwise `None` (keep the current size).
    pub fn observe(&mut self, window: WindowStats) -> Option<MemMb> {
        self.arrival_rate.observe(window.arrival_rate());
        let observed = window.miss_speed();
        let target = self.config.target_miss_speed;
        let error = (observed - target).abs() / target;
        if error <= self.config.deadband {
            return None;
        }
        Some(self.desired_capacity())
    }

    /// The capacity Eq. 3 currently implies, ignoring the deadband.
    pub fn desired_capacity(&self) -> MemMb {
        let lambda = self.smoothed_arrival_rate();
        if lambda <= 0.0 {
            return self.config.min_capacity;
        }
        let desired_miss_ratio = (self.config.target_miss_speed / lambda).clamp(0.0, 1.0);
        let desired_hit_ratio = 1.0 - desired_miss_ratio;
        let size = self
            .curve
            .size_for_hit_ratio(desired_hit_ratio)
            // Unreachable target (compulsory misses): provision for the
            // best the curve can do.
            .or_else(|| self.curve.size_for_hit_ratio(self.curve.max_hit_ratio()))
            .unwrap_or(self.config.max_capacity);
        size.max(self.config.min_capacity)
            .min(self.config.max_capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> HitRatioCurve {
        // Uniform distances 100MB..10GB.
        HitRatioCurve::from_distances(&(1..=100u64).map(|i| i * 100).collect::<Vec<_>>(), 0)
    }

    fn window(arrivals: u64, cold: u64) -> WindowStats {
        WindowStats {
            arrivals,
            cold_starts: cold,
            window: SimDuration::from_mins(10),
        }
    }

    #[test]
    fn window_rates() {
        let w = window(1200, 60);
        assert!((w.arrival_rate() - 2.0).abs() < 1e-12);
        assert!((w.miss_speed() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn deadband_suppresses_small_errors() {
        let cfg = ControllerConfig::new(0.1, MemMb::new(100), MemMb::from_gb(10));
        let mut ctl = Controller::new(curve(), cfg);
        // Observed 0.12/s vs target 0.1/s: 20% error < 30% deadband.
        assert_eq!(ctl.observe(window(1200, 72)), None);
        // 50% error: act.
        assert!(ctl.observe(window(1200, 90)).is_some());
    }

    #[test]
    fn grows_under_high_miss_speed_and_shrinks_when_idle() {
        let cfg = ControllerConfig::new(0.5, MemMb::new(100), MemMb::from_gb(20));
        let mut ctl = Controller::new(curve(), cfg);
        // Busy: 10 req/s → desired miss ratio 0.05 → hit 0.95 → big cache.
        let busy = ctl.observe(window(6000, 3000)).unwrap();
        // Quiet: 1 req/s → desired miss ratio 0.5 → hit 0.5 → small cache.
        let mut ctl2 = Controller::new(curve(), cfg);
        let quiet = ctl2.observe(window(600, 3000)).unwrap();
        assert!(busy > quiet, "busy {busy} should exceed quiet {quiet}");
    }

    #[test]
    fn capacity_clamped_to_range() {
        let cfg = ControllerConfig::new(0.001, MemMb::new(2000), MemMb::new(4000));
        let mut ctl = Controller::new(curve(), cfg);
        // Extremely high load → wants ~10GB but clamps to 4GB.
        let size = ctl.observe(window(600_000, 60_000)).unwrap();
        assert_eq!(size, MemMb::new(4000));
        // Zero arrivals → min capacity. (Observed miss speed 0 → full
        // error, so it acts and floors.)
        let mut idle = Controller::new(curve(), cfg);
        let size = idle.observe(window(0, 0));
        // error = |0 - target|/target = 1 > deadband → acts.
        assert_eq!(size, Some(MemMb::new(2000)));
    }

    #[test]
    fn ewma_smooths_rate_spikes() {
        let cfg = ControllerConfig::new(0.1, MemMb::new(100), MemMb::from_gb(20));
        let mut ctl = Controller::new(curve(), cfg);
        ctl.observe(window(600, 600));
        let first = ctl.smoothed_arrival_rate();
        ctl.observe(window(60_000, 600));
        let second = ctl.smoothed_arrival_rate();
        assert!(second > first);
        assert!(
            second < 100.0 * 0.5,
            "EWMA should damp the 100/s spike, got {second}"
        );
    }

    #[test]
    #[should_panic(expected = "target miss speed")]
    fn zero_target_rejected() {
        let cfg = ControllerConfig::new(0.0, MemMb::new(1), MemMb::new(2));
        let _ = Controller::new(curve(), cfg);
    }
}
