//! A model of VM resource deflation (Sharma et al., EuroSys '19), the
//! mechanism FaasCache uses to apply controller decisions (paper §5.2/§6):
//! "When the VM has to be shrunk, we use cascade deflation. We shrink the
//! ContainerPool first, and reclaim the free memory using guest OS-level
//! memory hot-unplug and hypervisor-level page swapping."
//!
//! The model captures what the elastic-scaling experiment needs: how much
//! memory each mechanism reclaims and how long the reclamation takes.

use faascache_util::{MemMb, SimDuration};
use serde::{Deserialize, Serialize};

/// A reclamation mechanism, ordered from least to most intrusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mechanism {
    /// Shrinking the keep-alive container pool (evicting warm containers).
    PoolShrink,
    /// Guest-OS memory hot-unplug.
    HotUnplug,
    /// Hypervisor-level page swapping.
    HypervisorSwap,
}

/// One step of a cascade deflation plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeflationStep {
    /// The mechanism used.
    pub mechanism: Mechanism,
    /// Memory reclaimed by this step.
    pub amount: MemMb,
    /// Time the step takes.
    pub latency: SimDuration,
}

/// A full cascade plan for one resize.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeflationPlan {
    steps: Vec<DeflationStep>,
}

impl DeflationPlan {
    /// The cascade steps in execution order.
    pub fn steps(&self) -> &[DeflationStep] {
        &self.steps
    }

    /// Total memory reclaimed.
    pub fn total_reclaimed(&self) -> MemMb {
        self.steps.iter().map(|s| s.amount).sum()
    }

    /// Total reclamation latency (steps are sequential).
    pub fn total_latency(&self) -> SimDuration {
        self.steps.iter().map(|s| s.latency).sum()
    }
}

/// Cascade deflation model.
///
/// `pool_reclaimable` bounds how much the pool shrink can free (the idle
/// container memory); `hot_unplug_fraction` of the remainder is reclaimed
/// by hot-unplug, and the rest falls to hypervisor swapping.
///
/// # Examples
///
/// ```
/// use faascache_provision::deflation::DeflationModel;
/// use faascache_util::MemMb;
///
/// let model = DeflationModel::default();
/// let plan = model.plan(MemMb::from_gb(10), MemMb::from_gb(7), MemMb::from_gb(2));
/// assert_eq!(plan.total_reclaimed(), MemMb::from_gb(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeflationModel {
    /// Latency of evicting warm containers, per GB.
    pub pool_shrink_per_gb: SimDuration,
    /// Latency of guest hot-unplug, per GB.
    pub hot_unplug_per_gb: SimDuration,
    /// Latency of hypervisor page swapping, per GB.
    pub swap_per_gb: SimDuration,
    /// Fraction of the post-pool remainder reclaimable by hot-unplug.
    pub hot_unplug_fraction: f64,
}

impl Default for DeflationModel {
    fn default() -> Self {
        DeflationModel {
            pool_shrink_per_gb: SimDuration::from_millis(50),
            hot_unplug_per_gb: SimDuration::from_millis(900),
            swap_per_gb: SimDuration::from_secs(5),
            hot_unplug_fraction: 0.8,
        }
    }
}

impl DeflationModel {
    /// Plans a shrink from `from` to `to`, given that `pool_reclaimable`
    /// memory is currently held by idle warm containers.
    ///
    /// Growing (`to >= from`) yields an empty plan: inflation is
    /// effectively instant (plugging memory back is cheap).
    pub fn plan(&self, from: MemMb, to: MemMb, pool_reclaimable: MemMb) -> DeflationPlan {
        let mut steps = Vec::new();
        let Some(mut remaining) = from.checked_sub(to) else {
            return DeflationPlan { steps };
        };
        if remaining.is_zero() {
            return DeflationPlan { steps };
        }

        // 1. Cascade level one: shrink the container pool.
        let pool_part = remaining.min(pool_reclaimable);
        if !pool_part.is_zero() {
            steps.push(DeflationStep {
                mechanism: Mechanism::PoolShrink,
                amount: pool_part,
                latency: self.pool_shrink_per_gb.mul_f64(pool_part.as_gb_f64()),
            });
            remaining -= pool_part;
        }

        // 2. Guest hot-unplug for most of the remainder.
        let unplug_part = remaining.mul_f64(self.hot_unplug_fraction);
        if !unplug_part.is_zero() {
            steps.push(DeflationStep {
                mechanism: Mechanism::HotUnplug,
                amount: unplug_part,
                latency: self.hot_unplug_per_gb.mul_f64(unplug_part.as_gb_f64()),
            });
            remaining -= unplug_part;
        }

        // 3. Hypervisor swap for whatever is left.
        if !remaining.is_zero() {
            steps.push(DeflationStep {
                mechanism: Mechanism::HypervisorSwap,
                amount: remaining,
                latency: self.swap_per_gb.mul_f64(remaining.as_gb_f64()),
            });
        }

        DeflationPlan { steps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_is_free() {
        let m = DeflationModel::default();
        let plan = m.plan(MemMb::from_gb(4), MemMb::from_gb(8), MemMb::ZERO);
        assert!(plan.steps().is_empty());
        assert_eq!(plan.total_latency(), SimDuration::ZERO);
    }

    #[test]
    fn pool_shrink_first() {
        let m = DeflationModel::default();
        let plan = m.plan(MemMb::from_gb(10), MemMb::from_gb(8), MemMb::from_gb(5));
        assert_eq!(plan.steps().len(), 1);
        assert_eq!(plan.steps()[0].mechanism, Mechanism::PoolShrink);
        assert_eq!(plan.total_reclaimed(), MemMb::from_gb(2));
    }

    #[test]
    fn cascade_order_when_pool_insufficient() {
        let m = DeflationModel::default();
        let plan = m.plan(MemMb::from_gb(10), MemMb::from_gb(4), MemMb::from_gb(1));
        let mechanisms: Vec<Mechanism> = plan.steps().iter().map(|s| s.mechanism).collect();
        assert_eq!(
            mechanisms,
            vec![
                Mechanism::PoolShrink,
                Mechanism::HotUnplug,
                Mechanism::HypervisorSwap
            ]
        );
        assert_eq!(plan.total_reclaimed(), MemMb::from_gb(6));
    }

    #[test]
    fn swap_is_slowest_per_gb() {
        let m = DeflationModel::default();
        // All-pool vs all-swap plans for the same amount.
        let pool = m.plan(MemMb::from_gb(6), MemMb::from_gb(4), MemMb::from_gb(2));
        let swap = DeflationModel {
            hot_unplug_fraction: 0.0,
            ..m
        }
        .plan(MemMb::from_gb(6), MemMb::from_gb(4), MemMb::ZERO);
        assert!(swap.total_latency() > pool.total_latency());
    }

    #[test]
    fn reclaimed_always_matches_request() {
        let m = DeflationModel::default();
        for (from, to, pool) in [(10u64, 3u64, 0u64), (10, 3, 2), (10, 3, 20), (5, 5, 3)] {
            let plan = m.plan(
                MemMb::from_gb(from),
                MemMb::from_gb(to),
                MemMb::from_gb(pool),
            );
            assert_eq!(
                plan.total_reclaimed(),
                MemMb::from_gb(from - to),
                "from {from} to {to} pool {pool}"
            );
        }
    }
}
