//! Server provisioning policies for FaaS keep-alive (paper §5).
//!
//! - [`static_prov`] — **static provisioning**: pick a server memory size
//!   from a hit-ratio curve, either by a target hit ratio or at the
//!   curve's inflection point (maximum marginal utility).
//! - [`controller`] — **elastic dynamic scaling**: a proportional
//!   controller that watches the smoothed arrival rate and the observed
//!   miss speed (cold starts per second), and resizes the keep-alive cache
//!   by inverting the hit-ratio curve (Eq. 3), with a large error deadband
//!   (30 %) so only coarse diurnal shifts trigger changes.
//! - [`deflation`] — a model of **VM resource deflation** (Sharma et al.,
//!   EuroSys '19): cascade reclamation through container-pool shrinking,
//!   guest memory hot-unplug, and hypervisor page swapping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod deflation;
pub mod static_prov;

pub use controller::{Controller, ControllerConfig, WindowStats};
pub use static_prov::{ProvisionPlan, StaticProvisioner};
