//! Static provisioning from hit-ratio curves (paper §5.1).
//!
//! "We construct a hit-ratio curve based on reuse distances, and size the
//! server's memory based on the inflection point. Alternatively, we can
//! set a target hit ratio (say, 90 %), and use that to determine the
//! minimum memory size of the server."

use faascache_analysis::hitratio::HitRatioCurve;
use faascache_util::MemMb;
use serde::{Deserialize, Serialize};

/// A static provisioning recommendation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProvisionPlan {
    /// Recommended server memory.
    pub size: MemMb,
    /// Hit ratio the curve predicts at that size.
    pub predicted_hit_ratio: f64,
}

/// Sizes servers from a hit-ratio curve.
///
/// # Examples
///
/// ```
/// use faascache_analysis::hitratio::HitRatioCurve;
/// use faascache_provision::static_prov::StaticProvisioner;
///
/// let curve = HitRatioCurve::from_distances(&[100, 100, 200, 4000], 0);
/// let prov = StaticProvisioner::new(curve);
/// let plan = prov.by_target_hit_ratio(0.75).unwrap();
/// assert_eq!(plan.size.as_mb(), 200);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaticProvisioner {
    curve: HitRatioCurve,
}

impl StaticProvisioner {
    /// Wraps a hit-ratio curve.
    pub fn new(curve: HitRatioCurve) -> Self {
        StaticProvisioner { curve }
    }

    /// The underlying curve.
    pub fn curve(&self) -> &HitRatioCurve {
        &self.curve
    }

    /// The smallest size achieving `target` hit ratio, or `None` if the
    /// target is unreachable (beyond the curve's compulsory-miss ceiling).
    pub fn by_target_hit_ratio(&self, target: f64) -> Option<ProvisionPlan> {
        let size = self.curve.size_for_hit_ratio(target)?;
        Some(ProvisionPlan {
            size,
            predicted_hit_ratio: self.curve.hit_ratio(size),
        })
    }

    /// The size at the curve's inflection point (maximum marginal
    /// utility), or `None` for a degenerate curve.
    pub fn by_inflection(&self) -> Option<ProvisionPlan> {
        let size = self.curve.inflection()?;
        Some(ProvisionPlan {
            size,
            predicted_hit_ratio: self.curve.hit_ratio(size),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> HitRatioCurve {
        // 90 small distances under 1GB, 10 spread to 10GB: classic knee.
        let mut d: Vec<u64> = (0..90).map(|i| i * 10).collect();
        d.extend((1..=10).map(|i| i * 1000));
        HitRatioCurve::from_distances(&d, 0)
    }

    #[test]
    fn target_sizing() {
        let prov = StaticProvisioner::new(curve());
        let plan = prov.by_target_hit_ratio(0.9).unwrap();
        assert!(plan.predicted_hit_ratio >= 0.9);
        assert!(plan.size.as_mb() <= 1000, "90% of accesses are under 1GB");
    }

    #[test]
    fn unreachable_target() {
        let prov = StaticProvisioner::new(HitRatioCurve::from_distances(&[5], 9));
        assert!(prov.by_target_hit_ratio(0.5).is_none());
    }

    #[test]
    fn inflection_sizing_lands_in_steep_region() {
        let prov = StaticProvisioner::new(curve());
        let plan = prov.by_inflection().unwrap();
        assert!(
            plan.size.as_mb() <= 1500,
            "knee should precede the flat tail, got {}",
            plan.size
        );
        assert!(plan.predicted_hit_ratio > 0.5);
    }

    #[test]
    fn degenerate_curve() {
        let prov = StaticProvisioner::new(HitRatioCurve::from_distances(&[], 0));
        assert!(prov.by_inflection().is_none());
        assert!(prov.by_target_hit_ratio(0.1).is_none());
    }
}
