//! Quick diagnostic: closed-loop invoke throughput vs shard count on this
//! host. Useful to sanity-check the `api_scaling` section of BENCH_2.json
//! before trusting a run (`cargo run --release -p faascache-server
//! --example scaling_probe`).

use faascache_core::function::FunctionId;
use faascache_core::policy::PolicyKind;
use faascache_platform::sharded::{ShardedConfig, ShardedInvoker};
use faascache_server::WorkloadConfig;
use faascache_util::{MemMb, SimTime};
use std::time::Instant;

fn main() {
    let trace = WorkloadConfig::default().build();
    let registry = trace.registry();
    let functions: Vec<u32> = trace
        .invocations()
        .iter()
        .map(|inv| inv.function.index() as u32)
        .collect();
    let threads = 8usize;
    let requests = 400_000u64;
    for round in 0..3 {
        for shards in [1usize, 2, 4, 8] {
            let config =
                ShardedConfig::split(MemMb::new(2048), shards).with_queue_bound(usize::MAX);
            let invoker = ShardedInvoker::with_kind(config, PolicyKind::GreedyDual);
            let started = Instant::now();
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let invoker = &invoker;
                    let functions = &functions;
                    scope.spawn(move || {
                        let per_thread = requests / threads as u64;
                        for i in 0..per_thread {
                            let idx = (t as u64 * 7919 + i) as usize % functions.len();
                            let spec = registry.spec(FunctionId::from_index(functions[idx]));
                            let at = SimTime::from_micros(started.elapsed().as_micros() as u64);
                            invoker.invoke(spec, at);
                        }
                    });
                }
            });
            let elapsed = started.elapsed().as_secs_f64();
            println!(
                "round={round} shards={shards} rps={:.0} stats={:?}",
                invoker.stats().accounted() as f64 / elapsed,
                invoker.stats()
            );
        }
    }
}
