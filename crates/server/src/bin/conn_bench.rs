//! `conn-bench` — connection-scaling benchmark and idle-connection hammer
//! for `faascached`.
//!
//! ```text
//! conn-bench [--unix PATH | --tcp ADDR] [--idle N] [--requests N]
//!            [--threads T] [--connections C] [--rps R] [--hold-ms MS]
//!            [--functions N] [--seed S]
//! conn-bench --bench OUT.json [--requests N] [--rps R] [--threads T]
//!            [--connections C] [--idle-epoll N] [--idle-threads N]
//! ```
//!
//! The first form attaches to a running daemon: it opens `--idle` extra
//! persistent connections that never send a byte, replays `--requests`
//! through the shared load generator while they sit there, prints the
//! load summary (the `errors= lost=` line CI asserts on), and then holds
//! every idle connection open for `--hold-ms` before exiting — long
//! enough for a harness to SIGTERM the daemon and verify it drains
//! gracefully *while* thousands of connections are still open.
//!
//! `--bench` self-hosts the comparison the ISSUE asks for: it spawns a
//! sibling `faascached` once per io model (threads with a few hundred
//! idle connections — its ceiling; epoll with 5k+), measures served
//! throughput and latency under load amid the idle herd, reads the
//! daemon's RSS growth per idle connection from `/proc`, SIGTERMs the
//! daemon with every connection still open, and writes the lot to
//! `BENCH_6.json`.

use faascache_server::client::{self, Client, LoadOptions, LoadProto, LoadReport, RetryPolicy};
use faascache_server::daemon::BoundAddr;
use faascache_server::WorkloadConfig;
use faascache_trace::replay::OpenLoopSchedule;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: conn-bench [--unix PATH | --tcp ADDR] [--idle N] [--requests N]\n\
         \x20                 [--threads T] [--connections C] [--rps R] [--hold-ms MS]\n\
         \x20                 [--functions N] [--seed S]\n\
         \x20      conn-bench --bench OUT.json [--requests N] [--rps R] [--threads T]\n\
         \x20                 [--connections C] [--idle-epoll N] [--idle-threads N]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => {
            eprintln!("conn-bench: bad or missing value for {flag}");
            usage()
        }
    }
}

struct Options {
    target: Option<BoundAddr>,
    idle: usize,
    requests: u64,
    threads: usize,
    connections: usize,
    rps: f64,
    hold_ms: u64,
    workload: WorkloadConfig,
    bench_out: Option<String>,
    idle_epoll: usize,
    idle_threads: usize,
}

fn main() -> ExitCode {
    let mut opts = Options {
        target: None,
        idle: 1024,
        requests: 10_000,
        threads: 4,
        connections: 0,
        rps: 10_000.0,
        hold_ms: 0,
        workload: WorkloadConfig::default(),
        bench_out: None,
        idle_epoll: 5000,
        idle_threads: 256,
    };

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tcp" => {
                let addr: String = parse("--tcp", args.next());
                match addr.parse() {
                    Ok(sock) => opts.target = Some(BoundAddr::Tcp(sock)),
                    Err(_) => {
                        eprintln!("conn-bench: bad tcp address {addr}");
                        return ExitCode::from(2);
                    }
                }
            }
            #[cfg(unix)]
            "--unix" => {
                opts.target = Some(BoundAddr::Unix(
                    parse::<String>("--unix", args.next()).into(),
                ))
            }
            "--idle" => opts.idle = parse("--idle", args.next()),
            "--requests" => opts.requests = parse("--requests", args.next()),
            "--threads" => opts.threads = parse("--threads", args.next()),
            "--connections" => opts.connections = parse("--connections", args.next()),
            "--rps" => opts.rps = parse("--rps", args.next()),
            "--hold-ms" => opts.hold_ms = parse("--hold-ms", args.next()),
            "--functions" => opts.workload.functions = parse("--functions", args.next()),
            "--seed" => opts.workload.seed = parse("--seed", args.next()),
            "--bench" => opts.bench_out = Some(parse("--bench", args.next())),
            "--idle-epoll" => opts.idle_epoll = parse("--idle-epoll", args.next()),
            "--idle-threads" => opts.idle_threads = parse("--idle-threads", args.next()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("conn-bench: unknown flag {other}");
                usage()
            }
        }
    }

    #[cfg(target_os = "linux")]
    if let Err(e) = faascache_server::reactor::raise_nofile_limit() {
        eprintln!("conn-bench: could not raise open-file limit: {e}");
    }

    if let Some(out) = opts.bench_out.clone() {
        return run_bench(&opts, &out);
    }
    let Some(addr) = opts.target.clone() else {
        eprintln!("conn-bench: need --tcp or --unix (or --bench)");
        usage()
    };
    run_attached(&opts, &addr)
}

/// Opens `n` connections that never send a frame. Dropping the vector
/// closes them all.
fn open_idle(addr: &BoundAddr, n: usize) -> Result<Vec<Client>, (usize, std::io::Error)> {
    let mut held = Vec::with_capacity(n);
    for i in 0..n {
        match Client::connect(addr) {
            Ok(c) => held.push(c),
            Err(e) => return Err((i, e)),
        }
    }
    Ok(held)
}

fn run_load(opts: &Options, addr: &BoundAddr) -> LoadReport {
    let trace = opts.workload.build();
    let schedule = OpenLoopSchedule::from_trace(&trace, opts.rps);
    client::run_load_with(
        addr,
        &schedule,
        LoadOptions {
            target_rps: opts.rps,
            requests: opts.requests,
            threads: opts.threads,
            connections: opts.connections,
            retry: RetryPolicy::none(),
            faults: None,
            read_timeout: None,
            seed: opts.workload.seed,
            proto: LoadProto::Binary,
        },
    )
}

fn run_attached(opts: &Options, addr: &BoundAddr) -> ExitCode {
    eprintln!(
        "conn-bench: opening {} idle connections against {:?}",
        opts.idle, addr
    );
    let held = match open_idle(addr, opts.idle) {
        Ok(held) => held,
        Err((got, e)) => {
            eprintln!(
                "conn-bench: idle connection {got}/{} failed: {e}",
                opts.idle
            );
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "conn-bench: {} idle connections up; replaying {} requests",
        held.len(),
        opts.requests
    );
    let report = run_load(opts, addr);
    // The `errors= lost=` line the harness asserts on.
    println!("{}", report.summary_line());
    println!(
        "conn-bench: idle={} load_connections={} errors={} lost={}",
        held.len(),
        report.connections,
        report.errors,
        report.lost()
    );
    if opts.hold_ms > 0 {
        eprintln!(
            "conn-bench: holding {} connections for {}ms",
            held.len(),
            opts.hold_ms
        );
        std::thread::sleep(Duration::from_millis(opts.hold_ms));
    }
    drop(held);
    if report.errors > 0 || report.lost() > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------
// --bench: self-hosted io-model comparison
// ---------------------------------------------------------------------

/// Resident set size of a process in bytes, from `/proc/PID/status`.
fn vm_rss_bytes(pid: u32) -> Option<u64> {
    let status = std::fs::read_to_string(format!("/proc/{pid}/status")).ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

fn sibling(name: &str) -> std::path::PathBuf {
    std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join(name)))
        .unwrap_or_else(|| name.into())
}

struct DaemonUnderTest {
    child: Child,
    addr: BoundAddr,
    #[cfg(unix)]
    sock: std::path::PathBuf,
}

fn spawn_daemon(io_model: &str, tag: &str, workload: &WorkloadConfig) -> Option<DaemonUnderTest> {
    #[cfg(unix)]
    {
        let sock = std::env::temp_dir().join(format!(
            "faascache-connbench-{}-{}.sock",
            std::process::id(),
            tag
        ));
        let _ = std::fs::remove_file(&sock);
        let child = Command::new(sibling("faascached"))
            .args([
                "--unix",
                sock.to_str()?,
                "--io-model",
                io_model,
                "--shards",
                "2",
                "--mem-mb",
                "4096",
                "--functions",
                &workload.functions.to_string(),
                "--seed",
                &workload.seed.to_string(),
                "--no-remote-shutdown",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .ok()?;
        let addr = BoundAddr::Unix(sock.clone());
        Some(DaemonUnderTest { child, addr, sock })
    }
    #[cfg(not(unix))]
    {
        let _ = (io_model, tag, workload);
        None
    }
}

struct ModelResult {
    io_model: String,
    idle: usize,
    report: LoadReport,
    rss_before: u64,
    rss_after_idle: u64,
    drained: bool,
    peak_connections: u64,
    accept_errors: u64,
}

impl ModelResult {
    fn idle_bytes_per_conn(&self) -> u64 {
        if self.idle == 0 {
            return 0;
        }
        self.rss_after_idle.saturating_sub(self.rss_before) / self.idle as u64
    }
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    let rest = line.split(&format!("{key}=")).nth(1)?;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '/'))
        .unwrap_or(rest.len());
    // connections=cur/peak — take the part after '/' if present.
    let token = &rest[..end];
    match token.split_once('/') {
        Some((_, peak)) => peak.parse().ok(),
        None => token.parse().ok(),
    }
}

fn run_model(io_model: &str, idle: usize, opts: &Options) -> Result<ModelResult, String> {
    let mut daemon = spawn_daemon(io_model, io_model, &opts.workload)
        .ok_or_else(|| format!("cannot spawn faascached ({io_model})"))?;
    let pid = daemon.child.id();
    if let Err(e) = client::await_ready(&daemon.addr, Duration::from_secs(10)) {
        let _ = daemon.child.kill();
        return Err(format!("daemon ({io_model}) never became ready: {e}"));
    }
    let rss_before = vm_rss_bytes(pid).unwrap_or(0);

    eprintln!("conn-bench: [{io_model}] opening {idle} idle connections");
    let held = match open_idle(&daemon.addr, idle) {
        Ok(held) => held,
        Err((got, e)) => {
            let _ = daemon.child.kill();
            return Err(format!("[{io_model}] idle connection {got}/{idle}: {e}"));
        }
    };
    // Give lazily-touched pages (thread stacks, slab growth) a beat to
    // settle before sampling.
    std::thread::sleep(Duration::from_millis(300));
    let rss_after_idle = vm_rss_bytes(pid).unwrap_or(rss_before);

    eprintln!(
        "conn-bench: [{io_model}] replaying {} requests at {} rps amid the idle herd",
        opts.requests, opts.rps
    );
    let report = run_load(opts, &daemon.addr);
    println!("{}", report.summary_line());

    // SIGTERM with every idle connection still open: graceful drain is
    // part of the contract being benchmarked.
    let _ = Command::new("kill")
        .args(["-TERM", &pid.to_string()])
        .status();
    let mut summary = String::new();
    if let Some(stdout) = daemon.child.stdout.take() {
        for line in BufReader::new(stdout).lines().map_while(Result::ok) {
            if line.starts_with("faascached:") {
                summary = line;
            }
        }
    }
    let _ = daemon.child.wait();
    drop(held);
    #[cfg(unix)]
    let _ = std::fs::remove_file(&daemon.sock);

    if summary.is_empty() {
        return Err(format!("[{io_model}] daemon printed no summary line"));
    }
    println!("{summary}");
    Ok(ModelResult {
        io_model: io_model.to_string(),
        idle,
        report,
        rss_before,
        rss_after_idle,
        drained: summary.contains("drained=true"),
        peak_connections: field_u64(&summary, "connections").unwrap_or(0),
        accept_errors: field_u64(&summary, "accept_errors").unwrap_or(0),
    })
}

fn model_json(r: &ModelResult) -> String {
    format!(
        "    {{\n      \"io_model\": \"{}\",\n      \"idle_connections\": {},\n\
         \x20     \"peak_connections\": {},\n      \"requests\": {},\n\
         \x20     \"target_rps\": {:.0},\n      \"attained_rps\": {:.0},\n\
         \x20     \"errors\": {},\n      \"lost\": {},\n      \"accept_errors\": {},\n\
         \x20     \"drained\": {},\n      \"idle_rss_bytes_per_conn\": {},\n\
         \x20     \"latency\": {{\"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \
         \"max_ms\": {:.4}}}\n    }}",
        r.io_model,
        r.idle,
        r.peak_connections,
        r.report.requests,
        r.report.target_rps,
        r.report.attained_rps,
        r.report.errors,
        r.report.lost(),
        r.accept_errors,
        r.drained,
        r.idle_bytes_per_conn(),
        r.report.latency.p50_ms,
        r.report.latency.p95_ms,
        r.report.latency.p99_ms,
        r.report.latency.max_ms,
    )
}

fn run_bench(opts: &Options, out_path: &str) -> ExitCode {
    if !cfg!(target_os = "linux") {
        eprintln!("conn-bench: --bench requires linux (epoll io model)");
        return ExitCode::FAILURE;
    }
    // Threads model at its comfortable ceiling, epoll at C5k+: same
    // workload, same load shape, only the serving core differs.
    let threads_result = match run_model("threads", opts.idle_threads, opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("conn-bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    let epoll_result = match run_model("epoll", opts.idle_epoll, opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("conn-bench: {e}");
            return ExitCode::FAILURE;
        }
    };

    let ratio = epoll_result.report.attained_rps / threads_result.report.attained_rps.max(1e-9);
    let json = format!(
        "{{\n  \"benchmark\": \"faascached_conn_scaling\",\n  \"io_models\": [\n{},\n{}\n  ],\n\
         \x20 \"epoll_vs_threads_throughput\": {:.4}\n}}\n",
        model_json(&threads_result),
        model_json(&epoll_result),
        ratio,
    );
    if let Err(e) = std::fs::write(out_path, &json) {
        eprintln!("conn-bench: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("conn-bench: wrote {out_path}");

    let mut ok = true;
    for r in [&threads_result, &epoll_result] {
        if r.report.errors > 0 || r.report.lost() > 0 || !r.drained {
            eprintln!(
                "conn-bench: FAIL [{}] errors={} lost={} drained={}",
                r.io_model,
                r.report.errors,
                r.report.lost(),
                r.drained
            );
            ok = false;
        }
    }
    if (epoll_result.peak_connections as usize) < epoll_result.idle {
        eprintln!(
            "conn-bench: FAIL [epoll] peak connections {} below idle target {}",
            epoll_result.peak_connections, epoll_result.idle
        );
        ok = false;
    }
    if ratio < 1.0 {
        eprintln!("conn-bench: WARNING: epoll throughput {ratio:.3}x of threads model");
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
