//! `faas-load` — open-loop trace-replay load generator for `faascached`.
//!
//! ```text
//! faas-load [--tcp ADDR | --unix PATH] [--proto binary|http]
//!           [--requests N] [--threads T]
//!           [--rps R] [--functions N] [--seed S] [--skew zipf:S] [--shutdown]
//!           [--tenant-mod K:R]
//!           [--retries N] [--backoff-ms MS] [--backoff-cap-ms MS]
//!           [--read-timeout-ms MS] [--faults SPEC] [--fault-KNOB V ...]
//! faas-load --bench OUT.json [--requests N] [--threads T] [--rps R]
//! ```
//!
//! The first form replays the shared synthetic trace against a running
//! daemon and prints throughput, outcome counts, and latency percentiles.
//! `--retries` turns on per-request retry with full-jitter exponential
//! backoff and idempotency keys (so the daemon deduplicates replays of a
//! request whose response was lost); `--faults` injects deterministic
//! client-side transport faults (same spec grammar as `faascached`).
//! `--proto http` replays the same schedule over the daemon's HTTP
//! gateway (`--tcp` must then name the `--http-listen` address; retries
//! carry `Idempotency-Key` headers).
//! `--tenant-mod K:R` keeps only the schedule events whose function index
//! is ≡ R (mod K), at their original offsets — the slice a daemon started
//! with `--tenants` and K tenant names assigns to tenant number R. Two
//! faas-load processes with complementary slices reproduce the full
//! arrival process while the daemon accounts them to different tenants.
//! `--bench` runs the full serving benchmark without needing a daemon:
//! an in-process 1-shard vs N-shard scaling comparison plus a daemon
//! section over a private Unix socket (TCP loopback off Unix), written as
//! a `BENCH_2.json` document.
//!
//! Cluster mode: point `--tcp`/`--unix` at a `faas-router` front instead
//! of a daemon — the wire protocol is identical, idempotency keys and
//! outcomes pass through untouched, and the same conservation invariant
//! (`warm+cold+dropped+rejected+throttled+errors == requests`) holds
//! across the whole router + backends ensemble. The daemon and every
//! backend must share the load generator's `--functions/--seed/--skew`
//! workload contract as usual.

use faascache_platform::sharded::{ShardedConfig, ShardedInvoker};
use faascache_server::client::{self, LoadOptions, LoadProto, LoadReport, RetryPolicy};
use faascache_server::daemon::{BoundAddr, Daemon, DaemonConfig, Endpoint};
use faascache_server::fault::FaultConfig;
use faascache_server::WorkloadConfig;
use faascache_trace::record::Trace;
use faascache_trace::replay::OpenLoopSchedule;
use faascache_util::SimTime;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: faas-load [--tcp ADDR | --unix PATH] [--proto binary|http]\n\
         \x20                [--requests N] [--threads T]\n\
         \x20                [--rps R] [--functions N] [--seed S] [--skew zipf:S]\n\
         \x20                [--connections N] [--shutdown] [--tenant-mod K:R]\n\
         \x20                [--retries N] [--backoff-ms MS] [--backoff-cap-ms MS]\n\
         \x20                [--read-timeout-ms MS] [--faults SPEC]\n\
         \x20                [--fault-seed S] [--fault-reset P] [--fault-torn P]\n\
         \x20                [--fault-short-read P] [--fault-timeout P]\n\
         \x20                [--fault-corrupt P] [--fault-stall P] [--fault-stall-ms MS]\n\
         \x20      faas-load --bench OUT.json [--requests N] [--threads T] [--rps R]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => {
            eprintln!("faas-load: bad or missing value for {flag}");
            usage()
        }
    }
}

struct Options {
    target: Option<BoundAddr>,
    requests: u64,
    threads: usize,
    connections: usize,
    rps: f64,
    workload: WorkloadConfig,
    shutdown: bool,
    bench_out: Option<String>,
    retries: u32,
    backoff_ms: u64,
    backoff_cap_ms: u64,
    read_timeout_ms: Option<u64>,
    faults: FaultConfig,
    proto: LoadProto,
    tenant_mod: Option<(u64, u64)>,
}

fn fault_knob(faults: &mut FaultConfig, key: &str, value: String) {
    if let Err(e) = faults.set(key, &value) {
        eprintln!("faas-load: {e}");
        usage()
    }
}

fn main() -> ExitCode {
    let mut opts = Options {
        target: None,
        requests: 100_000,
        threads: 4,
        connections: 0,
        rps: 20_000.0,
        workload: WorkloadConfig::default(),
        shutdown: false,
        bench_out: None,
        retries: 0,
        backoff_ms: 5,
        backoff_cap_ms: 250,
        read_timeout_ms: None,
        faults: FaultConfig::disabled(),
        proto: LoadProto::Binary,
        tenant_mod: None,
    };

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tcp" => {
                let addr: String = parse("--tcp", args.next());
                match addr.parse() {
                    Ok(sock) => opts.target = Some(BoundAddr::Tcp(sock)),
                    Err(_) => {
                        eprintln!("faas-load: bad tcp address {addr}");
                        return ExitCode::from(2);
                    }
                }
            }
            #[cfg(unix)]
            "--unix" => {
                opts.target = Some(BoundAddr::Unix(
                    parse::<String>("--unix", args.next()).into(),
                ))
            }
            "--proto" => opts.proto = parse("--proto", args.next()),
            "--requests" => opts.requests = parse("--requests", args.next()),
            "--threads" => opts.threads = parse("--threads", args.next()),
            "--connections" => opts.connections = parse("--connections", args.next()),
            "--rps" => opts.rps = parse("--rps", args.next()),
            "--functions" => opts.workload.functions = parse("--functions", args.next()),
            "--seed" => opts.workload.seed = parse("--seed", args.next()),
            "--skew" => {
                let spec: String = parse("--skew", args.next());
                match faascache_server::workload::parse_skew(&spec) {
                    Ok(s) => opts.workload.zipf_exponent = s,
                    Err(e) => {
                        eprintln!("faas-load: {e}");
                        usage()
                    }
                }
            }
            "--shutdown" => opts.shutdown = true,
            "--tenant-mod" => {
                let spec: String = parse("--tenant-mod", args.next());
                let parsed = spec.split_once(':').and_then(|(k, r)| {
                    let k: u64 = k.parse().ok()?;
                    let r: u64 = r.parse().ok()?;
                    (k > 0 && r < k).then_some((k, r))
                });
                match parsed {
                    Some(km) => opts.tenant_mod = Some(km),
                    None => {
                        eprintln!("faas-load: --tenant-mod wants K:R with R < K, got {spec}");
                        usage()
                    }
                }
            }
            "--bench" => opts.bench_out = Some(parse("--bench", args.next())),
            "--retries" => opts.retries = parse("--retries", args.next()),
            "--backoff-ms" => opts.backoff_ms = parse("--backoff-ms", args.next()),
            "--backoff-cap-ms" => opts.backoff_cap_ms = parse("--backoff-cap-ms", args.next()),
            "--read-timeout-ms" => {
                opts.read_timeout_ms = Some(parse("--read-timeout-ms", args.next()))
            }
            "--faults" => {
                let spec: String = parse("--faults", args.next());
                match FaultConfig::parse_spec(&spec) {
                    Ok(cfg) => opts.faults = cfg,
                    Err(e) => {
                        eprintln!("faas-load: --faults: {e}");
                        usage()
                    }
                }
            }
            "--fault-seed" => {
                fault_knob(&mut opts.faults, "seed", parse("--fault-seed", args.next()))
            }
            "--fault-reset" => fault_knob(
                &mut opts.faults,
                "reset",
                parse("--fault-reset", args.next()),
            ),
            "--fault-torn" => {
                fault_knob(&mut opts.faults, "torn", parse("--fault-torn", args.next()))
            }
            "--fault-short-read" => fault_knob(
                &mut opts.faults,
                "short-read",
                parse("--fault-short-read", args.next()),
            ),
            "--fault-timeout" => fault_knob(
                &mut opts.faults,
                "timeout",
                parse("--fault-timeout", args.next()),
            ),
            "--fault-corrupt" => fault_knob(
                &mut opts.faults,
                "corrupt",
                parse("--fault-corrupt", args.next()),
            ),
            "--fault-stall" => fault_knob(
                &mut opts.faults,
                "stall",
                parse("--fault-stall", args.next()),
            ),
            "--fault-stall-ms" => fault_knob(
                &mut opts.faults,
                "stall-ms",
                parse("--fault-stall-ms", args.next()),
            ),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("faas-load: unknown flag {other}");
                usage()
            }
        }
    }
    if opts.threads == 0 || opts.requests == 0 || !opts.rps.is_finite() || opts.rps <= 0.0 {
        eprintln!("faas-load: --threads, --requests and --rps must be positive");
        return ExitCode::from(2);
    }

    if let Some(out) = opts.bench_out.clone() {
        return run_bench(&opts, &out);
    }

    let Some(addr) = opts.target.clone() else {
        eprintln!("faas-load: need --tcp or --unix (or --bench)");
        usage()
    };
    let trace = opts.workload.build();
    let mut schedule = OpenLoopSchedule::from_trace(&trace, opts.rps);
    if let Some((k, r)) = opts.tenant_mod {
        schedule = schedule.filtered(|f| f.index() as u64 % k == r);
        if schedule.is_empty() {
            eprintln!("faas-load: --tenant-mod {k}:{r} leaves no functions to invoke");
            return ExitCode::from(2);
        }
        eprintln!(
            "faas-load: tenant slice {r} (mod {k}): {} of {} scheduled sends",
            schedule.len(),
            trace.len()
        );
    }
    let retry = if opts.retries > 0 {
        RetryPolicy::retries(
            opts.retries,
            Duration::from_millis(opts.backoff_ms),
            Duration::from_millis(opts.backoff_cap_ms.max(opts.backoff_ms)),
        )
    } else {
        RetryPolicy::none()
    };
    // Faults and retries both demand a read timeout: a response lost to a
    // reset must become a retryable error, not a hang.
    let read_timeout_ms = opts
        .read_timeout_ms
        .or_else(|| (opts.retries > 0 || opts.faults.is_active()).then_some(500));
    let load = LoadOptions {
        target_rps: opts.rps,
        requests: opts.requests,
        threads: opts.threads,
        connections: opts.connections,
        retry,
        faults: opts.faults.is_active().then_some(opts.faults),
        read_timeout: read_timeout_ms.map(Duration::from_millis),
        seed: opts.workload.seed,
        proto: opts.proto,
    };
    eprintln!(
        "faas-load: replaying {} requests over {} threads at {} rps ({}){}\
         {}{}",
        opts.requests,
        opts.threads,
        opts.rps,
        opts.proto,
        if opts.connections > 0 {
            format!(" across {} connections", opts.connections)
        } else {
            String::new()
        },
        if retry.is_enabled() {
            format!(" (retries={} keyed)", opts.retries)
        } else {
            String::new()
        },
        if opts.faults.is_active() {
            " [client-side fault injection on]".to_string()
        } else {
            String::new()
        },
    );
    let report = client::run_load_with(&addr, &schedule, load);
    println!("{}", report.summary_line());

    if opts.shutdown {
        // Shutdown is a binary-protocol verb; the HTTP gateway address is
        // a different listener, so over --proto http the caller must aim
        // --shutdown traffic at the binary endpoint (or SIGTERM).
        if opts.proto == LoadProto::Http {
            eprintln!(
                "faas-load: --shutdown is not available over --proto http; \
                 signal the daemon or use the binary endpoint"
            );
        } else {
            match client::Client::connect(&addr).and_then(|mut c| c.shutdown()) {
                Ok(()) => eprintln!("faas-load: daemon shutdown requested"),
                Err(e) => eprintln!("faas-load: shutdown request failed: {e}"),
            }
        }
    }
    if report.lost() > 0 || report.errors > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// One row of the in-process API scaling comparison.
struct ScalingRow {
    shards: usize,
    throughput_rps: f64,
    warm: u64,
    cold: u64,
    dropped: u64,
    rejected: u64,
}

/// Closed-loop hammer: `threads` threads invoke as fast as possible.
///
/// Total memory is deliberately tight (2 GB for a Zipf workload that
/// wants several GB of warm containers): under memory pressure every
/// miss evicts inside the shard lock, which is exactly the serial
/// section sharding splits — and the regime the paper's keep-alive
/// policies are designed for.
fn measure_api_scaling(trace: &Trace, shards: usize, threads: usize, requests: u64) -> ScalingRow {
    let config =
        ShardedConfig::split(faascache_util::MemMb::new(2048), shards).with_queue_bound(usize::MAX);
    let invoker = ShardedInvoker::with_kind(config, faascache_core::policy::PolicyKind::GreedyDual);
    let registry = trace.registry();
    let functions: Vec<u32> = trace
        .invocations()
        .iter()
        .map(|inv| inv.function.index() as u32)
        .collect();
    let started = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let invoker = &invoker;
            let functions = &functions;
            scope.spawn(move || {
                let per_thread = requests / threads as u64;
                for i in 0..per_thread {
                    let idx = (t as u64 * 7919 + i) as usize % functions.len();
                    let spec = registry.spec(faascache_core::function::FunctionId::from_index(
                        functions[idx],
                    ));
                    let at = SimTime::from_micros(started.elapsed().as_micros() as u64);
                    invoker.invoke(spec, at);
                }
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    let stats = invoker.stats();
    ScalingRow {
        shards,
        // Conservative metric: only requests actually served count, so a
        // shard split that drops more (smaller per-shard capacity) cannot
        // buy throughput by shedding work.
        throughput_rps: stats.served() as f64 / elapsed,
        warm: stats.warm,
        cold: stats.cold,
        dropped: stats.dropped,
        rejected: stats.rejected,
    }
}

fn latency_json(report: &LoadReport) -> String {
    format!(
        "{{\"mean_ms\": {:.4}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \
         \"p99_ms\": {:.4}, \"max_ms\": {:.4}}}",
        report.latency.mean_ms,
        report.latency.p50_ms,
        report.latency.p95_ms,
        report.latency.p99_ms,
        report.latency.max_ms,
    )
}

fn run_bench(opts: &Options, out_path: &str) -> ExitCode {
    let trace = opts.workload.build();
    // Eight shards to match the eight hammer threads: the win comes from
    // splitting the serial section, so it shows even on few cores.
    let wide = 8usize;

    // Part 1: in-process scaling. The single mutex is the bottleneck the
    // sharded invoker removes, so measure it without socket overhead.
    eprintln!("faas-load: api scaling, {wide}-way vs 1 shard, 8 threads");
    let scale_requests = 400_000u64;
    let rows = [
        measure_api_scaling(&trace, 1, 8, scale_requests),
        measure_api_scaling(&trace, wide, 8, scale_requests),
    ];
    for row in &rows {
        eprintln!(
            "faas-load:   shards={} throughput={:.0} rps",
            row.shards, row.throughput_rps
        );
    }

    // Part 2: the daemon section over a socket, with full accounting.
    let endpoint = bench_endpoint();
    let config = DaemonConfig {
        shards: wide,
        ..DaemonConfig::default()
    };
    let daemon = match Daemon::bind(&endpoint, config, trace.registry().clone()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("faas-load: bench daemon bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = daemon.bound_addr();
    let handle = daemon.shutdown_handle();
    let server = std::thread::spawn(move || daemon.run());
    if let Err(e) = client::await_ready(&addr, Duration::from_secs(5)) {
        eprintln!("faas-load: bench daemon never became ready: {e}");
        handle.request();
        let _ = server.join();
        return ExitCode::FAILURE;
    }
    eprintln!(
        "faas-load: daemon section, {} requests / {} threads at {} rps over {:?}",
        opts.requests, opts.threads, opts.rps, addr
    );
    let schedule = OpenLoopSchedule::from_trace(&trace, opts.rps);
    let report = client::run_load(&addr, &schedule, opts.rps, opts.requests, opts.threads);
    println!("{}", report.summary_line());
    handle.request();
    let daemon_report = match server.join() {
        Ok(r) => r,
        Err(_) => {
            eprintln!("faas-load: bench daemon panicked");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", daemon_report.summary_line());

    // The whole point: nothing lost, and shards beat the single lock.
    if report.lost() > 0 || report.errors > 0 || daemon_report.protocol_errors > 0 {
        eprintln!("faas-load: bench failed accounting (lost/errors nonzero)");
        return ExitCode::FAILURE;
    }

    let mut json = String::from("{\n  \"benchmark\": \"faascached_serving\",\n");
    json.push_str("  \"api_scaling\": {\n    \"threads\": 8,\n");
    json.push_str(&format!("    \"requests_per_row\": {scale_requests},\n"));
    json.push_str("    \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"shards\": {}, \"throughput_rps\": {:.0}, \"warm\": {}, \
             \"cold\": {}, \"dropped\": {}, \"rejected\": {}}}{}\n",
            row.shards,
            row.throughput_rps,
            row.warm,
            row.cold,
            row.dropped,
            row.rejected,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("    ],\n");
    json.push_str(&format!(
        "    \"speedup\": {:.3}\n  }},\n",
        rows[1].throughput_rps / rows[0].throughput_rps
    ));
    json.push_str(&format!(
        "  \"daemon\": {{\n    \"transport\": \"{}\",\n    \"shards\": {},\n\
         \x20   \"threads\": {},\n    \"requests\": {},\n    \"target_rps\": {:.0},\n\
         \x20   \"attained_rps\": {:.0},\n    \"warm\": {},\n    \"cold\": {},\n\
         \x20   \"dropped\": {},\n    \"rejected\": {},\n    \"throttled\": {},\n\
         \x20   \"errors\": {},\n\
         \x20   \"lost\": {},\n    \"protocol_errors\": {},\n    \"drained\": {},\n\
         \x20   \"latency\": {}\n  }}\n}}\n",
        match &addr {
            BoundAddr::Tcp(_) => "tcp",
            #[cfg(unix)]
            BoundAddr::Unix(_) => "unix",
        },
        wide,
        opts.threads,
        report.requests,
        report.target_rps,
        report.attained_rps,
        report.warm,
        report.cold,
        report.dropped,
        report.rejected,
        report.throttled,
        report.errors,
        report.lost(),
        daemon_report.protocol_errors,
        daemon_report.drained,
        latency_json(&report),
    ));

    if let Err(e) = std::fs::write(out_path, &json) {
        eprintln!("faas-load: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("faas-load: wrote {out_path}");
    if rows[1].throughput_rps <= rows[0].throughput_rps {
        eprintln!(
            "faas-load: WARNING: {}-shard throughput did not beat 1 shard on this host",
            rows[1].shards
        );
    }
    ExitCode::SUCCESS
}

#[cfg(unix)]
fn bench_endpoint() -> Endpoint {
    Endpoint::Unix(
        std::env::temp_dir().join(format!("faascached-bench-{}.sock", std::process::id())),
    )
}

#[cfg(not(unix))]
fn bench_endpoint() -> Endpoint {
    Endpoint::Tcp("127.0.0.1:0".to_string())
}
