//! `faas-router` — a cluster front door for N `faascached` backends.
//!
//! ```text
//! faas-router [--tcp ADDR | --unix PATH] [--http-listen ADDR]
//!             --backends SPEC[,SPEC...] [--balancer POLICY] [--seed S]
//!             [--health-ms MS] [--eject-after N] [--readmit-ms MS]
//!             [--hop-retries N] [--hop-backoff-ms MS]
//!             [--backend-timeout-ms MS] [--spill-watermark N]
//!             [--backend-faults SPEC] [--no-remote-shutdown]
//! ```
//!
//! Each backend SPEC is `HOST:PORT` or `unix:PATH`, optionally suffixed
//! `+http=HOST:PORT` naming the backend's HTTP gateway — with it the
//! health prober uses `GET /healthz` and scrapes the backend's in-flight
//! gauges from `/metrics` (feeding least-loaded routing); without it the
//! prober falls back to binary `Ping`.
//!
//! `--balancer` selects the routing policy — `random`, `round-robin`,
//! `least-loaded`, or `affinity` (default) — the *same* implementations
//! `sim::cluster` runs in virtual time, so measured locality can be
//! compared against the simulator directly. `--spill-watermark N` adds
//! power-of-two-choices spill to affinity, mirroring the daemon's
//! internal `--p2c`.
//!
//! `--backend-faults SPEC` injects deterministic faults on router→backend
//! *data* connections only (probe and register traffic stays clean) —
//! the knob the chaos conformance suite drives. Keyed invokes are
//! retried across the hop (`--hop-retries`), landing on the pinned
//! backend's idempotency cache for exactly-once semantics.
//!
//! Serves until SIGTERM/SIGINT or a protocol Shutdown frame, drains
//! (its `/healthz` flips 503 immediately — before the backends'),
//! prints a final stats line, and exits 0.

use faascache_server::daemon::Endpoint;
use faascache_server::fault::FaultConfig;
use faascache_server::router::{BackendSpec, Router, RouterConfig};
use faascache_server::signal;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: faas-router [--tcp ADDR | --unix PATH] [--http-listen ADDR]\n\
         \x20                  --backends SPEC[,SPEC...]\n\
         \x20                  [--balancer random|round-robin|least-loaded|affinity]\n\
         \x20                  [--seed S] [--health-ms MS] [--eject-after N]\n\
         \x20                  [--readmit-ms MS] [--hop-retries N] [--hop-backoff-ms MS]\n\
         \x20                  [--backend-timeout-ms MS] [--spill-watermark N]\n\
         \x20                  [--backend-faults SPEC] [--no-remote-shutdown]\n\
         \n\
         backend SPEC: HOST:PORT | unix:PATH, optionally +http=HOST:PORT"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => {
            eprintln!("faas-router: bad or missing value for {flag}");
            usage()
        }
    }
}

fn main() -> ExitCode {
    let mut endpoint = Endpoint::Tcp("127.0.0.1:7070".to_string());
    let mut http_listen: Option<String> = None;
    let mut config = RouterConfig::default();
    let mut backends: Vec<BackendSpec> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tcp" => endpoint = Endpoint::Tcp(parse("--tcp", args.next())),
            #[cfg(unix)]
            "--unix" => endpoint = Endpoint::Unix(parse::<String>("--unix", args.next()).into()),
            "--http-listen" => http_listen = Some(parse("--http-listen", args.next())),
            "--backends" => {
                let list: String = parse("--backends", args.next());
                for spec in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                    match spec.parse() {
                        Ok(b) => backends.push(b),
                        Err(e) => {
                            eprintln!("faas-router: --backends: {e}");
                            usage()
                        }
                    }
                }
            }
            "--balancer" => config.balancer = parse("--balancer", args.next()),
            "--seed" => config.seed = parse("--seed", args.next()),
            "--health-ms" => {
                config.health_interval = Duration::from_millis(parse("--health-ms", args.next()))
            }
            "--eject-after" => config.eject_after = parse("--eject-after", args.next()),
            "--readmit-ms" => {
                config.readmit_backoff = Duration::from_millis(parse("--readmit-ms", args.next()))
            }
            "--hop-retries" => config.hop_retries = parse("--hop-retries", args.next()),
            "--hop-backoff-ms" => {
                config.hop_backoff = Duration::from_millis(parse("--hop-backoff-ms", args.next()))
            }
            "--backend-timeout-ms" => {
                config.backend_read_timeout =
                    Duration::from_millis(parse("--backend-timeout-ms", args.next()))
            }
            "--spill-watermark" => {
                config.spill_watermark = Some(parse("--spill-watermark", args.next()))
            }
            "--backend-faults" => {
                let spec: String = parse("--backend-faults", args.next());
                match FaultConfig::parse_spec(&spec) {
                    Ok(cfg) => config.backend_faults = Some(cfg),
                    Err(e) => {
                        eprintln!("faas-router: --backend-faults: {e}");
                        usage()
                    }
                }
            }
            "--no-remote-shutdown" => config.allow_remote_shutdown = false,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("faas-router: unknown flag {other}");
                usage()
            }
        }
    }
    if backends.is_empty() {
        eprintln!("faas-router: --backends is required");
        usage()
    }
    if let Some(faults) = config.backend_faults.filter(|f| f.is_active()) {
        eprintln!(
            "faas-router: CHAOS MODE: injecting faults on every backend data \
             connection (seed={:#x} reset={} torn={} short-read={} timeout={} \
             corrupt={} stall={}@{}ms)",
            faults.seed,
            faults.reset,
            faults.torn_write,
            faults.short_read,
            faults.timeout,
            faults.corrupt,
            faults.stall,
            faults.stall_ms,
        );
    }

    signal::install();
    let balancer = config.balancer;
    let backend_lines: Vec<String> = backends.iter().map(|b| b.to_string()).collect();
    let router = match Router::bind(&endpoint, http_listen.as_deref(), config, backends) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("faas-router: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "faas-router: listening on {:?} balancer={} backends={}",
        router.bound_addr(),
        balancer,
        backend_lines.join(",")
    );
    if let Some(http) = router.bound_http_addr() {
        eprintln!("faas-router: http front on {http:?}");
    }

    let report = router.run();
    println!("{}", report.summary_line());
    ExitCode::SUCCESS
}
