//! `faascached` — the sharded keep-alive invoker daemon.
//!
//! ```text
//! faascached [--tcp ADDR | --unix PATH]
//!            [--shards N] [--mem-mb MB] [--queue-bound N] [--policy GD]
//!            [--functions N] [--seed S] [--reap-ms MS]
//! ```
//!
//! Serves the wire protocol until SIGTERM/SIGINT or a protocol Shutdown
//! frame, drains, prints a final stats line, and exits 0.

use faascache_server::daemon::{Daemon, DaemonConfig, Endpoint};
use faascache_server::{signal, WorkloadConfig};
use faascache_util::MemMb;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: faascached [--tcp ADDR | --unix PATH] [--shards N] [--mem-mb MB]\n\
         \x20                 [--queue-bound N] [--policy GD|TTL|LRU|FREQ|SIZE|LND|HIST]\n\
         \x20                 [--functions N] [--seed S] [--reap-ms MS]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => {
            eprintln!("faascached: bad or missing value for {flag}");
            usage()
        }
    }
}

fn main() -> ExitCode {
    let mut endpoint = Endpoint::Tcp("127.0.0.1:7077".to_string());
    let mut config = DaemonConfig::default();
    let mut workload = WorkloadConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tcp" => endpoint = Endpoint::Tcp(parse("--tcp", args.next())),
            #[cfg(unix)]
            "--unix" => endpoint = Endpoint::Unix(parse::<String>("--unix", args.next()).into()),
            "--shards" => config.shards = parse("--shards", args.next()),
            "--mem-mb" => config.total_mem = MemMb::new(parse("--mem-mb", args.next())),
            "--queue-bound" => config.queue_bound = parse("--queue-bound", args.next()),
            "--policy" => config.policy = parse("--policy", args.next()),
            "--functions" => workload.functions = parse("--functions", args.next()),
            "--seed" => workload.seed = parse("--seed", args.next()),
            "--reap-ms" => {
                config.reap_interval = Duration::from_millis(parse("--reap-ms", args.next()))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("faascached: unknown flag {other}");
                usage()
            }
        }
    }
    if config.shards == 0 {
        eprintln!("faascached: --shards must be at least 1");
        return ExitCode::from(2);
    }

    signal::install();
    let trace = workload.build();
    let registry = trace.registry().clone();
    eprintln!(
        "faascached: workload functions={} seed={:#x} (registry: {} functions)",
        workload.functions,
        workload.seed,
        registry.len()
    );

    let daemon = match Daemon::bind(&endpoint, config, registry) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("faascached: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "faascached: listening on {:?} with {} shards / {} MB / {:?}",
        daemon.bound_addr(),
        config.shards,
        config.total_mem.as_mb(),
        config.policy,
    );

    let report = daemon.run();
    println!("{}", report.summary_line());
    ExitCode::SUCCESS
}
