//! `faascached` — the sharded keep-alive invoker daemon.
//!
//! ```text
//! faascached [--tcp ADDR | --unix PATH] [--http-listen ADDR]
//!            [--io-model threads|epoll]
//!            [--shards N] [--mem-mb MB] [--queue-bound N] [--policy GD]
//!            [--functions N] [--seed S] [--skew zipf:S] [--reap-ms MS]
//!            [--workers N] [--p2c [WATERMARK]] [--rebalance]
//!            [--rebalance-factor F] [--rebalance-ticks K]
//!            [--tenants A,B,...] [--tenant-quota NAME:SPEC]
//!            [--default-tenant-quota SPEC] [--state-dir DIR]
//!            [--faults SPEC] [--fault-KNOB V ...] [--no-remote-shutdown]
//! ```
//!
//! Serves the wire protocol until SIGTERM/SIGINT or a protocol Shutdown
//! frame, drains, prints a final stats line, and exits 0.
//!
//! `--http-listen ADDR` additionally serves an HTTP/1.1 gateway on a
//! second TCP listener, concurrently with the binary listener and under
//! the same io model: `POST /invoke/<fn>`, `PUT /functions/<name>`,
//! `GET /healthz`, `GET /metrics` (Prometheus text exposition).
//!
//! `--io-model epoll` (Linux) serves every connection from one reactor
//! thread over raw epoll with `--workers` invocation threads behind it —
//! thousands of mostly-idle keep-alive connections instead of a thread
//! per socket. The default `threads` model is the original blocking core,
//! kept as a differential reference.
//!
//! Load-aware routing: `--p2c N` enables power-of-two-choices admission
//! with in-flight watermark `N` (default 2); `--rebalance` enables
//! background warm-set re-homing on the reaper cadence, tunable with
//! `--rebalance-factor` (overload threshold as a multiple of the fleet
//! mean, default 1.5) and `--rebalance-ticks` (consecutive overloaded
//! ticks before migrating, default 2). `--skew zipf:<s>` steepens the
//! workload's per-function rate skew — it is part of the workload
//! contract and must match the load generator's flag.
//!
//! Fault injection (chaos testing): `--faults` takes a compact spec like
//! `seed=42,reset=0.01,corrupt=0.005`; individual `--fault-reset 0.01`
//! style flags override single knobs. The `FAASCACHED_FAULTS` environment
//! variable supplies a base spec that flags further override. Knobs:
//! `seed`, `reset`, `torn`, `short-read`, `timeout`, `corrupt`, `stall`,
//! `stall-ms`. Every accepted connection gets a deterministic per-stream
//! schedule derived from the seed and the accept ordinal.
//!
//! Tenant isolation: `--tenants A,B,...` assigns the generated workload's
//! functions round-robin to the named tenants (function `i` goes to
//! tenant `i mod K`); without it every function belongs to the default
//! tenant. `--tenant-quota NAME:inflight=K,mem=MB` (repeatable) sets a
//! named tenant's admission budgets, and `--default-tenant-quota SPEC`
//! sets the budget every unnamed tenant gets. Over-budget tenants see
//! their requests *throttled* (HTTP 429 + `Retry-After`, binary outcome
//! code 4) rather than rejected, and their warm containers become
//! preferred eviction victims until they are back under budget.
//!
//! Durability: `--state-dir DIR` opens a CRC-framed append-only journal
//! in `DIR` (creating it if needed), replays every recorded registration
//! and tenant-quota update into the boot registry before the first
//! accept, and journals each later runtime mutation *before* it is
//! acknowledged on the wire. A SIGKILLed daemon restarted with the same
//! `--state-dir` (and the same workload flags) therefore serves the
//! registry it last acknowledged; torn journal tails from a mid-write
//! crash are truncated to the longest valid prefix on open.

use faascache_platform::tenant::TenantQuota;
use faascache_server::daemon::{Daemon, DaemonConfig, Endpoint};
use faascache_server::fault::FaultConfig;
use faascache_server::journal::{Journal, JournalRecord};
use faascache_server::{signal, WorkloadConfig};
use faascache_util::{MemMb, SimDuration};
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: faascached [--tcp ADDR | --unix PATH] [--http-listen ADDR]\n\
         \x20                 [--shards N] [--mem-mb MB]\n\
         \x20                 [--io-model threads|epoll] [--workers N]\n\
         \x20                 [--queue-bound N] [--policy GD|TTL|LRU|FREQ|SIZE|LND|HIST]\n\
         \x20                 [--functions N] [--seed S] [--skew zipf:S] [--reap-ms MS]\n\
         \x20                 [--p2c WATERMARK] [--rebalance]\n\
         \x20                 [--rebalance-factor F] [--rebalance-ticks K]\n\
         \x20                 [--tenants A,B,...] [--tenant-quota NAME:inflight=K,mem=MB]\n\
         \x20                 [--default-tenant-quota inflight=K,mem=MB]\n\
         \x20                 [--state-dir DIR]\n\
         \x20                 [--faults SPEC] [--fault-seed S] [--fault-reset P]\n\
         \x20                 [--fault-torn P] [--fault-short-read P] [--fault-timeout P]\n\
         \x20                 [--fault-corrupt P] [--fault-stall P] [--fault-stall-ms MS]\n\
         \x20                 [--no-remote-shutdown]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => {
            eprintln!("faascached: bad or missing value for {flag}");
            usage()
        }
    }
}

fn fault_knob(faults: &mut FaultConfig, key: &str, value: String) {
    if let Err(e) = faults.set(key, &value) {
        eprintln!("faascached: {e}");
        usage()
    }
}

fn main() -> ExitCode {
    let mut endpoint = Endpoint::Tcp("127.0.0.1:7077".to_string());
    let mut http_listen: Option<String> = None;
    let mut config = DaemonConfig::default();
    let mut workload = WorkloadConfig::default();
    let mut tenants: Vec<String> = Vec::new();
    let mut state_dir: Option<std::path::PathBuf> = None;

    // Environment supplies the base fault spec; flags override knobs.
    let mut faults = match std::env::var("FAASCACHED_FAULTS") {
        Ok(spec) => match FaultConfig::parse_spec(&spec) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("faascached: FAASCACHED_FAULTS: {e}");
                return ExitCode::from(2);
            }
        },
        Err(_) => FaultConfig::disabled(),
    };

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tcp" => endpoint = Endpoint::Tcp(parse("--tcp", args.next())),
            #[cfg(unix)]
            "--unix" => endpoint = Endpoint::Unix(parse::<String>("--unix", args.next()).into()),
            "--http-listen" => http_listen = Some(parse("--http-listen", args.next())),
            "--shards" => config.shards = parse("--shards", args.next()),
            "--io-model" => config.io_model = parse("--io-model", args.next()),
            "--workers" => config.workers = parse("--workers", args.next()),
            "--mem-mb" => config.total_mem = MemMb::new(parse("--mem-mb", args.next())),
            "--queue-bound" => config.queue_bound = parse("--queue-bound", args.next()),
            "--policy" => config.policy = parse("--policy", args.next()),
            "--functions" => workload.functions = parse("--functions", args.next()),
            "--seed" => workload.seed = parse("--seed", args.next()),
            "--skew" => {
                let spec: String = parse("--skew", args.next());
                match faascache_server::workload::parse_skew(&spec) {
                    Ok(s) => workload.zipf_exponent = s,
                    Err(e) => {
                        eprintln!("faascached: {e}");
                        usage()
                    }
                }
            }
            "--p2c" => config.p2c = Some(parse("--p2c", args.next())),
            "--tenants" => {
                let list: String = parse("--tenants", args.next());
                tenants = list
                    .split(',')
                    .map(str::trim)
                    .filter(|t| !t.is_empty())
                    .map(str::to_string)
                    .collect();
                if tenants.is_empty() {
                    eprintln!("faascached: --tenants needs at least one name");
                    usage()
                }
            }
            "--tenant-quota" => {
                let spec: String = parse("--tenant-quota", args.next());
                let Some((name, quota_spec)) = spec.split_once(':') else {
                    eprintln!("faascached: --tenant-quota wants NAME:inflight=K,mem=MB");
                    usage()
                };
                match TenantQuota::parse(quota_spec) {
                    Ok(q) => config.tenant_quotas.set(name, q),
                    Err(e) => {
                        eprintln!("faascached: --tenant-quota: {e}");
                        usage()
                    }
                }
            }
            "--default-tenant-quota" => {
                let spec: String = parse("--default-tenant-quota", args.next());
                match TenantQuota::parse(&spec) {
                    Ok(q) => config.tenant_quotas.default = q,
                    Err(e) => {
                        eprintln!("faascached: --default-tenant-quota: {e}");
                        usage()
                    }
                }
            }
            "--rebalance" => {
                config.rebalance.get_or_insert_with(Default::default);
            }
            "--rebalance-factor" => {
                let r = config.rebalance.get_or_insert_with(Default::default);
                r.factor = parse("--rebalance-factor", args.next());
            }
            "--rebalance-ticks" => {
                let r = config.rebalance.get_or_insert_with(Default::default);
                r.ticks = parse("--rebalance-ticks", args.next());
            }
            "--reap-ms" => {
                config.reap_interval = Duration::from_millis(parse("--reap-ms", args.next()))
            }
            "--faults" => {
                let spec: String = parse("--faults", args.next());
                match FaultConfig::parse_spec(&spec) {
                    Ok(cfg) => faults = cfg,
                    Err(e) => {
                        eprintln!("faascached: --faults: {e}");
                        usage()
                    }
                }
            }
            "--fault-seed" => fault_knob(&mut faults, "seed", parse("--fault-seed", args.next())),
            "--fault-reset" => {
                fault_knob(&mut faults, "reset", parse("--fault-reset", args.next()))
            }
            "--fault-torn" => fault_knob(&mut faults, "torn", parse("--fault-torn", args.next())),
            "--fault-short-read" => fault_knob(
                &mut faults,
                "short-read",
                parse("--fault-short-read", args.next()),
            ),
            "--fault-timeout" => fault_knob(
                &mut faults,
                "timeout",
                parse("--fault-timeout", args.next()),
            ),
            "--fault-corrupt" => fault_knob(
                &mut faults,
                "corrupt",
                parse("--fault-corrupt", args.next()),
            ),
            "--fault-stall" => {
                fault_knob(&mut faults, "stall", parse("--fault-stall", args.next()))
            }
            "--fault-stall-ms" => fault_knob(
                &mut faults,
                "stall-ms",
                parse("--fault-stall-ms", args.next()),
            ),
            "--state-dir" => state_dir = Some(parse::<String>("--state-dir", args.next()).into()),
            "--no-remote-shutdown" => config.allow_remote_shutdown = false,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("faascached: unknown flag {other}");
                usage()
            }
        }
    }
    if config.shards == 0 {
        eprintln!("faascached: --shards must be at least 1");
        return ExitCode::from(2);
    }
    if faults.is_active() {
        eprintln!(
            "faascached: CHAOS MODE: injecting faults on every connection \
             (seed={:#x} reset={} torn={} short-read={} timeout={} corrupt={} \
             stall={}@{}ms)",
            faults.seed,
            faults.reset,
            faults.torn_write,
            faults.short_read,
            faults.timeout,
            faults.corrupt,
            faults.stall,
            faults.stall_ms,
        );
        config.faults = Some(faults);
    }

    // C10k serving needs one fd per connection; lift the soft limit to
    // the hard limit before the first accept.
    #[cfg(target_os = "linux")]
    if config.io_model == faascache_server::IoModel::Epoll {
        match faascache_server::reactor::raise_nofile_limit() {
            Ok(limit) => eprintln!("faascached: open-file limit {limit}"),
            Err(e) => eprintln!("faascached: could not raise open-file limit: {e}"),
        }
    }

    signal::install();
    let trace = workload.build();
    let mut registry = trace.registry().clone();
    // Round-robin tenant assignment over the generated workload, matching
    // `faas-load --tenant-mod K:R` slicing on the client side.
    if !tenants.is_empty() {
        let ids: Vec<_> = registry.iter().map(|spec| spec.id()).collect();
        for (i, id) in ids.into_iter().enumerate() {
            registry.set_tenant(id, &tenants[i % tenants.len()]);
        }
        eprintln!(
            "faascached: workload tenants: {} (round-robin by function index)",
            tenants.join(",")
        );
    }
    eprintln!(
        "faascached: workload functions={} seed={:#x} (registry: {} functions)",
        workload.functions,
        workload.seed,
        registry.len()
    );

    // Durable state: open the journal, replay recovered mutations into
    // the boot registry and quota table, and hand the journal to the
    // daemon so later runtime mutations are fsynced before their acks.
    if let Some(dir) = &state_dir {
        let (journal, recovered) = match Journal::open(dir) {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("faascached: --state-dir {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        };
        let mut replayed = 0usize;
        let mut skipped = 0usize;
        for record in &recovered.records {
            let applied = match record {
                JournalRecord::Register {
                    name,
                    mem_mb,
                    warm_us,
                    cold_us,
                    tenant,
                } => {
                    // Same idempotent semantics as the runtime RPC: an
                    // existing name (from the workload contract, the
                    // snapshot, or an earlier record) is a no-op.
                    registry.find(name).is_some()
                        || registry
                            .register_in(
                                name,
                                MemMb::new(u64::from(*mem_mb)),
                                SimDuration::from_micros(*warm_us),
                                SimDuration::from_micros(*cold_us),
                                tenant,
                            )
                            .is_ok()
                }
                JournalRecord::SetQuota {
                    tenant,
                    inflight,
                    mem_mb,
                } => {
                    config.tenant_quotas.set(
                        tenant,
                        TenantQuota {
                            inflight: *inflight,
                            mem_mb: *mem_mb,
                        },
                    );
                    true
                }
            };
            if applied {
                replayed += 1;
            } else {
                skipped += 1;
            }
        }
        eprintln!(
            "faascached: state dir {}: replayed {replayed} mutations \
             ({} from snapshot), skipped {skipped}, truncated {} torn bytes \
             (registry: {} functions)",
            dir.display(),
            recovered.snapshot_records,
            recovered.truncated_bytes,
            registry.len()
        );
        config.journal = Some(Arc::new(Mutex::new(journal)));
    }

    let daemon =
        match Daemon::bind_with_http(&endpoint, http_listen.as_deref(), config.clone(), registry) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("faascached: bind failed: {e}");
                return ExitCode::FAILURE;
            }
        };
    eprintln!(
        "faascached: listening on {:?} with {} shards / {} MB / {:?} (io={})",
        daemon.bound_addr(),
        config.shards,
        config.total_mem.as_mb(),
        config.policy,
        config.io_model,
    );
    if let Some(http) = daemon.bound_http_addr() {
        eprintln!("faascached: http gateway on {http:?}");
    }

    let report = daemon.run();
    println!("{}", report.summary_line());
    ExitCode::SUCCESS
}
