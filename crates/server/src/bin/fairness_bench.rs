//! `fairness-bench` — per-tenant isolation benchmark, written as
//! `BENCH_8.json`.
//!
//! ```text
//! fairness-bench [--out PATH] [--requests N] [--mem MB]
//!                [--aggressor-mem MB] [--warm-us US] [--cold-us US]
//! ```
//!
//! Two tenants share one sharded invoker. The **victim** runs four
//! modest functions whose combined warm set fits comfortably; the
//! **aggressor** cycles through sixteen large functions whose combined
//! warm set is ~2× the machine, so without isolation its cold-start
//! churn evicts the victim's warm containers over and over. Three runs
//! replay the *same* deterministic interleaved sequence (virtual time is
//! a function of the request index — identical outcome sequences on
//! every host):
//!
//! 1. **solo** — the victim's requests alone, at their original
//!    positions: its cold-start-rate and latency baseline.
//! 2. **shared, no quotas** — aggressor traffic interleaved, no budgets:
//!    the collateral damage a noisy neighbor inflicts.
//! 3. **shared, quota** — the same traffic with the aggressor under a
//!    memory budget (`--aggressor-mem`, default 768 MB): admission
//!    throttles the aggressor at its budget line and the weighted
//!    greedy-dual eviction prefers its containers as victims, so the
//!    victim's cold-start rate must return to within 1.25× of solo.
//!
//! Each invocation pays its outcome's cost in real time (scaled-down
//! spins, same technique as `skew-bench`), so the victim's measured p95
//! shows the isolation too. The bench fails if any request goes
//! unaccounted, if the aggressor is never throttled in run 3, or if the
//! quota run's victim cold-start rate exceeds 1.25× the solo baseline.

use faascache_core::container::{Container, ContainerId};
use faascache_core::function::{FunctionId, FunctionRegistry, FunctionSpec};
use faascache_core::policy::{KeepAlivePolicy, PolicyKind};
use faascache_platform::sharded::{InvokeOutcome, ShardedConfig, ShardedInvoker};
use faascache_platform::tenant::{TenantQuota, TenantQuotas};
use faascache_util::{MemMb, SimDuration, SimTime};
use std::process::ExitCode;
use std::time::{Duration, Instant};

const SHARDS: usize = 4;
const VICTIM_FNS: usize = 4;
const AGGRESSOR_FNS: usize = 16;
const VICTIM_MB: u64 = 128;
const AGGRESSOR_MB: u64 = 256;

fn usage() -> ! {
    eprintln!(
        "usage: fairness-bench [--out PATH] [--requests N] [--mem MB]\n\
         \x20                     [--aggressor-mem MB] [--warm-us US] [--cold-us US]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => {
            eprintln!("fairness-bench: bad or missing value for {flag}");
            usage()
        }
    }
}

/// Wraps a keep-alive policy and spins the configured service cost on
/// every start — same scaled-down-boot technique as `skew-bench`, so
/// victim latency percentiles reflect real cold-start work.
#[derive(Debug)]
struct ServiceCost {
    inner: Box<dyn KeepAlivePolicy>,
    warm: Duration,
    cold: Duration,
}

fn spin(cost: Duration) {
    let until = Instant::now() + cost;
    while Instant::now() < until {
        std::hint::spin_loop();
    }
}

impl KeepAlivePolicy for ServiceCost {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn on_request(&mut self, spec: &FunctionSpec, now: SimTime) {
        self.inner.on_request(spec, now);
    }

    fn on_warm_start(&mut self, c: &Container, now: SimTime) {
        spin(self.warm);
        self.inner.on_warm_start(c, now);
    }

    fn on_container_created(&mut self, c: &Container, now: SimTime, prewarm: bool) {
        if !prewarm {
            spin(self.cold);
        }
        self.inner.on_container_created(c, now, prewarm);
    }

    fn on_finish(&mut self, c: &Container, now: SimTime) {
        self.inner.on_finish(c, now);
    }

    fn select_victims(&mut self, idle: &[&Container], needed: MemMb) -> Vec<ContainerId> {
        self.inner.select_victims(idle, needed)
    }

    fn supports_incremental(&self) -> bool {
        self.inner.supports_incremental()
    }

    fn peek_victim(&mut self) -> Option<ContainerId> {
        self.inner.peek_victim()
    }

    fn pop_victim(&mut self) -> Option<ContainerId> {
        self.inner.pop_victim()
    }

    fn pop_expired(&mut self, now: SimTime) -> Option<ContainerId> {
        self.inner.pop_expired(now)
    }

    fn on_evicted(&mut self, c: &Container, remaining: usize, now: SimTime) {
        self.inner.on_evicted(c, remaining, now);
    }

    fn expired(&mut self, idle: &[&Container], now: SimTime) -> Vec<ContainerId> {
        self.inner.expired(idle, now)
    }

    fn prewarm_due(&mut self, now: SimTime) -> Vec<FunctionId> {
        self.inner.prewarm_due(now)
    }

    fn priority_of(&self, container: &Container) -> Option<f64> {
        self.inner.priority_of(container)
    }

    fn set_tenant_weights(
        &mut self,
        weights: std::sync::Arc<faascache_core::policy::TenantWeights>,
    ) {
        self.inner.set_tenant_weights(weights);
    }
}

/// Per-tenant outcome tally, kept client-side from each invoke's return.
#[derive(Debug, Default, Clone, Copy)]
struct Tally {
    issued: u64,
    warm: u64,
    cold: u64,
    dropped: u64,
    rejected: u64,
    throttled: u64,
}

impl Tally {
    fn record(&mut self, outcome: InvokeOutcome) {
        self.issued += 1;
        match outcome {
            InvokeOutcome::Warm => self.warm += 1,
            InvokeOutcome::Cold => self.cold += 1,
            InvokeOutcome::Dropped => self.dropped += 1,
            InvokeOutcome::Rejected => self.rejected += 1,
            InvokeOutcome::Throttled => self.throttled += 1,
        }
    }

    fn served(&self) -> u64 {
        self.warm + self.cold
    }

    /// Cold starts per served request — the paper's keep-alive quality
    /// metric, per tenant.
    fn cold_rate(&self) -> f64 {
        if self.served() == 0 {
            0.0
        } else {
            self.cold as f64 / self.served() as f64
        }
    }

    fn accounted(&self) -> u64 {
        self.warm + self.cold + self.dropped + self.rejected + self.throttled
    }
}

#[derive(Debug, Clone, Copy)]
struct Latency {
    p50_us: f64,
    p95_us: f64,
}

fn percentiles(samples: &mut [u64]) -> Latency {
    if samples.is_empty() {
        return Latency {
            p50_us: 0.0,
            p95_us: 0.0,
        };
    }
    samples.sort_unstable();
    let at = |q: f64| samples[((samples.len() - 1) as f64 * q).round() as usize] as f64;
    Latency {
        p50_us: at(0.50),
        p95_us: at(0.95),
    }
}

struct CaseResult {
    label: &'static str,
    victim: Tally,
    aggressor: Tally,
    victim_latency: Latency,
    lost: u64,
}

struct BenchParams {
    mem: MemMb,
    warm_cost: Duration,
    cold_cost: Duration,
}

/// Replays the deterministic interleaved sequence: every 4th request is
/// the victim's (round-robin over its functions), the rest cycle the
/// aggressor's sixteen with a coprime stride. `include_aggressor: false`
/// drops the aggressor's sends but keeps the victim's at their original
/// virtual times, so the solo baseline is the exact same victim workload.
fn run_case(
    label: &'static str,
    params: &BenchParams,
    quotas: TenantQuotas,
    include_aggressor: bool,
    requests: u64,
) -> CaseResult {
    let mut reg = FunctionRegistry::new();
    let victims: Vec<FunctionId> = (0..VICTIM_FNS)
        .map(|i| {
            reg.register_in(
                format!("v{i}"),
                MemMb::new(VICTIM_MB),
                SimDuration::from_micros(2),
                SimDuration::from_micros(100),
                "victim",
            )
            .expect("register victim fn")
        })
        .collect();
    let aggressors: Vec<FunctionId> = (0..AGGRESSOR_FNS)
        .map(|i| {
            reg.register_in(
                format!("a{i}"),
                MemMb::new(AGGRESSOR_MB),
                SimDuration::from_micros(2),
                SimDuration::from_micros(100),
                "aggressor",
            )
            .expect("register aggressor fn")
        })
        .collect();

    let config = ShardedConfig::split(params.mem, SHARDS).with_tenant_quotas(quotas);
    let policies = (0..SHARDS)
        .map(|_| {
            Box::new(ServiceCost {
                inner: PolicyKind::GreedyDual.build(),
                warm: params.warm_cost,
                cold: params.cold_cost,
            }) as Box<dyn KeepAlivePolicy>
        })
        .collect();
    let invoker = ShardedInvoker::new(config, policies);

    let mut victim = Tally::default();
    let mut aggressor = Tally::default();
    let mut victim_us: Vec<u64> = Vec::new();
    for i in 0..requests {
        let is_victim = i % 4 == 0;
        if !is_victim && !include_aggressor {
            continue;
        }
        let f = if is_victim {
            victims[(i / 4) as usize % VICTIM_FNS]
        } else {
            aggressors[(i.wrapping_mul(7)) as usize % AGGRESSOR_FNS]
        };
        let spec = reg.spec(f);
        let at = SimTime::from_micros(i * 500);
        let started = Instant::now();
        let outcome = invoker.invoke(spec, at);
        let took_us = started.elapsed().as_micros() as u64;
        if is_victim {
            victim.record(outcome);
            victim_us.push(took_us);
        } else {
            aggressor.record(outcome);
        }
    }

    let stats = invoker.stats();
    let issued = victim.issued + aggressor.issued;
    let client_accounted = victim.accounted() + aggressor.accounted();
    CaseResult {
        label,
        victim,
        aggressor,
        victim_latency: percentiles(&mut victim_us),
        lost: issued.abs_diff(client_accounted) + client_accounted.abs_diff(stats.accounted()),
    }
}

fn tally_json(t: &Tally) -> String {
    format!(
        "{{\"issued\": {}, \"warm\": {}, \"cold\": {}, \"dropped\": {}, \
         \"rejected\": {}, \"throttled\": {}, \"cold_rate\": {:.4}}}",
        t.issued,
        t.warm,
        t.cold,
        t.dropped,
        t.rejected,
        t.throttled,
        t.cold_rate(),
    )
}

fn case_json(c: &CaseResult) -> String {
    format!(
        "{{\"case\": \"{}\", \"victim\": {}, \"aggressor\": {}, \
         \"victim_p50_us\": {:.0}, \"victim_p95_us\": {:.0}, \"lost\": {}}}",
        c.label,
        tally_json(&c.victim),
        tally_json(&c.aggressor),
        c.victim_latency.p50_us,
        c.victim_latency.p95_us,
        c.lost,
    )
}

fn main() -> ExitCode {
    let mut out_path = "BENCH_8.json".to_string();
    let mut requests: u64 = 120_000;
    let mut mem_mb: u64 = 2048;
    let mut aggressor_mem_mb: u64 = 768;
    let mut warm_us: u64 = 2;
    let mut cold_us: u64 = 100;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = parse("--out", args.next()),
            "--requests" => requests = parse("--requests", args.next()),
            "--mem" => mem_mb = parse("--mem", args.next()),
            "--aggressor-mem" => aggressor_mem_mb = parse("--aggressor-mem", args.next()),
            "--warm-us" => warm_us = parse("--warm-us", args.next()),
            "--cold-us" => cold_us = parse("--cold-us", args.next()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("fairness-bench: unknown flag {other}");
                usage()
            }
        }
    }
    if requests == 0 {
        eprintln!("fairness-bench: --requests must be positive");
        return ExitCode::from(2);
    }

    let params = BenchParams {
        mem: MemMb::new(mem_mb),
        warm_cost: Duration::from_micros(warm_us),
        cold_cost: Duration::from_micros(cold_us),
    };
    eprintln!(
        "fairness-bench: {} requests, {} shards, {} MB total, aggressor budget {} MB",
        requests, SHARDS, mem_mb, aggressor_mem_mb
    );

    let mut quota = TenantQuotas::unlimited();
    quota.set(
        "aggressor",
        TenantQuota {
            inflight: u64::MAX,
            mem_mb: aggressor_mem_mb,
        },
    );
    let cases = [
        run_case(
            "solo_victim",
            &params,
            TenantQuotas::unlimited(),
            false,
            requests,
        ),
        run_case(
            "shared_no_quota",
            &params,
            TenantQuotas::unlimited(),
            true,
            requests,
        ),
        run_case("shared_quota", &params, quota, true, requests),
    ];
    for c in &cases {
        eprintln!(
            "fairness-bench:   {:<16} victim cold_rate={:.4} p95={:.0}us \
             aggressor served={} throttled={} lost={}",
            c.label,
            c.victim.cold_rate(),
            c.victim_latency.p95_us,
            c.aggressor.served(),
            c.aggressor.throttled,
            c.lost,
        );
    }

    let solo_rate = cases[0].victim.cold_rate();
    let quota_rate = cases[2].victim.cold_rate();
    // A solo baseline of ~0 makes the ratio meaningless; floor it at one
    // cold start per victim function (the unavoidable minimum).
    let floor = VICTIM_FNS as f64 / cases[0].victim.served().max(1) as f64;
    let ratio = quota_rate / solo_rate.max(floor);
    let aggressor_throttled = cases[2].aggressor.throttled;
    let lost: u64 = cases.iter().map(|c| c.lost).sum();

    let mut json = String::from("{\n  \"benchmark\": \"faascached_tenant_fairness\",\n");
    json.push_str(&format!(
        "  \"shards\": {SHARDS},\n  \"requests\": {requests},\n  \
         \"total_mem_mb\": {mem_mb},\n  \"aggressor_mem_budget_mb\": {aggressor_mem_mb},\n  \
         \"victim\": {{\"functions\": {VICTIM_FNS}, \"mem_mb\": {VICTIM_MB}}},\n  \
         \"aggressor\": {{\"functions\": {AGGRESSOR_FNS}, \"mem_mb\": {AGGRESSOR_MB}}},\n  \
         \"service_cost_us\": {{\"warm\": {warm_us}, \"cold\": {cold_us}}},\n  \"cases\": [\n"
    ));
    for (i, c) in cases.iter().enumerate() {
        json.push_str(&format!(
            "    {}{}\n",
            case_json(c),
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"victim_cold_ratio_vs_solo\": {ratio:.3},\n  \
         \"aggressor_throttled\": {aggressor_throttled},\n  \"lost\": {lost}\n}}\n"
    ));

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("fairness-bench: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "fairness-bench: wrote {out_path} (victim cold ratio {ratio:.3}, \
         aggressor throttled {aggressor_throttled})"
    );
    if lost > 0 {
        eprintln!("fairness-bench: FAILED: {lost} requests unaccounted for");
        return ExitCode::FAILURE;
    }
    if aggressor_throttled == 0 {
        eprintln!("fairness-bench: FAILED: quota run never throttled the aggressor");
        return ExitCode::FAILURE;
    }
    if ratio > 1.25 {
        eprintln!(
            "fairness-bench: FAILED: victim cold-start rate {quota_rate:.4} is \
             {ratio:.3}x solo ({solo_rate:.4}), above the 1.25x bound"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
