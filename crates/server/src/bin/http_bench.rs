//! `http-bench` — HTTP gateway benchmark for `faascached`.
//!
//! ```text
//! http-bench --bench OUT.json [--requests N] [--threads T]
//!            [--connections C] [--rps R] [--functions N] [--seed S]
//! http-bench --tcp ADDR [--requests N] [--threads T] [--rps R]
//! ```
//!
//! `--bench` self-hosts the comparison: it boots an in-process daemon
//! with both listeners (binary + `--http-listen`) once per io model
//! (threads, then epoll on Linux), replays the shared synthetic trace
//! over HTTP/1.1 keep-alive connections, scrapes `/metrics` and checks
//! the Prometheus counters against the client-side tallies, exercises
//! `PUT /functions/<name>` registration, drains the daemon, and writes
//! the lot to `BENCH_7.json`. Conservation is asserted per model:
//! `warm + cold + dropped + rejected + errors == requests`, with
//! `errors=0 lost=0` required for success.
//!
//! `--tcp` attaches to a running daemon's HTTP listener instead and
//! prints the same `errors= lost=` summary line CI asserts on.

use faascache_server::client::{self, LoadOptions, LoadProto, LoadReport, RetryPolicy};
use faascache_server::daemon::{BoundAddr, Daemon, DaemonConfig, Endpoint, IoModel};
use faascache_server::http::HttpClient;
use faascache_server::WorkloadConfig;
use faascache_trace::replay::OpenLoopSchedule;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: http-bench --bench OUT.json [--requests N] [--threads T]\n\
         \x20                 [--connections C] [--rps R] [--functions N] [--seed S]\n\
         \x20      http-bench --tcp ADDR [--requests N] [--threads T] [--rps R]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => {
            eprintln!("http-bench: bad or missing value for {flag}");
            usage()
        }
    }
}

struct Options {
    target: Option<BoundAddr>,
    requests: u64,
    threads: usize,
    connections: usize,
    rps: f64,
    workload: WorkloadConfig,
    bench_out: Option<String>,
}

fn main() -> ExitCode {
    let mut opts = Options {
        target: None,
        requests: 20_000,
        threads: 4,
        connections: 0,
        rps: 20_000.0,
        workload: WorkloadConfig::default(),
        bench_out: None,
    };

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tcp" => {
                let addr: String = parse("--tcp", args.next());
                match addr.parse() {
                    Ok(sock) => opts.target = Some(BoundAddr::Tcp(sock)),
                    Err(_) => {
                        eprintln!("http-bench: bad tcp address {addr}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--requests" => opts.requests = parse("--requests", args.next()),
            "--threads" => opts.threads = parse("--threads", args.next()),
            "--connections" => opts.connections = parse("--connections", args.next()),
            "--rps" => opts.rps = parse("--rps", args.next()),
            "--functions" => opts.workload.functions = parse("--functions", args.next()),
            "--seed" => opts.workload.seed = parse("--seed", args.next()),
            "--bench" => opts.bench_out = Some(parse("--bench", args.next())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("http-bench: unknown flag {other}");
                usage()
            }
        }
    }
    if opts.threads == 0 || opts.requests == 0 || !opts.rps.is_finite() || opts.rps <= 0.0 {
        eprintln!("http-bench: --threads, --requests and --rps must be positive");
        return ExitCode::from(2);
    }

    if let Some(out) = opts.bench_out.clone() {
        return run_bench(&opts, &out);
    }
    let Some(addr) = opts.target.clone() else {
        eprintln!("http-bench: need --tcp (or --bench)");
        usage()
    };
    let report = run_http_load(&opts, &addr);
    println!("{}", report.summary_line());
    if report.errors > 0 || report.lost() > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn run_http_load(opts: &Options, http_addr: &BoundAddr) -> LoadReport {
    let trace = opts.workload.build();
    let schedule = OpenLoopSchedule::from_trace(&trace, opts.rps);
    client::run_load_with(
        http_addr,
        &schedule,
        LoadOptions {
            target_rps: opts.rps,
            requests: opts.requests,
            threads: opts.threads,
            connections: opts.connections,
            retry: RetryPolicy::none(),
            faults: None,
            read_timeout: Some(Duration::from_secs(5)),
            seed: opts.workload.seed,
            proto: LoadProto::Http,
        },
    )
}

/// The value of a Prometheus sample line, matched on its full name
/// (including labels), e.g. `faascache_requests_total{outcome="warm"}`.
fn metric_value(metrics: &str, name: &str) -> Option<u64> {
    for line in metrics.lines() {
        if let Some(rest) = line.strip_prefix(name) {
            let token = rest.trim();
            if !token.is_empty() {
                return token.parse::<f64>().ok().map(|v| v as u64);
            }
        }
    }
    None
}

struct ModelResult {
    io_model: String,
    report: LoadReport,
    metrics_consistent: bool,
    register_ok: bool,
    drained: bool,
    protocol_errors: u64,
}

fn run_model(io_model: IoModel, opts: &Options) -> Result<ModelResult, String> {
    let trace = opts.workload.build();
    let config = DaemonConfig {
        shards: 4,
        io_model,
        ..DaemonConfig::default()
    };
    let endpoint = Endpoint::Tcp("127.0.0.1:0".to_string());
    let daemon = Daemon::bind_with_http(
        &endpoint,
        Some("127.0.0.1:0"),
        config,
        trace.registry().clone(),
    )
    .map_err(|e| format!("[{io_model}] bind failed: {e}"))?;
    let bin_addr = daemon.bound_addr();
    let http_addr = daemon
        .bound_http_addr()
        .ok_or_else(|| format!("[{io_model}] no http listener bound"))?;
    let handle = daemon.shutdown_handle();
    let server = std::thread::spawn(move || daemon.run());
    if let Err(e) = client::await_ready(&bin_addr, Duration::from_secs(10)) {
        handle.request();
        let _ = server.join();
        return Err(format!("[{io_model}] daemon never became ready: {e}"));
    }

    eprintln!(
        "http-bench: [{io_model}] replaying {} requests at {} rps over {:?}",
        opts.requests, opts.rps, http_addr
    );
    let report = run_http_load(opts, &http_addr);
    println!("{}", report.summary_line());

    // Scrape /metrics while the daemon is quiet: every load response has
    // been received, so the Prometheus counters must match the
    // client-side tallies exactly.
    let mut probe = HttpClient::connect(&http_addr)
        .map_err(|e| format!("[{io_model}] metrics connect failed: {e}"))?;
    probe
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| format!("[{io_model}] metrics socket: {e}"))?;
    let metrics = probe
        .metrics()
        .map_err(|e| format!("[{io_model}] metrics scrape failed: {e}"))?;
    let outcome = |label: &str| {
        metric_value(
            &metrics,
            &format!("faascache_requests_total{{outcome=\"{label}\"}}"),
        )
        .unwrap_or(u64::MAX)
    };
    let metrics_consistent = outcome("warm") == report.warm
        && outcome("cold") == report.cold
        && outcome("dropped") == report.dropped
        && outcome("rejected") == report.rejected
        && metric_value(&metrics, "faascache_http_requests_total")
            .is_some_and(|n| n >= report.requests);
    if !metrics_consistent {
        eprintln!("http-bench: [{io_model}] /metrics disagrees with the load report:\n{metrics}");
    }

    // Exercise the registration path: create once, re-register
    // idempotently, invoke by name.
    let register_ok = (|| -> std::io::Result<bool> {
        let (id, created) = probe.register("http-bench-fn", 256, 1_000, 100_000)?;
        let (id2, created2) = probe.register("http-bench-fn", 256, 1_000, 100_000)?;
        let invoked = probe.invoke_named("http-bench-fn").is_ok();
        Ok(created && !created2 && id == id2 && invoked)
    })()
    .unwrap_or(false);
    drop(probe);

    handle.request();
    let daemon_report = server
        .join()
        .map_err(|_| format!("[{io_model}] daemon panicked"))?;
    println!("{}", daemon_report.summary_line());

    Ok(ModelResult {
        io_model: io_model.to_string(),
        report,
        metrics_consistent,
        register_ok,
        drained: daemon_report.drained,
        protocol_errors: daemon_report.protocol_errors,
    })
}

fn model_json(r: &ModelResult) -> String {
    format!(
        "    {{\n      \"io_model\": \"{}\",\n      \"requests\": {},\n\
         \x20     \"warm\": {},\n      \"cold\": {},\n      \"dropped\": {},\n\
         \x20     \"rejected\": {},\n      \"errors\": {},\n      \"lost\": {},\n\
         \x20     \"target_rps\": {:.0},\n      \"attained_rps\": {:.0},\n\
         \x20     \"metrics_consistent\": {},\n      \"register_ok\": {},\n\
         \x20     \"drained\": {},\n      \"protocol_errors\": {},\n\
         \x20     \"latency\": {{\"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \
         \"max_ms\": {:.4}}}\n    }}",
        r.io_model,
        r.report.requests,
        r.report.warm,
        r.report.cold,
        r.report.dropped,
        r.report.rejected,
        r.report.errors,
        r.report.lost(),
        r.report.target_rps,
        r.report.attained_rps,
        r.metrics_consistent,
        r.register_ok,
        r.drained,
        r.protocol_errors,
        r.report.latency.p50_ms,
        r.report.latency.p95_ms,
        r.report.latency.p99_ms,
        r.report.latency.max_ms,
    )
}

fn run_bench(opts: &Options, out_path: &str) -> ExitCode {
    let mut results = Vec::new();
    match run_model(IoModel::Threads, opts) {
        Ok(r) => results.push(r),
        Err(e) => {
            eprintln!("http-bench: {e}");
            return ExitCode::FAILURE;
        }
    }
    if cfg!(target_os = "linux") {
        match run_model(IoModel::Epoll, opts) {
            Ok(r) => results.push(r),
            Err(e) => {
                eprintln!("http-bench: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        eprintln!("http-bench: skipping epoll model (requires linux)");
    }

    let rows: Vec<String> = results.iter().map(model_json).collect();
    let json = format!(
        "{{\n  \"benchmark\": \"faascached_http_gateway\",\n  \"io_models\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
    );
    if let Err(e) = std::fs::write(out_path, &json) {
        eprintln!("http-bench: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("http-bench: wrote {out_path}");

    let mut ok = true;
    for r in &results {
        let conserved =
            r.report.warm + r.report.cold + r.report.dropped + r.report.rejected + r.report.errors
                == r.report.requests;
        if r.report.errors > 0
            || r.report.lost() > 0
            || !conserved
            || !r.metrics_consistent
            || !r.register_ok
            || !r.drained
            || r.protocol_errors > 0
        {
            eprintln!(
                "http-bench: FAIL [{}] errors={} lost={} conserved={} \
                 metrics_consistent={} register_ok={} drained={} protocol_errors={}",
                r.io_model,
                r.report.errors,
                r.report.lost(),
                conserved,
                r.metrics_consistent,
                r.register_ok,
                r.drained,
                r.protocol_errors,
            );
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
