//! `skew-bench` — load-aware routing benchmark, written as `BENCH_4.json`.
//!
//! ```text
//! skew-bench [--out PATH] [--requests N] [--skew zipf:S]
//!            [--functions N] [--seed S] [--mem MB] [--watermark W]
//!            [--warm-us US] [--cold-us US]
//! ```
//!
//! Three invoker configurations replay the *same* Zipf-skewed trace at
//! equal memory, single-threaded and fully deterministic (virtual time is
//! a function of the request index, rebalance ticks fire at fixed
//! indices — identical outcome sequences on every host):
//!
//! 1. **affinity** — pure hash routing (the PR 2 baseline),
//! 2. **p2c** — power-of-two-choices admission (provably a no-op for a
//!    sequential caller: observed in-flight is always zero, so the row
//!    doubles as a guard that p2c costs nothing when idle),
//! 3. **p2c+rehoming** — p2c plus background warm-set re-homing.
//!
//! Each invocation pays its outcome's cost in real time — a scaled-down
//! container boot (`--cold-us`, default 100 µs) or warm dispatch
//! (`--warm-us`, default 2 µs) spun inside the serve path, where a real
//! per-shard worker would be busy booting. The affinity hash clusters
//! several hot functions onto one shard whose memory slice cannot hold
//! their combined warm sets, so they evict each other and pay boots over
//! and over while other shards sit on idle memory; re-homing moves warm
//! sets onto that idle memory, and measured served throughput rises
//! because cold-start work disappears — keep-alive as a cache, the
//! paper's thesis, applied across shards.
//!
//! A balanced control (uniform rates, same machinery) then shows the
//! routing must not pay for skew that is not there: cold starts may not
//! regress vs pure affinity on the identical request sequence.

use faascache_core::container::{Container, ContainerId};
use faascache_core::function::{FunctionId, FunctionSpec};
use faascache_core::policy::{KeepAlivePolicy, PolicyKind};
use faascache_platform::sharded::{RebalanceConfig, ShardedConfig, ShardedInvoker};
use faascache_server::WorkloadConfig;
use faascache_trace::record::Trace;
use faascache_util::stats::balance_ratio;
use faascache_util::{MemMb, SimDuration, SimTime};
use std::process::ExitCode;
use std::time::{Duration, Instant};

const SHARDS: usize = 8;

fn usage() -> ! {
    eprintln!(
        "usage: skew-bench [--out PATH] [--requests N]\n\
         \x20                 [--skew zipf:S] [--functions N] [--seed S]\n\
         \x20                 [--mem MB] [--watermark W]\n\
         \x20                 [--warm-us US] [--cold-us US]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => {
            eprintln!("skew-bench: bad or missing value for {flag}");
            usage()
        }
    }
}

/// Wraps a keep-alive policy and spins the configured service cost on
/// every start, inside the pool lock — the shard's serial section, where
/// a real per-shard worker would be busy booting or dispatching.
#[derive(Debug)]
struct ServiceCost {
    inner: Box<dyn KeepAlivePolicy>,
    warm: Duration,
    cold: Duration,
}

fn spin(cost: Duration) {
    let until = Instant::now() + cost;
    while Instant::now() < until {
        std::hint::spin_loop();
    }
}

impl KeepAlivePolicy for ServiceCost {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn on_request(&mut self, spec: &FunctionSpec, now: SimTime) {
        self.inner.on_request(spec, now);
    }

    fn on_warm_start(&mut self, c: &Container, now: SimTime) {
        spin(self.warm);
        self.inner.on_warm_start(c, now);
    }

    fn on_container_created(&mut self, c: &Container, now: SimTime, prewarm: bool) {
        if !prewarm {
            spin(self.cold);
        }
        self.inner.on_container_created(c, now, prewarm);
    }

    fn on_finish(&mut self, c: &Container, now: SimTime) {
        self.inner.on_finish(c, now);
    }

    fn select_victims(&mut self, idle: &[&Container], needed: MemMb) -> Vec<ContainerId> {
        self.inner.select_victims(idle, needed)
    }

    fn supports_incremental(&self) -> bool {
        self.inner.supports_incremental()
    }

    fn peek_victim(&mut self) -> Option<ContainerId> {
        self.inner.peek_victim()
    }

    fn pop_victim(&mut self) -> Option<ContainerId> {
        self.inner.pop_victim()
    }

    fn pop_expired(&mut self, now: SimTime) -> Option<ContainerId> {
        self.inner.pop_expired(now)
    }

    fn on_evicted(&mut self, c: &Container, remaining: usize, now: SimTime) {
        self.inner.on_evicted(c, remaining, now);
    }

    fn expired(&mut self, idle: &[&Container], now: SimTime) -> Vec<ContainerId> {
        self.inner.expired(idle, now)
    }

    fn prewarm_due(&mut self, now: SimTime) -> Vec<FunctionId> {
        self.inner.prewarm_due(now)
    }

    fn priority_of(&self, container: &Container) -> Option<f64> {
        self.inner.priority_of(container)
    }
}

#[derive(Clone, Copy)]
enum Routing {
    Affinity,
    P2c,
    P2cRehoming,
}

impl Routing {
    fn label(self) -> &'static str {
        match self {
            Routing::Affinity => "affinity",
            Routing::P2c => "p2c",
            Routing::P2cRehoming => "p2c+rehoming",
        }
    }
}

#[derive(Clone, Copy)]
struct BenchParams {
    mem: MemMb,
    watermark: u64,
    warm_cost: Duration,
    cold_cost: Duration,
}

struct BenchRow {
    label: &'static str,
    throughput_rps: f64,
    warm: u64,
    cold: u64,
    dropped: u64,
    rejected: u64,
    migrations: u64,
    lost: u64,
    balance: f64,
}

fn build_invoker(routing: Routing, p: BenchParams) -> ShardedInvoker {
    let mut config = ShardedConfig::split(p.mem, SHARDS);
    match routing {
        Routing::Affinity => {}
        Routing::P2c => config = config.with_p2c(p.watermark),
        Routing::P2cRehoming => {
            config = config
                .with_p2c(p.watermark)
                .with_rebalance(RebalanceConfig::default())
        }
    }
    let policies = (0..SHARDS)
        .map(|_| {
            Box::new(ServiceCost {
                inner: PolicyKind::GreedyDual.build(),
                warm: p.warm_cost,
                cold: p.cold_cost,
            }) as Box<dyn KeepAlivePolicy>
        })
        .collect();
    ShardedInvoker::new(config, policies)
}

fn row_from(invoker: &ShardedInvoker, issued: u64, label: &'static str, elapsed: f64) -> BenchRow {
    let stats = invoker.stats();
    let per_shard_served: Vec<u64> = invoker
        .per_shard()
        .iter()
        .map(|s| s.counters.warm_starts + s.counters.cold_starts)
        .collect();
    BenchRow {
        label,
        // Served throughput: dropped or rejected requests buy nothing.
        throughput_rps: stats.served() as f64 / elapsed,
        warm: stats.warm,
        cold: stats.cold,
        dropped: stats.dropped,
        rejected: stats.rejected,
        migrations: stats.migrations,
        lost: issued - stats.accounted(),
        balance: balance_ratio(&per_shard_served),
    }
}

/// Deterministic single-threaded replay: virtual time advances with the
/// request index and the rebalancer ticks at fixed indices, so the full
/// outcome sequence is a pure function of the trace — byte-identical
/// across runs and hosts.
fn run_sequential(trace: &Trace, routing: Routing, p: BenchParams, requests: u64) -> BenchRow {
    let invoker = build_invoker(routing, p);
    let registry = trace.registry();
    let functions: Vec<u32> = trace
        .invocations()
        .iter()
        .map(|inv| inv.function.index() as u32)
        .collect();
    let started = Instant::now();
    for i in 0..requests {
        let spec = registry.spec(FunctionId::from_index(
            functions[i as usize % functions.len()],
        ));
        let at = SimTime::from_micros(i * 500);
        invoker.invoke(spec, at);
        if i % 256 == 255 {
            invoker.rebalance_tick(at + SimDuration::from_micros(100));
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    row_from(&invoker, requests, routing.label(), elapsed)
}

fn row_json(row: &BenchRow) -> String {
    format!(
        "{{\"routing\": \"{}\", \"throughput_rps\": {:.0}, \"warm\": {}, \
         \"cold\": {}, \"dropped\": {}, \"rejected\": {}, \"migrations\": {}, \
         \"lost\": {}, \"balance\": {:.2}}}",
        row.label,
        row.throughput_rps,
        row.warm,
        row.cold,
        row.dropped,
        row.rejected,
        row.migrations,
        row.lost,
        row.balance,
    )
}

fn main() -> ExitCode {
    let mut out_path = "BENCH_4.json".to_string();
    let mut requests: u64 = 200_000;
    let mut mem_mb: u64 = 3072;
    let mut watermark: u64 = 4;
    let mut warm_us: u64 = 2;
    let mut cold_us: u64 = 100;
    let mut workload = WorkloadConfig {
        functions: 24,
        zipf_exponent: 1.2,
        ..WorkloadConfig::default()
    };

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = parse("--out", args.next()),
            "--requests" => requests = parse("--requests", args.next()),
            "--functions" => workload.functions = parse("--functions", args.next()),
            "--seed" => workload.seed = parse("--seed", args.next()),
            "--mem" => mem_mb = parse("--mem", args.next()),
            "--watermark" => watermark = parse("--watermark", args.next()),
            "--warm-us" => warm_us = parse("--warm-us", args.next()),
            "--cold-us" => cold_us = parse("--cold-us", args.next()),
            "--skew" => {
                let spec: String = parse("--skew", args.next());
                match faascache_server::workload::parse_skew(&spec) {
                    Ok(s) => workload.zipf_exponent = s,
                    Err(e) => {
                        eprintln!("skew-bench: {e}");
                        usage()
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("skew-bench: unknown flag {other}");
                usage()
            }
        }
    }
    if requests == 0 {
        eprintln!("skew-bench: --requests must be positive");
        return ExitCode::from(2);
    }

    let params = BenchParams {
        mem: MemMb::new(mem_mb),
        watermark,
        warm_cost: Duration::from_micros(warm_us),
        cold_cost: Duration::from_micros(cold_us),
    };
    let skewed_trace = workload.build();
    eprintln!(
        "skew-bench: zipf({}) skew, {} requests, {} shards, {} MB, \
         warm={}us cold={}us",
        workload.zipf_exponent, requests, SHARDS, mem_mb, warm_us, cold_us
    );
    let skewed: Vec<BenchRow> = [Routing::Affinity, Routing::P2c, Routing::P2cRehoming]
        .iter()
        .map(|&routing| {
            let row = run_sequential(&skewed_trace, routing, params, requests);
            eprintln!(
                "skew-bench:   {:<13} {:>9.0} rps  warm={} cold={} dropped={} \
                 balance={:.2} migrations={} lost={}",
                row.label,
                row.throughput_rps,
                row.warm,
                row.cold,
                row.dropped,
                row.balance,
                row.migrations,
                row.lost
            );
            row
        })
        .collect();
    let gain = skewed[2].throughput_rps / skewed[0].throughput_rps;

    // Balanced control: uniform rates, deterministic sequential replay.
    // Load-aware routing must not pay for skew that is not there — cold
    // starts may not regress vs pure affinity.
    let balanced_cfg = WorkloadConfig {
        zipf_exponent: 0.0,
        ..workload
    };
    let balanced_trace = balanced_cfg.build();
    eprintln!("skew-bench: balanced control (zipf 0, sequential)");
    let balanced: Vec<BenchRow> = [Routing::Affinity, Routing::P2cRehoming]
        .iter()
        .map(|&routing| {
            let row = run_sequential(&balanced_trace, routing, params, requests);
            eprintln!(
                "skew-bench:   {:<13} warm={} cold={} migrations={} lost={}",
                row.label, row.warm, row.cold, row.migrations, row.lost
            );
            row
        })
        .collect();
    let cold_regression = balanced[1].cold > balanced[0].cold;

    let lost: u64 = skewed.iter().chain(balanced.iter()).map(|r| r.lost).sum();
    let mut json = String::from("{\n  \"benchmark\": \"faascached_skew_routing\",\n");
    json.push_str(&format!(
        "  \"shards\": {SHARDS},\n  \
         \"requests_per_row\": {requests},\n  \"total_mem_mb\": {mem_mb},\n  \
         \"p2c_watermark\": {watermark},\n  \
         \"service_cost_us\": {{\"warm\": {warm_us}, \"cold\": {cold_us}}},\n"
    ));
    json.push_str(&format!(
        "  \"skewed\": {{\n    \"zipf_exponent\": {},\n    \"rows\": [\n",
        workload.zipf_exponent
    ));
    for (i, row) in skewed.iter().enumerate() {
        json.push_str(&format!(
            "      {}{}\n",
            row_json(row),
            if i + 1 < skewed.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "    ],\n    \"throughput_gain\": {gain:.3}\n  }},\n"
    ));
    json.push_str(
        "  \"balanced\": {\n    \"zipf_exponent\": 0.0,\n    \"mode\": \"sequential\",\n    \
         \"rows\": [\n",
    );
    for (i, row) in balanced.iter().enumerate() {
        json.push_str(&format!(
            "      {}{}\n",
            row_json(row),
            if i + 1 < balanced.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "    ],\n    \"cold_regression\": {cold_regression}\n  }}\n}}\n"
    ));

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("skew-bench: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("skew-bench: wrote {out_path} (gain={gain:.3}, cold_regression={cold_regression})");
    if lost > 0 {
        eprintln!("skew-bench: FAILED: {lost} requests unaccounted for");
        return ExitCode::FAILURE;
    }
    if gain < 1.15 {
        eprintln!("skew-bench: WARNING: p2c+rehoming gain {gain:.3} below the 1.15 target");
    }
    if cold_regression {
        eprintln!("skew-bench: WARNING: cold starts regressed on the balanced workload");
    }
    ExitCode::SUCCESS
}
