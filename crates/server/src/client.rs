//! Protocol client and the open-loop load generator behind `faas-load`.
//!
//! [`Client`] is a blocking single-connection protocol client, optionally
//! wrapped in deterministic fault injection
//! ([`connect_with_faults`](Client::connect_with_faults)). [`run_load`]
//! replays an [`OpenLoopSchedule`] against a daemon from several threads —
//! each thread owns its own connection and sends its slice of the
//! schedule at the scheduled wall-clock offsets (open loop: a slow
//! response never delays later sends; the generator just falls behind and
//! the attained rate shows it).
//!
//! [`run_load_with`] adds the resilience knobs: a [`RetryPolicy`]
//! (exponential backoff with full jitter, per-request idempotency keys so
//! retries are exactly-once on the daemon side) and client-side fault
//! injection. The report accounts for every request under both entry
//! points: `warm + cold + dropped + rejected + errors == requests`,
//! exactly, even when injected resets kill connections mid-frame —
//! retries are counted separately and never double-book a request.

use crate::daemon::BoundAddr;
use crate::fault::{FaultConfig, FaultPlan, FaultStats, FaultyStream};
use crate::http::HttpClient;
use crate::proto::{self, Request, Response};
use faascache_platform::sharded::{InvokeOutcome, InvokerStats};
use faascache_trace::replay::OpenLoopSchedule;
use faascache_util::backoff::ExpBackoff;
use faascache_util::rng::Pcg64;
use faascache_util::stats::LatencySummary;
use std::io::{self, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::{Duration, Instant};

enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(timeout),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// A blocking client over one daemon connection.
pub struct Client {
    stream: FaultyStream<Conn>,
}

impl Client {
    /// Connects to a daemon at the given bound address (clean transport).
    pub fn connect(addr: &BoundAddr) -> io::Result<Client> {
        Self::connect_with_faults(addr, FaultPlan::disabled())
    }

    /// Connects with client-side fault injection: every read and write on
    /// the connection is subject to `plan`'s deterministic schedule.
    pub fn connect_with_faults(addr: &BoundAddr, plan: FaultPlan) -> io::Result<Client> {
        let conn = match addr {
            BoundAddr::Tcp(sock) => {
                let s = TcpStream::connect(sock)?;
                s.set_nodelay(true)?;
                Conn::Tcp(s)
            }
            #[cfg(unix)]
            BoundAddr::Unix(path) => Conn::Unix(UnixStream::connect(path)?),
        };
        Ok(Client {
            stream: FaultyStream::new(conn, plan),
        })
    }

    /// Sets the socket read timeout. Under fault injection a lost
    /// response must surface as a retryable error instead of a hang, so
    /// the retrying load generator always sets one.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.get_ref().set_read_timeout(timeout)
    }

    /// Faults injected into this connection so far (all zero on a clean
    /// transport).
    pub fn fault_stats(&self) -> FaultStats {
        self.stream.stats()
    }

    fn call(&mut self, request: Request) -> io::Result<Response> {
        proto::write_frame(&mut self.stream, &request.encode())?;
        match proto::read_frame(&mut self.stream)? {
            Some(payload) => Response::decode(&payload),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            )),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.call(Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Invokes function `function` and returns its outcome.
    pub fn invoke(&mut self, function: u32) -> io::Result<InvokeOutcome> {
        match self.call(Request::Invoke { function })? {
            Response::Invoked(outcome) => Ok(outcome),
            other => Err(unexpected(other)),
        }
    }

    /// Invokes function `function` under idempotency key `key`: if the
    /// daemon already executed this key (a retry whose response was
    /// lost), the recorded outcome is returned instead of re-executing.
    pub fn invoke_keyed(&mut self, function: u32, key: u64) -> io::Result<InvokeOutcome> {
        match self.call(Request::InvokeKeyed { function, key })? {
            Response::Invoked(outcome) => Ok(outcome),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the daemon's aggregate invoker statistics.
    pub fn stats(&mut self) -> io::Result<InvokerStats> {
        match self.call(Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the daemon to drain and exit.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.call(Request::Shutdown)? {
            Response::ShutdownStarted => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Registers (or looks up) a function by name under the default
    /// tenant. Returns the function's index and whether this call created
    /// it; re-registering an existing name is idempotent and returns
    /// `created == false`.
    pub fn register(
        &mut self,
        name: &str,
        mem_mb: u32,
        warm_us: u64,
        cold_us: u64,
    ) -> io::Result<(u32, bool)> {
        self.register_in(name, mem_mb, warm_us, cold_us, "")
    }

    /// [`Self::register`] with an owning tenant name (`""` = default
    /// tenant). The tenant binds on creation only: re-registering an
    /// existing function name never re-homes it.
    pub fn register_in(
        &mut self,
        name: &str,
        mem_mb: u32,
        warm_us: u64,
        cold_us: u64,
        tenant: &str,
    ) -> io::Result<(u32, bool)> {
        let request = Request::Register {
            name: name.to_string(),
            mem_mb,
            warm_us,
            cold_us,
            tenant: tenant.to_string(),
        };
        match self.call(request)? {
            Response::Registered { function, created } => Ok((function, created)),
            other => Err(unexpected(other)),
        }
    }

    /// Updates a tenant's admission budget at runtime (`u64::MAX` =
    /// unlimited for either knob). Returns whether the daemon applied it
    /// to a live accounting slot (`false` = stored for the tenant's
    /// first sight).
    pub fn set_tenant_quota(
        &mut self,
        tenant: &str,
        inflight: u64,
        mem_mb: u64,
    ) -> io::Result<bool> {
        let request = Request::SetTenantQuota {
            tenant: tenant.to_string(),
            inflight,
            mem_mb,
        };
        match self.call(request)? {
            Response::QuotaSet { live } => Ok(live),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(response: Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response {response:?}"),
    )
}

/// Wait for a daemon to accept connections (it binds before `run`, but a
/// test may race the spawn). Retries for up to `timeout`.
pub fn await_ready(addr: &BoundAddr, timeout: Duration) -> io::Result<()> {
    let deadline = Instant::now() + timeout;
    loop {
        match Client::connect(addr).and_then(|mut c| c.ping()) {
            Ok(()) => return Ok(()),
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Retry discipline of the load generator: how many attempts a request
/// gets and how they are spaced.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per request, including the first (1 = no retries).
    pub max_attempts: u32,
    /// Jittered exponential delay before attempt `k+1` after attempt `k`
    /// fails.
    pub backoff: ExpBackoff,
}

impl RetryPolicy {
    /// No retries: each request gets exactly one attempt.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: ExpBackoff::new(Duration::ZERO, Duration::ZERO),
        }
    }

    /// Up to `retries` retries after the first attempt, backed off
    /// exponentially from `base` up to `cap` with full jitter.
    pub fn retries(retries: u32, base: Duration, cap: Duration) -> Self {
        RetryPolicy {
            max_attempts: retries.saturating_add(1),
            backoff: ExpBackoff::new(base, cap),
        }
    }

    /// Whether any request may be retried. Retrying requests are sent
    /// with idempotency keys so the daemon deduplicates re-executions.
    pub fn is_enabled(&self) -> bool {
        self.max_attempts > 1
    }
}

/// Which wire protocol the load generator speaks to the daemon.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum LoadProto {
    /// The length-prefixed binary protocol (the daemon's main listener).
    #[default]
    Binary,
    /// HTTP/1.1 keep-alive against the daemon's `--http-listen` gateway
    /// (`POST /invoke/<fn>`; retries carry an `Idempotency-Key` header).
    Http,
}

impl std::str::FromStr for LoadProto {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "binary" => Ok(LoadProto::Binary),
            "http" => Ok(LoadProto::Http),
            other => Err(format!("unknown protocol {other:?} (binary|http)")),
        }
    }
}

impl std::fmt::Display for LoadProto {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LoadProto::Binary => "binary",
            LoadProto::Http => "http",
        })
    }
}

/// One load-generator connection, over either protocol. Both arms expose
/// the same invoke/invoke_keyed surface, so the replay loop is
/// protocol-agnostic.
enum LoadConn {
    Bin(Client),
    Http(HttpClient),
}

impl LoadConn {
    fn invoke(&mut self, function: u32) -> io::Result<InvokeOutcome> {
        match self {
            LoadConn::Bin(c) => c.invoke(function),
            LoadConn::Http(c) => c.invoke(function),
        }
    }

    fn invoke_keyed(&mut self, function: u32, key: u64) -> io::Result<InvokeOutcome> {
        match self {
            LoadConn::Bin(c) => c.invoke_keyed(function, key),
            LoadConn::Http(c) => c.invoke_keyed(function, key),
        }
    }
}

/// Everything [`run_load_with`] needs beyond the address and schedule.
#[derive(Debug, Clone, Copy)]
pub struct LoadOptions {
    /// The rate the schedule was built for (reported, not enforced here).
    pub target_rps: f64,
    /// Total requests to submit across all threads.
    pub requests: u64,
    /// Number of load threads, each owning its own connection.
    pub threads: usize,
    /// Total persistent connections to multiplex requests across
    /// (`faas-load --connections N`). `0` keeps the legacy
    /// connection-per-thread shape; otherwise each thread round-robins
    /// its slice of the schedule over `connections / threads` (at least
    /// one) private connections — realistic closed-loop pressure on a
    /// reactor that must juggle many mostly-idle sockets.
    pub connections: usize,
    /// Retry discipline for failed requests.
    pub retry: RetryPolicy,
    /// Client-side fault injection applied to every outbound connection
    /// (each connection gets its own deterministic plan).
    pub faults: Option<FaultConfig>,
    /// Socket read timeout. Required in practice whenever faults or
    /// retries are on: a response lost to a server-side reset must turn
    /// into a retryable error, not a hang.
    pub read_timeout: Option<Duration>,
    /// Seed for backoff jitter (split per thread).
    pub seed: u64,
    /// Wire protocol to speak (`faas-load --proto`). [`LoadProto::Http`]
    /// requires `addr` to be the daemon's HTTP listener address.
    pub proto: LoadProto,
}

impl LoadOptions {
    /// Plain options: no retries, no faults, no read timeout.
    pub fn new(target_rps: f64, requests: u64, threads: usize) -> Self {
        LoadOptions {
            target_rps,
            requests,
            threads,
            connections: 0,
            retry: RetryPolicy::none(),
            faults: None,
            read_timeout: None,
            seed: 0,
            proto: LoadProto::Binary,
        }
    }
}

/// Outcome tallies and latency of one load run; every submitted request
/// lands in exactly one bucket.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests submitted across all threads.
    pub requests: u64,
    /// Served from a warm container.
    pub warm: u64,
    /// Served with a cold start.
    pub cold: u64,
    /// Dropped by a pool (no capacity).
    pub dropped: u64,
    /// Rejected at admission (backpressure or drain).
    pub rejected: u64,
    /// Throttled by the function's tenant budget (HTTP 429 with
    /// `Retry-After`, binary outcome code 4).
    pub throttled: u64,
    /// Extra attempts made beyond each request's first (a request retried
    /// twice counts 2 here but still lands in exactly one outcome
    /// bucket).
    pub retried: u64,
    /// Connections opened over the run (initial pool plus reconnects
    /// after transport errors).
    pub connections: u64,
    /// Requests whose every attempt failed (transport/protocol).
    pub errors: u64,
    /// Wall-clock span from first send to last response.
    pub elapsed: Duration,
    /// The rate the schedule asked for.
    pub target_rps: f64,
    /// `requests / elapsed`.
    pub attained_rps: f64,
    /// Client-observed request→response latency (includes retry time).
    pub latency: LatencySummary,
}

impl LoadReport {
    /// Requests that got any reply
    /// (`warm+cold+dropped+rejected+throttled`).
    pub fn answered(&self) -> u64 {
        self.warm + self.cold + self.dropped + self.rejected + self.throttled
    }

    /// Requests unaccounted for: zero means nothing was lost.
    pub fn lost(&self) -> u64 {
        self.requests - self.answered() - self.errors
    }

    /// The one-line summary `faas-load` prints.
    pub fn summary_line(&self) -> String {
        format!(
            "faas-load: requests={} warm={} cold={} dropped={} rejected={} \
             throttled={} connections={} retried={} errors={} lost={} \
             attained_rps={:.0} (target {:.0}) \
             p50={:.3}ms p95={:.3}ms p99={:.3}ms",
            self.requests,
            self.warm,
            self.cold,
            self.dropped,
            self.rejected,
            self.throttled,
            self.connections,
            self.retried,
            self.errors,
            self.lost(),
            self.attained_rps,
            self.target_rps,
            self.latency.p50_ms,
            self.latency.p95_ms,
            self.latency.p99_ms,
        )
    }
}

/// A per-run idempotency-key prefix: the low 32 bits are left for the
/// request index, the high 32 come from a mix of a process-local sequence
/// and the wall clock, so keys from different runs (or different load
/// processes against one daemon) almost surely never collide.
fn run_key_prefix() -> u64 {
    static RUN_SEQ: AtomicU64 = AtomicU64::new(1);
    let seq = RUN_SEQ.fetch_add(1, Ordering::Relaxed);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mixed = (nanos ^ seq.rotate_left(48)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    mixed & 0xFFFF_FFFF_0000_0000
}

/// Replays `requests` sends of `schedule` (cycling it as needed) against
/// the daemon at `addr` from `opts.threads` connections, with the retry
/// and fault-injection behavior described by `opts`.
///
/// The schedule is split round-robin: thread `t` sends events
/// `t, t+threads, t+2*threads, …` at their scheduled offsets from a
/// common start instant, so the aggregate arrival process is exactly the
/// schedule's.
///
/// Failure semantics: an attempt that errors tears down the thread's
/// connection; the next attempt reconnects (under a fresh fault plan when
/// client faults are on). With retries enabled, requests are sent as
/// [`Request::InvokeKeyed`] so a retry whose predecessor's response was
/// lost is answered from the daemon's idempotency cache instead of
/// re-executing. A request whose every attempt fails counts one error;
/// conservation `warm+cold+dropped+rejected+errors == requests` holds
/// exactly regardless of the injected fault mix.
///
/// # Panics
///
/// Panics if `opts.threads == 0`, `opts.retry.max_attempts == 0`, or the
/// schedule is empty.
pub fn run_load_with(
    addr: &BoundAddr,
    schedule: &OpenLoopSchedule,
    opts: LoadOptions,
) -> LoadReport {
    assert!(opts.threads > 0, "need at least one load thread");
    assert!(opts.retry.max_attempts > 0, "need at least one attempt");
    let threads = opts.threads;
    let requests = opts.requests;
    let warm = AtomicU64::new(0);
    let cold = AtomicU64::new(0);
    let dropped = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let throttled = AtomicU64::new(0);
    let retried = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    // Connection ordinal across all threads: each (re)connect under
    // faults gets a distinct stream id, hence a distinct fault plan.
    let conn_seq = AtomicU64::new(0);
    let conns_made = AtomicU64::new(0);
    let key_prefix = run_key_prefix();
    let keyed = opts.retry.is_enabled();
    let start = Instant::now() + Duration::from_millis(20);
    let mut lat_per_thread: Vec<Vec<f64>> = Vec::new();

    thread::scope(|scope| {
        let mut joins = Vec::new();
        for t in 0..threads {
            let warm = &warm;
            let cold = &cold;
            let dropped = &dropped;
            let rejected = &rejected;
            let throttled = &throttled;
            let retried = &retried;
            let errors = &errors;
            let conn_seq = &conn_seq;
            let conns_made = &conns_made;
            let opts = &opts;
            joins.push(scope.spawn(move || {
                let mut latencies = Vec::new();
                // Jitter RNG: deterministic per (seed, thread).
                let mut rng = Pcg64::seed_from_u64(opts.seed).split(t as u64 + 1);
                let connect = |conn_seq: &AtomicU64| -> io::Result<LoadConn> {
                    let plan = match opts.faults {
                        Some(cfg) if cfg.is_active() => {
                            cfg.plan(conn_seq.fetch_add(1, Ordering::Relaxed))
                        }
                        _ => FaultPlan::disabled(),
                    };
                    let conn = match opts.proto {
                        LoadProto::Binary => {
                            let client = Client::connect_with_faults(addr, plan)?;
                            client.set_read_timeout(opts.read_timeout)?;
                            LoadConn::Bin(client)
                        }
                        LoadProto::Http => {
                            let client = HttpClient::connect_with_faults(addr, plan)?;
                            client.set_read_timeout(opts.read_timeout)?;
                            LoadConn::Http(client)
                        }
                    };
                    conns_made.fetch_add(1, Ordering::Relaxed);
                    Ok(conn)
                };
                // This thread's slice of the connection pool: requests
                // rotate across the slots, so every connection carries
                // traffic while the rest sit idle on the daemon — the
                // access pattern a reactor must multiplex.
                let per_thread = if opts.connections == 0 {
                    1
                } else {
                    opts.connections.div_ceil(threads)
                };
                let mut pool: Vec<Option<LoadConn>> = (0..per_thread).map(|_| None).collect();
                for (i, event) in schedule.cycle().take(requests as usize).enumerate() {
                    if i % threads != t {
                        continue;
                    }
                    let slot = (i / threads) % per_thread;
                    let due = start + event.offset;
                    let now = Instant::now();
                    if due > now {
                        thread::sleep(due - now);
                    }
                    let function = event.function.index() as u32;
                    let key = key_prefix | (i as u64 & 0xFFFF_FFFF);
                    let issued = Instant::now();
                    let mut attempt = 0u32;
                    loop {
                        let result = (|| -> io::Result<InvokeOutcome> {
                            if pool[slot].is_none() {
                                pool[slot] = Some(connect(conn_seq)?);
                            }
                            let c = pool[slot].as_mut().expect("just connected");
                            if keyed {
                                c.invoke_keyed(function, key)
                            } else {
                                c.invoke(function)
                            }
                        })();
                        match result {
                            Ok(outcome) => {
                                latencies.push(issued.elapsed().as_secs_f64() * 1e3);
                                match outcome {
                                    InvokeOutcome::Warm => warm.fetch_add(1, Ordering::Relaxed),
                                    InvokeOutcome::Cold => cold.fetch_add(1, Ordering::Relaxed),
                                    InvokeOutcome::Dropped => {
                                        dropped.fetch_add(1, Ordering::Relaxed)
                                    }
                                    InvokeOutcome::Rejected => {
                                        rejected.fetch_add(1, Ordering::Relaxed)
                                    }
                                    InvokeOutcome::Throttled => {
                                        throttled.fetch_add(1, Ordering::Relaxed)
                                    }
                                };
                                break;
                            }
                            Err(_) => {
                                // The connection is suspect (reset, torn
                                // frame, timeout): drop it so the next
                                // attempt starts clean.
                                pool[slot] = None;
                                attempt += 1;
                                if attempt >= opts.retry.max_attempts {
                                    errors.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                                retried.fetch_add(1, Ordering::Relaxed);
                                thread::sleep(opts.retry.backoff.delay(attempt - 1, &mut rng));
                            }
                        }
                    }
                }
                latencies
            }));
        }
        for join in joins {
            lat_per_thread.push(join.join().expect("load thread panicked"));
        }
    });

    let elapsed = start.elapsed();
    let all_latencies: Vec<f64> = lat_per_thread.into_iter().flatten().collect();
    let report = LoadReport {
        requests,
        warm: warm.into_inner(),
        cold: cold.into_inner(),
        dropped: dropped.into_inner(),
        rejected: rejected.into_inner(),
        throttled: throttled.into_inner(),
        retried: retried.into_inner(),
        connections: conns_made.into_inner(),
        errors: errors.into_inner(),
        elapsed,
        target_rps: opts.target_rps,
        attained_rps: requests as f64 / elapsed.as_secs_f64().max(1e-9),
        latency: LatencySummary::from_samples_ms(&all_latencies),
    };
    debug_assert_eq!(report.lost(), 0, "conservation bug in run_load_with");
    report
}

/// [`run_load_with`] with no retries, no faults, and no read timeout —
/// the original plain entry point.
///
/// # Panics
///
/// Panics if `threads == 0` or the schedule is empty.
pub fn run_load(
    addr: &BoundAddr,
    schedule: &OpenLoopSchedule,
    target_rps: f64,
    requests: u64,
    threads: usize,
) -> LoadReport {
    run_load_with(
        addr,
        schedule,
        LoadOptions::new(target_rps, requests, threads),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_policy_attempt_math() {
        assert_eq!(RetryPolicy::none().max_attempts, 1);
        assert!(!RetryPolicy::none().is_enabled());
        let p = RetryPolicy::retries(3, Duration::from_millis(1), Duration::from_millis(8));
        assert_eq!(p.max_attempts, 4);
        assert!(p.is_enabled());
        let saturated =
            RetryPolicy::retries(u32::MAX, Duration::from_millis(1), Duration::from_millis(8));
        assert_eq!(saturated.max_attempts, u32::MAX);
    }

    #[test]
    fn run_key_prefixes_leave_the_low_32_bits_clear() {
        let a = run_key_prefix();
        let b = run_key_prefix();
        assert_eq!(a & 0xFFFF_FFFF, 0);
        assert_eq!(b & 0xFFFF_FFFF, 0);
        assert_ne!(a, b, "consecutive runs must use distinct key spaces");
    }
}
