//! Protocol client and the open-loop load generator behind `faas-load`.
//!
//! [`Client`] is a blocking single-connection protocol client. [`run_load`]
//! replays an [`OpenLoopSchedule`] against a daemon from several threads —
//! each thread owns its own connection and sends its slice of the
//! schedule at the scheduled wall-clock offsets (open loop: a slow
//! response never delays later sends; the generator just falls behind and
//! the attained rate shows it). The report accounts for every request:
//! `warm + cold + dropped + rejected + errors == requests`.

use crate::daemon::BoundAddr;
use crate::proto::{self, Request, Response};
use faascache_platform::sharded::{InvokeOutcome, InvokerStats};
use faascache_trace::replay::OpenLoopSchedule;
use faascache_util::stats::LatencySummary;
use std::io::{self, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::{Duration, Instant};

enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// A blocking client over one daemon connection.
pub struct Client {
    conn: Conn,
}

impl Client {
    /// Connects to a daemon at the given bound address.
    pub fn connect(addr: &BoundAddr) -> io::Result<Client> {
        let conn = match addr {
            BoundAddr::Tcp(sock) => {
                let s = TcpStream::connect(sock)?;
                s.set_nodelay(true)?;
                Conn::Tcp(s)
            }
            #[cfg(unix)]
            BoundAddr::Unix(path) => Conn::Unix(UnixStream::connect(path)?),
        };
        Ok(Client { conn })
    }

    fn call(&mut self, request: Request) -> io::Result<Response> {
        proto::write_frame(&mut self.conn, &request.encode())?;
        match proto::read_frame(&mut self.conn)? {
            Some(payload) => Response::decode(&payload),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            )),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.call(Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Invokes function `function` and returns its outcome.
    pub fn invoke(&mut self, function: u32) -> io::Result<InvokeOutcome> {
        match self.call(Request::Invoke { function })? {
            Response::Invoked(outcome) => Ok(outcome),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the daemon's aggregate invoker statistics.
    pub fn stats(&mut self) -> io::Result<InvokerStats> {
        match self.call(Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the daemon to drain and exit.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.call(Request::Shutdown)? {
            Response::ShutdownStarted => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(response: Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response {response:?}"),
    )
}

/// Wait for a daemon to accept connections (it binds before `run`, but a
/// test may race the spawn). Retries for up to `timeout`.
pub fn await_ready(addr: &BoundAddr, timeout: Duration) -> io::Result<()> {
    let deadline = Instant::now() + timeout;
    loop {
        match Client::connect(addr).and_then(|mut c| c.ping()) {
            Ok(()) => return Ok(()),
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Outcome tallies and latency of one load run; every submitted request
/// lands in exactly one bucket.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests submitted across all threads.
    pub requests: u64,
    /// Served from a warm container.
    pub warm: u64,
    /// Served with a cold start.
    pub cold: u64,
    /// Dropped by a pool (no capacity).
    pub dropped: u64,
    /// Rejected at admission (backpressure or drain).
    pub rejected: u64,
    /// Transport/protocol failures (connection lost mid-run).
    pub errors: u64,
    /// Wall-clock span from first send to last response.
    pub elapsed: Duration,
    /// The rate the schedule asked for.
    pub target_rps: f64,
    /// `requests / elapsed`.
    pub attained_rps: f64,
    /// Client-observed request→response latency.
    pub latency: LatencySummary,
}

impl LoadReport {
    /// Requests that got any reply (`warm+cold+dropped+rejected`).
    pub fn answered(&self) -> u64 {
        self.warm + self.cold + self.dropped + self.rejected
    }

    /// Requests unaccounted for: zero means nothing was lost.
    pub fn lost(&self) -> u64 {
        self.requests - self.answered() - self.errors
    }

    /// The one-line summary `faas-load` prints.
    pub fn summary_line(&self) -> String {
        format!(
            "faas-load: requests={} warm={} cold={} dropped={} rejected={} \
             errors={} lost={} attained_rps={:.0} (target {:.0}) \
             p50={:.3}ms p95={:.3}ms p99={:.3}ms",
            self.requests,
            self.warm,
            self.cold,
            self.dropped,
            self.rejected,
            self.errors,
            self.lost(),
            self.attained_rps,
            self.target_rps,
            self.latency.p50_ms,
            self.latency.p95_ms,
            self.latency.p99_ms,
        )
    }
}

/// Replays `requests` sends of `schedule` (cycling it as needed) against
/// the daemon at `addr` from `threads` connections.
///
/// The schedule is split round-robin: thread `t` sends events
/// `t, t+threads, t+2*threads, …` at their scheduled offsets from a
/// common start instant, so the aggregate arrival process is exactly the
/// schedule's.
///
/// # Panics
///
/// Panics if `threads == 0` or the schedule is empty.
pub fn run_load(
    addr: &BoundAddr,
    schedule: &OpenLoopSchedule,
    target_rps: f64,
    requests: u64,
    threads: usize,
) -> LoadReport {
    assert!(threads > 0, "need at least one load thread");
    let warm = AtomicU64::new(0);
    let cold = AtomicU64::new(0);
    let dropped = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let start = Instant::now() + Duration::from_millis(20);
    let mut lat_per_thread: Vec<Vec<f64>> = Vec::new();

    thread::scope(|scope| {
        let mut joins = Vec::new();
        for t in 0..threads {
            let warm = &warm;
            let cold = &cold;
            let dropped = &dropped;
            let rejected = &rejected;
            let errors = &errors;
            joins.push(scope.spawn(move || {
                let mut latencies = Vec::new();
                let mut client = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(_) => {
                        // Whole slice becomes transport errors; the
                        // conservation check still accounts for it.
                        let slice = thread_slice(requests, threads, t);
                        errors.fetch_add(slice, Ordering::Relaxed);
                        return latencies;
                    }
                };
                let mut sent = 0u64;
                for (i, event) in schedule.cycle().take(requests as usize).enumerate() {
                    if i % threads != t {
                        continue;
                    }
                    let due = start + event.offset;
                    let now = Instant::now();
                    if due > now {
                        thread::sleep(due - now);
                    }
                    let issued = Instant::now();
                    match client.invoke(event.function.index() as u32) {
                        Ok(outcome) => {
                            latencies.push(issued.elapsed().as_secs_f64() * 1e3);
                            match outcome {
                                InvokeOutcome::Warm => warm.fetch_add(1, Ordering::Relaxed),
                                InvokeOutcome::Cold => cold.fetch_add(1, Ordering::Relaxed),
                                InvokeOutcome::Dropped => dropped.fetch_add(1, Ordering::Relaxed),
                                InvokeOutcome::Rejected => rejected.fetch_add(1, Ordering::Relaxed),
                            };
                        }
                        Err(_) => {
                            // The connection is gone; everything this
                            // thread still owed becomes an error.
                            let slice = thread_slice(requests, threads, t);
                            errors.fetch_add(slice - sent, Ordering::Relaxed);
                            return latencies;
                        }
                    }
                    sent += 1;
                }
                latencies
            }));
        }
        for join in joins {
            lat_per_thread.push(join.join().expect("load thread panicked"));
        }
    });

    let elapsed = start.elapsed();
    let all_latencies: Vec<f64> = lat_per_thread.into_iter().flatten().collect();
    let report = LoadReport {
        requests,
        warm: warm.into_inner(),
        cold: cold.into_inner(),
        dropped: dropped.into_inner(),
        rejected: rejected.into_inner(),
        errors: errors.into_inner(),
        elapsed,
        target_rps,
        attained_rps: requests as f64 / elapsed.as_secs_f64().max(1e-9),
        latency: LatencySummary::from_samples_ms(&all_latencies),
    };
    debug_assert_eq!(report.lost(), 0, "conservation bug in run_load");
    report
}

/// How many of `requests` round-robin slots belong to thread `t`.
fn thread_slice(requests: u64, threads: usize, t: usize) -> u64 {
    let threads = threads as u64;
    let t = t as u64;
    requests / threads + u64::from(requests % threads > t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_slices_partition_the_requests() {
        for requests in [0u64, 1, 7, 100, 100_001] {
            for threads in [1usize, 2, 3, 4, 8] {
                let total: u64 = (0..threads)
                    .map(|t| thread_slice(requests, threads, t))
                    .sum();
                assert_eq!(total, requests, "requests={requests} threads={threads}");
            }
        }
    }
}
