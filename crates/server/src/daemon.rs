//! The `faascached` daemon: the sharded invoker behind a socket.
//!
//! One daemon process owns a [`ShardedInvoker`] — N container-pool shards
//! with function-affinity routing and bounded admission — and serves the
//! wire protocol of [`crate::proto`] over TCP or a Unix domain socket.
//! The structure mirrors what the FaasCache paper does to OpenWhisk's
//! invoker, minus Docker: requests carry a function identity, the pool
//! decides warm/cold/dropped, and keep-alive containers are reaped by a
//! background thread per shard on a wall-clock interval.
//!
//! Shutdown is graceful by construction: a SIGTERM, a protocol
//! [`Shutdown`](crate::proto::Request::Shutdown) frame, or a
//! [`ShutdownHandle`] all set one flag. The accept loop stops taking new
//! connections, the invoker's admission gates flip to draining (new
//! invokes are *rejected*, visibly, not silently), handler threads finish
//! writing the responses of everything already admitted, and `run`
//! returns a [`DaemonReport`] whose counters account for every request
//! that was ever read off a socket.

use crate::fault::{FaultConfig, FaultPlan, FaultyStream};
use crate::http::{self, HttpParser, HttpRequest};
use crate::journal::{registry_digest, Journal, JournalRecord};
use crate::proto::{self, Poll, Request, Response};
use crate::signal;
use faascache_core::function::{FunctionId, FunctionRegistry};
use faascache_core::policy::PolicyKind;
use faascache_platform::sharded::{
    InvokeOutcome, InvokerStats, RebalanceConfig, ShardedConfig, ShardedInvoker,
};
use faascache_platform::tenant::{TenantQuota, TenantQuotas};
use faascache_util::{stats::balance_ratio, MemMb, SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address like `127.0.0.1:7077` (port 0 picks a free port).
    Tcp(String),
    /// A Unix domain socket path. The daemon unlinks the path on exit.
    #[cfg(unix)]
    Unix(PathBuf),
}

/// The concrete address a daemon bound, usable to connect a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundAddr {
    /// Bound TCP socket address (with the real port even if 0 was asked).
    Tcp(SocketAddr),
    /// Bound Unix socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

/// Which serving core multiplexes connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoModel {
    /// One blocking handler thread per connection (the original core,
    /// kept as a differential reference). Simple, portable, capped at a
    /// few hundred connections by per-thread stacks.
    #[default]
    Threads,
    /// A single epoll reactor thread multiplexing every connection, with
    /// invocation execution on a small worker pool — see
    /// [`crate::reactor`]. Linux only; lifts the connection ceiling to
    /// tens of thousands.
    Epoll,
}

impl std::str::FromStr for IoModel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "threads" => Ok(IoModel::Threads),
            "epoll" => Ok(IoModel::Epoll),
            other => Err(format!("unknown io model {other:?} (threads|epoll)")),
        }
    }
}

impl std::fmt::Display for IoModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IoModel::Threads => "threads",
            IoModel::Epoll => "epoll",
        })
    }
}

/// Tuning knobs of a daemon instance.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Number of invoker shards.
    pub shards: usize,
    /// Total keep-alive memory, split evenly across shards.
    pub total_mem: MemMb,
    /// Per-shard bound on admitted-but-unfinished invocations.
    pub queue_bound: usize,
    /// Keep-alive policy instantiated on every shard.
    pub policy: PolicyKind,
    /// Wall-clock interval between background reaps of each shard.
    pub reap_interval: Duration,
    /// Socket read timeout; bounds how long a handler takes to notice
    /// the shutdown flag.
    pub read_timeout: Duration,
    /// How long `run` waits for in-flight requests during drain before
    /// giving up and reporting `drained: false`.
    pub drain_timeout: Duration,
    /// Deterministic fault injection applied to every accepted
    /// connection (chaos testing). `None` — or an all-zero config —
    /// serves clean streams.
    pub faults: Option<FaultConfig>,
    /// Whether a wire [`Shutdown`](crate::proto::Request::Shutdown)
    /// frame may drain the daemon. Disable when untrusted (or
    /// fault-injected: a corrupted opcode must not be able to kill the
    /// daemon) peers share the socket; the [`ShutdownHandle`] and
    /// SIGTERM always work.
    pub allow_remote_shutdown: bool,
    /// Capacity of the idempotency-key cache backing
    /// [`InvokeKeyed`](crate::proto::Request::InvokeKeyed). Oldest keys
    /// are evicted first.
    pub idem_capacity: usize,
    /// Power-of-two-choices admission: `Some(watermark)` spills requests
    /// to a function's alternate candidate shard when the preferred
    /// shard has more than `watermark` requests in flight.
    pub p2c: Option<u64>,
    /// Background warm-set re-homing, run on the reaper cadence.
    pub rebalance: Option<RebalanceConfig>,
    /// Which serving core multiplexes connections.
    pub io_model: IoModel,
    /// Invocation worker threads feeding the epoll reactor (ignored by
    /// the threads model, which executes on handler threads).
    pub workers: usize,
    /// Per-tenant isolation budgets (`--tenant-quota`); unlimited by
    /// default, which disables throttling entirely.
    pub tenant_quotas: TenantQuotas,
    /// Durable control-plane journal (`--state-dir`). When set, every
    /// runtime `Register` and tenant-quota update is fsynced into the
    /// journal *before* it is acknowledged on the wire, so a SIGKILLed
    /// daemon restarted from the same state dir recovers every acked
    /// mutation. `None` (the default) serves purely in-memory.
    pub journal: Option<Arc<Mutex<Journal>>>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            shards: thread::available_parallelism().map_or(4, |n| n.get().min(16)),
            total_mem: MemMb::new(8192),
            queue_bound: 1024,
            policy: PolicyKind::GreedyDual,
            reap_interval: Duration::from_millis(500),
            read_timeout: Duration::from_millis(50),
            drain_timeout: Duration::from_secs(10),
            faults: None,
            allow_remote_shutdown: true,
            idem_capacity: 65_536,
            p2c: None,
            rebalance: None,
            io_model: IoModel::Threads,
            workers: 4,
            tenant_quotas: TenantQuotas::unlimited(),
            journal: None,
        }
    }
}

/// Final accounting returned by [`Daemon::run`].
#[derive(Debug, Clone)]
pub struct DaemonReport {
    /// Aggregate invoker statistics at exit.
    pub stats: InvokerStats,
    /// Connections accepted over the daemon's lifetime.
    pub connections: u64,
    /// Connections still open when the daemon exited (a graceful drain
    /// closes the daemon side, so this is usually 0 unless peers held
    /// idle connections through SIGTERM).
    pub open_connections: u64,
    /// High-water mark of simultaneously open connections.
    pub peak_connections: u64,
    /// Accept-loop failures other than `WouldBlock` (fd exhaustion and
    /// kin). The listener survives these; the connection does not.
    pub accept_errors: u64,
    /// Request frames read off sockets over the daemon's lifetime.
    pub frames: u64,
    /// HTTP requests served by the gateway (counted separately from
    /// binary `frames` so each front-end's accounting stands alone).
    pub http_requests: u64,
    /// Connections torn down due to malformed frames.
    pub protocol_errors: u64,
    /// Keyed invokes answered from the idempotency cache (a client
    /// retried a request whose response was lost).
    pub dedup_hits: u64,
    /// Whether every admitted request completed within the drain window.
    pub drained: bool,
    /// Wall-clock lifetime of the daemon.
    pub uptime: Duration,
    /// Requests served (warm + cold) per shard, in shard order.
    pub per_shard_served: Vec<u64>,
}

impl DaemonReport {
    /// Max/min served-load ratio across shards (1.0 = perfectly
    /// balanced; see [`faascache_util::stats::balance_ratio`]).
    pub fn balance_ratio(&self) -> f64 {
        balance_ratio(&self.per_shard_served)
    }

    /// The one-line summary `faascached` prints on exit.
    pub fn summary_line(&self) -> String {
        format!(
            "faascached: uptime={:.1}s conns={} connections={}/{} \
             accept_errors={} frames={} http_requests={} warm={} cold={} \
             dropped={} rejected={} throttled={} evictions={} migrations={} \
             proto_errors={} dedup_hits={} balance={:.2} drained={}",
            self.uptime.as_secs_f64(),
            self.connections,
            self.open_connections,
            self.peak_connections,
            self.accept_errors,
            self.frames,
            self.http_requests,
            self.stats.warm,
            self.stats.cold,
            self.stats.dropped,
            self.stats.rejected,
            self.stats.throttled,
            self.stats.evictions,
            self.stats.migrations,
            self.protocol_errors,
            self.dedup_hits,
            self.balance_ratio(),
            self.drained,
        )
    }
}

/// A clonable handle that asks a running daemon to drain and exit.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    pub(crate) flag: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Requests a graceful shutdown; idempotent.
    pub fn request(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_requested(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Maps wall-clock time onto the invoker's virtual [`SimTime`] axis.
#[derive(Debug, Clone, Copy)]
struct WallClock {
    start: Instant,
}

impl WallClock {
    fn new() -> Self {
        WallClock {
            start: Instant::now(),
        }
    }

    fn now(&self) -> SimTime {
        SimTime::from_micros(self.start.elapsed().as_micros() as u64)
    }
}

pub(crate) enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

pub(crate) enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

impl Listener {
    pub(crate) fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nb),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(nb),
        }
    }

    /// Raw fd for readiness registration with the reactor.
    #[cfg(unix)]
    pub(crate) fn raw_fd(&self) -> std::os::unix::io::RawFd {
        use std::os::unix::io::AsRawFd;
        match self {
            Listener::Tcp(l) => l.as_raw_fd(),
            Listener::Unix(l) => l.as_raw_fd(),
        }
    }
}

impl Stream {
    /// Raw fd for readiness registration with the reactor.
    #[cfg(unix)]
    pub(crate) fn raw_fd(&self) -> std::os::unix::io::RawFd {
        use std::os::unix::io::AsRawFd;
        match self {
            Stream::Tcp(s) => s.as_raw_fd(),
            Stream::Unix(s) => s.as_raw_fd(),
        }
    }

    /// Reactor-side socket setup: nodelay (TCP) and nonblocking mode. No
    /// read timeout — a nonblocking socket never parks a thread; frame
    /// deadlines come from the reactor's deadline queue instead.
    pub(crate) fn configure_nonblocking(&self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => {
                s.set_nodelay(true)?;
                s.set_nonblocking(true)
            }
            #[cfg(unix)]
            Stream::Unix(s) => s.set_nonblocking(true),
        }
    }
}

/// State of one idempotency key in the [`IdemCache`].
#[derive(Debug, Clone, Copy)]
enum IdemEntry {
    /// The key's first invocation is still executing; a concurrent
    /// retry of the same key must wait for its outcome rather than
    /// execute a duplicate.
    Pending,
    /// The recorded outcome; retries answer from here.
    Done(InvokeOutcome),
}

/// Bounded FIFO cache of idempotency key → recorded outcome.
///
/// A key is claimed (`Pending`) *before* its invocation executes and
/// completed (`Done`) before the response frame is written, so a retry
/// of the same key — whether it arrives after the response was lost to
/// a reset, or concurrently while the first execution is still in
/// flight — observes exactly one recorded outcome instead of
/// re-executing the invocation. Exactly-once accounting on both sides.
struct IdemCache {
    cap: usize,
    map: HashMap<u64, IdemEntry>,
    order: VecDeque<u64>,
}

impl IdemCache {
    fn new(cap: usize) -> Self {
        IdemCache {
            cap: cap.max(1),
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn get(&self, key: u64) -> Option<IdemEntry> {
        self.map.get(&key).copied()
    }

    fn insert(&mut self, key: u64, entry: IdemEntry) {
        if self.map.insert(key, entry).is_none() {
            self.order.push_back(key);
            if self.order.len() > self.cap {
                if let Some(oldest) = self.order.pop_front() {
                    self.map.remove(&oldest);
                }
            }
        }
    }

    fn remove(&mut self, key: u64) {
        // The FIFO order entry is left in place; eviction tolerates
        // keys that are already gone from the map.
        self.map.remove(&key);
    }
}

/// State shared between the accept loop, handler threads (or the
/// reactor and its workers), and reapers.
pub(crate) struct Shared {
    pub(crate) invoker: ShardedInvoker,
    /// Function registry behind a read-write lock: the invoke hot path
    /// takes uncontended read locks; `RegisterFunction` / `PUT
    /// /functions/<name>` take the write lock to grow it at runtime.
    registry: RwLock<FunctionRegistry>,
    /// Durable control-plane journal; mutations are appended (and
    /// fsynced) under the registry write lock, before the wire ack.
    journal: Option<Arc<Mutex<Journal>>>,
    clock: WallClock,
    shutdown: Arc<AtomicBool>,
    /// Requests read off a socket whose response is not yet written.
    pub(crate) active: AtomicU64,
    pub(crate) frames: AtomicU64,
    /// HTTP requests served by the gateway (parallel to `frames`).
    pub(crate) http_requests: AtomicU64,
    pub(crate) protocol_errors: AtomicU64,
    pub(crate) dedup_hits: AtomicU64,
    idem: Mutex<IdemCache>,
    /// Wakes keyed invokes parked on a [`IdemEntry::Pending`] entry
    /// once its outcome is recorded (or its executor failed).
    idem_cv: Condvar,
    allow_remote_shutdown: bool,
    read_timeout: Duration,
    /// Connections accepted over the daemon's lifetime; doubles as the
    /// accept ordinal that seeds per-stream fault plans.
    pub(crate) conns_total: AtomicU64,
    /// Connections currently open.
    pub(crate) conns_current: AtomicU64,
    /// High-water mark of `conns_current`.
    pub(crate) conns_peak: AtomicU64,
    /// Accept failures other than `WouldBlock`/`Interrupted`.
    pub(crate) accept_errors: AtomicU64,
}

impl Shared {
    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal::requested()
    }

    fn registry_read(&self) -> std::sync::RwLockReadGuard<'_, FunctionRegistry> {
        self.registry.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Invokes by registry index, optionally through the idempotency
    /// cache (`key`). Both front-ends route here, so a keyed HTTP retry
    /// and a keyed binary retry hit the same exactly-once accounting.
    pub(crate) fn invoke_indexed(
        &self,
        function: u32,
        key: Option<u64>,
    ) -> Result<InvokeOutcome, String> {
        if let Some(key) = key {
            // Claim the key before executing. A retry that arrives
            // while the first execution is still in flight (a hop retry
            // after a reset can race the original by microseconds)
            // parks on the Pending entry instead of executing a
            // duplicate — the outcome counters stay exactly-once.
            let mut cache = self.idem.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                match cache.get(key) {
                    Some(IdemEntry::Done(prev)) => {
                        self.dedup_hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(prev);
                    }
                    Some(IdemEntry::Pending) => {
                        cache = self.idem_cv.wait(cache).unwrap_or_else(|e| e.into_inner());
                        // Re-check: the executor recorded Done, failed
                        // (entry removed — we take over), or the entry
                        // was evicted under cache pressure.
                    }
                    None => {
                        cache.insert(key, IdemEntry::Pending);
                        break;
                    }
                }
            }
        }
        let outcome = {
            let registry = self.registry_read();
            if (function as usize) >= registry.len() {
                if let Some(key) = key {
                    // Release the claim so parked retries don't hang on
                    // an outcome that will never arrive.
                    let mut cache = self.idem.lock().unwrap_or_else(|e| e.into_inner());
                    cache.remove(key);
                    self.idem_cv.notify_all();
                }
                return Err(format!(
                    "function index {function} out of range (registry has {})",
                    registry.len()
                ));
            }
            let spec = registry.spec(FunctionId::from_index(function));
            self.invoker.invoke(spec, self.clock.now())
        };
        if let Some(key) = key {
            let mut cache = self.idem.lock().unwrap_or_else(|e| e.into_inner());
            // Re-insert handles the claim having been evicted mid-flight.
            cache.insert(key, IdemEntry::Done(outcome));
            self.idem_cv.notify_all();
        }
        Ok(outcome)
    }

    /// Resolves a function name to its registry index.
    pub(crate) fn lookup_function(&self, name: &str) -> Option<u32> {
        self.registry_read()
            .find(name)
            .map(|spec| spec.id().index() as u32)
    }

    /// Registers a function at runtime, idempotently: re-registering an
    /// existing name answers with its index and `created = false`
    /// regardless of the parameters (including the tenant — the first
    /// registration owns the function), so retried registrations never
    /// fail or fork the registry. An empty tenant means the default
    /// tenant; any other tenant name must pass [`validate_tenant_name`].
    pub(crate) fn register_function(
        &self,
        name: &str,
        mem_mb: u64,
        warm_us: u64,
        cold_us: u64,
        tenant: &str,
    ) -> Result<(u32, bool), String> {
        validate_tenant_name(tenant)?;
        if name.len() > u8::MAX as usize {
            return Err(format!("function name too long ({} > 255)", name.len()));
        }
        if mem_mb > u64::from(u32::MAX) {
            return Err(format!("mem_mb {mem_mb} exceeds the u32 wire range"));
        }
        let mut registry = self.registry.write().unwrap_or_else(|e| e.into_inner());
        if let Some(spec) = registry.find(name) {
            return Ok((spec.id().index() as u32, false));
        }
        // Journal-first, under the registry write lock: an acked
        // `created = true` implies the record is fsynced. A crash after
        // the append but before the in-memory apply merely replays an
        // un-acked registration on restart, which is harmless; a record
        // whose apply below fails validation is skipped on replay.
        if let Some(journal) = &self.journal {
            let record = JournalRecord::Register {
                name: name.to_string(),
                mem_mb: mem_mb as u32,
                warm_us,
                cold_us,
                tenant: tenant.to_string(),
            };
            let mut journal = journal.lock().unwrap_or_else(|e| e.into_inner());
            journal
                .append(&record)
                .map_err(|e| format!("journal append failed: {e}"))?;
            self.compact_if_needed(&mut journal, &registry);
        }
        registry
            .register_in(
                name,
                MemMb::new(mem_mb),
                SimDuration::from_micros(warm_us),
                SimDuration::from_micros(cold_us),
                tenant,
            )
            .map(|id| (id.index() as u32, true))
            .map_err(|e| e.to_string())
    }

    /// Updates a tenant's isolation budget at runtime: journaled (when a
    /// state dir is configured), then applied live through the invoker's
    /// tenant table. Returns whether the tenant was already bound to a
    /// live slot (`false` means the quota is stored and will apply on
    /// the tenant's first request).
    pub(crate) fn set_tenant_quota(
        &self,
        tenant: &str,
        inflight: u64,
        mem_mb: u64,
    ) -> Result<bool, String> {
        if tenant.is_empty() {
            return Err("tenant name must be non-empty".to_string());
        }
        validate_tenant_name(tenant)?;
        // Same journal-first, ack-after-fsync ordering as
        // `register_function`; the registry lock serializes journal
        // appends against registrations.
        if let Some(journal) = &self.journal {
            let registry = self.registry_read();
            let record = JournalRecord::SetQuota {
                tenant: tenant.to_string(),
                inflight,
                mem_mb,
            };
            let mut journal = journal.lock().unwrap_or_else(|e| e.into_inner());
            journal
                .append(&record)
                .map_err(|e| format!("journal append failed: {e}"))?;
            self.compact_if_needed(&mut journal, &registry);
        }
        Ok(self
            .invoker
            .set_tenant_quota(tenant, TenantQuota { inflight, mem_mb }))
    }

    /// Folds the full control-plane state into the snapshot when the
    /// journal tail has grown past its thresholds. Compaction failure is
    /// non-fatal (the tail keeps growing and stays authoritative).
    fn compact_if_needed(&self, journal: &mut Journal, registry: &FunctionRegistry) {
        if !journal.should_compact() {
            return;
        }
        let mut state: Vec<JournalRecord> = registry
            .iter()
            .map(|spec| JournalRecord::Register {
                name: spec.name().to_string(),
                mem_mb: spec.mem().as_mb() as u32,
                warm_us: spec.warm_time().as_micros(),
                cold_us: spec.cold_time().as_micros(),
                tenant: spec.tenant_name().to_string(),
            })
            .collect();
        for (tenant, quota) in self.invoker.tenant_quotas().named {
            state.push(JournalRecord::SetQuota {
                tenant,
                inflight: quota.inflight,
                mem_mb: quota.mem_mb,
            });
        }
        if let Err(e) = journal.compact(&state) {
            eprintln!("faascached: journal compaction failed: {e}");
        }
    }

    /// The registry's replication fingerprint: `(epoch, digest)`. The
    /// epoch is the function count (registrations are append-only, so it
    /// is monotonic); the digest fingerprints every spec's
    /// identity-relevant fields. Exported in `/metrics` so the router
    /// can detect a re-admitted backend whose registry diverged.
    pub(crate) fn registry_fingerprint(&self) -> (u64, u64) {
        let registry = self.registry_read();
        (registry.len() as u64, registry_digest(&registry))
    }

    /// Decodes and dispatches one request frame.
    pub(crate) fn handle(&self, payload: &[u8]) -> Response {
        match Request::decode(payload) {
            Ok(Request::Invoke { function }) => match self.invoke_indexed(function, None) {
                Ok(outcome) => Response::Invoked(outcome),
                Err(msg) => Response::Error(msg),
            },
            Ok(Request::InvokeKeyed { function, key }) => {
                match self.invoke_indexed(function, Some(key)) {
                    Ok(outcome) => Response::Invoked(outcome),
                    Err(msg) => Response::Error(msg),
                }
            }
            Ok(Request::Register {
                name,
                mem_mb,
                warm_us,
                cold_us,
                tenant,
            }) => {
                match self.register_function(&name, u64::from(mem_mb), warm_us, cold_us, &tenant) {
                    Ok((function, created)) => Response::Registered { function, created },
                    Err(msg) => Response::Error(msg),
                }
            }
            Ok(Request::SetTenantQuota {
                tenant,
                inflight,
                mem_mb,
            }) => match self.set_tenant_quota(&tenant, inflight, mem_mb) {
                Ok(live) => Response::QuotaSet { live },
                Err(msg) => Response::Error(msg),
            },
            Ok(Request::Stats) => Response::Stats(self.invoker.stats()),
            Ok(Request::Shutdown) => {
                if !self.allow_remote_shutdown {
                    return Response::Error("remote shutdown disabled".to_string());
                }
                self.shutdown.store(true, Ordering::SeqCst);
                Response::ShutdownStarted
            }
            Ok(Request::Ping) => Response::Pong,
            Err(e) => Response::Error(e.to_string()),
        }
    }
}

/// Validates a tenant name from the wire: empty (= default tenant) or up
/// to 32 characters of `[A-Za-z0-9._-]`. The charset keeps tenant names
/// safe to embed verbatim in metrics labels and summary lines.
pub(crate) fn validate_tenant_name(tenant: &str) -> Result<(), String> {
    if tenant.len() > 32 {
        return Err(format!("tenant name too long ({} > 32)", tenant.len()));
    }
    if tenant
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
    {
        Ok(())
    } else {
        Err("tenant name has characters outside [A-Za-z0-9._-]".to_string())
    }
}

/// One connection's serve loop: frames in, responses out, until EOF,
/// shutdown, or a protocol error.
///
/// Generic over the transport so chaos tests can slot a
/// [`FaultyStream`] (or any scripted mock) in place of a socket.
fn serve_connection<S: Read + Write>(shared: &Shared, mut stream: S) {
    // Ten read-timeout grace periods to finish a frame a peer started.
    let stall_limit = shared.read_timeout * 10;
    loop {
        if shared.shutting_down() {
            break;
        }
        match proto::poll_frame(&mut stream, stall_limit) {
            Ok(Poll::Idle) => continue,
            Ok(Poll::Eof) => break,
            Ok(Poll::Frame(payload)) => {
                // `active` brackets admit → response-written so drain
                // cannot declare victory while a reply is unflushed.
                shared.active.fetch_add(1, Ordering::SeqCst);
                shared.frames.fetch_add(1, Ordering::Relaxed);
                let response = shared.handle(&payload);
                let wrote = proto::write_frame(&mut stream, &response.encode());
                shared.active.fetch_sub(1, Ordering::SeqCst);
                if wrote.is_err() {
                    break;
                }
            }
            Err(_) => {
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
    }
}

/// Which front-end protocol an accepted connection speaks, decided by
/// the listener it arrived on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnKind {
    /// The length-prefixed binary protocol of [`crate::proto`].
    Binary,
    /// The HTTP/1.1 gateway of [`crate::http`].
    Http,
}

/// One HTTP connection's serve loop: requests in, responses out, until
/// EOF, a parse error, `Connection: close`, or the drain grace window
/// ends. The threads-model twin of the reactor's `HttpConn` path.
///
/// Drain semantics: when shutdown is requested the loop keeps serving
/// for one stall-limit grace window — already-pipelined requests
/// complete and health probes observe the 503 flip — then closes. A
/// parse error is answered *after* every request that completed before
/// the poison (serve-then-close, the same contract the binary decoder
/// path keeps), with 431/413/400 + `Connection: close`.
pub(crate) fn serve_http_connection<S: Read + Write>(shared: &Shared, mut stream: S) {
    let stall_limit = shared.read_timeout * 10;
    let mut parser = HttpParser::new();
    let mut requests: VecDeque<HttpRequest> = VecDeque::new();
    let mut chunk = [0u8; 8192];
    let mut parse_error = None;
    let mut drain_seen: Option<Instant> = None;
    let mut started: Option<Instant> = None;
    'conn: loop {
        if shared.shutting_down() {
            let since = drain_seen.get_or_insert_with(Instant::now);
            if since.elapsed() > stall_limit {
                break;
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                if let Err(e) = parser.feed(&chunk[..n], &mut requests) {
                    // Requests completed before the poison are already
                    // on the queue; serve them, then answer the error.
                    shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    parse_error = Some(e);
                }
            }
            Err(ref e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                // Idle tick — unless the peer stalled mid-request, in
                // which case the per-request deadline applies exactly
                // like the binary path's per-frame deadline.
                if parser.is_mid_request() && started.is_some_and(|s| s.elapsed() > stall_limit) {
                    shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
            Err(_) => break,
        }
        started = if parser.is_mid_request() {
            Some(started.unwrap_or_else(Instant::now))
        } else {
            None
        };

        // Serve the whole parsed queue before honoring any close flag:
        // pipelined requests already read off the socket must complete.
        let mut close_after = false;
        while let Some(req) = requests.pop_front() {
            shared.active.fetch_add(1, Ordering::SeqCst);
            shared.http_requests.fetch_add(1, Ordering::Relaxed);
            let op = http::route(&req);
            let resp = http::execute(shared, op, shared.shutting_down());
            let close = req.close || resp.close;
            let mut buf = Vec::with_capacity(128 + resp.body.len());
            http::write_response_with(
                &mut buf,
                resp.status,
                resp.content_type,
                resp.body.as_bytes(),
                close,
                resp.retry_after,
            );
            let wrote = stream.write_all(&buf);
            shared.active.fetch_sub(1, Ordering::SeqCst);
            if wrote.is_err() {
                break 'conn;
            }
            close_after |= close;
        }
        if let Some(err) = parse_error {
            shared.active.fetch_add(1, Ordering::SeqCst);
            let mut buf = Vec::new();
            http::error_response(&err, &mut buf);
            let _ = stream.write_all(&buf);
            shared.active.fetch_sub(1, Ordering::SeqCst);
            break;
        }
        if close_after {
            break;
        }
    }
}

/// A bound, not-yet-running daemon.
pub struct Daemon {
    listener: Listener,
    bound: BoundAddr,
    /// Optional HTTP/1.1 gateway listener (`--http-listen`), served
    /// concurrently with the binary listener by both io models.
    http_listener: Option<Listener>,
    bound_http: Option<BoundAddr>,
    shared: Arc<Shared>,
    config: DaemonConfig,
}

impl Daemon {
    /// Binds the endpoint and builds the invoker; call [`Daemon::run`]
    /// to start serving.
    ///
    /// The `registry` must be the same one the load generator derives —
    /// see [`crate::workload`].
    pub fn bind(
        endpoint: &Endpoint,
        config: DaemonConfig,
        registry: FunctionRegistry,
    ) -> io::Result<Daemon> {
        Self::bind_with_http(endpoint, None, config, registry)
    }

    /// [`Daemon::bind`] plus an optional HTTP/1.1 gateway listener
    /// (`--http-listen`). The gateway is TCP-only and serves
    /// concurrently with the binary endpoint on whichever io model the
    /// config selects.
    pub fn bind_with_http(
        endpoint: &Endpoint,
        http_addr: Option<&str>,
        config: DaemonConfig,
        registry: FunctionRegistry,
    ) -> io::Result<Daemon> {
        #[cfg(not(target_os = "linux"))]
        if config.io_model == IoModel::Epoll {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "--io-model epoll requires linux",
            ));
        }
        let (listener, bound) = match endpoint {
            Endpoint::Tcp(addr) => {
                let l = crate::net::bind_tcp_reuseaddr(addr.as_str())?;
                let actual = l.local_addr()?;
                (Listener::Tcp(l), BoundAddr::Tcp(actual))
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                // A previous unclean exit may have left the socket file.
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                (Listener::Unix(l), BoundAddr::Unix(path.clone()))
            }
        };
        listener.set_nonblocking(true)?;

        let (http_listener, bound_http) = match http_addr {
            Some(addr) => {
                let l = crate::net::bind_tcp_reuseaddr(addr)?;
                let actual = l.local_addr()?;
                let l = Listener::Tcp(l);
                l.set_nonblocking(true)?;
                (Some(l), Some(BoundAddr::Tcp(actual)))
            }
            None => (None, None),
        };

        let mut sharded = ShardedConfig::split(config.total_mem, config.shards)
            .with_queue_bound(config.queue_bound)
            .with_tenant_quotas(config.tenant_quotas.clone());
        if let Some(watermark) = config.p2c {
            sharded = sharded.with_p2c(watermark);
        }
        if let Some(rebalance) = config.rebalance {
            sharded = sharded.with_rebalance(rebalance);
        }
        let invoker = ShardedInvoker::with_kind(sharded, config.policy);
        let shared = Arc::new(Shared {
            invoker,
            registry: RwLock::new(registry),
            journal: config.journal.clone(),
            clock: WallClock::new(),
            shutdown: Arc::new(AtomicBool::new(false)),
            active: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            http_requests: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            idem: Mutex::new(IdemCache::new(config.idem_capacity)),
            idem_cv: Condvar::new(),
            allow_remote_shutdown: config.allow_remote_shutdown,
            read_timeout: config.read_timeout,
            conns_total: AtomicU64::new(0),
            conns_current: AtomicU64::new(0),
            conns_peak: AtomicU64::new(0),
            accept_errors: AtomicU64::new(0),
        });
        Ok(Daemon {
            listener,
            bound,
            http_listener,
            bound_http,
            shared,
            config,
        })
    }

    /// The address actually bound (the real port when TCP port 0 was
    /// requested).
    pub fn bound_addr(&self) -> BoundAddr {
        self.bound.clone()
    }

    /// The HTTP gateway's bound address, when `--http-listen` was given.
    pub fn bound_http_addr(&self) -> Option<BoundAddr> {
        self.bound_http.clone()
    }

    /// A handle that requests graceful shutdown from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            flag: Arc::clone(&self.shared.shutdown),
        }
    }

    /// Serves until shutdown is requested (signal, protocol frame, or
    /// [`ShutdownHandle`]), then drains and returns the final report.
    pub fn run(self) -> DaemonReport {
        let started = Instant::now();
        let mut handlers = Vec::new();

        // One background reaper per shard: expiry is driven by wall
        // time, exactly like OpenWhisk's keep-alive TTL sweeps.
        let reapers: Vec<_> = (0..self.shared.invoker.num_shards())
            .map(|shard| {
                let shared = Arc::clone(&self.shared);
                let interval = self.config.reap_interval;
                thread::spawn(move || {
                    while !shared.shutting_down() {
                        sleep_interruptibly(&shared, interval);
                        shared.invoker.reap_shard(shard, shared.clock.now());
                    }
                })
            })
            .collect();

        // The rebalancer shares the reaper cadence: each wakeup closes
        // one observation window and may re-home one hot warm set.
        let rebalancer = self.config.rebalance.map(|_| {
            let shared = Arc::clone(&self.shared);
            let interval = self.config.reap_interval;
            thread::spawn(move || {
                while !shared.shutting_down() {
                    sleep_interruptibly(&shared, interval);
                    if let Some(event) = shared.invoker.rebalance_tick(shared.clock.now()) {
                        eprintln!(
                            "faascached: re-homed {} shard {} -> {} ({} warm moved, {} left)",
                            event.function, event.from, event.to, event.moved, event.left_behind
                        );
                    }
                }
            })
        });

        // Serve. The epoll core drains internally (it owns the sockets)
        // and reports whether every admitted frame's response made it to
        // the wire; the threads core leaves draining to the common tail.
        let reactor_drained = match self.config.io_model {
            IoModel::Threads => {
                // The HTTP gateway gets its own accept loop; scoped so
                // it can borrow the listener while the main thread runs
                // the binary accept loop. Its handlers are joined inside
                // the scope (they linger at most one drain grace window).
                thread::scope(|scope| {
                    if let Some(http) = &self.http_listener {
                        scope.spawn(|| {
                            let mut http_handlers = Vec::new();
                            self.accept_loop(http, ConnKind::Http, &mut http_handlers);
                            for h in http_handlers {
                                let _ = h.join();
                            }
                        });
                    }
                    self.serve_threads(&mut handlers);
                });
                None
            }
            IoModel::Epoll => Some(self.serve_epoll()),
        };

        // Drain: flip every admission gate so stragglers get an explicit
        // Rejected, then wait for in-flight responses to flush.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.invoker.begin_drain();
        let deadline = Instant::now() + self.config.drain_timeout;
        let mut drained = reactor_drained.unwrap_or(true);
        while self.shared.active.load(Ordering::SeqCst) > 0 || self.shared.invoker.in_flight() > 0 {
            if Instant::now() >= deadline {
                drained = false;
                break;
            }
            thread::sleep(Duration::from_millis(1));
        }
        for h in handlers {
            let _ = h.join();
        }
        for r in reapers {
            let _ = r.join();
        }
        if let Some(r) = rebalancer {
            let _ = r.join();
        }

        #[cfg(unix)]
        if let BoundAddr::Unix(path) = &self.bound {
            let _ = std::fs::remove_file(path);
        }

        let per_shard_served = self
            .shared
            .invoker
            .per_shard()
            .iter()
            .map(|s| s.counters.warm_starts + s.counters.cold_starts)
            .collect();
        DaemonReport {
            stats: self.shared.invoker.stats(),
            connections: self.shared.conns_total.load(Ordering::Relaxed),
            open_connections: self.shared.conns_current.load(Ordering::Relaxed),
            peak_connections: self.shared.conns_peak.load(Ordering::Relaxed),
            accept_errors: self.shared.accept_errors.load(Ordering::Relaxed),
            frames: self.shared.frames.load(Ordering::Relaxed),
            http_requests: self.shared.http_requests.load(Ordering::Relaxed),
            protocol_errors: self.shared.protocol_errors.load(Ordering::Relaxed),
            dedup_hits: self.shared.dedup_hits.load(Ordering::Relaxed),
            drained,
            uptime: started.elapsed(),
            per_shard_served,
        }
    }

    /// Thread-per-connection serving loop: accepts until shutdown.
    fn serve_threads(&self, handlers: &mut Vec<thread::JoinHandle<()>>) {
        self.accept_loop(&self.listener, ConnKind::Binary, handlers);
    }

    /// Accepts connections off `listener` until shutdown, spawning one
    /// handler thread per connection speaking `kind`. Both listeners
    /// share the accept ordinal, so every stream's fault plan stays
    /// unique and replayable.
    fn accept_loop(
        &self,
        listener: &Listener,
        kind: ConnKind,
        handlers: &mut Vec<thread::JoinHandle<()>>,
    ) {
        while !self.shared.shutting_down() {
            // Burst-accept until WouldBlock: under load the listen
            // backlog holds many connections per wakeup, and pacing each
            // accept with a sleep turns the backlog into latency.
            let mut accepted = false;
            loop {
                match listener.accept() {
                    Ok(stream) => {
                        accepted = true;
                        let ordinal = self.shared.conns_total.fetch_add(1, Ordering::Relaxed) + 1;
                        let current = self.shared.conns_current.fetch_add(1, Ordering::Relaxed) + 1;
                        self.shared.conns_peak.fetch_max(current, Ordering::Relaxed);
                        if configure_stream(&stream, self.config.read_timeout).is_err() {
                            // Connection dies; peer sees EOF.
                            self.shared.conns_current.fetch_sub(1, Ordering::Relaxed);
                            continue;
                        }
                        let shared = Arc::clone(&self.shared);
                        // Stream id = accept ordinal, so a (seed, connection)
                        // pair replays the exact same fault schedule.
                        let faults = self
                            .config
                            .faults
                            .filter(|f| f.is_active())
                            .map(|f| f.plan(ordinal));
                        handlers.push(thread::spawn(move || {
                            let plan = faults.unwrap_or_else(FaultPlan::disabled);
                            match kind {
                                ConnKind::Binary => {
                                    serve_connection(&shared, FaultyStream::new(stream, plan))
                                }
                                ConnKind::Http => {
                                    serve_http_connection(&shared, FaultyStream::new(stream, plan))
                                }
                            }
                            shared.conns_current.fetch_sub(1, Ordering::Relaxed);
                        }));
                    }
                    Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        // Fd exhaustion and kin: the listener survives;
                        // count it and let the idle sleep pace retries.
                        self.shared.accept_errors.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                }
            }
            if !accepted {
                thread::sleep(Duration::from_millis(2));
            }
        }
    }

    /// Epoll serving loop; returns whether the reactor's internal drain
    /// flushed every admitted frame.
    #[cfg(target_os = "linux")]
    fn serve_epoll(&self) -> bool {
        match crate::reactor::serve(
            &self.listener,
            self.http_listener.as_ref(),
            &self.shared,
            &self.config,
        ) {
            Ok(drained) => drained,
            Err(e) => {
                eprintln!("faascached: epoll reactor failed: {e}");
                false
            }
        }
    }

    /// Unreachable: [`Daemon::bind`] rejects `IoModel::Epoll` off-linux.
    #[cfg(not(target_os = "linux"))]
    fn serve_epoll(&self) -> bool {
        false
    }
}

pub(crate) fn configure_stream(stream: &Stream, read_timeout: Duration) -> io::Result<()> {
    match stream {
        Stream::Tcp(s) => {
            s.set_nodelay(true)?;
            s.set_read_timeout(Some(read_timeout))
        }
        #[cfg(unix)]
        Stream::Unix(s) => s.set_read_timeout(Some(read_timeout)),
    }
}

/// Sleeps up to `total`, waking early if shutdown is requested.
fn sleep_interruptibly(shared: &Shared, total: Duration) {
    let deadline = Instant::now() + total;
    while Instant::now() < deadline && !shared.shutting_down() {
        thread::sleep(Duration::from_millis(20).min(total));
    }
}
