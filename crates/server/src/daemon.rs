//! The `faascached` daemon: the sharded invoker behind a socket.
//!
//! One daemon process owns a [`ShardedInvoker`] — N container-pool shards
//! with function-affinity routing and bounded admission — and serves the
//! wire protocol of [`crate::proto`] over TCP or a Unix domain socket.
//! The structure mirrors what the FaasCache paper does to OpenWhisk's
//! invoker, minus Docker: requests carry a function identity, the pool
//! decides warm/cold/dropped, and keep-alive containers are reaped by a
//! background thread per shard on a wall-clock interval.
//!
//! Shutdown is graceful by construction: a SIGTERM, a protocol
//! [`Shutdown`](crate::proto::Request::Shutdown) frame, or a
//! [`ShutdownHandle`] all set one flag. The accept loop stops taking new
//! connections, the invoker's admission gates flip to draining (new
//! invokes are *rejected*, visibly, not silently), handler threads finish
//! writing the responses of everything already admitted, and `run`
//! returns a [`DaemonReport`] whose counters account for every request
//! that was ever read off a socket.

use crate::fault::{FaultConfig, FaultyStream};
use crate::proto::{self, Poll, Request, Response};
use crate::signal;
use faascache_core::function::{FunctionId, FunctionRegistry, FunctionSpec};
use faascache_core::policy::PolicyKind;
use faascache_platform::sharded::{
    InvokeOutcome, InvokerStats, RebalanceConfig, ShardedConfig, ShardedInvoker,
};
use faascache_util::{stats::balance_ratio, MemMb, SimTime};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address like `127.0.0.1:7077` (port 0 picks a free port).
    Tcp(String),
    /// A Unix domain socket path. The daemon unlinks the path on exit.
    #[cfg(unix)]
    Unix(PathBuf),
}

/// The concrete address a daemon bound, usable to connect a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundAddr {
    /// Bound TCP socket address (with the real port even if 0 was asked).
    Tcp(SocketAddr),
    /// Bound Unix socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

/// Tuning knobs of a daemon instance.
#[derive(Debug, Clone, Copy)]
pub struct DaemonConfig {
    /// Number of invoker shards.
    pub shards: usize,
    /// Total keep-alive memory, split evenly across shards.
    pub total_mem: MemMb,
    /// Per-shard bound on admitted-but-unfinished invocations.
    pub queue_bound: usize,
    /// Keep-alive policy instantiated on every shard.
    pub policy: PolicyKind,
    /// Wall-clock interval between background reaps of each shard.
    pub reap_interval: Duration,
    /// Socket read timeout; bounds how long a handler takes to notice
    /// the shutdown flag.
    pub read_timeout: Duration,
    /// How long `run` waits for in-flight requests during drain before
    /// giving up and reporting `drained: false`.
    pub drain_timeout: Duration,
    /// Deterministic fault injection applied to every accepted
    /// connection (chaos testing). `None` — or an all-zero config —
    /// serves clean streams.
    pub faults: Option<FaultConfig>,
    /// Whether a wire [`Shutdown`](crate::proto::Request::Shutdown)
    /// frame may drain the daemon. Disable when untrusted (or
    /// fault-injected: a corrupted opcode must not be able to kill the
    /// daemon) peers share the socket; the [`ShutdownHandle`] and
    /// SIGTERM always work.
    pub allow_remote_shutdown: bool,
    /// Capacity of the idempotency-key cache backing
    /// [`InvokeKeyed`](crate::proto::Request::InvokeKeyed). Oldest keys
    /// are evicted first.
    pub idem_capacity: usize,
    /// Power-of-two-choices admission: `Some(watermark)` spills requests
    /// to a function's alternate candidate shard when the preferred
    /// shard has more than `watermark` requests in flight.
    pub p2c: Option<u64>,
    /// Background warm-set re-homing, run on the reaper cadence.
    pub rebalance: Option<RebalanceConfig>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            shards: thread::available_parallelism().map_or(4, |n| n.get().min(16)),
            total_mem: MemMb::new(8192),
            queue_bound: 1024,
            policy: PolicyKind::GreedyDual,
            reap_interval: Duration::from_millis(500),
            read_timeout: Duration::from_millis(50),
            drain_timeout: Duration::from_secs(10),
            faults: None,
            allow_remote_shutdown: true,
            idem_capacity: 65_536,
            p2c: None,
            rebalance: None,
        }
    }
}

/// Final accounting returned by [`Daemon::run`].
#[derive(Debug, Clone)]
pub struct DaemonReport {
    /// Aggregate invoker statistics at exit.
    pub stats: InvokerStats,
    /// Connections accepted over the daemon's lifetime.
    pub connections: u64,
    /// Request frames read off sockets over the daemon's lifetime.
    pub frames: u64,
    /// Connections torn down due to malformed frames.
    pub protocol_errors: u64,
    /// Keyed invokes answered from the idempotency cache (a client
    /// retried a request whose response was lost).
    pub dedup_hits: u64,
    /// Whether every admitted request completed within the drain window.
    pub drained: bool,
    /// Wall-clock lifetime of the daemon.
    pub uptime: Duration,
    /// Requests served (warm + cold) per shard, in shard order.
    pub per_shard_served: Vec<u64>,
}

impl DaemonReport {
    /// Max/min served-load ratio across shards (1.0 = perfectly
    /// balanced; see [`faascache_util::stats::balance_ratio`]).
    pub fn balance_ratio(&self) -> f64 {
        balance_ratio(&self.per_shard_served)
    }

    /// The one-line summary `faascached` prints on exit.
    pub fn summary_line(&self) -> String {
        format!(
            "faascached: uptime={:.1}s conns={} frames={} warm={} cold={} \
             dropped={} rejected={} evictions={} migrations={} \
             proto_errors={} dedup_hits={} balance={:.2} drained={}",
            self.uptime.as_secs_f64(),
            self.connections,
            self.frames,
            self.stats.warm,
            self.stats.cold,
            self.stats.dropped,
            self.stats.rejected,
            self.stats.evictions,
            self.stats.migrations,
            self.protocol_errors,
            self.dedup_hits,
            self.balance_ratio(),
            self.drained,
        )
    }
}

/// A clonable handle that asks a running daemon to drain and exit.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Requests a graceful shutdown; idempotent.
    pub fn request(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_requested(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Maps wall-clock time onto the invoker's virtual [`SimTime`] axis.
#[derive(Debug, Clone, Copy)]
struct WallClock {
    start: Instant,
}

impl WallClock {
    fn new() -> Self {
        WallClock {
            start: Instant::now(),
        }
    }

    fn now(&self) -> SimTime {
        SimTime::from_micros(self.start.elapsed().as_micros() as u64)
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

impl Listener {
    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nb),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(nb),
        }
    }
}

/// Bounded FIFO cache of idempotency key → recorded outcome.
///
/// The outcome is recorded *before* the response frame is written, so a
/// client that loses the response to a connection reset and retries the
/// same key observes the recorded outcome rather than re-executing the
/// invocation — exactly-once accounting across both sides.
struct IdemCache {
    cap: usize,
    map: HashMap<u64, InvokeOutcome>,
    order: VecDeque<u64>,
}

impl IdemCache {
    fn new(cap: usize) -> Self {
        IdemCache {
            cap: cap.max(1),
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn get(&self, key: u64) -> Option<InvokeOutcome> {
        self.map.get(&key).copied()
    }

    fn insert(&mut self, key: u64, outcome: InvokeOutcome) {
        if self.map.insert(key, outcome).is_none() {
            self.order.push_back(key);
            if self.order.len() > self.cap {
                if let Some(oldest) = self.order.pop_front() {
                    self.map.remove(&oldest);
                }
            }
        }
    }
}

/// State shared between the accept loop, handler threads, and reapers.
struct Shared {
    invoker: ShardedInvoker,
    registry: FunctionRegistry,
    clock: WallClock,
    shutdown: Arc<AtomicBool>,
    /// Requests read off a socket whose response is not yet written.
    active: AtomicU64,
    frames: AtomicU64,
    protocol_errors: AtomicU64,
    dedup_hits: AtomicU64,
    idem: Mutex<IdemCache>,
    allow_remote_shutdown: bool,
    read_timeout: Duration,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal::requested()
    }

    fn invoke_checked(&self, function: u32) -> Result<&FunctionSpec, Response> {
        if (function as usize) >= self.registry.len() {
            return Err(Response::Error(format!(
                "function index {function} out of range (registry has {})",
                self.registry.len()
            )));
        }
        Ok(self.registry.spec(FunctionId::from_index(function)))
    }

    /// Decodes and dispatches one request frame.
    fn handle(&self, payload: &[u8]) -> Response {
        match Request::decode(payload) {
            Ok(Request::Invoke { function }) => match self.invoke_checked(function) {
                Ok(spec) => Response::Invoked(self.invoker.invoke(spec, self.clock.now())),
                Err(error) => error,
            },
            Ok(Request::InvokeKeyed { function, key }) => match self.invoke_checked(function) {
                Ok(spec) => {
                    if let Some(prev) = self.idem.lock().map(|c| c.get(key)).unwrap_or(None) {
                        self.dedup_hits.fetch_add(1, Ordering::Relaxed);
                        return Response::Invoked(prev);
                    }
                    let outcome = self.invoker.invoke(spec, self.clock.now());
                    if let Ok(mut cache) = self.idem.lock() {
                        cache.insert(key, outcome);
                    }
                    Response::Invoked(outcome)
                }
                Err(error) => error,
            },
            Ok(Request::Stats) => Response::Stats(self.invoker.stats()),
            Ok(Request::Shutdown) => {
                if !self.allow_remote_shutdown {
                    return Response::Error("remote shutdown disabled".to_string());
                }
                self.shutdown.store(true, Ordering::SeqCst);
                Response::ShutdownStarted
            }
            Ok(Request::Ping) => Response::Pong,
            Err(e) => Response::Error(e.to_string()),
        }
    }
}

/// One connection's serve loop: frames in, responses out, until EOF,
/// shutdown, or a protocol error.
///
/// Generic over the transport so chaos tests can slot a
/// [`FaultyStream`] (or any scripted mock) in place of a socket.
fn serve_connection<S: Read + Write>(shared: &Shared, mut stream: S) {
    // Ten read-timeout grace periods to finish a frame a peer started.
    let stall_limit = shared.read_timeout * 10;
    loop {
        if shared.shutting_down() {
            break;
        }
        match proto::poll_frame(&mut stream, stall_limit) {
            Ok(Poll::Idle) => continue,
            Ok(Poll::Eof) => break,
            Ok(Poll::Frame(payload)) => {
                // `active` brackets admit → response-written so drain
                // cannot declare victory while a reply is unflushed.
                shared.active.fetch_add(1, Ordering::SeqCst);
                shared.frames.fetch_add(1, Ordering::Relaxed);
                let response = shared.handle(&payload);
                let wrote = proto::write_frame(&mut stream, &response.encode());
                shared.active.fetch_sub(1, Ordering::SeqCst);
                if wrote.is_err() {
                    break;
                }
            }
            Err(_) => {
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
    }
}

/// A bound, not-yet-running daemon.
pub struct Daemon {
    listener: Listener,
    bound: BoundAddr,
    shared: Arc<Shared>,
    config: DaemonConfig,
}

impl Daemon {
    /// Binds the endpoint and builds the invoker; call [`Daemon::run`]
    /// to start serving.
    ///
    /// The `registry` must be the same one the load generator derives —
    /// see [`crate::workload`].
    pub fn bind(
        endpoint: &Endpoint,
        config: DaemonConfig,
        registry: FunctionRegistry,
    ) -> io::Result<Daemon> {
        let (listener, bound) = match endpoint {
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                let actual = l.local_addr()?;
                (Listener::Tcp(l), BoundAddr::Tcp(actual))
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                // A previous unclean exit may have left the socket file.
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                (Listener::Unix(l), BoundAddr::Unix(path.clone()))
            }
        };
        listener.set_nonblocking(true)?;

        let mut sharded = ShardedConfig::split(config.total_mem, config.shards)
            .with_queue_bound(config.queue_bound);
        if let Some(watermark) = config.p2c {
            sharded = sharded.with_p2c(watermark);
        }
        if let Some(rebalance) = config.rebalance {
            sharded = sharded.with_rebalance(rebalance);
        }
        let invoker = ShardedInvoker::with_kind(sharded, config.policy);
        let shared = Arc::new(Shared {
            invoker,
            registry,
            clock: WallClock::new(),
            shutdown: Arc::new(AtomicBool::new(false)),
            active: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            idem: Mutex::new(IdemCache::new(config.idem_capacity)),
            allow_remote_shutdown: config.allow_remote_shutdown,
            read_timeout: config.read_timeout,
        });
        Ok(Daemon {
            listener,
            bound,
            shared,
            config,
        })
    }

    /// The address actually bound (the real port when TCP port 0 was
    /// requested).
    pub fn bound_addr(&self) -> BoundAddr {
        self.bound.clone()
    }

    /// A handle that requests graceful shutdown from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            flag: Arc::clone(&self.shared.shutdown),
        }
    }

    /// Serves until shutdown is requested (signal, protocol frame, or
    /// [`ShutdownHandle`]), then drains and returns the final report.
    pub fn run(self) -> DaemonReport {
        let started = Instant::now();
        let mut handlers = Vec::new();
        let mut connections = 0u64;

        // One background reaper per shard: expiry is driven by wall
        // time, exactly like OpenWhisk's keep-alive TTL sweeps.
        let reapers: Vec<_> = (0..self.shared.invoker.num_shards())
            .map(|shard| {
                let shared = Arc::clone(&self.shared);
                let interval = self.config.reap_interval;
                thread::spawn(move || {
                    while !shared.shutting_down() {
                        sleep_interruptibly(&shared, interval);
                        shared.invoker.reap_shard(shard, shared.clock.now());
                    }
                })
            })
            .collect();

        // The rebalancer shares the reaper cadence: each wakeup closes
        // one observation window and may re-home one hot warm set.
        let rebalancer = self.config.rebalance.map(|_| {
            let shared = Arc::clone(&self.shared);
            let interval = self.config.reap_interval;
            thread::spawn(move || {
                while !shared.shutting_down() {
                    sleep_interruptibly(&shared, interval);
                    if let Some(event) = shared.invoker.rebalance_tick(shared.clock.now()) {
                        eprintln!(
                            "faascached: re-homed {} shard {} -> {} ({} warm moved, {} left)",
                            event.function, event.from, event.to, event.moved, event.left_behind
                        );
                    }
                }
            })
        });

        while !self.shared.shutting_down() {
            match self.listener.accept() {
                Ok(stream) => {
                    connections += 1;
                    if let Err(e) = configure_stream(&stream, self.config.read_timeout) {
                        let _ = e; // connection dies; peer sees EOF
                        continue;
                    }
                    let shared = Arc::clone(&self.shared);
                    // Stream id = accept ordinal, so a (seed, connection)
                    // pair replays the exact same fault schedule.
                    let faults = self
                        .config
                        .faults
                        .filter(|f| f.is_active())
                        .map(|f| f.plan(connections));
                    handlers.push(thread::spawn(move || match faults {
                        Some(plan) => serve_connection(&shared, FaultyStream::new(stream, plan)),
                        None => serve_connection(&shared, stream),
                    }));
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(2));
                }
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }

        // Drain: flip every admission gate so stragglers get an explicit
        // Rejected, then wait for in-flight responses to flush.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.invoker.begin_drain();
        let deadline = Instant::now() + self.config.drain_timeout;
        let mut drained = true;
        while self.shared.active.load(Ordering::SeqCst) > 0 || self.shared.invoker.in_flight() > 0 {
            if Instant::now() >= deadline {
                drained = false;
                break;
            }
            thread::sleep(Duration::from_millis(1));
        }
        for h in handlers {
            let _ = h.join();
        }
        for r in reapers {
            let _ = r.join();
        }
        if let Some(r) = rebalancer {
            let _ = r.join();
        }

        #[cfg(unix)]
        if let BoundAddr::Unix(path) = &self.bound {
            let _ = std::fs::remove_file(path);
        }

        let per_shard_served = self
            .shared
            .invoker
            .per_shard()
            .iter()
            .map(|s| s.counters.warm_starts + s.counters.cold_starts)
            .collect();
        DaemonReport {
            stats: self.shared.invoker.stats(),
            connections,
            frames: self.shared.frames.load(Ordering::Relaxed),
            protocol_errors: self.shared.protocol_errors.load(Ordering::Relaxed),
            dedup_hits: self.shared.dedup_hits.load(Ordering::Relaxed),
            drained,
            uptime: started.elapsed(),
            per_shard_served,
        }
    }
}

fn configure_stream(stream: &Stream, read_timeout: Duration) -> io::Result<()> {
    match stream {
        Stream::Tcp(s) => {
            s.set_nodelay(true)?;
            s.set_read_timeout(Some(read_timeout))
        }
        #[cfg(unix)]
        Stream::Unix(s) => s.set_read_timeout(Some(read_timeout)),
    }
}

/// Sleeps up to `total`, waking early if shutdown is requested.
fn sleep_interruptibly(shared: &Shared, total: Duration) {
    let deadline = Instant::now() + total;
    while Instant::now() < deadline && !shared.shutting_down() {
        thread::sleep(Duration::from_millis(20).min(total));
    }
}
