//! Seeded, deterministic fault injection for the serving path.
//!
//! [`FaultyStream`] wraps any `Read + Write` transport and injects the
//! failure modes a production cache meets on real networks — torn writes,
//! short reads, spurious timeouts, byte corruption, mid-frame connection
//! resets, and stalls — according to a [`FaultPlan`] derived from the
//! workspace's deterministic [`Pcg64`] generator. Every decision is a
//! draw from a per-stream RNG split, so a `(seed, stream_id)` pair
//! replays the identical fault schedule on every run and on every
//! machine: a failing chaos seed is a bug report, not a flake.
//!
//! The wrapper is transport-agnostic and direction-symmetric. The daemon
//! wraps accepted connections (`faascached --fault-*` flags or the
//! `FAASCACHED_FAULTS` environment knob); the client wraps its outbound
//! connection ([`crate::client::Client::connect_with_faults`]). Both
//! sides of a connection can be faulty at once.
//!
//! Fault semantics, chosen to compose with the frame layer in
//! [`crate::proto`]:
//!
//! - **Reset**: the operation fails with `ConnectionReset` and the stream
//!   is *permanently broken* — every later operation fails the same way,
//!   exactly like a real RST'd socket. Because resets strike between the
//!   partial chunks of a torn write, they are what actually tears frames
//!   on the wire (`write_all` retries short writes, so a tear without a
//!   reset is invisible to the peer).
//! - **Torn write**: only a prefix of the buffer is written and the short
//!   count is returned.
//! - **Short read**: at most one byte is read.
//! - **Timeout**: the operation fails with `TimedOut` without touching
//!   the transport — indistinguishable from a socket read timeout, which
//!   is precisely what [`crate::proto::poll_frame`]'s stall handling must
//!   survive.
//! - **Corrupt**: the operation proceeds but one bit of the transferred
//!   bytes is flipped.
//! - **Stall**: the thread sleeps `stall_ms` before the operation
//!   proceeds, simulating a peer that goes quiet mid-frame.

use faascache_util::rng::Pcg64;
use std::io::{self, Read, Write};
use std::time::Duration;

/// Probabilities (per stream operation) and parameters of the injected
/// fault mix. All probabilities are clamped to `[0, 1]` at draw time; a
/// config with every probability zero injects nothing and costs one
/// branch per operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the fault schedule. Per-stream plans are derived by
    /// splitting, so one seed drives a whole daemon's worth of
    /// connections deterministically.
    pub seed: u64,
    /// Probability an operation resets the connection (and breaks the
    /// stream permanently).
    pub reset: f64,
    /// Probability a write is torn (short count returned).
    pub torn_write: f64,
    /// Probability a read returns at most one byte.
    pub short_read: f64,
    /// Probability an operation fails with a spurious `TimedOut`.
    pub timeout: f64,
    /// Probability one bit of an operation's bytes is flipped.
    pub corrupt: f64,
    /// Probability the operation stalls for [`FaultConfig::stall_ms`]
    /// before proceeding.
    pub stall: f64,
    /// Stall duration in milliseconds.
    pub stall_ms: u64,
}

impl FaultConfig {
    /// A config that injects nothing (all probabilities zero).
    pub fn disabled() -> Self {
        FaultConfig {
            seed: 0,
            reset: 0.0,
            torn_write: 0.0,
            short_read: 0.0,
            timeout: 0.0,
            corrupt: 0.0,
            stall: 0.0,
            stall_ms: 10,
        }
    }

    /// A balanced chaos mix for conformance testing: every fault class
    /// enabled at low-but-noticeable rates, seeded by `seed`.
    pub fn chaos(seed: u64) -> Self {
        FaultConfig {
            seed,
            reset: 0.01,
            torn_write: 0.05,
            short_read: 0.05,
            timeout: 0.02,
            corrupt: 0.005,
            stall: 0.01,
            stall_ms: 5,
        }
    }

    /// Whether any fault class has a nonzero probability.
    pub fn is_active(&self) -> bool {
        self.reset > 0.0
            || self.torn_write > 0.0
            || self.short_read > 0.0
            || self.timeout > 0.0
            || self.corrupt > 0.0
            || self.stall > 0.0
    }

    /// Sets one knob by name — the shared backend of the `--fault-*`
    /// flags and the `FAASCACHED_FAULTS` environment spec. Recognized
    /// keys: `seed`, `reset`, `torn`, `short-read`, `timeout`, `corrupt`,
    /// `stall`, `stall-ms`.
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), String> {
        fn prob(key: &str, value: &str) -> Result<f64, String> {
            let p: f64 = value
                .parse()
                .map_err(|_| format!("fault knob {key}: bad probability {value:?}"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("fault knob {key}: probability {p} outside [0, 1]"));
            }
            Ok(p)
        }
        match key {
            "seed" => {
                self.seed = value
                    .parse()
                    .map_err(|_| format!("fault knob seed: bad u64 {value:?}"))?
            }
            "reset" => self.reset = prob(key, value)?,
            "torn" => self.torn_write = prob(key, value)?,
            "short-read" => self.short_read = prob(key, value)?,
            "timeout" => self.timeout = prob(key, value)?,
            "corrupt" => self.corrupt = prob(key, value)?,
            "stall" => self.stall = prob(key, value)?,
            "stall-ms" => {
                self.stall_ms = value
                    .parse()
                    .map_err(|_| format!("fault knob stall-ms: bad u64 {value:?}"))?
            }
            other => return Err(format!("unknown fault knob {other:?}")),
        }
        Ok(())
    }

    /// Parses a compact spec like `"seed=42,reset=0.05,corrupt=0.01"`.
    /// Empty spec yields a disabled config.
    pub fn parse_spec(spec: &str) -> Result<Self, String> {
        let mut cfg = FaultConfig::disabled();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry {part:?} is not key=value"))?;
            cfg.set(key.trim(), value.trim())?;
        }
        Ok(cfg)
    }

    /// Derives the deterministic per-stream plan for `stream_id`.
    pub fn plan(&self, stream_id: u64) -> FaultPlan {
        FaultPlan::derive(*self, stream_id)
    }
}

/// The deterministic fault schedule of one stream: a [`FaultConfig`]
/// plus the per-stream RNG split that drives its draws.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: Pcg64,
    active: bool,
}

impl FaultPlan {
    /// Plan for stream `stream_id` under `cfg`. Two streams with
    /// different ids draw from independent RNG splits of the same seed.
    pub fn derive(cfg: FaultConfig, stream_id: u64) -> Self {
        let mut parent = Pcg64::seed_from_u64(cfg.seed);
        FaultPlan {
            rng: parent.split(stream_id),
            active: cfg.is_active(),
            cfg,
        }
    }

    /// A plan that injects nothing.
    pub fn disabled() -> Self {
        Self::derive(FaultConfig::disabled(), 0)
    }
}

/// Counts of injected faults, by class — exposed so tests can assert a
/// schedule actually exercised the classes it configured.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Connection resets injected.
    pub resets: u64,
    /// Writes torn short.
    pub torn_writes: u64,
    /// Reads truncated to one byte.
    pub short_reads: u64,
    /// Spurious timeouts injected.
    pub timeouts: u64,
    /// Bytes corrupted (bit flips).
    pub corruptions: u64,
    /// Stalls injected.
    pub stalls: u64,
}

impl FaultStats {
    /// Total faults injected across all classes.
    pub fn total(&self) -> u64 {
        self.resets
            + self.torn_writes
            + self.short_reads
            + self.timeouts
            + self.corruptions
            + self.stalls
    }
}

/// What the per-operation draw decided. Truncation (short reads, torn
/// writes) is drawn separately per direction, after this decision.
enum Decision {
    Clean,
    Reset,
    Timeout,
    Corrupt,
}

/// A `Read + Write` transport with deterministic injected faults.
///
/// See the [module docs](self) for fault semantics. The wrapper is
/// zero-allocation on the clean path and draws at most one RNG decision
/// per operation class.
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
    plan: FaultPlan,
    broken: bool,
    stats: FaultStats,
}

impl<S> FaultyStream<S> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultyStream {
            inner,
            plan,
            broken: false,
            stats: FaultStats::default(),
        }
    }

    /// Faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Whether an injected reset has permanently broken the stream.
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// The wrapped transport.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// Consumes the wrapper, returning the transport.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// One decision for this operation. A stall is applied inline (it
    /// delays, then the operation proceeds); the other classes are
    /// mutually exclusive, checked in severity order.
    fn decide(&mut self) -> Decision {
        if !self.plan.active {
            return Decision::Clean;
        }
        if self.plan.cfg.stall > 0.0 && self.plan.rng.chance(self.plan.cfg.stall) {
            self.stats.stalls += 1;
            std::thread::sleep(Duration::from_millis(self.plan.cfg.stall_ms));
        }
        if self.plan.cfg.reset > 0.0 && self.plan.rng.chance(self.plan.cfg.reset) {
            return Decision::Reset;
        }
        if self.plan.cfg.timeout > 0.0 && self.plan.rng.chance(self.plan.cfg.timeout) {
            return Decision::Timeout;
        }
        if self.plan.cfg.corrupt > 0.0 && self.plan.rng.chance(self.plan.cfg.corrupt) {
            return Decision::Corrupt;
        }
        Decision::Clean
    }

    fn reset_error(&mut self) -> io::Error {
        if !self.broken {
            self.stats.resets += 1;
            self.broken = true;
        }
        io::Error::new(io::ErrorKind::ConnectionReset, "injected connection reset")
    }

    fn timeout_error(&mut self) -> io::Error {
        self.stats.timeouts += 1;
        io::Error::new(io::ErrorKind::TimedOut, "injected timeout")
    }

    /// Flips one deterministic bit of `bytes` (no-op on empty slices).
    fn corrupt(&mut self, bytes: &mut [u8]) {
        if bytes.is_empty() {
            return;
        }
        let at = self.plan.rng.next_below(bytes.len() as u64) as usize;
        let bit = self.plan.rng.next_below(8) as u8;
        bytes[at] ^= 1 << bit;
        self.stats.corruptions += 1;
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.broken {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "stream broken by injected reset",
            ));
        }
        let mut corrupt_after = false;
        match self.decide() {
            Decision::Clean => {}
            Decision::Reset => return Err(self.reset_error()),
            Decision::Timeout => return Err(self.timeout_error()),
            Decision::Corrupt => corrupt_after = true,
        }
        let cap = if !buf.is_empty()
            && self.plan.active
            && self.plan.cfg.short_read > 0.0
            && self.plan.rng.chance(self.plan.cfg.short_read)
        {
            self.stats.short_reads += 1;
            1
        } else {
            buf.len()
        };
        let n = self.inner.read(&mut buf[..cap])?;
        if corrupt_after && n > 0 {
            self.corrupt(&mut buf[..n]);
        }
        Ok(n)
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.broken {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "stream broken by injected reset",
            ));
        }
        let mut corrupt_this = false;
        match self.decide() {
            Decision::Clean => {}
            Decision::Reset => return Err(self.reset_error()),
            Decision::Timeout => return Err(self.timeout_error()),
            Decision::Corrupt => corrupt_this = true,
        }
        let len = if buf.len() > 1
            && self.plan.active
            && self.plan.cfg.torn_write > 0.0
            && self.plan.rng.chance(self.plan.cfg.torn_write)
        {
            self.stats.torn_writes += 1;
            // A nonempty strict prefix, so `write_all` observes a short
            // count and the next operation (possibly a reset) lands
            // mid-frame.
            1 + self.plan.rng.next_below(buf.len() as u64 - 1) as usize
        } else {
            buf.len()
        };
        if corrupt_this && len > 0 {
            let mut copy = buf[..len].to_vec();
            self.corrupt(&mut copy);
            self.inner.write(&copy)
        } else {
            self.inner.write(&buf[..len])
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.broken {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "stream broken by injected reset",
            ));
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// An in-memory duplex-ish transport: reads from `input`, writes to
    /// `output`.
    struct Pipe {
        input: Cursor<Vec<u8>>,
        output: Vec<u8>,
    }

    impl Pipe {
        fn with_input(bytes: Vec<u8>) -> Self {
            Pipe {
                input: Cursor::new(bytes),
                output: Vec::new(),
            }
        }
    }

    impl Read for Pipe {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for Pipe {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.output.write(buf)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn disabled_plan_is_transparent() {
        let data: Vec<u8> = (0..=255).collect();
        let mut s = FaultyStream::new(Pipe::with_input(data.clone()), FaultPlan::disabled());
        let mut out = Vec::new();
        s.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
        s.write_all(&data).unwrap();
        assert_eq!(s.get_ref().output, data);
        assert_eq!(s.stats().total(), 0);
    }

    #[test]
    fn same_seed_same_stream_id_replays_identically() {
        let cfg = FaultConfig::chaos(42);
        let observe = || {
            let mut s = FaultyStream::new(Pipe::with_input(vec![7u8; 4096]), cfg.plan(3));
            let mut reads = Vec::new();
            let mut buf = [0u8; 64];
            for _ in 0..200 {
                match s.read(&mut buf) {
                    Ok(n) => reads.push(Ok((n, buf[..n].to_vec()))),
                    Err(e) => reads.push(Err(e.kind())),
                }
            }
            (reads, s.stats())
        };
        let (a, sa) = observe();
        let (b, sb) = observe();
        assert_eq!(a, b, "fault schedule must replay byte-for-byte");
        assert_eq!(sa, sb);
    }

    #[test]
    fn different_stream_ids_diverge() {
        let cfg = FaultConfig::chaos(42);
        let run = |id: u64| {
            let mut s = FaultyStream::new(Pipe::with_input(vec![7u8; 4096]), cfg.plan(id));
            let mut buf = [0u8; 64];
            for _ in 0..300 {
                let _ = s.read(&mut buf);
            }
            s.stats()
        };
        assert_ne!(run(0), run(1), "per-stream plans must be independent");
    }

    #[test]
    fn reset_breaks_the_stream_permanently() {
        let cfg = FaultConfig {
            reset: 1.0,
            ..FaultConfig::disabled()
        };
        let mut s = FaultyStream::new(Pipe::with_input(vec![1, 2, 3]), cfg.plan(0));
        let mut buf = [0u8; 8];
        for _ in 0..3 {
            let err = s.read(&mut buf).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        }
        assert!(s.is_broken());
        assert_eq!(s.stats().resets, 1, "only the first reset counts");
        assert_eq!(
            s.write(&[1]).unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
    }

    #[test]
    fn short_reads_cap_at_one_byte() {
        let cfg = FaultConfig {
            short_read: 1.0,
            ..FaultConfig::disabled()
        };
        let mut s = FaultyStream::new(Pipe::with_input(vec![9u8; 100]), cfg.plan(0));
        let mut buf = [0u8; 50];
        assert_eq!(s.read(&mut buf).unwrap(), 1);
        assert_eq!(s.stats().short_reads, 1);
    }

    #[test]
    fn torn_writes_return_short_counts() {
        let cfg = FaultConfig {
            torn_write: 1.0,
            ..FaultConfig::disabled()
        };
        let mut s = FaultyStream::new(Pipe::with_input(Vec::new()), cfg.plan(0));
        let n = s.write(&[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        assert!(
            (1..8).contains(&n),
            "torn write must be a nonempty strict prefix, got {n}"
        );
        assert_eq!(s.get_ref().output.len(), n);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let cfg = FaultConfig {
            corrupt: 1.0,
            ..FaultConfig::disabled()
        };
        let data = vec![0u8; 32];
        let mut s = FaultyStream::new(Pipe::with_input(data), cfg.plan(0));
        let mut buf = [0u8; 32];
        let n = s.read(&mut buf).unwrap();
        let flipped: u32 = buf[..n].iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit flipped per corrupted read");
    }

    #[test]
    fn timeouts_do_not_consume_bytes() {
        let cfg = FaultConfig {
            timeout: 1.0,
            ..FaultConfig::disabled()
        };
        let mut s = FaultyStream::new(Pipe::with_input(vec![1, 2, 3]), cfg.plan(0));
        let mut buf = [0u8; 8];
        let err = s.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert_eq!(s.get_ref().input.position(), 0, "no bytes consumed");
    }

    #[test]
    fn spec_round_trip_and_validation() {
        let cfg = FaultConfig::parse_spec("seed=9,reset=0.05,torn=0.1,short-read=0.2,timeout=0.01,corrupt=0.001,stall=0.02,stall-ms=7").unwrap();
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.reset, 0.05);
        assert_eq!(cfg.torn_write, 0.1);
        assert_eq!(cfg.short_read, 0.2);
        assert_eq!(cfg.timeout, 0.01);
        assert_eq!(cfg.corrupt, 0.001);
        assert_eq!(cfg.stall, 0.02);
        assert_eq!(cfg.stall_ms, 7);
        assert!(cfg.is_active());

        assert!(!FaultConfig::parse_spec("").unwrap().is_active());
        assert!(FaultConfig::parse_spec("reset=1.5").is_err());
        assert!(FaultConfig::parse_spec("bogus=1").is_err());
        assert!(FaultConfig::parse_spec("reset").is_err());
    }
}
