//! HTTP/1.1 gateway: a standard-tooling front-end for the daemon.
//!
//! The binary protocol of [`crate::proto`] is fast but private — no
//! off-the-shelf load generator (wrk, hey, curl) can speak it, and the
//! FaasCache paper's artifact was driven through OpenWhisk's HTTP
//! invoker API. This module adds a dependency-free HTTP/1.1 ingress in
//! the same style as the PR 6 frame codecs:
//!
//! - [`HttpParser`] — an incremental, allocation-conscious request
//!   parser for nonblocking transports: feed it whatever bytes the
//!   socket had (possibly one) and it yields every request that
//!   completed, carrying partial state across calls. Keep-alive and
//!   pipelining fall out of the state machine; `Content-Length` bodies
//!   are buffered up to [`MAX_BODY_BYTES`] (413 beyond), header blocks
//!   up to [`MAX_HEADER_BYTES`] (431 beyond). Chunked transfer encoding
//!   is deliberately rejected — the gateway's routes carry no streaming
//!   bodies.
//! - [`write_response`] — the matching encoder: status line, minimal
//!   headers, `Content-Length` framing, `Connection: close` when the
//!   connection should end after the response.
//! - A gateway routing layer (`route` → `execute`): `POST
//!   /invoke/<function>` maps [`ShardedInvoker`] outcomes onto status
//!   codes (Warm/Cold → 200 with a JSON body, Dropped → 429, Rejected →
//!   503, draining → 503 + `Connection: close`), `GET /healthz` flips
//!   to 503 during drain, `GET /metrics` renders the daemon's counters
//!   in Prometheus text format, and `PUT /functions/<name>` registers
//!   functions at runtime (idempotent on duplicates).
//! - [`HttpClient`] — a small blocking client used by `faas-load
//!   --proto http`, `http-bench`, and the e2e suites; it composes with
//!   [`FaultyStream`] exactly like the binary client.
//!
//! Both io models serve the gateway: the threads model runs a
//! per-connection handler (`daemon::serve_http_connection`), the epoll
//! reactor runs an `HttpConn` state machine alongside the frame path.
//! An `Idempotency-Key` request header rides the same daemon-side
//! dedup cache as the binary `InvokeKeyed` opcode, so retrying HTTP
//! clients keep exactly-once accounting under injected faults.
//!
//! [`ShardedInvoker`]: faascache_platform::sharded::ShardedInvoker
//! [`FaultyStream`]: crate::fault::FaultyStream

use crate::daemon::{BoundAddr, Shared};
use crate::fault::{FaultPlan, FaultyStream};
use faascache_platform::sharded::InvokeOutcome;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Upper bound on a request's header block (request line + headers +
/// terminator). Beyond this the parser reports
/// [`HttpParseError::HeadersTooLarge`] → 431.
pub const MAX_HEADER_BYTES: usize = 8 * 1024;

/// Upper bound on a request body. A `Content-Length` promising more is
/// [`HttpParseError::BodyTooLarge`] → 413, rejected before buffering a
/// single body byte — the same guard [`crate::proto::MAX_FRAME`] gives
/// the binary protocol.
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// One parsed HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, …), verbatim.
    pub method: String,
    /// Origin-form request target including any query string.
    pub target: String,
    /// Whether the connection must close after the response
    /// (`Connection: close`, or HTTP/1.0 without keep-alive).
    pub close: bool,
    /// Parsed `Idempotency-Key` header, if present — rides the same
    /// daemon-side dedup cache as the binary `InvokeKeyed` opcode.
    pub idem_key: Option<u64>,
    /// Request body (`Content-Length` bytes, possibly empty).
    pub body: Vec<u8>,
}

/// Why the parser rejected a byte stream. Every variant maps to a
/// status code via [`HttpParseError::status`]; after any error the
/// connection must be closed (framing is unrecoverable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpParseError {
    /// Header block exceeded [`MAX_HEADER_BYTES`] → 431.
    HeadersTooLarge,
    /// `Content-Length` exceeded [`MAX_BODY_BYTES`] → 413.
    BodyTooLarge,
    /// Anything else malformed → 400.
    Malformed(&'static str),
}

impl HttpParseError {
    /// The status code of the error response owed to the peer.
    pub fn status(&self) -> u16 {
        match self {
            HttpParseError::HeadersTooLarge => 431,
            HttpParseError::BodyTooLarge => 413,
            HttpParseError::Malformed(_) => 400,
        }
    }

    /// Human-readable detail for the error body.
    pub fn message(&self) -> &'static str {
        match self {
            HttpParseError::HeadersTooLarge => "request header block too large",
            HttpParseError::BodyTooLarge => "request body too large",
            HttpParseError::Malformed(msg) => msg,
        }
    }
}

impl std::fmt::Display for HttpParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.message(), self.status())
    }
}

enum ParseState {
    /// Accumulating the header block (request line + headers).
    Head { buf: Vec<u8> },
    /// Buffering `remaining` body bytes of an otherwise-parsed request.
    Body { req: HttpRequest, remaining: usize },
}

/// Incremental, resumable HTTP/1.1 request parser for nonblocking
/// transports — the HTTP twin of [`crate::proto::FrameDecoder`].
///
/// Feeding the same byte stream one byte at a time or in arbitrary
/// chunks yields the identical request sequence (see the `proto_fuzz`
/// property tests), and no byte of one request ever leaks into the
/// next: the head buffer consumes exactly through its terminator and
/// the body phase consumes exactly `Content-Length` bytes.
pub struct HttpParser {
    state: ParseState,
}

impl Default for HttpParser {
    fn default() -> Self {
        Self::new()
    }
}

impl HttpParser {
    /// A parser at a request boundary.
    pub fn new() -> Self {
        HttpParser {
            state: ParseState::Head { buf: Vec::new() },
        }
    }

    /// Whether any byte of an unfinished request has been consumed. A
    /// peer that closes the stream while this is true tore a request in
    /// half — the same contract as
    /// [`FrameDecoder::is_mid_frame`](crate::proto::FrameDecoder::is_mid_frame).
    pub fn is_mid_request(&self) -> bool {
        match &self.state {
            ParseState::Head { buf } => !buf.is_empty(),
            ParseState::Body { .. } => true,
        }
    }

    /// Consumes all of `input`, pushing every request that completed
    /// onto `out`. An error poisons the stream: requests completed
    /// earlier in the call are already on `out` (serve them, then close
    /// after answering with [`HttpParseError::status`]), but the parser
    /// must not be fed again.
    pub fn feed(
        &mut self,
        mut input: &[u8],
        out: &mut VecDeque<HttpRequest>,
    ) -> Result<(), HttpParseError> {
        while !input.is_empty() {
            match &mut self.state {
                ParseState::Head { buf } => {
                    // Scan for the terminator across the buffered tail
                    // and the new chunk, so the head buffer consumes
                    // exactly through the blank line and pipelined
                    // bytes after it are never copied into the head.
                    let tail_start = buf.len().saturating_sub(3);
                    match terminator_take(&buf[tail_start..], input) {
                        Some(take) => {
                            buf.extend_from_slice(&input[..take]);
                            input = &input[take..];
                            if buf.len() > MAX_HEADER_BYTES {
                                return Err(HttpParseError::HeadersTooLarge);
                            }
                            let (mut req, body_len) = parse_head(buf)?;
                            buf.clear();
                            if body_len > MAX_BODY_BYTES as u64 {
                                return Err(HttpParseError::BodyTooLarge);
                            }
                            if body_len == 0 {
                                out.push_back(req);
                            } else {
                                req.body.reserve(body_len as usize);
                                self.state = ParseState::Body {
                                    req,
                                    remaining: body_len as usize,
                                };
                            }
                        }
                        None => {
                            buf.extend_from_slice(input);
                            input = &[];
                            if buf.len() > MAX_HEADER_BYTES {
                                return Err(HttpParseError::HeadersTooLarge);
                            }
                        }
                    }
                }
                ParseState::Body { req, remaining } => {
                    let take = (*remaining).min(input.len());
                    req.body.extend_from_slice(&input[..take]);
                    *remaining -= take;
                    input = &input[take..];
                    if *remaining == 0 {
                        let prev = std::mem::replace(
                            &mut self.state,
                            ParseState::Head { buf: Vec::new() },
                        );
                        match prev {
                            ParseState::Body { req, .. } => out.push_back(req),
                            ParseState::Head { .. } => unreachable!("body state just matched"),
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Finds the first header terminator that *completes* within `input`,
/// scanning the virtual concatenation `tail ++ input` (`tail` is the
/// last ≤3 already-buffered bytes, so a terminator split across feeds
/// is still seen). Returns how many input bytes to consume so the head
/// ends exactly at the terminator. Accepts `\r\n\r\n` and bare `\n\n`
/// (and the mixed `\n\r\n`), like mainstream lenient parsers.
fn terminator_take(tail: &[u8], input: &[u8]) -> Option<usize> {
    let t = tail.len();
    let at = |j: usize| -> u8 {
        if j < t {
            tail[j]
        } else {
            input[j - t]
        }
    };
    for (i, &byte) in input.iter().enumerate() {
        if byte != b'\n' {
            continue;
        }
        let end = t + i;
        if end >= 1 && at(end - 1) == b'\n' {
            return Some(i + 1);
        }
        if end >= 2 && at(end - 1) == b'\r' && at(end - 2) == b'\n' {
            return Some(i + 1);
        }
    }
    None
}

/// Parses a complete header block (including its terminator) into a
/// request awaiting its body, returning the promised body length.
fn parse_head(head: &[u8]) -> Result<(HttpRequest, u64), HttpParseError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| HttpParseError::Malformed("header block is not utf-8"))?;
    let mut lines = text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));

    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or(HttpParseError::Malformed("empty request line"))?;
    let target = parts
        .next()
        .ok_or(HttpParseError::Malformed("request line missing target"))?;
    let version = parts
        .next()
        .ok_or(HttpParseError::Malformed("request line missing version"))?;
    if parts.next().is_some() {
        return Err(HttpParseError::Malformed("request line has extra tokens"));
    }
    let http10 = match version {
        "HTTP/1.1" => false,
        "HTTP/1.0" => true,
        _ => return Err(HttpParseError::Malformed("unsupported http version")),
    };
    if !target.starts_with('/') {
        return Err(HttpParseError::Malformed("target must be origin-form"));
    }

    let mut close = http10;
    let mut content_length: Option<u64> = None;
    let mut idem_key = None;
    for line in lines {
        if line.is_empty() {
            break; // blank line: end of headers
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpParseError::Malformed("header line missing colon"))?;
        // Whitespace before the colon is the classic request-smuggling
        // vector; reject it like every strict parser does.
        if name.is_empty() || name.ends_with(' ') || name.ends_with('\t') {
            return Err(HttpParseError::Malformed("malformed header name"));
        }
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let n: u64 = value
                .parse()
                .map_err(|_| HttpParseError::Malformed("bad content-length"))?;
            if content_length.is_some_and(|prev| prev != n) {
                return Err(HttpParseError::Malformed("conflicting content-length"));
            }
            content_length = Some(n);
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                close = true;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                close = false;
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpParseError::Malformed("transfer-encoding not supported"));
        } else if name.eq_ignore_ascii_case("idempotency-key") {
            idem_key = Some(
                value
                    .parse()
                    .map_err(|_| HttpParseError::Malformed("bad idempotency-key"))?,
            );
        }
    }

    Ok((
        HttpRequest {
            method: method.to_string(),
            target: target.to_string(),
            close,
            idem_key,
            body: Vec::new(),
        },
        content_length.unwrap_or(0),
    ))
}

/// Canonical reason phrase for the status codes the gateway emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Encodes one HTTP/1.1 response into `buf` (appended): status line,
/// `Content-Type`/`Content-Length`, `Connection: close` when `close`,
/// then the body. The output is a plain byte buffer, so it rides the
/// reactor's [`FrameEncoder`](crate::proto::FrameEncoder) unchanged —
/// one buffer per response keeps the drain accounting's
/// frames-completed arithmetic exact.
pub fn write_response(
    buf: &mut Vec<u8>,
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
) {
    write_response_with(buf, status, content_type, body, close, None);
}

/// [`write_response`] plus an optional `Retry-After: <secs>` header —
/// carried by 429 tenant-throttle responses so well-behaved clients know
/// this is a back-off signal, not a permanent failure.
pub fn write_response_with(
    buf: &mut Vec<u8>,
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
    retry_after: Option<u64>,
) {
    buf.extend_from_slice(b"HTTP/1.1 ");
    push_u64(buf, status as u64);
    buf.push(b' ');
    buf.extend_from_slice(status_reason(status).as_bytes());
    buf.extend_from_slice(b"\r\nContent-Type: ");
    buf.extend_from_slice(content_type.as_bytes());
    buf.extend_from_slice(b"\r\nContent-Length: ");
    push_u64(buf, body.len() as u64);
    if let Some(secs) = retry_after {
        buf.extend_from_slice(b"\r\nRetry-After: ");
        push_u64(buf, secs);
    }
    if close {
        buf.extend_from_slice(b"\r\nConnection: close");
    }
    buf.extend_from_slice(b"\r\n\r\n");
    buf.extend_from_slice(body);
}

/// Appends the decimal digits of `v` without a `format!` allocation.
fn push_u64(buf: &mut Vec<u8>, v: u64) {
    let mut digits = [0u8; 20];
    let mut i = digits.len();
    let mut v = v;
    loop {
        i -= 1;
        digits[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    buf.extend_from_slice(&digits[i..]);
}

/// Encodes the error response owed after a parse failure (431/413/400,
/// always `Connection: close` — framing is unrecoverable).
pub fn error_response(err: &HttpParseError, buf: &mut Vec<u8>) {
    let body = format!("{{\"error\":\"{}\"}}\n", err.message());
    write_response(buf, err.status(), "application/json", body.as_bytes(), true);
}

/// How `POST /invoke/<function>` names its target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum FnTarget {
    /// A registry index (`/invoke/7`).
    Index(u32),
    /// A registered name (`/invoke/img-resize`); looked up at execute
    /// time so functions registered after the route parse still hit.
    Name(String),
}

/// A routed gateway operation, decoupled from the transport so the
/// epoll reactor can ship it to a worker thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum GatewayOp {
    /// `POST /invoke/<function>` (+ optional `Idempotency-Key`).
    Invoke {
        function: FnTarget,
        key: Option<u64>,
    },
    /// `PUT /functions/<name>?mem_mb=..&warm_us=..&cold_us=..&tenant=..`.
    Register {
        name: String,
        mem_mb: u64,
        warm_us: u64,
        cold_us: u64,
        /// Owning tenant; empty = default tenant.
        tenant: String,
    },
    /// `PUT /tenants/<name>/quota?inflight=..&mem=..` — runtime tenant
    /// quota update (absent parameters mean unlimited).
    SetTenantQuota {
        tenant: String,
        inflight: u64,
        mem_mb: u64,
    },
    /// `GET /healthz`.
    Healthz,
    /// `GET /metrics`.
    Metrics,
    /// Routing failed; answer with `status` and a JSON error body.
    Fail { status: u16, msg: String },
}

/// One executed gateway response, transport-agnostic.
#[derive(Debug, Clone)]
pub(crate) struct GatewayResponse {
    pub(crate) status: u16,
    pub(crate) content_type: &'static str,
    pub(crate) body: String,
    /// The connection must close after this response (drain semantics).
    pub(crate) close: bool,
    /// Seconds for a `Retry-After` header (tenant throttling).
    pub(crate) retry_after: Option<u64>,
}

/// Seconds advertised in `Retry-After` on tenant-throttle (429)
/// responses. Budgets are resource-occupancy gates, not rate windows, so
/// the hint is a constant short back-off rather than a computed horizon.
pub const THROTTLE_RETRY_AFTER_SECS: u64 = 1;

/// Maps a parsed request onto a gateway operation. Pure routing — no
/// daemon state is touched, so this runs on the reactor thread.
pub(crate) fn route(req: &HttpRequest) -> GatewayOp {
    let (path, query) = match req.target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (req.target.as_str(), ""),
    };
    let segs: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segs.as_slice()) {
        ("POST", ["invoke", f]) => {
            let function = match f.parse::<u32>() {
                Ok(idx) => FnTarget::Index(idx),
                Err(_) => FnTarget::Name((*f).to_string()),
            };
            GatewayOp::Invoke {
                function,
                key: req.idem_key,
            }
        }
        ("GET", ["healthz"]) => GatewayOp::Healthz,
        ("GET", ["metrics"]) => GatewayOp::Metrics,
        ("PUT", ["functions", name]) => route_register(name, query),
        ("PUT", ["tenants", name, "quota"]) => route_set_quota(name, query),
        (_, ["invoke", _])
        | (_, ["healthz"])
        | (_, ["metrics"])
        | (_, ["functions", _])
        | (_, ["tenants", _, "quota"]) => GatewayOp::Fail {
            status: 405,
            msg: "method not allowed".to_string(),
        },
        _ => GatewayOp::Fail {
            status: 404,
            msg: "no such route".to_string(),
        },
    }
}

/// Parses `PUT /functions/<name>` query parameters. Durations accept
/// `warm_us`/`cold_us` (microseconds) or `warm_ms`/`cold_ms`
/// (milliseconds); defaults model a tiny function (1 ms warm, 100 ms
/// cold, 128 MB). `tenant=` assigns the function's owning tenant (empty
/// or absent = default tenant); its charset is validated at execute time.
fn route_register(name: &str, query: &str) -> GatewayOp {
    if name.is_empty()
        || !name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
    {
        return GatewayOp::Fail {
            status: 400,
            msg: "function names are [A-Za-z0-9._-]+".to_string(),
        };
    }
    let mut mem_mb: u64 = 128;
    let mut warm_us: u64 = 1_000;
    let mut cold_us: u64 = 100_000;
    let mut tenant = String::new();
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        if k == "tenant" {
            tenant = v.to_string();
            continue;
        }
        let parsed: Result<u64, _> = v.parse();
        let Ok(v) = parsed else {
            return GatewayOp::Fail {
                status: 400,
                msg: format!("bad value for query parameter {k:?}"),
            };
        };
        match k {
            "mem_mb" => mem_mb = v,
            "warm_us" => warm_us = v,
            "cold_us" => cold_us = v,
            "warm_ms" => warm_us = v.saturating_mul(1_000),
            "cold_ms" => cold_us = v.saturating_mul(1_000),
            _ => {
                return GatewayOp::Fail {
                    status: 400,
                    msg: format!("unknown query parameter {k:?}"),
                };
            }
        }
    }
    GatewayOp::Register {
        name: name.to_string(),
        mem_mb,
        warm_us,
        cold_us,
        tenant,
    }
}

/// Parses `PUT /tenants/<name>/quota` query parameters. `inflight=` and
/// `mem=` (MB) each default to unlimited when absent, so
/// `PUT /tenants/acme/quota` with no query lifts both budgets. The
/// tenant charset is validated at execute time.
fn route_set_quota(tenant: &str, query: &str) -> GatewayOp {
    let mut inflight = u64::MAX;
    let mut mem_mb = u64::MAX;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        let parsed: Result<u64, _> = v.parse();
        let Ok(v) = parsed else {
            return GatewayOp::Fail {
                status: 400,
                msg: format!("bad value for query parameter {k:?}"),
            };
        };
        match k {
            "inflight" => inflight = v,
            "mem" | "mem_mb" => mem_mb = v,
            _ => {
                return GatewayOp::Fail {
                    status: 400,
                    msg: format!("unknown query parameter {k:?}"),
                };
            }
        }
    }
    GatewayOp::SetTenantQuota {
        tenant: tenant.to_string(),
        inflight,
        mem_mb,
    }
}

fn json_error(status: u16, msg: &str, close: bool) -> GatewayResponse {
    GatewayResponse {
        status,
        content_type: "application/json",
        body: format!("{{\"error\":\"{}\"}}\n", msg.replace(['"', '\\'], "'")),
        close,
        retry_after: None,
    }
}

/// Executes a routed operation against the daemon's shared state. Runs
/// on a handler thread (threads model) or a worker thread (epoll);
/// never on the reactor thread. `draining` selects drain semantics:
/// healthz flips to 503 and every response carries `Connection: close`.
pub(crate) fn execute(shared: &Shared, op: GatewayOp, draining: bool) -> GatewayResponse {
    match op {
        GatewayOp::Healthz => {
            if draining {
                GatewayResponse {
                    status: 503,
                    content_type: "text/plain",
                    body: "draining\n".to_string(),
                    close: true,
                    retry_after: None,
                }
            } else {
                GatewayResponse {
                    status: 200,
                    content_type: "text/plain",
                    body: "ok\n".to_string(),
                    close: false,
                    retry_after: None,
                }
            }
        }
        GatewayOp::Metrics => GatewayResponse {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            body: render_metrics(shared, draining),
            close: draining,
            retry_after: None,
        },
        GatewayOp::Invoke { function, key } => {
            let resolved = match &function {
                FnTarget::Index(idx) => Ok(*idx),
                FnTarget::Name(name) => shared
                    .lookup_function(name)
                    .ok_or_else(|| format!("unknown function {name:?}")),
            };
            match resolved.and_then(|idx| {
                shared
                    .invoke_indexed(idx, key)
                    .map(|outcome| (idx, outcome))
            }) {
                Err(msg) => json_error(404, &msg, draining),
                Ok((idx, outcome)) => outcome_response(idx, outcome, draining),
            }
        }
        GatewayOp::Register {
            name,
            mem_mb,
            warm_us,
            cold_us,
            tenant,
        } => {
            if draining {
                return json_error(503, "draining", true);
            }
            match shared.register_function(&name, mem_mb, warm_us, cold_us, &tenant) {
                Ok((idx, created)) => GatewayResponse {
                    status: 200,
                    content_type: "application/json",
                    body: format!(
                        "{{\"function\":{idx},\"name\":\"{name}\",\"created\":{created}}}\n"
                    ),
                    close: false,
                    retry_after: None,
                },
                Err(msg) => json_error(400, &msg, false),
            }
        }
        GatewayOp::SetTenantQuota {
            tenant,
            inflight,
            mem_mb,
        } => {
            if draining {
                return json_error(503, "draining", true);
            }
            match shared.set_tenant_quota(&tenant, inflight, mem_mb) {
                Ok(live) => GatewayResponse {
                    status: 200,
                    content_type: "application/json",
                    body: format!("{{\"tenant\":\"{tenant}\",\"live\":{live}}}\n"),
                    close: false,
                    retry_after: None,
                },
                Err(msg) => json_error(400, &msg, false),
            }
        }
        GatewayOp::Fail { status, msg } => json_error(status, &msg, draining),
    }
}

/// Maps an invoke outcome to the wire response. Shared by the daemon's
/// gateway and the router's HTTP front so both ends of a forwarded
/// request speak the exact same status/label vocabulary.
///
/// Both Dropped and Throttled answer 429, but only a tenant throttle
/// carries Retry-After: a drop means the *pool* is out of memory right
/// now, a throttle means *this tenant* must back off. Clients
/// disambiguate by the outcome label.
pub(crate) fn outcome_response(
    idx: u32,
    outcome: InvokeOutcome,
    draining: bool,
) -> GatewayResponse {
    let (status, label) = match outcome {
        InvokeOutcome::Warm => (200, "warm"),
        InvokeOutcome::Cold => (200, "cold"),
        InvokeOutcome::Dropped => (429, "dropped"),
        InvokeOutcome::Rejected => (503, "rejected"),
        InvokeOutcome::Throttled => (429, "throttled"),
    };
    GatewayResponse {
        status,
        content_type: "application/json",
        body: format!("{{\"function\":{idx},\"outcome\":\"{label}\"}}\n"),
        close: draining,
        retry_after: (outcome == InvokeOutcome::Throttled).then_some(THROTTLE_RETRY_AFTER_SECS),
    }
}

/// Renders the daemon's counters in Prometheus text exposition format —
/// the same numbers the summary line prints, plus per-shard in-flight
/// gauges.
pub(crate) fn render_metrics(shared: &Shared, draining: bool) -> String {
    use std::fmt::Write as _;
    let stats = shared.invoker.stats();
    let mut out = String::with_capacity(2048);
    out.push_str("# HELP faascache_requests_total Invocation outcomes observed by the daemon.\n");
    out.push_str("# TYPE faascache_requests_total counter\n");
    for (label, v) in [
        ("warm", stats.warm),
        ("cold", stats.cold),
        ("dropped", stats.dropped),
        ("rejected", stats.rejected),
        ("throttled", stats.throttled),
    ] {
        let _ = writeln!(out, "faascache_requests_total{{outcome=\"{label}\"}} {v}");
    }
    // Per-tenant accounting: throttle counts per tenant ride the same
    // requests_total family (extra `tenant` label), budget occupancy gets
    // its own gauges.
    let tenants = shared.invoker.tenant_snapshots();
    for t in &tenants {
        let _ = writeln!(
            out,
            "faascache_requests_total{{outcome=\"throttled\",tenant=\"{}\"}} {}",
            t.name, t.throttled
        );
    }
    out.push_str(
        "# HELP faascache_tenant_warm_bytes Resident container memory per tenant.\n\
         # TYPE faascache_tenant_warm_bytes gauge\n",
    );
    for t in &tenants {
        let _ = writeln!(
            out,
            "faascache_tenant_warm_bytes{{tenant=\"{}\"}} {}",
            t.name,
            t.mem_mb * 1024 * 1024
        );
    }
    out.push_str(
        "# HELP faascache_tenant_in_flight Admitted-but-unfinished invocations per tenant.\n\
         # TYPE faascache_tenant_in_flight gauge\n",
    );
    for t in &tenants {
        let _ = writeln!(
            out,
            "faascache_tenant_in_flight{{tenant=\"{}\"}} {}",
            t.name, t.in_flight
        );
    }
    out.push_str(
        "# HELP faascache_tenant_served_total Requests served (warm or cold) per tenant.\n\
         # TYPE faascache_tenant_served_total counter\n",
    );
    for t in &tenants {
        let _ = writeln!(
            out,
            "faascache_tenant_served_total{{tenant=\"{}\"}} {}",
            t.name, t.served
        );
    }
    for (name, help, v) in [
        (
            "faascache_evictions_total",
            "Keep-alive containers evicted.",
            stats.evictions,
        ),
        (
            "faascache_migrations_total",
            "Warm containers re-homed across shards.",
            stats.migrations,
        ),
        (
            "faascache_dedup_hits_total",
            "Keyed invokes answered from the idempotency cache.",
            shared.dedup_hits.load(Ordering::Relaxed),
        ),
        (
            "faascache_connections_total",
            "Connections accepted over the daemon's lifetime.",
            shared.conns_total.load(Ordering::Relaxed),
        ),
        (
            "faascache_http_requests_total",
            "HTTP requests served by the gateway.",
            shared.http_requests.load(Ordering::Relaxed),
        ),
        (
            "faascache_frames_total",
            "Binary protocol request frames read.",
            shared.frames.load(Ordering::Relaxed),
        ),
        (
            "faascache_protocol_errors_total",
            "Connections torn down due to malformed input.",
            shared.protocol_errors.load(Ordering::Relaxed),
        ),
    ] {
        let _ = writeln!(
            out,
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}"
        );
    }
    let _ = writeln!(
        out,
        "# HELP faascache_open_connections Connections currently open.\n\
         # TYPE faascache_open_connections gauge\n\
         faascache_open_connections {}",
        shared.conns_current.load(Ordering::Relaxed)
    );
    out.push_str(
        "# HELP faascache_shard_in_flight Admitted-but-unfinished invocations per shard.\n",
    );
    out.push_str("# TYPE faascache_shard_in_flight gauge\n");
    for load in shared.invoker.loads() {
        let _ = writeln!(
            out,
            "faascache_shard_in_flight{{shard=\"{}\"}} {}",
            load.shard, load.in_flight
        );
    }
    // Registry replication fingerprint: the router compares these to
    // decide whether a re-admitted backend's registry diverged, and the
    // recovery harness compares them across a crash/restart.
    let (epoch, digest) = shared.registry_fingerprint();
    let _ = writeln!(
        out,
        "# HELP faascache_registry_epoch Number of registered functions (monotonic).\n\
         # TYPE faascache_registry_epoch gauge\n\
         faascache_registry_epoch {epoch}"
    );
    let _ = writeln!(
        out,
        "# HELP faascache_registry_digest FNV-1a fingerprint of the function registry.\n\
         # TYPE faascache_registry_digest gauge\n\
         faascache_registry_digest {digest}"
    );
    let _ = writeln!(
        out,
        "# HELP faascache_draining Whether the daemon is draining (1) or serving (0).\n\
         # TYPE faascache_draining gauge\n\
         faascache_draining {}",
        u8::from(draining)
    );
    out
}

/// A blocking HTTP/1.1 client for the gateway: one keep-alive
/// connection, one in-flight request. Drives `faas-load --proto http`,
/// `http-bench`, and the e2e suites; composes with [`FaultyStream`]
/// exactly like the binary [`Client`](crate::client::Client).
pub struct HttpClient {
    stream: FaultyStream<TcpStream>,
    /// Bytes read past the previous response (partial next head).
    rbuf: Vec<u8>,
    /// Server answered `Connection: close`; further requests must
    /// reconnect.
    closed: bool,
}

impl HttpClient {
    /// Connects to a gateway at `addr` (clean transport). The gateway
    /// listens on TCP only.
    pub fn connect(addr: &BoundAddr) -> io::Result<HttpClient> {
        Self::connect_with_faults(addr, FaultPlan::disabled())
    }

    /// Connects with client-side fault injection.
    pub fn connect_with_faults(addr: &BoundAddr, plan: FaultPlan) -> io::Result<HttpClient> {
        let sock = match addr {
            BoundAddr::Tcp(sock) => *sock,
            #[cfg(unix)]
            BoundAddr::Unix(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "the http gateway listens on tcp only",
                ));
            }
        };
        let stream = TcpStream::connect(sock)?;
        stream.set_nodelay(true)?;
        Ok(HttpClient {
            stream: FaultyStream::new(stream, plan),
            rbuf: Vec::new(),
            closed: false,
        })
    }

    /// Sets the socket read timeout (required whenever faults or
    /// retries are on, so a lost response errors instead of hanging).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.get_ref().set_read_timeout(timeout)
    }

    /// Sends one request (no body) and reads its response, returning
    /// `(status, body)`.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        headers: &[(&str, String)],
    ) -> io::Result<(u16, Vec<u8>)> {
        if self.closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "server closed the connection (Connection: close)",
            ));
        }
        let mut req = format!("{method} {target} HTTP/1.1\r\nHost: faascached\r\n");
        for (name, value) in headers {
            req.push_str(name);
            req.push_str(": ");
            req.push_str(value);
            req.push_str("\r\n");
        }
        req.push_str("Content-Length: 0\r\n\r\n");
        self.stream.write_all(req.as_bytes())?;
        self.read_response()
    }

    fn fill(&mut self) -> io::Result<()> {
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "gateway closed the connection mid-response",
                    ));
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    return Ok(());
                }
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    fn read_response(&mut self) -> io::Result<(u16, Vec<u8>)> {
        loop {
            if let Some(head_end) = find_head_end(&self.rbuf) {
                let (status, content_length, close) = parse_response_head(&self.rbuf[..head_end])?;
                if content_length > MAX_BODY_BYTES {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "gateway response body exceeds cap",
                    ));
                }
                let total = head_end + content_length;
                while self.rbuf.len() < total {
                    self.fill()?;
                }
                let body = self.rbuf[head_end..total].to_vec();
                self.rbuf.drain(..total);
                if close {
                    self.closed = true;
                }
                return Ok((status, body));
            }
            if self.rbuf.len() > MAX_HEADER_BYTES {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "gateway response head exceeds cap",
                ));
            }
            self.fill()?;
        }
    }

    /// `POST /invoke/<function>` by registry index.
    pub fn invoke(&mut self, function: u32) -> io::Result<InvokeOutcome> {
        self.invoke_target(&function.to_string(), None)
    }

    /// Keyed invoke: retries carrying the same key are answered from
    /// the daemon's idempotency cache, exactly-once.
    pub fn invoke_keyed(&mut self, function: u32, key: u64) -> io::Result<InvokeOutcome> {
        self.invoke_target(&function.to_string(), Some(key))
    }

    /// `POST /invoke/<name>` by registered function name.
    pub fn invoke_named(&mut self, name: &str) -> io::Result<InvokeOutcome> {
        self.invoke_target(name, None)
    }

    fn invoke_target(&mut self, function: &str, key: Option<u64>) -> io::Result<InvokeOutcome> {
        let mut headers = Vec::new();
        if let Some(k) = key {
            headers.push(("Idempotency-Key", k.to_string()));
        }
        let (status, body) = self.request("POST", &format!("/invoke/{function}"), &headers)?;
        let body = String::from_utf8_lossy(&body);
        match status {
            200 if body.contains("\"outcome\":\"warm\"") => Ok(InvokeOutcome::Warm),
            200 if body.contains("\"outcome\":\"cold\"") => Ok(InvokeOutcome::Cold),
            // 429 covers both pool drops and tenant throttles; the
            // outcome label disambiguates.
            429 if body.contains("\"outcome\":\"throttled\"") => Ok(InvokeOutcome::Throttled),
            429 => Ok(InvokeOutcome::Dropped),
            503 => Ok(InvokeOutcome::Rejected),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected gateway response {other}: {}", body.trim()),
            )),
        }
    }

    /// `GET /healthz`, returning the status code (200 serving, 503
    /// draining).
    pub fn healthz(&mut self) -> io::Result<u16> {
        let (status, _) = self.request("GET", "/healthz", &[])?;
        Ok(status)
    }

    /// `GET /metrics`, returning the Prometheus text body.
    pub fn metrics(&mut self) -> io::Result<String> {
        let (status, body) = self.request("GET", "/metrics", &[])?;
        if status != 200 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("metrics returned {status}"),
            ));
        }
        Ok(String::from_utf8_lossy(&body).into_owned())
    }

    /// `PUT /functions/<name>`: registers a function at runtime under
    /// the default tenant and returns `(index, created)`. Duplicate
    /// registration is idempotent (`created == false`).
    pub fn register(
        &mut self,
        name: &str,
        mem_mb: u64,
        warm_us: u64,
        cold_us: u64,
    ) -> io::Result<(u32, bool)> {
        self.register_in(name, mem_mb, warm_us, cold_us, "")
    }

    /// [`Self::register`] with an owning tenant (`""` = default tenant).
    pub fn register_in(
        &mut self,
        name: &str,
        mem_mb: u64,
        warm_us: u64,
        cold_us: u64,
        tenant: &str,
    ) -> io::Result<(u32, bool)> {
        let mut target =
            format!("/functions/{name}?mem_mb={mem_mb}&warm_us={warm_us}&cold_us={cold_us}");
        if !tenant.is_empty() {
            target.push_str("&tenant=");
            target.push_str(tenant);
        }
        let (status, body) = self.request("PUT", &target, &[])?;
        let body = String::from_utf8_lossy(&body);
        if status != 200 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("register returned {status}: {}", body.trim()),
            ));
        }
        let idx = json_u64(&body, "function").ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "register reply missing index")
        })?;
        Ok((idx as u32, body.contains("\"created\":true")))
    }

    /// `PUT /tenants/<name>/quota`: updates a tenant's isolation budget
    /// at runtime (`u64::MAX` = unlimited). Returns whether the quota
    /// applied to a live (already bound) tenant slot.
    pub fn set_tenant_quota(
        &mut self,
        tenant: &str,
        inflight: u64,
        mem_mb: u64,
    ) -> io::Result<bool> {
        let mut target = format!("/tenants/{tenant}/quota");
        let mut sep = '?';
        if inflight != u64::MAX {
            target.push_str(&format!("{sep}inflight={inflight}"));
            sep = '&';
        }
        if mem_mb != u64::MAX {
            target.push_str(&format!("{sep}mem={mem_mb}"));
        }
        let (status, body) = self.request("PUT", &target, &[])?;
        let body = String::from_utf8_lossy(&body);
        if status != 200 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("quota update returned {status}: {}", body.trim()),
            ));
        }
        Ok(body.contains("\"live\":true"))
    }
}

/// Index one past a response head's terminator, if complete.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    terminator_take(&[], buf)
}

/// Parses a response head into `(status, content_length, close)`.
fn parse_response_head(head: &[u8]) -> io::Result<(u16, usize, bool)> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let text = std::str::from_utf8(head).map_err(|_| bad("non-utf8 response head"))?;
    let mut lines = text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let status_line = lines.next().unwrap_or("");
    let mut parts = status_line.split_ascii_whitespace();
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(bad("bad status line"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status code"))?;
    let mut content_length = 0usize;
    let mut close = false;
    for line in lines {
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().map_err(|_| bad("bad content-length"))?;
        } else if name.eq_ignore_ascii_case("connection") && value.eq_ignore_ascii_case("close") {
            close = true;
        }
    }
    Ok((status, content_length, close))
}

/// Extracts the number following `"key":` from a tiny JSON body.
fn json_u64(body: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = body.find(&pat)? + pat.len();
    let digits: String = body[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(wire: &[u8]) -> Vec<HttpRequest> {
        let mut parser = HttpParser::new();
        let mut out = VecDeque::new();
        parser.feed(wire, &mut out).expect("clean parse");
        assert!(!parser.is_mid_request(), "stream ended at a boundary");
        out.into()
    }

    #[test]
    fn parses_a_minimal_request() {
        let got = parse_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].method, "GET");
        assert_eq!(got[0].target, "/healthz");
        assert!(!got[0].close);
        assert!(got[0].body.is_empty());
    }

    #[test]
    fn byte_at_a_time_matches_one_shot() {
        let wire: &[u8] = b"POST /invoke/7 HTTP/1.1\r\nIdempotency-Key: 42\r\n\
                            Content-Length: 5\r\n\r\nhelloGET /metrics HTTP/1.1\r\n\r\n";
        let one_shot = parse_all(wire);
        let mut parser = HttpParser::new();
        let mut out = VecDeque::new();
        for byte in wire {
            parser.feed(std::slice::from_ref(byte), &mut out).unwrap();
        }
        assert_eq!(Vec::from(out), one_shot);
        assert_eq!(one_shot.len(), 2);
        assert_eq!(one_shot[0].body, b"hello");
        assert_eq!(one_shot[0].idem_key, Some(42));
        assert_eq!(one_shot[1].target, "/metrics");
    }

    #[test]
    fn pipelined_requests_do_not_share_bytes() {
        let wire: &[u8] = b"POST /invoke/1 HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc\
                            POST /invoke/2 HTTP/1.1\r\nContent-Length: 2\r\n\r\nxy";
        let got = parse_all(wire);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].body, b"abc");
        assert_eq!(got[1].body, b"xy");
        assert_eq!(got[1].target, "/invoke/2");
    }

    #[test]
    fn connection_close_and_http10_semantics() {
        let got = parse_all(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(got[0].close);
        let got = parse_all(b"GET / HTTP/1.0\r\n\r\n");
        assert!(got[0].close, "http/1.0 defaults to close");
        let got = parse_all(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(!got[0].close);
    }

    #[test]
    fn bare_lf_line_endings_are_tolerated() {
        let got = parse_all(b"GET /healthz HTTP/1.1\nHost: x\n\n");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].target, "/healthz");
    }

    #[test]
    fn oversized_content_length_is_413_before_buffering() {
        let mut parser = HttpParser::new();
        let mut out = VecDeque::new();
        let wire = format!(
            "POST /invoke/1 HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = parser.feed(wire.as_bytes(), &mut out).unwrap_err();
        assert_eq!(err, HttpParseError::BodyTooLarge);
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn oversized_header_block_is_431() {
        let mut parser = HttpParser::new();
        let mut out = VecDeque::new();
        let mut wire = b"GET / HTTP/1.1\r\n".to_vec();
        wire.extend_from_slice(format!("X-Pad: {}\r\n", "a".repeat(MAX_HEADER_BYTES)).as_bytes());
        let err = parser.feed(&wire, &mut out).unwrap_err();
        assert_eq!(err, HttpParseError::HeadersTooLarge);
        assert_eq!(err.status(), 431);
    }

    #[test]
    fn malformed_requests_are_400() {
        for wire in [
            &b"BOGUS\r\n\r\n"[..],
            b"GET / HTTP/2.0\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"GET / HTTP/1.1\r\nBad Header Line\r\n\r\n",
            b"GET nothing HTTP/1.1\r\n\r\n",
        ] {
            let mut parser = HttpParser::new();
            let mut out = VecDeque::new();
            let err = parser.feed(wire, &mut out).unwrap_err();
            assert_eq!(
                err.status(),
                400,
                "wire {:?}",
                String::from_utf8_lossy(wire)
            );
        }
    }

    #[test]
    fn completed_requests_survive_a_poisoned_tail() {
        // A valid request pipelined ahead of garbage: the valid one is
        // already on `out` when feed errors — the serve-then-close
        // contract the daemon relies on.
        let wire = b"GET /healthz HTTP/1.1\r\n\r\nBOGUS LINE\r\n\r\n";
        let mut parser = HttpParser::new();
        let mut out = VecDeque::new();
        assert!(parser.feed(wire, &mut out).is_err());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].target, "/healthz");
    }

    #[test]
    fn response_encoder_is_parseable_and_framed() {
        let mut buf = Vec::new();
        write_response(&mut buf, 200, "application/json", b"{\"ok\":1}", false);
        let head_end = find_head_end(&buf).expect("terminator");
        let (status, len, close) = parse_response_head(&buf[..head_end]).unwrap();
        assert_eq!((status, len, close), (200, 8, false));
        assert_eq!(&buf[head_end..], b"{\"ok\":1}");

        let mut buf = Vec::new();
        write_response(&mut buf, 503, "text/plain", b"draining\n", true);
        let head_end = find_head_end(&buf).unwrap();
        let (status, _, close) = parse_response_head(&buf[..head_end]).unwrap();
        assert_eq!((status, close), (503, true));
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
    }

    #[test]
    fn routes_map_to_the_expected_ops() {
        let req = |method: &str, target: &str, key: Option<u64>| HttpRequest {
            method: method.to_string(),
            target: target.to_string(),
            close: false,
            idem_key: key,
            body: Vec::new(),
        };
        assert_eq!(
            route(&req("POST", "/invoke/7", Some(9))),
            GatewayOp::Invoke {
                function: FnTarget::Index(7),
                key: Some(9)
            }
        );
        assert_eq!(
            route(&req("POST", "/invoke/img-resize", None)),
            GatewayOp::Invoke {
                function: FnTarget::Name("img-resize".to_string()),
                key: None
            }
        );
        assert_eq!(route(&req("GET", "/healthz", None)), GatewayOp::Healthz);
        assert_eq!(route(&req("GET", "/metrics", None)), GatewayOp::Metrics);
        assert_eq!(
            route(&req(
                "PUT",
                "/functions/f1?mem_mb=256&warm_ms=2&cold_ms=50",
                None
            )),
            GatewayOp::Register {
                name: "f1".to_string(),
                mem_mb: 256,
                warm_us: 2_000,
                cold_us: 50_000,
                tenant: String::new(),
            }
        );
        assert_eq!(
            route(&req(
                "PUT",
                "/functions/f2?mem_mb=128&warm_ms=1&cold_ms=20&tenant=acme",
                None
            )),
            GatewayOp::Register {
                name: "f2".to_string(),
                mem_mb: 128,
                warm_us: 1_000,
                cold_us: 20_000,
                tenant: "acme".to_string(),
            }
        );
        assert_eq!(
            route(&req("PUT", "/tenants/acme/quota?inflight=4&mem=512", None)),
            GatewayOp::SetTenantQuota {
                tenant: "acme".to_string(),
                inflight: 4,
                mem_mb: 512,
            }
        );
        assert_eq!(
            route(&req("PUT", "/tenants/acme/quota", None)),
            GatewayOp::SetTenantQuota {
                tenant: "acme".to_string(),
                inflight: u64::MAX,
                mem_mb: u64::MAX,
            }
        );
        match route(&req("PUT", "/tenants/acme/quota?inflight=lots", None)) {
            GatewayOp::Fail { status: 400, .. } => {}
            other => panic!("expected 400, got {other:?}"),
        }
        match route(&req("GET", "/tenants/acme/quota", None)) {
            GatewayOp::Fail { status: 405, .. } => {}
            other => panic!("expected 405, got {other:?}"),
        }
        match route(&req("DELETE", "/healthz", None)) {
            GatewayOp::Fail { status: 405, .. } => {}
            other => panic!("expected 405, got {other:?}"),
        }
        match route(&req("GET", "/nope", None)) {
            GatewayOp::Fail { status: 404, .. } => {}
            other => panic!("expected 404, got {other:?}"),
        }
        match route(&req("PUT", "/functions/bad%20name", None)) {
            GatewayOp::Fail { status: 400, .. } => {}
            other => panic!("expected 400, got {other:?}"),
        }
    }

    #[test]
    fn terminator_split_across_feeds_is_found() {
        let wire = b"GET / HTTP/1.1\r\n\r\n";
        for split in 1..wire.len() {
            let mut parser = HttpParser::new();
            let mut out = VecDeque::new();
            parser.feed(&wire[..split], &mut out).unwrap();
            parser.feed(&wire[split..], &mut out).unwrap();
            assert_eq!(out.len(), 1, "split at {split}");
        }
    }

    #[test]
    fn json_u64_extracts_fields() {
        assert_eq!(
            json_u64("{\"function\":17,\"created\":true}", "function"),
            Some(17)
        );
        assert_eq!(json_u64("{\"created\":true}", "function"), None);
    }
}
