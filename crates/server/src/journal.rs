//! Durable control-plane state: a CRC-framed, append-only journal.
//!
//! Everything the daemon serves from — warm containers, counters — is
//! legitimately volatile, but the *control plane* (which functions exist,
//! which tenant owns them, what budgets tenants have) must survive a
//! crash: a SIGKILLed `faascached` restarted from the same `--state-dir`
//! has to rejoin a cluster with the registry it acknowledged, or every
//! runtime `Register` since boot is silently forgotten.
//!
//! Design (no external deps — `std::fs` + a hand-rolled CRC-32):
//!
//! - **Record framing** — each record is `len:u32le | crc:u32le |
//!   payload`, where `crc` is the IEEE CRC-32 of the payload. A record is
//!   valid iff `1 <= len <= MAX_RECORD_LEN`, the payload is fully
//!   present, the CRC matches, and the payload decodes. Replay stops at
//!   the first invalid record: recovery is always the **longest valid
//!   prefix**, and the torn tail is physically truncated so the next
//!   append never interleaves with garbage.
//! - **Files** — `<state-dir>/journal.log` (append-only tail) and
//!   `<state-dir>/snapshot.log` (compacted full state, same framing).
//!   Recovery replays the snapshot, then the journal.
//! - **fsync policy** — every append is `write_all` + `sync_data` before
//!   the daemon acknowledges the mutation on the wire: an acked
//!   `Register`/quota update is durable. Control-plane mutations are
//!   rare, so the fsync sits nowhere near the invoke hot path.
//! - **Compaction** — when the journal tail grows past
//!   [`COMPACT_BYTES`]/[`COMPACT_RECORDS`], the caller serializes its
//!   full state into `snapshot.tmp`, fsyncs, renames over
//!   `snapshot.log`, then truncates the journal. A crash between the
//!   rename and the truncate leaves snapshot *and* journal describing the
//!   same mutations — harmless, because replay is idempotent (duplicate
//!   registers are skipped, duplicate quota sets are last-wins with equal
//!   values).
//! - **Idempotent replay** — records are applied through the same paths
//!   runtime RPCs use: a replayed `Register` whose name already exists
//!   (e.g. from the boot workload contract) is a no-op, so a state dir
//!   composes with `--functions/--seed` and with later runtime traffic.

use faascache_core::function::FunctionRegistry;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Upper bound on one record's payload. Registers and quota sets are a
/// few hundred bytes at most; anything larger is corruption, and the
/// bound keeps a flipped length byte from asking for a huge allocation.
pub const MAX_RECORD_LEN: u32 = 1024;

/// Journal size past which [`Journal::should_compact`] asks for a
/// snapshot.
pub const COMPACT_BYTES: u64 = 256 * 1024;

/// Appended-record count past which [`Journal::should_compact`] asks for
/// a snapshot.
pub const COMPACT_RECORDS: usize = 4096;

const JOURNAL_FILE: &str = "journal.log";
const SNAPSHOT_FILE: &str = "snapshot.log";
const SNAPSHOT_TMP: &str = "snapshot.tmp";

const TAG_REGISTER: u8 = 0x01;
const TAG_SET_QUOTA: u8 = 0x02;

/// One durable control-plane mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// A function registration (the durable twin of wire opcode 0x06).
    Register {
        /// Function name.
        name: String,
        /// Container memory footprint in MB.
        mem_mb: u32,
        /// Warm execution time in microseconds.
        warm_us: u64,
        /// Cold execution time in microseconds.
        cold_us: u64,
        /// Owning tenant (empty = default).
        tenant: String,
    },
    /// A tenant quota update (the durable twin of wire opcode 0x07).
    SetQuota {
        /// Tenant name.
        tenant: String,
        /// In-flight budget (`u64::MAX` = unlimited).
        inflight: u64,
        /// Memory budget in MB (`u64::MAX` = unlimited).
        mem_mb: u64,
    },
}

impl JournalRecord {
    /// Serializes the record payload (without framing).
    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            JournalRecord::Register {
                name,
                mem_mb,
                warm_us,
                cold_us,
                tenant,
            } => {
                out.push(TAG_REGISTER);
                push_str(&mut out, name);
                push_str(&mut out, tenant);
                out.extend_from_slice(&mem_mb.to_le_bytes());
                out.extend_from_slice(&warm_us.to_le_bytes());
                out.extend_from_slice(&cold_us.to_le_bytes());
            }
            JournalRecord::SetQuota {
                tenant,
                inflight,
                mem_mb,
            } => {
                out.push(TAG_SET_QUOTA);
                push_str(&mut out, tenant);
                out.extend_from_slice(&inflight.to_le_bytes());
                out.extend_from_slice(&mem_mb.to_le_bytes());
            }
        }
        out
    }

    /// Decodes a record payload. `None` means the payload is malformed —
    /// the caller treats the containing record as the start of the torn
    /// tail.
    fn decode_payload(payload: &[u8]) -> Option<JournalRecord> {
        let (&tag, rest) = payload.split_first()?;
        match tag {
            TAG_REGISTER => {
                let (name, rest) = take_str(rest)?;
                let (tenant, rest) = take_str(rest)?;
                let (mem_mb, rest) = take_u32(rest)?;
                let (warm_us, rest) = take_u64(rest)?;
                let (cold_us, rest) = take_u64(rest)?;
                if !rest.is_empty() {
                    return None;
                }
                Some(JournalRecord::Register {
                    name,
                    mem_mb,
                    warm_us,
                    cold_us,
                    tenant,
                })
            }
            TAG_SET_QUOTA => {
                let (tenant, rest) = take_str(rest)?;
                let (inflight, rest) = take_u64(rest)?;
                let (mem_mb, rest) = take_u64(rest)?;
                if !rest.is_empty() {
                    return None;
                }
                Some(JournalRecord::SetQuota {
                    tenant,
                    inflight,
                    mem_mb,
                })
            }
            _ => None,
        }
    }

    /// Serializes the record with framing (`len | crc | payload`).
    pub fn encode_framed(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(8 + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u8::MAX as usize, "journaled names fit in u8");
    out.push(s.len().min(u8::MAX as usize) as u8);
    out.extend_from_slice(&s.as_bytes()[..s.len().min(u8::MAX as usize)]);
}

fn take_str(buf: &[u8]) -> Option<(String, &[u8])> {
    let (&len, rest) = buf.split_first()?;
    let len = len as usize;
    if rest.len() < len {
        return None;
    }
    let s = std::str::from_utf8(&rest[..len]).ok()?.to_string();
    Some((s, &rest[len..]))
}

fn take_u32(buf: &[u8]) -> Option<(u32, &[u8])> {
    let bytes: [u8; 4] = buf.get(..4)?.try_into().ok()?;
    Some((u32::from_le_bytes(bytes), &buf[4..]))
}

fn take_u64(buf: &[u8]) -> Option<(u64, &[u8])> {
    let bytes: [u8; 8] = buf.get(..8)?.try_into().ok()?;
    Some((u64::from_le_bytes(bytes), &buf[8..]))
}

/// IEEE CRC-32 (the polynomial every `crc32` tool uses), table-driven,
/// computed without any external crate.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// What [`Journal::open`] recovered from the state dir.
#[derive(Debug, Clone, Default)]
pub struct RecoveredState {
    /// Every recovered mutation: snapshot records first, then the
    /// journal tail, in append order.
    pub records: Vec<JournalRecord>,
    /// How many of [`RecoveredState::records`] came from the snapshot.
    pub snapshot_records: usize,
    /// Torn-tail bytes truncated from the journal during recovery.
    pub truncated_bytes: u64,
}

/// Scans a framed record stream, returning the records of the longest
/// valid prefix and the byte length of that prefix. Never panics on
/// arbitrary input.
pub fn scan_records(bytes: &[u8]) -> (Vec<JournalRecord>, usize) {
    let mut records = Vec::new();
    let mut offset = 0usize;
    loop {
        let rest = &bytes[offset..];
        let Some((len, rest_after_len)) = take_u32(rest) else {
            break;
        };
        if len == 0 || len > MAX_RECORD_LEN {
            break;
        }
        let Some((crc, payload_and_rest)) = take_u32(rest_after_len) else {
            break;
        };
        let len = len as usize;
        if payload_and_rest.len() < len {
            break;
        }
        let payload = &payload_and_rest[..len];
        if crc32(payload) != crc {
            break;
        }
        let Some(record) = JournalRecord::decode_payload(payload) else {
            break;
        };
        records.push(record);
        offset += 8 + len;
    }
    (records, offset)
}

/// A computable fingerprint of a function registry: FNV-1a over every
/// spec's identity-relevant fields in id order. Two daemons whose
/// registries converged report the same digest; the router compares
/// scraped digests to decide whether a re-admitted backend needs its
/// mutation log replayed, and the recovery tests compare pre-crash and
/// post-restart digests.
pub fn registry_digest(registry: &FunctionRegistry) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut feed = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    };
    for spec in registry.iter() {
        feed(spec.name().as_bytes());
        feed(&[0xFF]);
        feed(&spec.mem().as_mb().to_le_bytes());
        feed(&spec.warm_time().as_micros().to_le_bytes());
        feed(&spec.cold_time().as_micros().to_le_bytes());
        feed(spec.tenant_name().as_bytes());
        feed(&[0xFE]);
    }
    hash
}

/// The append-only journal over a state directory. See the module docs
/// for the format and crash-consistency argument.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    file: File,
    journal_bytes: u64,
    journal_records: usize,
}

impl Journal {
    /// Opens (creating if needed) the state directory, recovers the
    /// longest valid snapshot+journal prefix, truncates any torn journal
    /// tail, and returns the journal positioned for appending.
    ///
    /// Never panics on corrupt bytes: arbitrary truncation or bit flips
    /// degrade to a shorter recovered prefix.
    pub fn open(dir: &Path) -> io::Result<(Journal, RecoveredState)> {
        fs::create_dir_all(dir)?;
        // A leftover snapshot.tmp is a compaction that never committed;
        // the durable snapshot.log + journal.log pair is authoritative.
        let _ = fs::remove_file(dir.join(SNAPSHOT_TMP));

        let mut recovered = RecoveredState::default();

        let snapshot_path = dir.join(SNAPSHOT_FILE);
        if let Ok(bytes) = fs::read(&snapshot_path) {
            let (records, valid) = scan_records(&bytes);
            recovered.truncated_bytes += (bytes.len() - valid) as u64;
            recovered.snapshot_records = records.len();
            recovered.records = records;
        }

        let journal_path = dir.join(JOURNAL_FILE);
        let bytes = match fs::read(&journal_path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let (records, valid) = scan_records(&bytes);
        if valid < bytes.len() {
            recovered.truncated_bytes += (bytes.len() - valid) as u64;
        }
        let journal_records = records.len();
        recovered.records.extend(records);

        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&journal_path)?;
        // Physically drop the torn tail so appends resume from the last
        // valid record.
        file.set_len(valid as u64)?;
        file.sync_data()?;
        let mut journal = Journal {
            dir: dir.to_path_buf(),
            file,
            journal_bytes: valid as u64,
            journal_records,
        };
        use std::io::Seek;
        journal.file.seek(io::SeekFrom::Start(valid as u64))?;
        Ok((journal, recovered))
    }

    /// Appends one record durably: the write is fsynced before this
    /// returns, so a mutation acked after `append` survives kill -9.
    pub fn append(&mut self, record: &JournalRecord) -> io::Result<()> {
        let framed = record.encode_framed();
        self.file.write_all(&framed)?;
        self.file.sync_data()?;
        self.journal_bytes += framed.len() as u64;
        self.journal_records += 1;
        Ok(())
    }

    /// Whether the journal tail has grown enough that the owner should
    /// call [`Journal::compact`] with its full state.
    pub fn should_compact(&self) -> bool {
        self.journal_bytes > COMPACT_BYTES || self.journal_records > COMPACT_RECORDS
    }

    /// Replaces the snapshot with `state` (the owner's *complete*
    /// control-plane state re-serialized as records) and truncates the
    /// journal. Crash-safe: tmp-write + fsync + atomic rename, and a
    /// crash before the journal truncate merely replays duplicates,
    /// which recovery applies idempotently.
    pub fn compact(&mut self, state: &[JournalRecord]) -> io::Result<()> {
        let tmp_path = self.dir.join(SNAPSHOT_TMP);
        let mut tmp = File::create(&tmp_path)?;
        for record in state {
            tmp.write_all(&record.encode_framed())?;
        }
        tmp.sync_data()?;
        drop(tmp);
        fs::rename(&tmp_path, self.dir.join(SNAPSHOT_FILE))?;
        self.file.set_len(0)?;
        use std::io::Seek;
        self.file.seek(io::SeekFrom::Start(0))?;
        self.file.sync_data()?;
        self.journal_bytes = 0;
        self.journal_records = 0;
        Ok(())
    }

    /// Bytes currently in the journal tail (excluding the snapshot).
    pub fn journal_bytes(&self) -> u64 {
        self.journal_bytes
    }

    /// Records currently in the journal tail (excluding the snapshot).
    pub fn journal_records(&self) -> usize {
        self.journal_records
    }

    /// The state directory this journal lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Reads the raw journal tail bytes of a state dir (testing aid for
/// corruption harnesses).
pub fn read_journal_bytes(dir: &Path) -> io::Result<Vec<u8>> {
    fs::read(dir.join(JOURNAL_FILE))
}

/// Overwrites the raw journal tail bytes of a state dir (testing aid for
/// corruption harnesses).
pub fn write_journal_bytes(dir: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut f = File::create(dir.join(JOURNAL_FILE))?;
    f.write_all(bytes)?;
    f.sync_data()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Register {
                name: "alpha".into(),
                mem_mb: 128,
                warm_us: 1_000,
                cold_us: 25_000,
                tenant: String::new(),
            },
            JournalRecord::SetQuota {
                tenant: "acme".into(),
                inflight: 16,
                mem_mb: u64::MAX,
            },
            JournalRecord::Register {
                name: "beta".into(),
                mem_mb: 512,
                warm_us: 2_000,
                cold_us: 60_000,
                tenant: "acme".into(),
            },
        ]
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "faascache-journal-{}-{tag}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_round_trip_through_framing() {
        for record in sample_records() {
            let framed = record.encode_framed();
            let (decoded, consumed) = scan_records(&framed);
            assert_eq!(consumed, framed.len());
            assert_eq!(decoded, vec![record]);
        }
    }

    #[test]
    fn append_then_reopen_recovers_everything() {
        let dir = tmp_dir("reopen");
        let (mut journal, recovered) = Journal::open(&dir).unwrap();
        assert!(recovered.records.is_empty());
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        drop(journal);
        let (_, recovered) = Journal::open(&dir).unwrap();
        assert_eq!(recovered.records, sample_records());
        assert_eq!(recovered.truncated_bytes, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_to_longest_valid_prefix() {
        let dir = tmp_dir("torn");
        let (mut journal, _) = Journal::open(&dir).unwrap();
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        drop(journal);
        // Tear the last record mid-payload.
        let bytes = read_journal_bytes(&dir).unwrap();
        write_journal_bytes(&dir, &bytes[..bytes.len() - 3]).unwrap();
        let (mut journal, recovered) = Journal::open(&dir).unwrap();
        assert_eq!(recovered.records, sample_records()[..2].to_vec());
        assert!(recovered.truncated_bytes > 0);
        // Appends resume cleanly after the truncation.
        journal.append(&sample_records()[2]).unwrap();
        drop(journal);
        let (_, recovered) = Journal::open(&dir).unwrap();
        assert_eq!(recovered.records, sample_records());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_stops_replay_at_the_flip() {
        let dir = tmp_dir("flip");
        let (mut journal, _) = Journal::open(&dir).unwrap();
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        drop(journal);
        let mut bytes = read_journal_bytes(&dir).unwrap();
        // Flip a bit inside the *second* record's payload.
        let first_len = sample_records()[0].encode_framed().len();
        bytes[first_len + 9] ^= 0x40;
        write_journal_bytes(&dir, &bytes).unwrap();
        let (_, recovered) = Journal::open(&dir).unwrap();
        assert_eq!(recovered.records, sample_records()[..1].to_vec());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_moves_state_into_the_snapshot() {
        let dir = tmp_dir("compact");
        let (mut journal, _) = Journal::open(&dir).unwrap();
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        journal.compact(&sample_records()).unwrap();
        assert_eq!(journal.journal_bytes(), 0);
        // New appends land in the (now empty) journal tail.
        let extra = JournalRecord::SetQuota {
            tenant: "late".into(),
            inflight: 1,
            mem_mb: 64,
        };
        journal.append(&extra).unwrap();
        drop(journal);
        let (_, recovered) = Journal::open(&dir).unwrap();
        assert_eq!(recovered.snapshot_records, 3);
        let mut expected = sample_records();
        expected.push(extra);
        assert_eq!(recovered.records, expected);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn leftover_snapshot_tmp_is_ignored() {
        let dir = tmp_dir("tmpfile");
        let (mut journal, _) = Journal::open(&dir).unwrap();
        journal.append(&sample_records()[0]).unwrap();
        drop(journal);
        fs::write(dir.join(SNAPSHOT_TMP), b"half-written garbage").unwrap();
        let (_, recovered) = Journal::open(&dir).unwrap();
        assert_eq!(recovered.records, sample_records()[..1].to_vec());
        assert!(!dir.join(SNAPSHOT_TMP).exists(), "tmp removed on open");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_never_panics_on_garbage() {
        // Adversarial prefixes: truncated length, absurd length, bad crc.
        assert_eq!(scan_records(&[]).1, 0);
        assert_eq!(scan_records(&[1, 2, 3]).1, 0);
        assert_eq!(scan_records(&u32::MAX.to_le_bytes()).1, 0);
        let mut huge = Vec::new();
        huge.extend_from_slice(&(MAX_RECORD_LEN + 1).to_le_bytes());
        huge.extend_from_slice(&[0u8; 64]);
        assert_eq!(scan_records(&huge).1, 0);
        let mut bad_crc = sample_records()[0].encode_framed();
        bad_crc[4] ^= 0xFF;
        assert_eq!(scan_records(&bad_crc).1, 0);
    }

    #[test]
    fn registry_digest_tracks_content() {
        use faascache_util::{MemMb, SimDuration};
        let mut a = FunctionRegistry::new();
        let mut b = FunctionRegistry::new();
        assert_eq!(registry_digest(&a), registry_digest(&b));
        a.register("f", MemMb::new(64), SimDuration::ZERO, SimDuration::ZERO)
            .unwrap();
        assert_ne!(registry_digest(&a), registry_digest(&b));
        b.register("f", MemMb::new(64), SimDuration::ZERO, SimDuration::ZERO)
            .unwrap();
        assert_eq!(registry_digest(&a), registry_digest(&b));
        // Tenant membership is identity-relevant.
        let id = a.find("f").unwrap().id();
        a.set_tenant(id, "acme");
        assert_ne!(registry_digest(&a), registry_digest(&b));
    }
}
