//! `faascached`: the FaasCache keep-alive pool as a serving daemon.
//!
//! Everything below `faascache-platform` works in virtual time inside one
//! process; this crate puts the sharded invoker behind a socket so real
//! clients on real clocks can drive it, the way the paper's evaluation
//! drives a modified OpenWhisk invoker with live load:
//!
//! - [`proto`] — a length-prefixed binary wire protocol spoken over TCP
//!   and Unix domain sockets (`std::net` only; no external deps);
//! - [`daemon`] — the `faascached` daemon: N pool shards with
//!   function-affinity routing, bounded admission with explicit
//!   backpressure, wall-clock background reapers, and graceful drain on
//!   SIGTERM / protocol shutdown;
//! - [`client`] — the blocking protocol client (with retry/backoff and
//!   idempotency keys) and the open-loop trace-replay load generator
//!   behind the `faas-load` binary;
//! - [`fault`] — seeded deterministic fault injection: a
//!   [`FaultyStream`](fault::FaultyStream) transport wrapper that tears
//!   writes, shortens reads, flips bits, stalls, and resets connections
//!   per a replayable [`FaultPlan`](fault::FaultPlan);
//! - [`workload`] — the deterministic workload contract: daemon and load
//!   generator derive the identical function registry from shared
//!   `--functions`/`--seed` parameters;
//! - [`http`] — the HTTP/1.1 gateway: an incremental request parser and
//!   response encoder (keep-alive, pipelining, Content-Length bodies,
//!   431/413 limits) plus routing for `POST /invoke/<fn>`, `GET
//!   /healthz`, `GET /metrics` (Prometheus text), and `PUT
//!   /functions/<name>` — served by both io models via `--http-listen`,
//!   so wrk/hey/curl can finally drive the cache;
//! - [`router`] — `faas-router`: a cluster front door forwarding to N
//!   `faascached` backends with the same routing policies `sim::cluster`
//!   models (random, round-robin, least-loaded, affinity), live health
//!   checks with ejection/re-admission, pinned idempotency keys, and
//!   per-backend `/metrics`;
//! - [`signal`] — SIGTERM/SIGINT wiring (an atomic flag the accept loop
//!   polls);
//! - [`reactor`] (linux) — the `--io-model epoll` serving core: one
//!   reactor thread multiplexing every connection over raw `epoll` with
//!   incremental frame codecs, a pooled-buffer allocator, and a worker
//!   pool for invocation execution — C10k connections, no new deps.
//!
//! The two binaries:
//!
//! ```text
//! faascached --unix /tmp/faascache.sock --shards 8 --mem-mb 8192
//! faas-load  --unix /tmp/faascache.sock --requests 100000 --threads 4 \
//!            --rps 20000 --shutdown
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod fault;
pub mod http;
pub mod journal;
pub mod net;
pub mod proto;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod router;
pub mod signal;
pub mod workload;

pub use client::{
    run_load, run_load_with, Client, LoadOptions, LoadProto, LoadReport, RetryPolicy,
};
pub use daemon::{
    BoundAddr, Daemon, DaemonConfig, DaemonReport, Endpoint, IoModel, ShutdownHandle,
};
pub use fault::{FaultConfig, FaultPlan, FaultyStream};
pub use http::{HttpClient, HttpParseError, HttpParser, HttpRequest};
pub use journal::{Journal, JournalRecord, RecoveredState};
pub use proto::{BufPool, FrameDecoder, FrameEncoder};
pub use router::{BackendSpec, Router, RouterConfig, RouterReport};
pub use workload::WorkloadConfig;
