//! Socket helpers for the serving cores.
//!
//! [`bind_tcp_reuseaddr`] exists for crash recovery: a daemon restarted
//! from its `--state-dir` must rebind the *exact* listen addresses its
//! dead predecessor served, or the router's health prober never finds it
//! again. Without `SO_REUSEADDR`, connections the kernel closed on the
//! old process's behalf linger in TIME_WAIT and block the rebind with
//! `EADDRINUSE` for a minute — an eternity against a 25 ms probe
//! interval. The std listener offers no pre-bind socket options, so the
//! Linux path builds the socket through the same thin FFI idiom the
//! epoll reactor uses; other platforms fall back to a plain bind.

use std::io;
use std::net::TcpListener;

#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod imp {
    use std::io;
    use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
    use std::os::fd::{FromRawFd, RawFd};

    mod ffi {
        use std::ffi::c_void;

        pub const AF_INET: i32 = 2;
        pub const SOCK_STREAM: i32 = 1;
        pub const SOCK_CLOEXEC: i32 = 0o2000000;
        pub const SOL_SOCKET: i32 = 1;
        pub const SO_REUSEADDR: i32 = 2;

        /// `struct sockaddr_in`; `sin_port` and `sin_addr` are stored in
        /// network byte order.
        #[repr(C)]
        pub struct SockaddrIn {
            pub sin_family: u16,
            pub sin_port: u16,
            pub sin_addr: u32,
            pub sin_zero: [u8; 8],
        }

        extern "C" {
            pub fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
            pub fn setsockopt(
                fd: i32,
                level: i32,
                optname: i32,
                optval: *const c_void,
                optlen: u32,
            ) -> i32;
            pub fn bind(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
            pub fn listen(fd: i32, backlog: i32) -> i32;
            pub fn close(fd: i32) -> i32;
        }
    }

    /// Closes the fd on drop so every error path below cleans up.
    struct Fd(RawFd);

    impl Drop for Fd {
        fn drop(&mut self) {
            unsafe {
                let _ = ffi::close(self.0);
            }
        }
    }

    pub fn bind(addr: &str) -> io::Result<TcpListener> {
        // Only IPv4 needs (or gets) the raw-socket path; v6-only
        // addresses fall back to a plain std bind.
        let v4 = addr.to_socket_addrs()?.find_map(|a| match a {
            SocketAddr::V4(v) => Some(v),
            SocketAddr::V6(_) => None,
        });
        let Some(v4) = v4 else {
            return TcpListener::bind(addr);
        };

        let fd = unsafe { ffi::socket(ffi::AF_INET, ffi::SOCK_STREAM | ffi::SOCK_CLOEXEC, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let fd = Fd(fd);
        let one: i32 = 1;
        let rc = unsafe {
            ffi::setsockopt(
                fd.0,
                ffi::SOL_SOCKET,
                ffi::SO_REUSEADDR,
                (&one as *const i32).cast(),
                std::mem::size_of::<i32>() as u32,
            )
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        let sa = ffi::SockaddrIn {
            sin_family: ffi::AF_INET as u16,
            sin_port: v4.port().to_be(),
            // `octets()` is already network byte order; store verbatim.
            sin_addr: u32::from_ne_bytes(v4.ip().octets()),
            sin_zero: [0; 8],
        };
        let rc = unsafe { ffi::bind(fd.0, &sa, std::mem::size_of::<ffi::SockaddrIn>() as u32) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        if unsafe { ffi::listen(fd.0, 1024) } != 0 {
            return Err(io::Error::last_os_error());
        }
        let fd = std::mem::ManuallyDrop::new(fd);
        Ok(unsafe { TcpListener::from_raw_fd(fd.0) })
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use std::io;
    use std::net::TcpListener;

    pub fn bind(addr: &str) -> io::Result<TcpListener> {
        TcpListener::bind(addr)
    }
}

/// Binds a TCP listener with `SO_REUSEADDR` set before the bind, so a
/// restarted daemon can reclaim its predecessor's addresses immediately
/// instead of waiting out TIME_WAIT.
pub fn bind_tcp_reuseaddr(addr: &str) -> io::Result<TcpListener> {
    imp::bind(addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    #[test]
    fn binds_and_accepts_like_a_plain_listener() {
        let listener = bind_tcp_reuseaddr("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr");
        let join = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().expect("accept");
            let mut byte = [0u8; 1];
            conn.read_exact(&mut byte).expect("read");
            conn.write_all(&byte).expect("write");
        });
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.write_all(&[0x5A]).expect("send");
        let mut echo = [0u8; 1];
        conn.read_exact(&mut echo).expect("echo");
        assert_eq!(echo, [0x5A]);
        join.join().expect("server thread");
    }

    #[test]
    fn rebinding_a_just_closed_port_succeeds() {
        // The crash-restart scenario in miniature: bind, take traffic
        // whose active close lands on the listener's side, drop the
        // listener, and immediately rebind the same port.
        let listener = bind_tcp_reuseaddr("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr");
        let join = std::thread::spawn(move || {
            let (conn, _) = listener.accept().expect("accept");
            // Server closes first: the TIME_WAIT lands on this side.
            drop(conn);
            listener
        });
        let conn = TcpStream::connect(addr).expect("connect");
        let mut buf = Vec::new();
        let _ = (&conn).read_to_end(&mut buf);
        drop(conn);
        let listener = join.join().expect("server thread");
        drop(listener);

        let rebound = bind_tcp_reuseaddr(&addr.to_string()).expect("rebind same port");
        assert_eq!(
            rebound.local_addr().expect("local addr").port(),
            addr.port()
        );
    }
}
