//! The `faascached` wire protocol: length-prefixed binary frames.
//!
//! The daemon speaks the same format over TCP and Unix domain sockets.
//! Every frame is a `u32` little-endian payload length followed by the
//! payload; the first payload byte is an opcode. All multi-byte integers
//! are little-endian. The format is deliberately trivial — no external
//! serialization crates exist in this build environment, and the protocol
//! must stay cheap enough that framing never dominates a warm invoke.
//!
//! ```text
//! frame    := len:u32le payload[len]
//! request  := 0x01 fn:u32le      (Invoke)
//!           | 0x02               (Stats)
//!           | 0x03               (Shutdown)
//!           | 0x04               (Ping)
//!           | 0x05 fn:u32le key:u64le  (InvokeKeyed: idempotent invoke)
//!           | 0x06 mem:u32le warm_us:u64le cold_us:u64le
//!                  name_len:u8 name:utf8[name_len] tenant:utf8
//!                  (Register: introduce a function at runtime; the
//!                   trailing tenant may be empty = default tenant)
//! response := 0x81 outcome:u8    (Invoked: 0 warm, 1 cold, 2 dropped,
//!                                 3 rejected, 4 throttled)
//!           | 0x82 warm:u64le cold:u64le dropped:u64le rejected:u64le
//!                  throttled:u64le evictions:u64le prewarms:u64le
//!                  migrations:u64le
//!                  (Stats)
//!           | 0x83               (ShutdownStarted)
//!           | 0x84               (Pong)
//!           | 0x85 fn:u32le created:u8  (Registered)
//!           | 0xFF msg:utf8      (Error)
//! ```

use faascache_platform::sharded::{InvokeOutcome, InvokerStats};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Upper bound on a frame payload; anything larger is a protocol error.
/// Legitimate frames are under 100 bytes — the guard exists so a
/// corrupted or hostile length prefix cannot trigger a huge allocation.
pub const MAX_FRAME: usize = 64 * 1024;

/// A request frame sent by clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Invoke the function with the given registry index.
    Invoke {
        /// Index of the function in the shared workload registry.
        function: u32,
    },
    /// Invoke with a client-chosen idempotency key: the daemon records
    /// the outcome per key, and a retry carrying the same key returns
    /// the recorded outcome instead of invoking again. This is what
    /// keeps both sides' counters exact when a response is lost to a
    /// connection reset and the client retries.
    InvokeKeyed {
        /// Index of the function in the shared workload registry.
        function: u32,
        /// Idempotency key, unique per logical request.
        key: u64,
    },
    /// Register a function at runtime (ROADMAP registry-sync item).
    /// Duplicate registration of the same name is idempotent: the daemon
    /// answers with the existing index and `created = false`. This is
    /// what lets clients introduce functions instead of deriving the
    /// whole workload from a shared `--functions/--seed` pair.
    Register {
        /// Function name, unique in the registry.
        name: String,
        /// Memory footprint in MB (must be nonzero).
        mem_mb: u32,
        /// Warm execution time in microseconds.
        warm_us: u64,
        /// Cold (initialization + execution) time in microseconds; must
        /// be at least `warm_us`.
        cold_us: u64,
        /// Owning tenant name; empty means the default tenant. Budgets
        /// are looked up by this name (unknown names get the default
        /// quota).
        tenant: String,
    },
    /// Update a tenant's admission budget at runtime (ROADMAP
    /// runtime-quota item). Applied to the live accounting table
    /// immediately and journaled when the daemon runs with
    /// `--state-dir`, so the budget survives a restart.
    SetTenantQuota {
        /// Tenant name (must be non-empty; the default tenant is
        /// addressed as `"default"`).
        tenant: String,
        /// In-flight budget (`u64::MAX` = unlimited).
        inflight: u64,
        /// Memory budget in MB (`u64::MAX` = unlimited).
        mem_mb: u64,
    },
    /// Ask for the daemon's aggregate invoker statistics.
    Stats,
    /// Ask the daemon to drain in-flight work and exit.
    Shutdown,
    /// Liveness probe.
    Ping,
}

/// A response frame sent by the daemon.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Outcome of an [`Request::Invoke`].
    Invoked(InvokeOutcome),
    /// Aggregate invoker statistics.
    Stats(InvokerStats),
    /// The daemon acknowledged [`Request::Shutdown`] and began draining.
    ShutdownStarted,
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::Register`]: the function's registry index and
    /// whether this call created it (`false` = idempotent duplicate).
    Registered {
        /// Registry index usable in [`Request::Invoke`].
        function: u32,
        /// Whether this registration created the function.
        created: bool,
    },
    /// Reply to [`Request::SetTenantQuota`].
    QuotaSet {
        /// Whether the quota was applied to a live accounting slot
        /// (`false` = stored; it binds when the tenant is first seen).
        live: bool,
    },
    /// The request could not be served (unknown opcode, bad function
    /// index, malformed payload).
    Error(String),
}

const OP_INVOKE: u8 = 0x01;
const OP_STATS: u8 = 0x02;
const OP_SHUTDOWN: u8 = 0x03;
const OP_PING: u8 = 0x04;
const OP_INVOKE_KEYED: u8 = 0x05;
const OP_REGISTER: u8 = 0x06;
const OP_SET_QUOTA: u8 = 0x07;
const OP_R_INVOKED: u8 = 0x81;
const OP_R_STATS: u8 = 0x82;
const OP_R_SHUTDOWN: u8 = 0x83;
const OP_R_PONG: u8 = 0x84;
const OP_R_REGISTERED: u8 = 0x85;
const OP_R_QUOTA_SET: u8 = 0x86;
const OP_R_ERROR: u8 = 0xFF;

fn protocol_error(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn outcome_code(outcome: InvokeOutcome) -> u8 {
    match outcome {
        InvokeOutcome::Warm => 0,
        InvokeOutcome::Cold => 1,
        InvokeOutcome::Dropped => 2,
        InvokeOutcome::Rejected => 3,
        InvokeOutcome::Throttled => 4,
    }
}

fn outcome_from_code(code: u8) -> io::Result<InvokeOutcome> {
    match code {
        0 => Ok(InvokeOutcome::Warm),
        1 => Ok(InvokeOutcome::Cold),
        2 => Ok(InvokeOutcome::Dropped),
        3 => Ok(InvokeOutcome::Rejected),
        4 => Ok(InvokeOutcome::Throttled),
        other => Err(protocol_error(format!("bad outcome code {other}"))),
    }
}

fn read_u32(payload: &[u8], at: usize) -> io::Result<u32> {
    let bytes = payload
        .get(at..at + 4)
        .ok_or_else(|| protocol_error("truncated u32"))?;
    Ok(u32::from_le_bytes(bytes.try_into().unwrap()))
}

fn read_u64(payload: &[u8], at: usize) -> io::Result<u64> {
    let bytes = payload
        .get(at..at + 8)
        .ok_or_else(|| protocol_error("truncated u64"))?;
    Ok(u64::from_le_bytes(bytes.try_into().unwrap()))
}

impl Request {
    /// Encodes the request as a frame payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Invoke { function } => {
                let mut out = Vec::with_capacity(5);
                out.push(OP_INVOKE);
                out.extend_from_slice(&function.to_le_bytes());
                out
            }
            Request::InvokeKeyed { function, key } => {
                let mut out = Vec::with_capacity(13);
                out.push(OP_INVOKE_KEYED);
                out.extend_from_slice(&function.to_le_bytes());
                out.extend_from_slice(&key.to_le_bytes());
                out
            }
            Request::Register {
                name,
                mem_mb,
                warm_us,
                cold_us,
                tenant,
            } => {
                debug_assert!(name.len() <= u8::MAX as usize, "name fits the length byte");
                let mut out = Vec::with_capacity(22 + name.len() + tenant.len());
                out.push(OP_REGISTER);
                out.extend_from_slice(&mem_mb.to_le_bytes());
                out.extend_from_slice(&warm_us.to_le_bytes());
                out.extend_from_slice(&cold_us.to_le_bytes());
                out.push(name.len() as u8);
                out.extend_from_slice(name.as_bytes());
                out.extend_from_slice(tenant.as_bytes());
                out
            }
            Request::SetTenantQuota {
                tenant,
                inflight,
                mem_mb,
            } => {
                let mut out = Vec::with_capacity(17 + tenant.len());
                out.push(OP_SET_QUOTA);
                out.extend_from_slice(&inflight.to_le_bytes());
                out.extend_from_slice(&mem_mb.to_le_bytes());
                out.extend_from_slice(tenant.as_bytes());
                out
            }
            Request::Stats => vec![OP_STATS],
            Request::Shutdown => vec![OP_SHUTDOWN],
            Request::Ping => vec![OP_PING],
        }
    }

    /// Decodes a frame payload into a request.
    pub fn decode(payload: &[u8]) -> io::Result<Request> {
        match payload.first().copied() {
            Some(OP_INVOKE) => Ok(Request::Invoke {
                function: read_u32(payload, 1)?,
            }),
            Some(OP_INVOKE_KEYED) => Ok(Request::InvokeKeyed {
                function: read_u32(payload, 1)?,
                key: read_u64(payload, 5)?,
            }),
            Some(OP_REGISTER) => {
                let name_len = payload
                    .get(21)
                    .copied()
                    .ok_or_else(|| protocol_error("truncated register frame"))?
                    as usize;
                let name_bytes = payload
                    .get(22..22 + name_len)
                    .ok_or_else(|| protocol_error("truncated register name"))?;
                let name = std::str::from_utf8(name_bytes)
                    .map_err(|_| protocol_error("register name is not utf-8"))?;
                if name.is_empty() {
                    return Err(protocol_error("register name is empty"));
                }
                // Everything after the name is the tenant; empty = the
                // default tenant.
                let tenant = std::str::from_utf8(&payload[22 + name_len..])
                    .map_err(|_| protocol_error("register tenant is not utf-8"))?;
                Ok(Request::Register {
                    name: name.to_string(),
                    mem_mb: read_u32(payload, 1)?,
                    warm_us: read_u64(payload, 5)?,
                    cold_us: read_u64(payload, 13)?,
                    tenant: tenant.to_string(),
                })
            }
            Some(OP_SET_QUOTA) => {
                let inflight = read_u64(payload, 1)?;
                let mem_mb = read_u64(payload, 9)?;
                // Everything after the fixed header is the tenant name.
                let tenant = std::str::from_utf8(&payload[17..])
                    .map_err(|_| protocol_error("quota tenant is not utf-8"))?;
                if tenant.is_empty() {
                    return Err(protocol_error("quota tenant is empty"));
                }
                Ok(Request::SetTenantQuota {
                    tenant: tenant.to_string(),
                    inflight,
                    mem_mb,
                })
            }
            Some(OP_STATS) => Ok(Request::Stats),
            Some(OP_SHUTDOWN) => Ok(Request::Shutdown),
            Some(OP_PING) => Ok(Request::Ping),
            Some(op) => Err(protocol_error(format!("unknown request opcode {op:#x}"))),
            None => Err(protocol_error("empty request frame")),
        }
    }
}

impl Response {
    /// Encodes the response as a frame payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Invoked(outcome) => vec![OP_R_INVOKED, outcome_code(*outcome)],
            Response::Stats(stats) => {
                let mut out = Vec::with_capacity(1 + 8 * 8);
                out.push(OP_R_STATS);
                for v in [
                    stats.warm,
                    stats.cold,
                    stats.dropped,
                    stats.rejected,
                    stats.throttled,
                    stats.evictions,
                    stats.prewarms,
                    stats.migrations,
                ] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                out
            }
            Response::ShutdownStarted => vec![OP_R_SHUTDOWN],
            Response::Pong => vec![OP_R_PONG],
            Response::Registered { function, created } => {
                let mut out = Vec::with_capacity(6);
                out.push(OP_R_REGISTERED);
                out.extend_from_slice(&function.to_le_bytes());
                out.push(u8::from(*created));
                out
            }
            Response::QuotaSet { live } => vec![OP_R_QUOTA_SET, u8::from(*live)],
            Response::Error(msg) => {
                let mut out = Vec::with_capacity(1 + msg.len());
                out.push(OP_R_ERROR);
                out.extend_from_slice(msg.as_bytes());
                out
            }
        }
    }

    /// Decodes a frame payload into a response.
    pub fn decode(payload: &[u8]) -> io::Result<Response> {
        match payload.first().copied() {
            Some(OP_R_INVOKED) => {
                let code = payload
                    .get(1)
                    .copied()
                    .ok_or_else(|| protocol_error("truncated invoke response"))?;
                Ok(Response::Invoked(outcome_from_code(code)?))
            }
            Some(OP_R_STATS) => Ok(Response::Stats(InvokerStats {
                warm: read_u64(payload, 1)?,
                cold: read_u64(payload, 9)?,
                dropped: read_u64(payload, 17)?,
                rejected: read_u64(payload, 25)?,
                throttled: read_u64(payload, 33)?,
                evictions: read_u64(payload, 41)?,
                prewarms: read_u64(payload, 49)?,
                migrations: read_u64(payload, 57)?,
            })),
            Some(OP_R_SHUTDOWN) => Ok(Response::ShutdownStarted),
            Some(OP_R_PONG) => Ok(Response::Pong),
            Some(OP_R_REGISTERED) => {
                let created = match payload.get(5).copied() {
                    Some(0) => false,
                    Some(1) => true,
                    Some(other) => {
                        return Err(protocol_error(format!("bad created flag {other}")));
                    }
                    None => return Err(protocol_error("truncated register response")),
                };
                Ok(Response::Registered {
                    function: read_u32(payload, 1)?,
                    created,
                })
            }
            Some(OP_R_QUOTA_SET) => {
                let live = match payload.get(1).copied() {
                    Some(0) => false,
                    Some(1) => true,
                    Some(other) => {
                        return Err(protocol_error(format!("bad quota live flag {other}")));
                    }
                    None => return Err(protocol_error("truncated quota response")),
                };
                Ok(Response::QuotaSet { live })
            }
            Some(OP_R_ERROR) => Ok(Response::Error(
                String::from_utf8_lossy(&payload[1..]).into_owned(),
            )),
            Some(op) => Err(protocol_error(format!("unknown response opcode {op:#x}"))),
            None => Err(protocol_error("empty response frame")),
        }
    }
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    let len =
        u32::try_from(payload.len()).map_err(|_| protocol_error("frame too large to encode"))?;
    // One buffered write per frame: header + payload together, so a frame
    // is never split by an interleaving writer on the same stream.
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)
}

/// Reads one length-prefixed frame, blocking until it is complete.
///
/// Returns `Ok(None)` on clean EOF at a frame boundary; mid-frame EOF and
/// oversized lengths are `InvalidData` errors.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    match read_exact_or_eof(r, &mut header)? {
        FrameRead::Eof => return Ok(None),
        FrameRead::Complete => {}
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(protocol_error(format!("frame length {len} exceeds cap")));
    }
    let mut payload = vec![0u8; len];
    match read_exact_or_eof(r, &mut payload)? {
        FrameRead::Eof => Err(protocol_error("eof inside frame payload")),
        FrameRead::Complete => Ok(Some(payload)),
    }
}

/// What [`poll_frame`] observed on a stream with a read timeout.
#[derive(Debug)]
pub enum Poll {
    /// A complete frame payload arrived.
    Frame(Vec<u8>),
    /// The peer closed the stream at a frame boundary.
    Eof,
    /// The read timed out before any byte of a new frame arrived.
    Idle,
}

/// Reads one frame from a stream configured with a read timeout.
///
/// A timeout before the first byte of the frame yields [`Poll::Idle`] so
/// the caller can check a shutdown flag and poll again. Once any byte of
/// a frame has been read the function keeps retrying timeouts until the
/// frame completes or `stall_limit` elapses — a frame, once started, is
/// never silently torn in half by the polling loop.
///
/// `stall_limit` is a *hard per-frame deadline*: a peer that trickles
/// one byte per grace period makes progress on every read but still gets
/// cut off once the frame as a whole has taken longer than the limit.
/// Without the hard deadline a 64 KiB frame fed at 1 byte per timeout
/// would hold a handler thread hostage for the better part of an hour.
pub fn poll_frame(r: &mut impl Read, stall_limit: Duration) -> io::Result<Poll> {
    let mut header = [0u8; 4];
    match read_patiently(r, &mut header, stall_limit, true)? {
        PatientRead::Eof => return Ok(Poll::Eof),
        PatientRead::Idle => return Ok(Poll::Idle),
        PatientRead::Complete => {}
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(protocol_error(format!("frame length {len} exceeds cap")));
    }
    let mut payload = vec![0u8; len];
    match read_patiently(r, &mut payload, stall_limit, false)? {
        PatientRead::Eof => Err(protocol_error("eof inside frame payload")),
        PatientRead::Idle => unreachable!("idle is only reported before the first byte"),
        PatientRead::Complete => Ok(Poll::Frame(payload)),
    }
}

enum FrameRead {
    Complete,
    Eof,
}

enum PatientRead {
    Complete,
    Eof,
    Idle,
}

fn is_timeout(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
    )
}

/// `read_exact` that distinguishes clean EOF before the first byte.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<FrameRead> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(FrameRead::Eof),
            Ok(0) => return Err(protocol_error("eof inside frame")),
            Ok(n) => filled += n,
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(FrameRead::Complete)
}

/// `read_exact` over a timeout-configured stream: a timeout with zero
/// bytes read reports [`PatientRead::Idle`] (when `allow_idle`); once any
/// byte has been read, `stall_limit` is a hard deadline for the whole
/// buffer — timeouts *and* trickled partial reads both count against it.
fn read_patiently(
    r: &mut impl Read,
    buf: &mut [u8],
    stall_limit: Duration,
    allow_idle: bool,
) -> io::Result<PatientRead> {
    let mut filled = 0;
    let start = Instant::now();
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(PatientRead::Eof),
            Ok(0) => return Err(protocol_error("eof inside frame")),
            Ok(n) => {
                filled += n;
                // Progress alone does not reprieve a stalling peer: a
                // trickle of 1 byte per grace period must still hit the
                // per-frame deadline.
                if filled < buf.len() && start.elapsed() > stall_limit {
                    return Err(protocol_error("peer exceeded per-frame deadline"));
                }
            }
            Err(ref e) if is_timeout(e) => {
                if filled == 0 && allow_idle {
                    return Ok(PatientRead::Idle);
                }
                if start.elapsed() > stall_limit {
                    return Err(protocol_error("peer stalled mid-frame"));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(PatientRead::Complete)
}

/// A shared pool of reusable byte buffers.
///
/// The readiness-driven serving core decodes and encodes one frame per
/// request on connections that number in the thousands; allocating a
/// fresh `Vec` per frame would make the allocator the hot path. The pool
/// recycles payload and wire buffers across frames and across
/// connections. It is deliberately simple — a mutexed free list — because
/// the reactor is single-threaded and the worker pool is small, so the
/// lock is uncontended in practice.
#[derive(Debug, Clone)]
pub struct BufPool {
    free: Arc<Mutex<Vec<Vec<u8>>>>,
    max_pooled: usize,
    retain_cap: usize,
}

impl BufPool {
    /// A pool retaining up to `max_pooled` buffers of at most
    /// `retain_cap` bytes capacity each. Larger returned buffers are
    /// dropped instead of hoarded.
    pub fn new(max_pooled: usize, retain_cap: usize) -> Self {
        BufPool {
            free: Arc::new(Mutex::new(Vec::new())),
            max_pooled,
            retain_cap: retain_cap.max(64),
        }
    }

    /// A pool sized for the daemon: frames are under 100 bytes, so small
    /// buffers cover everything but pathological error strings.
    pub fn serving_default() -> Self {
        BufPool::new(4096, 512)
    }

    /// Takes an empty buffer with at least `want` bytes of capacity.
    pub fn get(&self, want: usize) -> Vec<u8> {
        if let Ok(mut free) = self.free.lock() {
            if let Some(mut buf) = free.pop() {
                buf.clear();
                if buf.capacity() < want {
                    buf.reserve(want - buf.capacity());
                }
                return buf;
            }
        }
        Vec::with_capacity(want.max(64))
    }

    /// Returns a buffer to the pool (dropped if the pool is full or the
    /// buffer outgrew the retention cap).
    pub fn put(&self, buf: Vec<u8>) {
        if buf.capacity() == 0 || buf.capacity() > self.retain_cap {
            return;
        }
        if let Ok(mut free) = self.free.lock() {
            if free.len() < self.max_pooled {
                free.push(buf);
            }
        }
    }

    /// Buffers currently available for reuse.
    pub fn available(&self) -> usize {
        self.free.lock().map(|f| f.len()).unwrap_or(0)
    }
}

/// Incremental, resumable frame decoder for nonblocking transports.
///
/// The blocking reader ([`read_frame`] / [`poll_frame`]) parks a thread
/// until a frame completes; a readiness-driven connection cannot do that.
/// `FrameDecoder` instead consumes whatever bytes the socket had —
/// possibly one — and buffers partial state across calls, yielding every
/// frame that completed. Feeding the same byte stream one byte at a time
/// or in arbitrary chunks produces the identical frame sequence (see the
/// `proto_fuzz` property tests).
///
/// Oversized length prefixes are rejected exactly like the blocking
/// reader: an `InvalidData` error before any payload allocation.
#[derive(Debug)]
pub struct FrameDecoder {
    pool: Option<BufPool>,
    header: [u8; 4],
    header_filled: usize,
    payload: Option<Vec<u8>>,
    payload_len: usize,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameDecoder {
    /// A decoder that allocates payload buffers from the global
    /// allocator.
    pub fn new() -> Self {
        FrameDecoder {
            pool: None,
            header: [0; 4],
            header_filled: 0,
            payload: None,
            payload_len: 0,
        }
    }

    /// A decoder that takes payload buffers from `pool`. Completed frames
    /// are handed to the caller, who returns them to the pool when done.
    pub fn with_pool(pool: BufPool) -> Self {
        FrameDecoder {
            pool: Some(pool),
            ..Self::new()
        }
    }

    /// Whether any byte of an unfinished frame has been consumed. A peer
    /// that closes the stream while this is true tore a frame in half.
    pub fn is_mid_frame(&self) -> bool {
        self.header_filled > 0 || self.payload.is_some()
    }

    fn alloc_payload(&self, len: usize) -> Vec<u8> {
        match &self.pool {
            Some(pool) => pool.get(len),
            None => Vec::with_capacity(len),
        }
    }

    /// Consumes all of `bytes`, pushing every frame payload that
    /// completed onto `out`. Returns the number of frames completed by
    /// this call. An oversized length prefix poisons the stream: the
    /// error is returned and the decoder must not be fed again.
    pub fn feed(&mut self, mut bytes: &[u8], out: &mut VecDeque<Vec<u8>>) -> io::Result<usize> {
        let mut completed = 0;
        while !bytes.is_empty() {
            if self.payload.is_none() {
                // Header phase: accumulate the 4-byte length prefix.
                let need = 4 - self.header_filled;
                let take = need.min(bytes.len());
                self.header[self.header_filled..self.header_filled + take]
                    .copy_from_slice(&bytes[..take]);
                self.header_filled += take;
                bytes = &bytes[take..];
                if self.header_filled < 4 {
                    break;
                }
                let len = u32::from_le_bytes(self.header) as usize;
                if len > MAX_FRAME {
                    return Err(protocol_error(format!("frame length {len} exceeds cap")));
                }
                self.payload = Some(self.alloc_payload(len));
                self.payload_len = len;
            }
            let payload = self.payload.as_mut().expect("payload phase");
            let need = self.payload_len - payload.len();
            let take = need.min(bytes.len());
            payload.extend_from_slice(&bytes[..take]);
            bytes = &bytes[take..];
            if payload.len() == self.payload_len {
                out.push_back(self.payload.take().expect("frame complete"));
                self.header_filled = 0;
                completed += 1;
            }
        }
        Ok(completed)
    }
}

/// How a [`FrameEncoder::write_to`] call ended.
#[derive(Debug)]
pub enum WriteProgress {
    /// Every queued frame was written.
    Flushed,
    /// The transport would block (or spuriously timed out) with frames
    /// still queued; retry when the socket reports writability.
    Blocked,
    /// The transport failed; the connection is dead.
    Closed(io::Error),
}

/// Incremental frame writer for nonblocking transports.
///
/// Queues length-prefixed wire frames and writes as much as the socket
/// accepts, tracking a byte offset into the front frame so a partial
/// write resumes exactly where it stopped. [`FrameEncoder::write_to`]
/// reports how many *whole frames* finished in the call — the unit the
/// daemon's drain accounting brackets (`active` counts frames whose
/// response is not yet fully on the wire).
#[derive(Debug, Default)]
pub struct FrameEncoder {
    queue: VecDeque<Vec<u8>>,
    offset: usize,
}

impl FrameEncoder {
    /// An empty write queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues `payload` as a length-prefixed wire frame, buffering into
    /// `buf` (typically from a [`BufPool`]).
    pub fn push_payload_into(&mut self, payload: &[u8], mut buf: Vec<u8>) {
        debug_assert!(payload.len() <= MAX_FRAME);
        buf.clear();
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(payload);
        self.queue.push_back(buf);
    }

    /// Queues an already length-prefixed wire frame.
    pub fn push_wire_frame(&mut self, frame: Vec<u8>) {
        self.queue.push_back(frame);
    }

    /// Whether no frames (not even a partial one) remain queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Frames queued, counting a partially written front frame.
    pub fn pending_frames(&self) -> usize {
        self.queue.len()
    }

    /// Drops all queued frames into `reclaim`, returning how many frames
    /// (complete or partial) were discarded — the connection-close path's
    /// drain accounting.
    pub fn abandon(&mut self, reclaim: &mut dyn FnMut(Vec<u8>)) -> usize {
        let n = self.queue.len();
        for buf in self.queue.drain(..) {
            reclaim(buf);
        }
        self.offset = 0;
        n
    }

    /// Writes queued frames until the queue empties or the transport
    /// blocks. Returns `(frames_completed, progress)`; completed frame
    /// buffers are handed to `reclaim` for pooling.
    pub fn write_to(
        &mut self,
        w: &mut impl Write,
        reclaim: &mut dyn FnMut(Vec<u8>),
    ) -> (usize, WriteProgress) {
        let mut completed = 0;
        while let Some(front) = self.queue.front() {
            match w.write(&front[self.offset..]) {
                Ok(0) => {
                    return (
                        completed,
                        WriteProgress::Closed(io::Error::new(
                            io::ErrorKind::WriteZero,
                            "transport accepted zero bytes",
                        )),
                    );
                }
                Ok(n) => {
                    self.offset += n;
                    if self.offset == front.len() {
                        let done = self.queue.pop_front().expect("front exists");
                        reclaim(done);
                        self.offset = 0;
                        completed += 1;
                    }
                }
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                // A spurious (injected) timeout is retryable exactly like
                // WouldBlock: nothing was consumed, writability will
                // re-report.
                Err(ref e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return (completed, WriteProgress::Blocked);
                }
                Err(e) => return (completed, WriteProgress::Closed(e)),
            }
        }
        (completed, WriteProgress::Flushed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Invoke { function: 0 },
            Request::Invoke { function: u32::MAX },
            Request::InvokeKeyed {
                function: 0,
                key: 0,
            },
            Request::InvokeKeyed {
                function: u32::MAX,
                key: u64::MAX,
            },
            Request::Register {
                name: "img-resize".to_string(),
                mem_mb: 256,
                warm_us: 1_500,
                cold_us: 250_000,
                tenant: String::new(),
            },
            Request::Register {
                name: "img-resize".to_string(),
                mem_mb: 256,
                warm_us: 1_500,
                cold_us: 250_000,
                tenant: "acme-corp".to_string(),
            },
            Request::SetTenantQuota {
                tenant: "acme-corp".to_string(),
                inflight: 16,
                mem_mb: 512,
            },
            Request::SetTenantQuota {
                tenant: "unbounded".to_string(),
                inflight: u64::MAX,
                mem_mb: u64::MAX,
            },
            Request::Stats,
            Request::Shutdown,
            Request::Ping,
        ] {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn set_quota_rejects_truncation_and_empty_tenant() {
        let frame = Request::SetTenantQuota {
            tenant: "t".to_string(),
            inflight: 4,
            mem_mb: 128,
        }
        .encode();
        // Dropping the tenant tail leaves an empty name, which is
        // rejected; cutting into the fixed header truncates a u64.
        assert!(Request::decode(&frame[..17]).is_err());
        assert!(Request::decode(&frame[..12]).is_err());
        assert!(Request::decode(&[OP_SET_QUOTA]).is_err());
        // Non-utf8 tenant bytes are rejected.
        let mut bad = frame.clone();
        bad[17] = 0xFF;
        assert!(Request::decode(&bad).is_err());
    }

    #[test]
    fn register_rejects_truncation_and_empty_names() {
        // Header bytes only, no name.
        let frame = Request::Register {
            name: "xy".to_string(),
            mem_mb: 1,
            warm_us: 1,
            cold_us: 1,
            tenant: String::new(),
        }
        .encode();
        // Cutting the last byte truncates the name below its length byte.
        assert!(Request::decode(&frame[..frame.len() - 1]).is_err());
        assert!(Request::decode(&frame[..8]).is_err());
        assert!(Request::decode(&[OP_REGISTER]).is_err());
        // A zero name_len decodes to an empty name, which is rejected.
        let mut empty_name = frame.clone();
        empty_name[21] = 0;
        assert!(Request::decode(&empty_name[..22]).is_err());
    }

    #[test]
    fn responses_round_trip() {
        let stats = InvokerStats {
            warm: 1,
            cold: 2,
            dropped: 3,
            rejected: 4,
            throttled: 8,
            evictions: 5,
            prewarms: 6,
            migrations: 7,
        };
        for resp in [
            Response::Invoked(InvokeOutcome::Warm),
            Response::Invoked(InvokeOutcome::Cold),
            Response::Invoked(InvokeOutcome::Dropped),
            Response::Invoked(InvokeOutcome::Rejected),
            Response::Invoked(InvokeOutcome::Throttled),
            Response::Stats(stats),
            Response::ShutdownStarted,
            Response::Pong,
            Response::Registered {
                function: 17,
                created: true,
            },
            Response::Registered {
                function: 0,
                created: false,
            },
            Response::QuotaSet { live: true },
            Response::QuotaSet { live: false },
            Response::Error("bad function".into()),
        ] {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn quota_set_response_rejects_bad_flags() {
        assert!(Response::decode(&[OP_R_QUOTA_SET]).is_err());
        assert!(Response::decode(&[OP_R_QUOTA_SET, 2]).is_err());
    }

    #[test]
    fn frames_round_trip_over_a_stream() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Invoke { function: 7 }.encode()).unwrap();
        write_frame(&mut wire, &Request::Stats.encode()).unwrap();
        let mut cursor = Cursor::new(wire);
        let first = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(
            Request::decode(&first).unwrap(),
            Request::Invoke { function: 7 }
        );
        let second = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(Request::decode(&second).unwrap(), Request::Stats);
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean eof");
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        let err = read_frame(&mut Cursor::new(wire)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn eof_inside_payload_is_an_error() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&8u32.to_le_bytes());
        wire.extend_from_slice(&[1, 2, 3]); // 3 of 8 promised bytes
        let err = read_frame(&mut Cursor::new(wire)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn unknown_opcodes_are_errors() {
        assert!(Request::decode(&[0x60]).is_err());
        assert!(Response::decode(&[0x60]).is_err());
        assert!(Request::decode(&[]).is_err());
    }

    #[test]
    fn truncated_invoke_is_an_error() {
        assert!(Request::decode(&[OP_INVOKE, 1, 2]).is_err());
        assert!(Request::decode(&[OP_INVOKE_KEYED, 1, 2, 3, 4, 5]).is_err());
    }

    /// A peer that trickles `data` one byte per read, sleeping `delay`
    /// before each byte, then times out forever.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
        delay: Duration,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos < self.data.len() && !buf.is_empty() {
                std::thread::sleep(self.delay);
                buf[0] = self.data[self.pos];
                self.pos += 1;
                Ok(1)
            } else {
                Err(io::Error::new(io::ErrorKind::TimedOut, "idle"))
            }
        }
    }

    /// Regression: a peer trickling 1 byte per grace period used to be
    /// treated as live forever; `stall_limit` must be a hard per-frame
    /// deadline.
    #[test]
    fn trickling_peer_hits_the_per_frame_deadline() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[0u8; 64]).unwrap();
        let mut peer = Trickle {
            data: wire,
            pos: 0,
            delay: Duration::from_millis(5),
        };
        let started = Instant::now();
        let err = poll_frame(&mut peer, Duration::from_millis(50)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // 68 wire bytes at 5 ms/byte would be ~340 ms if the deadline
        // did not fire; the hard limit cuts each sub-read off at ~50 ms.
        assert!(
            started.elapsed() < Duration::from_millis(250),
            "deadline fired too late: {:?}",
            started.elapsed()
        );
    }

    /// A slow-but-finishing peer inside the deadline still completes.
    #[test]
    fn slow_frame_within_deadline_completes() {
        let payload = Request::Ping.encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut peer = Trickle {
            data: wire,
            pos: 0,
            delay: Duration::from_millis(1),
        };
        match poll_frame(&mut peer, Duration::from_millis(500)).unwrap() {
            Poll::Frame(got) => assert_eq!(got, payload),
            other => panic!("expected frame, got {other:?}"),
        }
    }

    /// An idle connection (timeout before any byte) still reports Idle,
    /// not a deadline error.
    #[test]
    fn idle_connection_reports_idle() {
        let mut peer = Trickle {
            data: Vec::new(),
            pos: 0,
            delay: Duration::ZERO,
        };
        assert!(matches!(
            poll_frame(&mut peer, Duration::from_millis(10)).unwrap(),
            Poll::Idle
        ));
    }

    #[test]
    fn incremental_decoder_byte_at_a_time_matches_blocking_reader() {
        let payloads: Vec<Vec<u8>> = vec![
            Request::Invoke { function: 7 }.encode(),
            Vec::new(), // zero-length payload frame
            Request::Stats.encode(),
            vec![0xAB; 300],
        ];
        let mut wire = Vec::new();
        for p in &payloads {
            write_frame(&mut wire, p).unwrap();
        }

        let mut blocking = Vec::new();
        let mut cursor = Cursor::new(wire.clone());
        while let Some(frame) = read_frame(&mut cursor).unwrap() {
            blocking.push(frame);
        }

        let mut decoder = FrameDecoder::new();
        let mut out = VecDeque::new();
        for byte in &wire {
            decoder.feed(std::slice::from_ref(byte), &mut out).unwrap();
        }
        assert!(!decoder.is_mid_frame(), "stream ended at a frame boundary");
        assert_eq!(Vec::from(out), blocking);
    }

    #[test]
    fn incremental_decoder_mid_frame_state_is_visible() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[1, 2, 3, 4]).unwrap();
        let mut decoder = FrameDecoder::new();
        let mut out = VecDeque::new();
        decoder.feed(&wire[..2], &mut out).unwrap();
        assert!(decoder.is_mid_frame(), "partial header is mid-frame");
        decoder.feed(&wire[2..6], &mut out).unwrap();
        assert!(decoder.is_mid_frame(), "partial payload is mid-frame");
        decoder.feed(&wire[6..], &mut out).unwrap();
        assert!(!decoder.is_mid_frame());
        assert_eq!(out.pop_front().unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn incremental_decoder_rejects_oversized_prefix() {
        let mut decoder = FrameDecoder::new();
        let mut out = VecDeque::new();
        let err = decoder
            .feed(&u32::MAX.to_le_bytes(), &mut out)
            .expect_err("oversized prefix");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn pooled_decoder_recycles_payload_buffers() {
        let pool = BufPool::new(8, 512);
        let mut decoder = FrameDecoder::with_pool(pool.clone());
        let mut wire = Vec::new();
        write_frame(&mut wire, &[9; 32]).unwrap();
        let mut out = VecDeque::new();
        for _ in 0..10 {
            decoder.feed(&wire, &mut out).unwrap();
            let frame = out.pop_front().unwrap();
            assert_eq!(frame, vec![9; 32]);
            pool.put(frame);
        }
        assert!(pool.available() >= 1, "buffers must round-trip the pool");
    }

    /// A writer that accepts at most `cap` bytes per call, then blocks.
    struct Throttled {
        out: Vec<u8>,
        cap: usize,
        budget: usize,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.budget == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            let n = buf.len().min(self.cap).min(self.budget);
            self.out.extend_from_slice(&buf[..n]);
            self.budget -= n;
            Ok(n)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn encoder_resumes_partial_writes_and_counts_whole_frames() {
        let mut enc = FrameEncoder::new();
        enc.push_payload_into(&[1, 2, 3], Vec::new());
        enc.push_payload_into(&[4, 5], Vec::new());
        let mut expected = Vec::new();
        write_frame(&mut expected, &[1, 2, 3]).unwrap();
        write_frame(&mut expected, &[4, 5]).unwrap();

        let mut w = Throttled {
            out: Vec::new(),
            cap: 3,
            budget: 5,
        };
        let mut reclaimed = 0usize;
        let (done, progress) = enc.write_to(&mut w, &mut |_| reclaimed += 1);
        assert_eq!(done, 0, "first frame is 7 wire bytes, only 5 accepted");
        assert!(matches!(progress, WriteProgress::Blocked));
        assert_eq!(enc.pending_frames(), 2);

        w.budget = usize::MAX;
        let (done, progress) = enc.write_to(&mut w, &mut |_| reclaimed += 1);
        assert_eq!(done, 2);
        assert!(matches!(progress, WriteProgress::Flushed));
        assert!(enc.is_empty());
        assert_eq!(reclaimed, 2);
        assert_eq!(w.out, expected, "partial writes resume without gaps");
    }

    #[test]
    fn encoder_abandon_reports_unwritten_frames() {
        let mut enc = FrameEncoder::new();
        enc.push_payload_into(&[1], Vec::new());
        enc.push_payload_into(&[2], Vec::new());
        let mut reclaimed = 0usize;
        assert_eq!(enc.abandon(&mut |_| reclaimed += 1), 2);
        assert!(enc.is_empty());
        assert_eq!(reclaimed, 2);
    }
}
