//! Epoll-driven readiness serving core: C10k connections without deps.
//!
//! The thread-per-connection model in [`crate::daemon`] pins a kernel
//! thread and a ~2 MiB stack per connection — every *idle* keep-alive
//! client costs as much as an active one, capping the daemon at a few
//! hundred connections. This module replaces the blocking serve loop
//! with a single reactor thread multiplexing every connection over raw
//! `epoll`, lifting the ceiling to tens of thousands:
//!
//! - [`Epoll`] wraps the three `epoll` syscalls behind direct
//!   `extern "C"` declarations (`std` already links the platform C
//!   library — the same trick [`crate::signal`] uses; no `libc` crate,
//!   no new dependencies). Registration supports level- and
//!   edge-triggered interest; the daemon uses level-triggered so
//!   backpressure (dropping read interest when a connection's pipeline
//!   fills) can never lose a wakeup.
//! - Per-connection **state machines** own an incremental
//!   [`FrameDecoder`] and [`FrameEncoder`](crate::proto::FrameEncoder):
//!   reads consume whatever bytes are ready and resume mid-frame; writes
//!   resume mid-response on the next writability event. Buffers come
//!   from a shared [`BufPool`] so steady-state serving does not allocate
//!   per request.
//! - Invocation execution stays on a small **worker pool** fed by a
//!   bounded MPSC handoff: the reactor never blocks on a shard lock, and
//!   workers never touch a socket. Completed responses come back through
//!   a completion queue plus a self-wake socketpair, and are written on
//!   the connection's next writability.
//! - A **deadline queue** bounds every started frame: a peer that
//!   trickles or stalls mid-frame is cut off after the same
//!   `read_timeout × 10` budget the blocking path enforces, without
//!   parking a thread per peer. (All deadlines share one duration, so a
//!   FIFO is a degenerate — and exact — timer wheel.)
//! - **Drain** keeps PR 2's semantics: on shutdown the listener is
//!   deregistered, read interest is dropped everywhere, admission gates
//!   flip so stragglers get an explicit `Rejected`, and the reactor
//!   keeps flushing until every admitted frame's response is on the wire
//!   (or the drain window closes). The `active` counter brackets
//!   frame-read → response-written exactly as in the threads model, and
//!   connections that die mid-drain surrender their bracket at close.
//!
//! Fault injection composes unchanged: each accepted connection is
//! wrapped in the same [`FaultyStream`](crate::fault::FaultyStream) with
//! the same accept-ordinal stream id, so a chaos seed replays the
//! identical schedule under either `--io-model`.

#![allow(unsafe_code)]

use crate::daemon::{ConnKind, DaemonConfig, Listener, Shared, Stream};
use crate::fault::{FaultPlan, FaultyStream};
use crate::http::{self, HttpParseError, HttpParser, HttpRequest};
use crate::proto::{BufPool, FrameDecoder, FrameEncoder, WriteProgress};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Raw syscall surface. `std` links the platform C library, so declaring
/// the prototypes directly is enough — the same pattern `signal.rs`
/// established for SIGTERM handling.
mod ffi {
    use std::os::raw::c_int;

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLET: u32 = 1 << 31;

    /// `struct epoll_event`. The kernel ABI packs it on x86_64 (glibc's
    /// `__EPOLL_PACKED`); other architectures use natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(target_pointer_width = "64")]
    pub const RLIMIT_NOFILE: c_int = 7;

    /// `struct rlimit` with 64-bit fields matches `rlim_t` only on
    /// 64-bit targets; 32-bit glibc needs the separate `getrlimit64`
    /// entry points, so the rlimit surface is gated off there.
    #[cfg(target_pointer_width = "64")]
    #[repr(C)]
    pub struct RLimit {
        pub cur: u64,
        pub max: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn close(fd: c_int) -> c_int;
    }

    #[cfg(target_pointer_width = "64")]
    extern "C" {
        pub fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
        pub fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
    }
}

/// Raises the process's open-file soft limit to its hard limit and
/// returns the resulting soft limit. C10k serving needs one fd per
/// connection; the default soft limit (often 1024) would cap the daemon
/// long before the reactor does. Errors are non-fatal — the caller keeps
/// whatever limit it had.
#[cfg(target_pointer_width = "64")]
pub fn raise_nofile_limit() -> io::Result<u64> {
    let mut rl = ffi::RLimit { cur: 0, max: 0 };
    // SAFETY: plain struct out-parameter syscall wrappers.
    if unsafe { ffi::getrlimit(ffi::RLIMIT_NOFILE, &mut rl) } != 0 {
        return Err(io::Error::last_os_error());
    }
    if rl.cur < rl.max {
        let want = ffi::RLimit {
            cur: rl.max,
            max: rl.max,
        };
        if unsafe { ffi::setrlimit(ffi::RLIMIT_NOFILE, &want) } != 0 {
            return Err(io::Error::last_os_error());
        }
        rl.cur = rl.max;
    }
    Ok(rl.cur)
}

/// On 32-bit targets the u64 `RLimit` layout would be wrong (see
/// `ffi::RLimit`); keep whatever limit the process already has. Callers
/// treat a failed raise as non-fatal.
#[cfg(not(target_pointer_width = "64"))]
pub fn raise_nofile_limit() -> io::Result<u64> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "rlimit raise requires a 64-bit target",
    ))
}

/// What a registration wants to be notified about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
    /// Edge-triggered delivery (`EPOLLET`): one wakeup per readiness
    /// transition. The daemon's serving path uses level-triggered
    /// registration, which tolerates partial consumption; edge mode is
    /// exposed for callers that always drain to `WouldBlock`.
    pub edge: bool,
}

impl Interest {
    /// Level-triggered read interest.
    pub fn readable() -> Self {
        Interest {
            readable: true,
            writable: false,
            edge: false,
        }
    }

    /// Level-triggered read + write interest.
    pub fn both() -> Self {
        Interest {
            readable: true,
            writable: true,
            edge: false,
        }
    }

    /// No interest (error/hangup events still fire).
    pub fn none() -> Self {
        Interest {
            readable: false,
            writable: false,
            edge: false,
        }
    }

    fn bits(self) -> u32 {
        // EPOLLRDHUP rides with read interest only: a registration that
        // has parked reads (backpressure, drain, post-EOF flush) must
        // not be re-woken level-triggered by a half-closed peer it is
        // not going to read from.
        let mut bits = 0;
        if self.readable {
            bits |= ffi::EPOLLIN | ffi::EPOLLRDHUP;
        }
        if self.writable {
            bits |= ffi::EPOLLOUT;
        }
        if self.edge {
            bits |= ffi::EPOLLET;
        }
        bits
    }
}

/// One readiness notification out of [`Epoll::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable (includes peer half-close via `EPOLLRDHUP`).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hangup condition; the next read will surface it.
    pub error: bool,
}

/// A minimal safe wrapper over the `epoll` syscalls.
///
/// Fds are registered with a caller-chosen `u64` token that comes back
/// verbatim in events. The wrapper owns the epoll fd and closes it on
/// drop; registered fds are *not* owned.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 has no memory arguments.
        let fd = unsafe { ffi::epoll_create1(ffi::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = ffi::EpollEvent {
            events: interest.bits(),
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        if unsafe { ffi::epoll_ctl(self.fd, op, fd, &mut ev) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` under `token`.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(ffi::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Changes the interest set of a registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(ffi::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Deregisters `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(ffi::EPOLL_CTL_DEL, fd, 0, Interest::none())
    }

    /// Waits up to `timeout` for readiness, appending into `out` (which
    /// is cleared first). Returns the number of events. `None` blocks
    /// indefinitely.
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        const MAX_EVENTS: usize = 1024;
        let mut raw = [ffi::EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
        };
        // SAFETY: `raw` is a valid out-buffer of MAX_EVENTS entries.
        let n =
            unsafe { ffi::epoll_wait(self.fd, raw.as_mut_ptr(), MAX_EVENTS as i32, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                out.clear();
                return Ok(0);
            }
            return Err(err);
        }
        out.clear();
        for ev in raw.iter().take(n as usize) {
            let bits = ev.events;
            out.push(Event {
                token: ev.data,
                readable: bits & (ffi::EPOLLIN | ffi::EPOLLRDHUP) != 0,
                writable: bits & ffi::EPOLLOUT != 0,
                error: bits & (ffi::EPOLLERR | ffi::EPOLLHUP) != 0,
            });
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: we own the fd.
        unsafe {
            ffi::close(self.fd);
        }
    }
}

/// Per-frame deadlines for the reactor. Every deadline is `now +
/// stall_limit` with one shared `stall_limit`, so insertion order is
/// deadline order and a FIFO is an exact timer wheel. Entries are
/// validated lazily against the connection's current deadline on expiry,
/// so completed frames cost nothing to cancel.
#[derive(Debug, Default)]
struct DeadlineQueue {
    queue: VecDeque<(Instant, u64)>,
}

impl DeadlineQueue {
    fn push(&mut self, when: Instant, token: u64) {
        debug_assert!(self.queue.back().is_none_or(|(w, _)| *w <= when));
        self.queue.push_back((when, token));
    }

    fn next_deadline(&self) -> Option<Instant> {
        self.queue.front().map(|(w, _)| *w)
    }

    /// Pops every entry due at `now`, invoking `expire(token, when)`.
    fn expire(&mut self, now: Instant, mut expired: impl FnMut(u64, Instant)) {
        while let Some((when, token)) = self.queue.front().copied() {
            if when > now {
                break;
            }
            self.queue.pop_front();
            expired(token, when);
        }
    }
}

const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKE: u64 = u64::MAX - 1;
const TOKEN_HTTP_LISTENER: u64 = u64::MAX - 2;
/// Decoded-but-undispatched frames a single connection may pipeline
/// before the reactor stops reading from it (explicit backpressure).
const PENDING_CAP: usize = 32;
/// Bound of the reactor → worker handoff channel.
const DISPATCH_BOUND: usize = 1024;
/// Reads per connection per readiness round; level-triggered
/// registration re-fires if more bytes remain.
const READ_ROUNDS: usize = 16;
/// Longest epoll sleep: bounds how stale the shutdown-flag check and the
/// deadline sweep can get.
const MAX_WAIT: Duration = Duration::from_millis(25);

/// One admitted request handed to the worker pool: a binary frame
/// payload, or an already-routed HTTP gateway operation (routing is
/// pure, so it runs on the reactor thread; execution does not).
enum JobPayload {
    Frame(Vec<u8>),
    Http {
        op: http::GatewayOp,
        /// The request asked to close the connection after its response.
        close: bool,
    },
}

struct Job {
    token: u64,
    payload: JobPayload,
}

struct Completion {
    token: u64,
    /// Wire bytes ready to queue on the encoder: a length-prefixed
    /// binary frame, or a complete HTTP response.
    frame: Vec<u8>,
    /// Close the connection once every owed response is flushed.
    close_after: bool,
}

/// Which protocol state machine decodes a connection's bytes.
enum ConnProto {
    Binary(FrameDecoder),
    Http(HttpParser),
}

/// One connection's readiness state machine.
struct Conn {
    stream: FaultyStream<Stream>,
    fd: RawFd,
    gen: u32,
    proto: ConnProto,
    /// Decoded requests not yet dispatched to a worker.
    pending: VecDeque<JobPayload>,
    /// A dispatched job is executing (or queued) on the worker pool.
    busy: bool,
    out: FrameEncoder,
    /// Hard deadline for the frame currently being read, if mid-frame.
    deadline: Option<Instant>,
    /// Peer sent EOF at a frame boundary (or a response demanded
    /// close); close once quiesced.
    closing: bool,
    /// Interest currently registered with epoll.
    registered: Interest,
}

impl Conn {
    fn token(&self, idx: usize) -> u64 {
        ((self.gen as u64) << 32) | idx as u64
    }

    fn quiesced(&self) -> bool {
        !self.busy && self.pending.is_empty() && self.out.is_empty()
    }

    /// Whether any byte of an unfinished request has been consumed —
    /// the deadline-arming condition for both protocols.
    fn mid_input(&self) -> bool {
        match &self.proto {
            ConnProto::Binary(decoder) => decoder.is_mid_frame(),
            ConnProto::Http(parser) => parser.is_mid_request(),
        }
    }

    fn is_http(&self) -> bool {
        matches!(self.proto, ConnProto::Http(_))
    }
}

fn split_token(token: u64) -> (usize, u32) {
    ((token & 0xFFFF_FFFF) as usize, (token >> 32) as u32)
}

/// Connection table: slot reuse with generation counters so a completion
/// for a closed connection can never be delivered to its slot's next
/// tenant.
struct Slab {
    slots: Vec<Option<Conn>>,
    gens: Vec<u32>,
    free: Vec<usize>,
}

impl Slab {
    fn new() -> Self {
        Slab {
            slots: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
        }
    }

    fn insert(&mut self, mut conn: Conn) -> u64 {
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slots.push(None);
                self.gens.push(0);
                self.slots.len() - 1
            }
        };
        conn.gen = self.gens[idx];
        let token = conn.token(idx);
        self.slots[idx] = Some(conn);
        token
    }

    fn get_mut(&mut self, token: u64) -> Option<&mut Conn> {
        let (idx, gen) = split_token(token);
        match self.slots.get_mut(idx) {
            Some(Some(conn)) if conn.gen == gen => Some(conn),
            _ => None,
        }
    }

    fn remove(&mut self, token: u64) -> Option<Conn> {
        let (idx, gen) = split_token(token);
        match self.slots.get_mut(idx) {
            Some(slot @ Some(_)) if slot.as_ref().is_some_and(|c| c.gen == gen) => {
                let conn = slot.take();
                self.gens[idx] = self.gens[idx].wrapping_add(1);
                self.free.push(idx);
                conn
            }
            _ => None,
        }
    }

    fn tokens(&self) -> Vec<u64> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(idx, slot)| slot.as_ref().map(|c| c.token(idx)))
            .collect()
    }
}

/// Runs the epoll serving core until shutdown, then drains. Returns
/// whether every admitted frame's response reached the wire within the
/// drain window.
pub(crate) fn serve(
    listener: &Listener,
    http_listener: Option<&Listener>,
    shared: &Arc<Shared>,
    config: &DaemonConfig,
) -> io::Result<bool> {
    let epoll = Epoll::new()?;
    epoll.add(listener.raw_fd(), TOKEN_LISTENER, Interest::readable())?;
    if let Some(http) = http_listener {
        epoll.add(http.raw_fd(), TOKEN_HTTP_LISTENER, Interest::readable())?;
    }

    // Self-wake channel: workers nudge the reactor out of epoll_wait
    // when a completion lands. A socketpair needs no extra FFI.
    let (wake_rx, wake_tx) = UnixStream::pair()?;
    wake_rx.set_nonblocking(true)?;
    wake_tx.set_nonblocking(true)?;
    epoll.add(wake_rx.as_raw_fd(), TOKEN_WAKE, Interest::readable())?;

    let pool = BufPool::serving_default();
    let completions: Arc<Mutex<VecDeque<Completion>>> = Arc::new(Mutex::new(VecDeque::new()));
    let (tx, rx) = mpsc::sync_channel::<Job>(DISPATCH_BOUND);
    let rx = Arc::new(Mutex::new(rx));
    let wake_tx = Arc::new(wake_tx);

    // The worker pool: invocation execution (shard locks, the invoker)
    // never runs on the reactor thread.
    let workers: Vec<_> = (0..config.workers.max(1))
        .map(|w| {
            let shared = Arc::clone(shared);
            let rx = Arc::clone(&rx);
            let completions = Arc::clone(&completions);
            let wake = Arc::clone(&wake_tx);
            let pool = pool.clone();
            thread::Builder::new()
                .name(format!("faascached-worker-{w}"))
                .spawn(move || loop {
                    let job = match rx.lock() {
                        Ok(rx) => rx.recv(),
                        Err(_) => break,
                    };
                    let Ok(job) = job else { break };
                    let (frame, close_after) = match job.payload {
                        JobPayload::Frame(payload) => {
                            let response = shared.handle(&payload);
                            pool.put(payload);
                            let encoded = response.encode();
                            let mut frame = pool.get(4 + encoded.len());
                            frame.extend_from_slice(&(encoded.len() as u32).to_le_bytes());
                            frame.extend_from_slice(&encoded);
                            (frame, false)
                        }
                        JobPayload::Http { op, close } => {
                            let resp = http::execute(&shared, op, shared.shutting_down());
                            let close = close || resp.close;
                            let mut frame = pool.get(128 + resp.body.len());
                            http::write_response_with(
                                &mut frame,
                                resp.status,
                                resp.content_type,
                                resp.body.as_bytes(),
                                close,
                                resp.retry_after,
                            );
                            (frame, close)
                        }
                    };
                    if let Ok(mut queue) = completions.lock() {
                        queue.push_back(Completion {
                            token: job.token,
                            frame,
                            close_after,
                        });
                    }
                    // A full wake pipe already guarantees a pending
                    // wakeup; WouldBlock is success here.
                    let _ = (&*wake).write(&[1u8]);
                })
                .expect("spawn worker thread")
        })
        .collect();

    let stall_limit = config.read_timeout * 10;
    let mut reactor = Reactor {
        epoll,
        slab: Slab::new(),
        deadlines: DeadlineQueue::default(),
        backlog: VecDeque::new(),
        pool,
        tx: Some(tx),
        shared: Arc::clone(shared),
        config: config.clone(),
        stall_limit,
        scratch: vec![0u8; 16 * 1024],
        frames_scratch: VecDeque::new(),
        http_scratch: VecDeque::new(),
        draining: false,
        drain_grace_until: None,
        accepting: true,
    };

    let mut events: Vec<Event> = Vec::new();
    let mut drain_deadline: Option<Instant> = None;
    let drained = loop {
        let now = Instant::now();
        let mut timeout = MAX_WAIT;
        if let Some(next) = reactor.deadlines.next_deadline() {
            timeout = timeout.min(next.saturating_duration_since(now));
        }
        reactor.epoll.wait(&mut events, Some(timeout))?;

        for ev in &events {
            match ev.token {
                TOKEN_LISTENER => reactor.accept_burst(listener, ConnKind::Binary),
                TOKEN_HTTP_LISTENER => {
                    if let Some(http) = http_listener {
                        reactor.accept_burst(http, ConnKind::Http);
                    }
                }
                TOKEN_WAKE => drain_wake(&wake_rx),
                token => reactor.handle_conn_event(*ev, token),
            }
        }

        reactor.drain_completions(&completions);
        reactor.retry_backlog();
        reactor.expire_deadlines(Instant::now());

        if !reactor.draining && shared.shutting_down() {
            reactor.begin_drain(listener, http_listener);
            drain_deadline = Some(Instant::now() + config.drain_timeout);
        }
        if reactor.draining {
            // HTTP connections get one grace window after drain starts:
            // already-connected clients finish their pipelines and
            // health probes observe the 503 flip (threads-model parity).
            if shared.active.load(Ordering::SeqCst) == 0
                && reactor.backlog.is_empty()
                && !reactor.http_grace_holds()
            {
                break true;
            }
            if drain_deadline.is_some_and(|d| Instant::now() >= d) {
                break false;
            }
        }
    };

    // Stop the workers (channel close) and reclaim every connection; any
    // frame still bracketed surrenders its `active` count at close so
    // the caller's final accounting cannot hang.
    reactor.tx = None;
    for token in reactor.slab.tokens() {
        reactor.close(token);
    }
    // Join before the final completion drain: a worker finishing its job
    // after the drain would strand that completion's `active` bracket,
    // stalling the caller's common drain tail for a full drain_timeout.
    for worker in workers {
        let _ = worker.join();
    }
    reactor.drain_completions(&completions);
    Ok(drained)
}

fn drain_wake(wake_rx: &UnixStream) {
    let mut buf = [0u8; 256];
    loop {
        match (&*wake_rx).read(&mut buf) {
            Ok(0) => break,
            Ok(_) => continue,
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

struct Reactor {
    epoll: Epoll,
    slab: Slab,
    deadlines: DeadlineQueue,
    /// Connections whose next dispatch bounced off a full worker queue.
    backlog: VecDeque<u64>,
    pool: BufPool,
    tx: Option<mpsc::SyncSender<Job>>,
    shared: Arc<Shared>,
    config: DaemonConfig,
    stall_limit: Duration,
    scratch: Vec<u8>,
    frames_scratch: VecDeque<Vec<u8>>,
    http_scratch: VecDeque<HttpRequest>,
    draining: bool,
    /// End of the HTTP drain grace window (armed by `begin_drain` when
    /// any HTTP connection could still owe responses).
    drain_grace_until: Option<Instant>,
    accepting: bool,
}

impl Reactor {
    /// Whether the HTTP drain grace window is still open.
    fn http_grace_active(&self) -> bool {
        self.drain_grace_until
            .is_some_and(|until| Instant::now() < until)
    }

    /// Whether the drain loop must stay alive for HTTP connections that
    /// may still submit requests inside the grace window.
    fn http_grace_holds(&self) -> bool {
        self.http_grace_active()
            && self
                .slab
                .slots
                .iter()
                .flatten()
                .any(|conn| conn.is_http() && !conn.closing)
    }

    fn accept_burst(&mut self, listener: &Listener, kind: ConnKind) {
        if !self.accepting {
            return;
        }
        // Burst-accept until WouldBlock: under load the backlog holds
        // more than one pending connection per readiness event.
        for _ in 0..1024 {
            match listener.accept() {
                Ok(stream) => {
                    let ordinal = self.shared.conns_total.fetch_add(1, Ordering::Relaxed) + 1;
                    let current = self.shared.conns_current.fetch_add(1, Ordering::Relaxed) + 1;
                    self.shared.conns_peak.fetch_max(current, Ordering::Relaxed);
                    if stream.configure_nonblocking().is_err() {
                        self.shared.conns_current.fetch_sub(1, Ordering::Relaxed);
                        continue; // connection dies; peer sees EOF
                    }
                    let fd = stream.raw_fd();
                    // Stream id = accept ordinal: the identical fault
                    // schedule as the threads model for a given seed.
                    let plan = match self.config.faults.filter(|f| f.is_active()) {
                        Some(cfg) => cfg.plan(ordinal),
                        None => FaultPlan::disabled(),
                    };
                    let conn = Conn {
                        stream: FaultyStream::new(stream, plan),
                        fd,
                        gen: 0,
                        proto: match kind {
                            ConnKind::Binary => {
                                ConnProto::Binary(FrameDecoder::with_pool(self.pool.clone()))
                            }
                            ConnKind::Http => ConnProto::Http(HttpParser::new()),
                        },
                        pending: VecDeque::new(),
                        busy: false,
                        out: FrameEncoder::new(),
                        deadline: None,
                        closing: false,
                        registered: Interest::readable(),
                    };
                    let token = self.slab.insert(conn);
                    if self.epoll.add(fd, token, Interest::readable()).is_err() {
                        self.shared.accept_errors.fetch_add(1, Ordering::Relaxed);
                        self.drop_conn_accounting(token);
                    }
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // EMFILE and friends: count it and yield; the
                    // level-triggered listener retries next round.
                    self.shared.accept_errors.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
        }
    }

    /// Close immediately after a failed registration: nothing was ever
    /// admitted, so only the connection counters roll back.
    fn drop_conn_accounting(&mut self, token: u64) {
        if self.slab.remove(token).is_some() {
            self.shared.conns_current.fetch_sub(1, Ordering::Relaxed);
        }
    }

    fn handle_conn_event(&mut self, ev: Event, token: u64) {
        let Some(conn) = self.slab.get_mut(token) else {
            return; // already closed this round
        };
        if ev.error && (self.draining || conn.closing) {
            // EPOLLERR/EPOLLHUP fire regardless of the interest mask,
            // level-triggered on every wait. With reads parked we will
            // never consume the condition, so reap the connection
            // instead of spinning on it: flush what the dead socket
            // still accepts (usually nothing), then close — close()
            // surrenders any brackets the peer will never collect.
            self.flush(token);
            if self.slab.get_mut(token).is_some() {
                self.close(token);
            }
            return;
        }
        if ev.readable || ev.error {
            self.readable(token);
        }
        if self.slab.get_mut(token).is_some() && ev.writable {
            self.flush(token);
        }
        self.after_io(token);
    }

    fn readable(&mut self, token: u64) {
        let draining = self.draining;
        let grace = self.http_grace_active();
        let Some(conn) = self.slab.get_mut(token) else {
            return;
        };
        // Draining parks reads — except HTTP connections inside the
        // grace window, which may still submit their final requests.
        if conn.closing || (draining && !(grace && conn.is_http())) {
            return;
        }
        let mut new_jobs = 0usize;
        let mut close_reason: Option<CloseReason> = None;
        for _ in 0..READ_ROUNDS {
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    if conn.mid_input() {
                        close_reason = Some(CloseReason::Protocol(None));
                    } else {
                        // Clean EOF: finish writing what we owe, then
                        // close.
                        conn.closing = true;
                    }
                    break;
                }
                Ok(n) => {
                    let overflowing;
                    let fed = match &mut conn.proto {
                        ConnProto::Binary(decoder) => {
                            let fed = decoder.feed(&self.scratch[..n], &mut self.frames_scratch);
                            // Drain the scratch queue even when feed()
                            // errored: a bad length prefix can follow a
                            // completed frame in the same chunk, and
                            // frames left here would be popped by the
                            // next connection's read and served under
                            // *its* token.
                            while let Some(frame) = self.frames_scratch.pop_front() {
                                // `active` brackets read → response
                                // written, exactly like the threads
                                // model's serve_connection.
                                self.shared.active.fetch_add(1, Ordering::SeqCst);
                                self.shared.frames.fetch_add(1, Ordering::Relaxed);
                                conn.pending.push_back(JobPayload::Frame(frame));
                                new_jobs += 1;
                            }
                            overflowing = conn.pending.len() >= PENDING_CAP;
                            fed.map(|_| ()).map_err(|_| None)
                        }
                        ConnProto::Http(parser) => {
                            let fed = parser.feed(&self.scratch[..n], &mut self.http_scratch);
                            // Same serve-then-close contract: requests
                            // completed ahead of a parse error are on the
                            // scratch queue and must be served under this
                            // connection's token.
                            while let Some(req) = self.http_scratch.pop_front() {
                                self.shared.active.fetch_add(1, Ordering::SeqCst);
                                self.shared.http_requests.fetch_add(1, Ordering::Relaxed);
                                conn.pending.push_back(JobPayload::Http {
                                    op: http::route(&req),
                                    close: req.close,
                                });
                                new_jobs += 1;
                            }
                            overflowing = conn.pending.len() >= PENDING_CAP;
                            fed.map_err(Some)
                        }
                    };
                    match fed {
                        Ok(()) => {
                            if overflowing {
                                break; // backpressure: stop reading
                            }
                        }
                        Err(http_err) => {
                            close_reason = Some(CloseReason::Protocol(http_err));
                            break;
                        }
                    }
                }
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(ref e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    // WouldBlock: drained the socket. TimedOut: an
                    // injected spurious timeout — level-triggered
                    // registration re-fires if bytes remain.
                    break;
                }
                Err(_) => {
                    close_reason = Some(CloseReason::Transport);
                    break;
                }
            }
        }

        // Per-request deadline: arm when a frame/request starts, clear
        // when the read position is back at a boundary. A poisoned or
        // EOF'd parser's mid-input state is meaningless — don't arm.
        if close_reason.is_none() && conn.mid_input() {
            if conn.deadline.is_none() {
                let when = Instant::now() + self.stall_limit;
                conn.deadline = Some(when);
                self.deadlines.push(when, token);
            }
        } else {
            conn.deadline = None;
        }

        match close_reason {
            Some(CloseReason::Protocol(http_err)) => {
                self.shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                // The threads model serves each request before reading
                // the next, so requests completed ahead of the error
                // still get their responses there. Match it: stop
                // reading (closing connections are never fed again) and
                // close once the owed responses are flushed; after_io
                // reaps when quiesced, and close() surrenders any
                // bracket the peer never collects.
                conn.closing = true;
                if let Some(err) = http_err {
                    // HTTP owes a 431/413/400 before closing. It rides
                    // the pending queue as a routed Fail op — with its
                    // own `active` bracket like every pending job — so
                    // it is written *after* the pipelined requests that
                    // completed ahead of the poison.
                    self.shared.active.fetch_add(1, Ordering::SeqCst);
                    conn.pending.push_back(JobPayload::Http {
                        op: http::GatewayOp::Fail {
                            status: err.status(),
                            msg: err.message().to_string(),
                        },
                        close: true,
                    });
                    new_jobs += 1;
                }
                if new_jobs > 0 {
                    self.try_dispatch(token);
                }
            }
            Some(CloseReason::Transport) => {
                self.close(token);
            }
            None => {
                if new_jobs > 0 {
                    self.try_dispatch(token);
                }
            }
        }
    }

    fn try_dispatch(&mut self, token: u64) {
        let Some(tx) = self.tx.clone() else { return };
        let Some(conn) = self.slab.get_mut(token) else {
            return;
        };
        if conn.busy {
            return;
        }
        let Some(payload) = conn.pending.pop_front() else {
            return;
        };
        match tx.try_send(Job { token, payload }) {
            Ok(()) => conn.busy = true,
            Err(TrySendError::Full(job)) => {
                // Bounded handoff is full: requeue and retry after this
                // round's completions free worker capacity.
                conn.pending.push_front(job.payload);
                self.backlog.push_back(token);
            }
            Err(TrySendError::Disconnected(job)) => {
                // Workers only exit at teardown; surrender the bracket.
                if let JobPayload::Frame(buf) = job.payload {
                    self.pool.put(buf);
                }
                self.shared.active.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }

    fn retry_backlog(&mut self) {
        for _ in 0..self.backlog.len() {
            if let Some(token) = self.backlog.pop_front() {
                self.try_dispatch(token);
            }
        }
    }

    fn drain_completions(&mut self, completions: &Arc<Mutex<VecDeque<Completion>>>) {
        while let Some(done) = completions.lock().ok().and_then(|mut q| q.pop_front()) {
            match self.slab.get_mut(done.token) {
                Some(conn) => {
                    conn.out.push_wire_frame(done.frame);
                    conn.busy = false;
                    if done.close_after {
                        // Stop reading, but keep dispatching: requests
                        // already pipelined must still complete before
                        // the quiesced close.
                        conn.closing = true;
                    }
                    self.try_dispatch(done.token);
                    self.flush(done.token);
                    self.after_io(done.token);
                }
                None => {
                    // The connection died while its job executed: the
                    // response is undeliverable, surrender its bracket.
                    self.shared.active.fetch_sub(1, Ordering::SeqCst);
                    self.pool.put(done.frame);
                }
            }
        }
    }

    fn flush(&mut self, token: u64) {
        let pool = self.pool.clone();
        let Some(conn) = self.slab.get_mut(token) else {
            return;
        };
        let (completed, progress) = conn
            .out
            .write_to(&mut conn.stream, &mut |buf| pool.put(buf));
        if completed > 0 {
            self.shared
                .active
                .fetch_sub(completed as u64, Ordering::SeqCst);
        }
        if let WriteProgress::Closed(_) = progress {
            self.close(token);
        }
    }

    /// Reconciles epoll interest with the connection's state and closes
    /// quiesced EOF'd connections. Call after any read/write/dispatch
    /// activity on the connection.
    fn after_io(&mut self, token: u64) {
        let draining = self.draining;
        let grace = self.http_grace_active();
        let Some(conn) = self.slab.get_mut(token) else {
            return;
        };
        if conn.closing && conn.quiesced() {
            self.close(token);
            return;
        }
        let want = Interest {
            readable: (!draining || (grace && conn.is_http()))
                && !conn.closing
                && conn.pending.len() < PENDING_CAP,
            writable: !conn.out.is_empty(),
            edge: false,
        };
        if want != conn.registered {
            let fd = conn.fd;
            conn.registered = want;
            if self.epoll.modify(fd, token, want).is_err() {
                self.close(token);
            }
        }
    }

    fn expire_deadlines(&mut self, now: Instant) {
        let mut victims = Vec::new();
        let slab = &mut self.slab;
        self.deadlines.expire(now, |token, when| {
            if let Some(conn) = slab.get_mut(token) {
                // Lazy validation: only the entry matching the armed
                // deadline kills; stale entries (frame completed, maybe
                // a newer frame armed a later deadline) are no-ops.
                if conn.deadline == Some(when) {
                    victims.push(token);
                }
            }
        });
        for token in victims {
            // Same contract as poll_frame's stall handling: a started
            // frame that outlives read_timeout × 10 is a protocol error.
            self.shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
            self.close(token);
        }
    }

    fn begin_drain(&mut self, listener: &Listener, http_listener: Option<&Listener>) {
        self.draining = true;
        self.accepting = false;
        let _ = self.epoll.delete(listener.raw_fd());
        if let Some(http) = http_listener {
            let _ = self.epoll.delete(http.raw_fd());
        }
        // HTTP connections get one stall-limit grace window to finish
        // pipelines and observe healthz's 503 flip (the threads model's
        // handlers linger the same way). Armed only when HTTP
        // connections exist: binary-only deployments drain instantly.
        if self.slab.slots.iter().flatten().any(|c| c.is_http()) {
            self.drain_grace_until = Some(Instant::now() + self.stall_limit);
        }
        // Flip admission now so any frame still flowing through the
        // worker pool gets an explicit Rejected, mirroring the threads
        // model's post-accept-loop begin_drain.
        self.shared.invoker.begin_drain();
        for token in self.slab.tokens() {
            self.after_io(token);
        }
    }

    fn close(&mut self, token: u64) {
        let Some(mut conn) = self.slab.remove(token) else {
            return;
        };
        // Every admitted frame ends its bracket exactly once: frames
        // never dispatched and responses never written surrender theirs
        // here; a frame executing on a worker surrenders in
        // drain_completions when the stale-token completion lands.
        let mut orphaned = conn.pending.len() as u64;
        let pool = self.pool.clone();
        for job in conn.pending.drain(..) {
            if let JobPayload::Frame(buf) = job {
                pool.put(buf);
            }
        }
        orphaned += conn.out.abandon(&mut |buf| pool.put(buf)) as u64;
        if orphaned > 0 {
            self.shared.active.fetch_sub(orphaned, Ordering::SeqCst);
        }
        let _ = self.epoll.delete(conn.fd);
        self.shared.conns_current.fetch_sub(1, Ordering::Relaxed);
        // Dropping `conn` closes the socket.
    }
}

enum CloseReason {
    /// Malformed input, oversized prefix/header, mid-request EOF, or a
    /// stalled request. HTTP parse errors carry the error so the owed
    /// 431/413/400 response can be queued before the close.
    Protocol(Option<HttpParseError>),
    /// Reset or other transport failure — not a protocol error.
    Transport,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_reports_readability_with_token() {
        let epoll = Epoll::new().expect("epoll_create1");
        let (a, b) = UnixStream::pair().expect("socketpair");
        a.set_nonblocking(true).unwrap();
        epoll
            .add(a.as_raw_fd(), 0xBEEF, Interest::readable())
            .unwrap();

        let mut events = Vec::new();
        let n = epoll
            .wait(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert_eq!(n, 0, "nothing written yet");

        (&b).write_all(&[1, 2, 3]).unwrap();
        let n = epoll
            .wait(&mut events, Some(Duration::from_millis(500)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 0xBEEF);
        assert!(events[0].readable);
        assert!(!events[0].writable);
    }

    #[test]
    fn epoll_modify_and_delete_change_the_interest_set() {
        let epoll = Epoll::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        epoll.add(a.as_raw_fd(), 7, Interest::readable()).unwrap();
        (&b).write_all(&[9]).unwrap();

        // Writable-only interest must not report the pending byte.
        epoll
            .modify(
                a.as_raw_fd(),
                7,
                Interest {
                    readable: false,
                    writable: true,
                    edge: false,
                },
            )
            .unwrap();
        let mut events = Vec::new();
        epoll
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events.iter().all(|e| !e.readable || e.error));

        epoll.delete(a.as_raw_fd()).unwrap();
        let n = epoll
            .wait(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert_eq!(n, 0, "deleted fd must not report");
    }

    #[test]
    fn edge_triggered_registration_fires_once_per_transition() {
        let epoll = Epoll::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        epoll
            .add(
                a.as_raw_fd(),
                1,
                Interest {
                    readable: true,
                    writable: false,
                    edge: true,
                },
            )
            .unwrap();
        (&b).write_all(&[1]).unwrap();
        let mut events = Vec::new();
        assert_eq!(
            epoll
                .wait(&mut events, Some(Duration::from_millis(500)))
                .unwrap(),
            1
        );
        // Without consuming the byte, an edge registration stays silent.
        assert_eq!(
            epoll
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap(),
            0,
            "edge mode must not re-report an unconsumed buffer"
        );
    }

    #[test]
    fn deadline_queue_expires_in_order_with_lazy_validation() {
        let mut dq = DeadlineQueue::default();
        let base = Instant::now();
        dq.push(base + Duration::from_millis(1), 10);
        dq.push(base + Duration::from_millis(2), 20);
        dq.push(base + Duration::from_millis(30), 30);
        assert_eq!(dq.next_deadline(), Some(base + Duration::from_millis(1)));

        let mut fired = Vec::new();
        dq.expire(base + Duration::from_millis(5), |t, _| fired.push(t));
        assert_eq!(fired, vec![10, 20]);
        assert_eq!(dq.next_deadline(), Some(base + Duration::from_millis(30)));
    }

    #[test]
    fn slab_generations_invalidate_stale_tokens() {
        // Exercised through split_token: a recycled slot bumps the
        // generation, so the old token must miss.
        let (idx, gen) = split_token((5u64 << 32) | 3);
        assert_eq!((idx, gen), (3, 5));
    }

    #[cfg(target_pointer_width = "64")]
    #[test]
    fn nofile_limit_can_be_raised_to_hard() {
        let got = raise_nofile_limit().expect("rlimit");
        assert!(got >= 1024, "soft limit unexpectedly tiny: {got}");
    }
}
